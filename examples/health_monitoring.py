"""Health monitoring with patient-controlled privacy (paper Example 2).

A patient lives at home with a monitoring device.  Only his doctor may
normally see the streaming vitals — but if the vitals spike into
emergency territory, the device immediately widens the policy so the
closest ER gains access, and narrows it back once the readings recover.

The example also shows:

* the CQL ``INSERT SP`` extension (Section III.D) for declaring
  policies, and the CQL SELECT subset for the queries;
* a server-side hospital policy refined into the patient policies by
  the SP Analyzer (server policies can only *reduce* access);
* a windowed aggregation query whose results are partitioned into
  attribute subgroups so no role sees an average that mixes in
  readings it may not observe.

Run::

    python examples/health_monitoring.py
"""

from __future__ import annotations

from repro.cql import compile_statement
from repro.engine import DSMS
from repro.workloads.health import HEART_RATE_SCHEMA, HealthStreamGenerator


def main() -> None:
    generator = HealthStreamGenerator(n_patients=8, seed=7,
                                      emergency_bpm=140.0)
    elements = list(generator.heart_rate(n_readings=40))

    dsms = DSMS()
    dsms.register_stream(HEART_RATE_SCHEMA, elements)

    # The hospital adds its own blanket policy: nobody outside the
    # clinical roles may ever access vitals, whatever a device says.
    # Server policies are intersected with the providers' sps.
    hospital_policy = compile_statement(
        "INSERT SP INTO STREAM HeartRate LET DDP = '*', "
        "SRP = '{D, ND, E, C}', TIMESTAMP = 0")
    dsms.add_server_policy(hospital_policy.with_ts(0.0))

    # Continuous queries, written in CQL.  Roles come from the
    # registering subjects, not from the query text.
    all_readings = compile_statement("SELECT * FROM HeartRate")
    tachycardia = compile_statement(
        "SELECT patient_id, beats_per_min FROM HeartRate "
        "WHERE beats_per_min > 120")
    average_hr = compile_statement(
        "SELECT avg(beats_per_min) FROM HeartRate RANGE 200 "
        "GROUP BY patient_id")

    dsms.register_query("doctor_all", all_readings, roles={"D"})
    dsms.register_query("er_alerts", tachycardia, roles={"E"})
    dsms.register_query("insurer_probe", all_readings, roles={"INSURER"})
    dsms.register_query("doctor_avg", average_hr, roles={"D"})

    results = dsms.run()

    doctor = results["doctor_all"].tuples
    er = results["er_alerts"].tuples
    insurer = results["insurer_probe"].tuples
    averages = results["doctor_avg"].tuples

    print(f"Total readings emitted:        {sum(1 for e in elements if not hasattr(e, 'srp'))}")
    print(f"Doctor sees:                   {len(doctor)} readings")
    print(f"ER sees (emergencies only):    {len(er)} readings")
    print(f"Insurance company sees:        {len(insurer)} readings")
    print(f"Doctor's windowed averages:    {len(averages)} updates")

    # ER access exists exactly for emergency readings.
    assert er, "expected at least one emergency in this seed"
    assert all(t.values["beats_per_min"] >= 140.0 for t in er)
    # Third parties never see anything (denial-by-default).
    assert insurer == []
    # The doctor's averages come with subgroup policies attached.
    assert results["doctor_avg"].sps, "aggregates carry their policies"

    sample = er[0]
    print(f"\nExample ER alert: patient {sample.values['patient_id']} at "
          f"{sample.values['beats_per_min']} bpm (ts={sample.ts})")
    print("OK: emergency escalation, server refinement and "
          "subgroup-partitioned aggregation all enforced in-stream.")


if __name__ == "__main__":
    main()
