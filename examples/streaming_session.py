"""Live sessions and incremental policies (paper future work).

Uses the online :class:`StreamingSession` API — elements pushed one at
a time, results delivered per push — together with *incremental*
security punctuations: instead of restating the whole policy, the
patient's device sends deltas ("additionally admit the ER", "drop the
ER again") that edit the policy in force.

Run::

    python examples/streaming_session.py
"""

from __future__ import annotations

from repro import DSMS, DataTuple, ScanExpr, SecurityPunctuation
from repro.stream import StreamSchema

SCHEMA = StreamSchema("HeartRate", ("patient_id", "beats_per_min"),
                      key="patient_id")


def reading(ts: float, bpm: float) -> DataTuple:
    return DataTuple("HeartRate", 120,
                     {"patient_id": 120, "beats_per_min": bpm}, ts)


def main() -> None:
    dsms = DSMS()
    dsms.register_stream(SCHEMA)  # no pre-materialized source: live mode

    dsms.register_query("doctor", ScanExpr("HeartRate"), roles={"D"})
    dsms.register_query("er", ScanExpr("HeartRate"), roles={"E"})

    er_alerts: list[float] = []

    with dsms.open_session() as session:
        session.subscribe(
            "er",
            lambda el: er_alerts.append(el.values["beats_per_min"])
            if isinstance(el, DataTuple) else None)

        # Standing policy: the doctor only.
        session.push("HeartRate",
                     SecurityPunctuation.grant(["D"], ts=0.0,
                                               provider="patient"))
        session.push("HeartRate", reading(1.0, 72.0))
        session.push("HeartRate", reading(2.0, 78.0))

        # Vitals spike: the device sends a DELTA admitting the ER on
        # top of the standing policy — no need to restate 'D'.
        session.push("HeartRate",
                     SecurityPunctuation.add_roles(["E"], ts=3.0))
        session.push("HeartRate", reading(4.0, 151.0))
        session.push("HeartRate", reading(5.0, 149.0))

        # Recovered: the delta retracting the ER.
        session.push("HeartRate",
                     SecurityPunctuation.retract_roles(["E"], ts=6.0))
        session.push("HeartRate", reading(7.0, 80.0))

        doctor_sees = [t.values["beats_per_min"]
                       for t in session.results("doctor")]

    print(f"Doctor saw every reading:   {doctor_sees}")
    print(f"ER was alerted only during the emergency: {er_alerts}")

    assert doctor_sees == [72.0, 78.0, 151.0, 149.0, 80.0]
    assert er_alerts == [151.0, 149.0]
    print("OK: delta sps widened and narrowed access live, per push.")


if __name__ == "__main__":
    main()
