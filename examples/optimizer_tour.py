"""A tour of security-aware query optimization (paper Section VI).

Starts from the naive plan — a Security Shield sitting on top of an
expensive sliding-window join — and lets the optimizer interleave the
shield using the Table II equivalence rules and the Section VI.A cost
model.  Then verifies on a real workload that both plans deliver the
same results while the optimized plan does measurably less work.

Run::

    python examples/optimizer_tour.py
"""

from __future__ import annotations

from repro.algebra.cost import CostModel
from repro.algebra.expressions import JoinExpr, ScanExpr, ShieldExpr
from repro.algebra.optimizer import Optimizer
from repro.algebra.rules import RewriteContext
from repro.algebra.statistics import StatisticsCatalog, StreamStatistics
from repro.engine.executor import Executor
from repro.engine.plan import PhysicalPlan
from repro.operators.join import SAJoinBase
from repro.operators.sink import CollectingSink
from repro.stream.source import ListSource
from repro.workloads.synthetic import join_streams


def build_catalog() -> StatisticsCatalog:
    catalog = StatisticsCatalog(sp_compatibility=0.3)
    catalog.set_stream("left", StreamStatistics(
        tuple_rate=100.0, sp_rate=10.0, roles_per_sp=1.0,
        role_universe_size=4))
    catalog.set_stream("right", StreamStatistics(
        tuple_rate=100.0, sp_rate=10.0, roles_per_sp=1.0,
        role_universe_size=4))
    return catalog


def run_physical(expr, left, right, left_schema, right_schema):
    plan = PhysicalPlan()
    sink = plan.compile_expr(expr, CollectingSink())
    Executor(plan, [ListSource(left_schema, left),
                    ListSource(right_schema, right)]).run()
    joins = plan.find_operators(SAJoinBase)
    pairs_checked = sum(j.pairs_checked for j in joins)
    return sink.operator.tuples(), pairs_checked


def main() -> None:
    # The naive plan: enforce access control after the join.  The
    # nested-loop SAJoin makes the effect visible in raw pair counts —
    # the index SAJoin's SPIndex already skips policy-incompatible
    # segments internally, so it profits less from shield push-down
    # (exactly the interplay the Section VI cost model captures).
    naive = ShieldExpr(
        JoinExpr(ScanExpr("left"), ScanExpr("right"), "key", "key",
                 window=300.0, variant="nl"),
        frozenset({"shared"}),
    )
    print("Naive plan:     ", naive)

    catalog = build_catalog()
    optimizer = Optimizer(
        CostModel(catalog),
        RewriteContext(policy_streams=frozenset({"left", "right"})),
    )
    result = optimizer.optimize(naive)
    print("Optimized plan: ", result.plan)
    print(f"Estimated cost:  {result.initial_cost:,.0f} -> "
          f"{result.cost:,.0f}  ({result.improvement:.0%} cheaper, "
          f"{result.steps} rewrite steps)")

    # Validate on a real workload: half the policies are compatible
    # with the query's role, so pushing the shield below the join
    # halves the tuples entering the join windows.
    left, right, ls, rs = join_streams(
        1200, tuples_per_sp=10, compatibility=0.5, match_fraction=0.15,
        seed=5)
    naive_tuples, naive_pairs = run_physical(naive, left, right, ls, rs)
    opt_tuples, opt_pairs = run_physical(result.plan, left, right, ls, rs)

    print(f"\nJoin pairs checked:  naive={naive_pairs:,}  "
          f"optimized={opt_pairs:,}")
    print(f"Results delivered:   naive={len(naive_tuples)}  "
          f"optimized={len(opt_tuples)}")

    naive_ids = sorted(t.tid for t in naive_tuples)
    opt_ids = sorted(t.tid for t in opt_tuples)
    assert opt_ids == naive_ids, "rewrites must preserve results"
    assert opt_pairs < naive_pairs, "pushed-down shield must cut work"
    print("\nOK: same answers, strictly less join work — the security "
          "shield acted as a pushed-down predicate.")


if __name__ == "__main__":
    main()
