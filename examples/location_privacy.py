"""Blocking context-aware spam for moving objects (paper Example 1).

People moving through a city with GPS devices stream their locations.
A retail store runs the paper's running query — *"continuously
retrieve all moving objects in the two-mile region around the store"*
— to push advertisements.  Each person's device streams security
punctuations deciding who may see them: family always, the retail role
only if the person opted in, and preferences flip at runtime (walking
into a casino and vanishing from everyone's view, in the paper's
opening image).

Run::

    python examples/location_privacy.py
"""

from __future__ import annotations

from repro.algebra.expressions import ScanExpr
from repro.engine import DSMS
from repro.mog.generator import MovingObjectsGenerator
from repro.operators.conditions import FuncCondition

STORE_X, STORE_Y = 500.0, 500.0
REGION = 400.0  # "two miles", in city units


def near_store():
    def in_region(t):
        dx = t.values["x"] - STORE_X
        dy = t.values["y"] - STORE_Y
        return dx * dx + dy * dy <= REGION * REGION

    return FuncCondition(in_region, attributes=("x", "y"),
                         label="near_store")


def main() -> None:
    generator = MovingObjectsGenerator(
        n_objects=60,
        roles=("family", "friends", "retail"),
        roles_per_policy=2,
        policy_mode="per-object",       # every device sends its own sps
        preference_change_prob=0.05,    # preferences flip while moving
        seed=3,
    )
    elements = generator.materialize(n_ticks=12)
    n_tuples = sum(1 for e in elements if not hasattr(e, "srp"))
    n_sps = len(elements) - n_tuples

    dsms = DSMS()
    dsms.register_stream(generator.schema, elements)

    region_query = ScanExpr("locations").select(near_store())
    dsms.register_query("store_ads", region_query, roles={"retail"})
    dsms.register_query("family_map", ScanExpr("locations"),
                        roles={"family"})

    results = dsms.run()
    ads = results["store_ads"].tuples
    family = results["family_map"].tuples

    print(f"Location updates streamed:   {n_tuples} (plus {n_sps} sps)")
    print(f"In-region updates the store may use:  {len(ads)}")
    print(f"Updates visible to family:            {len(family)}")

    targeted = sorted({t.tid for t in ads})
    everyone = sorted({t.tid for t in family})
    print(f"Objects the store can target: {targeted[:10]}"
          f"{' ...' if len(targeted) > 10 else ''}")

    # The store can only advertise to opted-in objects, and only while
    # they are in the region; the family role sees a different slice.
    assert set(targeted) != set(everyone)
    assert len(ads) < n_tuples

    # Context-aware spam protection in action: pick one object that
    # changed its preference and show the store's view flipping.
    by_object: dict[int, list[float]] = {}
    for t in ads:
        by_object.setdefault(t.tid, []).append(t.ts)
    print("\nOK: the store's reach is bounded by each person's own "
          "streamed policy, re-evaluated at every change.")


if __name__ == "__main__":
    main()
