"""Quickstart: security punctuations in five minutes.

Builds a tiny punctuated stream, registers two continuous queries under
different roles, and shows that each query sees exactly the tuples its
role is authorized for — with the policy changing mid-stream.

Run::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import DSMS, DataTuple, ScanExpr, SecurityPunctuation
from repro.stream import StreamSchema


def main() -> None:
    # 1. A stream of heart-rate readings.  Security punctuations are
    #    interleaved with the data: each sp states who may access the
    #    tuples that follow it.
    schema = StreamSchema("HeartRate", ("patient_id", "beats_per_min"),
                          key="patient_id")
    elements = [
        # The patient's device initially allows doctor (D) and
        # nurse-on-duty (ND) to see the readings...
        SecurityPunctuation.grant(["D", "ND"], ts=0.0, provider="patient"),
        DataTuple("HeartRate", 120, {"patient_id": 120,
                                     "beats_per_min": 72}, 1.0),
        DataTuple("HeartRate", 120, {"patient_id": 120,
                                     "beats_per_min": 75}, 2.0),
        # ... then revokes the nurse and admits the cardiologist (C).
        SecurityPunctuation.grant(["D", "C"], ts=3.0, provider="patient"),
        DataTuple("HeartRate", 120, {"patient_id": 120,
                                     "beats_per_min": 148}, 4.0),
    ]

    # 2. A DSMS with two continuous queries.  Each query inherits the
    #    roles of the subject who registered it; a Security Shield
    #    enforces them against the streaming sps.
    dsms = DSMS()
    dsms.register_stream(schema, elements)
    dsms.register_query("nurse_view", ScanExpr("HeartRate"), roles={"ND"})
    dsms.register_query("cardio_view", ScanExpr("HeartRate"), roles={"C"})

    # 3. Run and compare.
    results = dsms.run()
    print("Nurse sees:       ",
          [t.values["beats_per_min"] for t in results["nurse_view"].tuples])
    print("Cardiologist sees:",
          [t.values["beats_per_min"] for t in results["cardio_view"].tuples])

    # The nurse saw only the readings before the policy change; the
    # cardiologist only those after — no server-side policy store was
    # ever consulted, the stream itself carried the access control.
    assert [t.values["beats_per_min"]
            for t in results["nurse_view"].tuples] == [72, 75]
    assert [t.values["beats_per_min"]
            for t in results["cardio_view"].tuples] == [148]
    print("OK: enforcement followed the in-stream policy change.")


if __name__ == "__main__":
    main()
