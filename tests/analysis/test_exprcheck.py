"""Logical-plan analysis: SEC001/SEC002/SEC003 over expressions."""

from repro.algebra.expressions import (DupElimExpr, GroupByExpr, JoinExpr,
                                       ProjectExpr, ScanExpr, ShieldExpr)
from repro.analysis.exprcheck import analyze_expr
from repro.analysis.lattice import StreamFacts
from repro.core.patterns import literal
from repro.core.punctuation import SecurityPunctuation
from repro.stream.tuples import DataTuple


def shield(expr, *rolesets):
    return ShieldExpr(expr, tuple(frozenset(r) for r in rolesets))


class TestSEC001:
    def test_unshielded_plan_is_error(self):
        report = analyze_expr(ScanExpr("s"))
        (diag,) = report.by_code("SEC001")
        assert diag.severity.label == "error"
        assert not report.ok

    def test_delivery_assumption_downgrades_to_warning(self):
        report = analyze_expr(ScanExpr("s"), assume_delivery=True)
        (diag,) = report.by_code("SEC001")
        assert diag.severity.label == "warning"
        assert report.ok

    def test_shielded_plan_is_clean(self):
        report = analyze_expr(shield(ScanExpr("s"), {"R1"}))
        assert report.codes() == set()

    def test_one_unshielded_join_branch_is_flagged(self):
        # The shield guards only the left route; the right route
        # reaches the sink unshielded, so the meet loses the guarantee.
        expr = JoinExpr(shield(ScanExpr("l"), {"R1"}), ScanExpr("r"),
                        "k", "k", 10.0)
        report = analyze_expr(expr)
        assert "SEC001" in report.codes()

    def test_both_branches_shielded_is_clean(self):
        expr = JoinExpr(shield(ScanExpr("l"), {"R1"}),
                        shield(ScanExpr("r"), {"R1"}), "k", "k", 10.0)
        assert analyze_expr(expr).codes() == set()

    def test_roles_sharpen_the_fixit(self):
        report = analyze_expr(ScanExpr("s"), roles=["R1"])
        (diag,) = report.by_code("SEC001")
        assert "R1" in (diag.fixit or "")


def _attr_scoped_facts():
    elements = [
        SecurityPunctuation.grant(["R1"], 0.0, provider="s",
                                  attribute=literal("a")),
        DataTuple("s", 0, {"a": 1, "b": 2}, 1.0),
    ]
    return StreamFacts.from_elements({"s": elements}, {"s": ("a", "b")})


class TestSEC002:
    def test_project_pruning_governed_attribute(self):
        expr = shield(ProjectExpr(ScanExpr("s"), ("b",)), {"R1"})
        report = analyze_expr(expr, facts=_attr_scoped_facts())
        (diag,) = report.by_code("SEC002")
        assert "'a'" in diag.message or "['a']" in diag.message
        assert report.ok  # warning, not error

    def test_groupby_pruning_governed_attribute(self):
        expr = shield(GroupByExpr(ScanExpr("s"), None, "sum", "b", 5.0),
                      {"R1"})
        report = analyze_expr(expr, facts=_attr_scoped_facts())
        assert "SEC002" in report.codes()

    def test_keeping_the_attribute_is_clean(self):
        expr = shield(ProjectExpr(ScanExpr("s"), ("a",)), {"R1"})
        report = analyze_expr(expr, facts=_attr_scoped_facts())
        assert "SEC002" not in report.codes()

    def test_unknown_facts_stay_silent(self):
        expr = shield(ProjectExpr(ScanExpr("s"), ("b",)), {"R1"})
        report = analyze_expr(expr, facts=StreamFacts.unknown())
        assert "SEC002" not in report.codes()


class TestSEC003:
    def test_dominated_downstream_shield(self):
        expr = shield(shield(ScanExpr("s"), {"R1"}), {"R1", "R2"})
        report = analyze_expr(expr)
        (diag,) = report.by_code("SEC003")
        assert "dominated" in diag.message

    def test_narrower_downstream_shield_is_useful(self):
        expr = shield(shield(ScanExpr("s"), {"R1", "R2"}), {"R1"})
        assert "SEC003" not in analyze_expr(expr).codes()

    def test_partially_shielded_merge_not_dominated(self):
        # Only one branch crossed {R1}: the root shield still guards
        # the other route and is not redundant.
        expr = shield(
            JoinExpr(shield(ScanExpr("l"), {"R1"}), ScanExpr("r"),
                     "k", "k", 10.0),
            {"R1"})
        assert "SEC003" not in analyze_expr(expr).codes()

    def test_dupelim_does_not_clear_domination(self):
        expr = shield(DupElimExpr(shield(ScanExpr("s"), {"R1"}),
                                  5.0, None),
                      {"R1", "R2"})
        assert "SEC003" in analyze_expr(expr).codes()
