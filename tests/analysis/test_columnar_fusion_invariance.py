"""Static analysis must be blind to the columnar tier.

Fusion is strictly an executor concern: :func:`build_fused_chains`
never rewrites the plan DAG, so ``repro.analysis`` (SEC001–SEC005 over
the compiled plan) must report byte-identical diagnostics whether or
not the fused columnar kernels will execute the chain.  This is the
regression gate for that invariant — if fusion ever starts splicing or
replacing plan nodes, these tests fail before any security-analysis
coverage silently degrades.
"""

from repro.algebra.expressions import ScanExpr, ShieldExpr
from repro.analysis.plancheck import analyze_plan
from repro.core.punctuation import SecurityPunctuation
from repro.engine.dsms import DSMS
from repro.engine.executor import Executor
from repro.engine.fusion import build_fused_chains
from repro.operators.conditions import Comparison
from repro.stream.schema import StreamSchema
from repro.stream.source import ListSource
from repro.stream.tuples import DataTuple

SCHEMA = StreamSchema("s", ("a", "b"))


def make_dsms():
    dsms = DSMS()
    dsms.register_stream(SCHEMA, [
        SecurityPunctuation.grant(["R1"], 0.0, provider="s"),
        DataTuple("s", 0, {"a": 1, "b": 2}, 1.0),
    ])
    return dsms


def fused_plan():
    """A plan whose σ→π→ψ→delivery-ψ prefix qualifies for fusion."""
    dsms = make_dsms()
    expr = (ScanExpr("s")
            .select(Comparison("a", ">", 0))
            .project(["a"]))
    dsms.register_query("q", expr, roles={"R1"})
    plan, _sinks = dsms.build_plan()
    return plan


def _plan_snapshot(plan):
    """Structural fingerprint of the DAG: nodes, operators, edges."""
    return [
        (node.node_id, type(node.operator).__name__, node.operator.name,
         tuple((child.node_id, port) for child, port in node.downstream))
        for node in plan.topological()
    ]


def test_fusion_detection_leaves_plan_untouched():
    plan = fused_plan()
    before = _plan_snapshot(plan)
    chains = build_fused_chains(plan)
    assert chains, "precondition: the chain must actually fuse"
    assert _plan_snapshot(plan) == before


def test_executor_construction_leaves_plan_untouched():
    plan = fused_plan()
    before = _plan_snapshot(plan)
    Executor(plan, [ListSource(SCHEMA, [])], columnar=True)
    assert _plan_snapshot(plan) == before


def test_diagnostics_identical_with_and_without_fusion():
    plan = fused_plan()
    baseline = [str(d) for d in analyze_plan(plan)]
    assert build_fused_chains(plan)
    Executor(plan, [ListSource(SCHEMA, [])], columnar=True)
    assert [str(d) for d in analyze_plan(plan)] == baseline


def test_sec_coverage_on_flawed_plan_unchanged_by_fusion():
    """A plan with real findings keeps them after fusion detection."""
    dsms = make_dsms()
    # Dominated in-plan shield (SEC003 territory) under a fusable
    # select/project chain, delivery shield only for the query.
    expr = ShieldExpr(ShieldExpr(ScanExpr("s"), frozenset({"R1"})),
                      frozenset({"R1", "R2"}))
    dsms.register_query("q", expr.select(Comparison("a", ">", 0)),
                        roles={"R1"}, auto_shield=False)
    plan, _sinks = dsms.build_plan()
    before = analyze_plan(plan)
    assert before.codes(), "precondition: the flawed plan must report"
    chains = build_fused_chains(plan)
    assert chains, "precondition: part of the plan must fuse"
    after = analyze_plan(plan)
    assert after.codes() == before.codes()
    assert [str(d) for d in after] == [str(d) for d in before]
