"""Tests for the static security-plan analyzer (repro.analysis)."""
