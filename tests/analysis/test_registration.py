"""DSMS registration-time analysis: analyze="off"/"warn"/"strict"."""

import warnings

import pytest

from repro.algebra.expressions import ScanExpr, ShieldExpr
from repro.core.punctuation import SecurityPunctuation
from repro.engine.dsms import DSMS
from repro.errors import (PlanAnalysisError, PlanAnalysisWarning,
                          QueryError)
from repro.stream.schema import StreamSchema
from repro.stream.tuples import DataTuple


def make_dsms():
    dsms = DSMS()
    dsms.register_stream(StreamSchema("s", ("a",)), [
        SecurityPunctuation.grant(["R1"], 0.0, provider="s"),
        DataTuple("s", 0, {"a": 1}, 1.0),
    ])
    return dsms


class TestStrictMode:
    def test_rejects_unshielded_plan_before_any_tuple(self):
        dsms = make_dsms()
        with pytest.raises(PlanAnalysisError) as excinfo:
            dsms.register_query("q", ScanExpr("s"), roles={"R1"},
                                auto_shield=False, analyze="strict")
        # Rejection is pre-registration and pre-execution.
        assert "q" not in dsms.queries
        report = excinfo.value.report
        assert report is not None
        assert "SEC001" in report.codes()

    def test_accepts_shielded_plan_and_runs(self):
        dsms = make_dsms()
        dsms.register_query("q", ScanExpr("s"), roles={"R1"},
                            analyze="strict")
        results = dsms.run()
        assert len(results["q"].tuples) == 1

    def test_accepts_explicit_shield_without_auto(self):
        dsms = make_dsms()
        expr = ShieldExpr(ScanExpr("s"), frozenset({"R1"}))
        dsms.register_query("q", expr, roles={"R1"},
                            auto_shield=False, analyze="strict")
        assert len(dsms.run()["q"].tuples) == 1

    def test_warning_severity_findings_do_not_raise(self):
        # A dominated shield is warning-severity: strict mode still
        # registers and runs the query (errors only).
        dsms = make_dsms()
        expr = ShieldExpr(ShieldExpr(ScanExpr("s"), frozenset({"R1"})),
                          frozenset({"R1", "R2"}))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PlanAnalysisWarning)
            dsms.register_query("q", expr, roles={"R1"},
                                analyze="strict")
            assert len(dsms.run()["q"].tuples) == 1


class TestWarnMode:
    def test_unshielded_plan_warns_but_registers(self):
        dsms = make_dsms()
        with pytest.warns(PlanAnalysisWarning, match="SEC001"):
            dsms.register_query("q", ScanExpr("s"), roles={"R1"},
                                auto_shield=False, analyze="warn")
        assert "q" in dsms.queries

    def test_build_plan_reanalyzes_compiled_dag(self):
        dsms = make_dsms()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PlanAnalysisWarning)
            dsms.register_query("q", ScanExpr("s"), roles={"R1"},
                                auto_shield=False, analyze="warn")
        with pytest.warns(PlanAnalysisWarning, match="compiled plan"):
            dsms.build_plan()

    def test_clean_plan_is_silent(self):
        dsms = make_dsms()
        with warnings.catch_warnings():
            warnings.simplefilter("error", PlanAnalysisWarning)
            dsms.register_query("q", ScanExpr("s"), roles={"R1"},
                                analyze="warn")
            dsms.run()


class TestModeHandling:
    def test_off_is_the_default_and_silent(self):
        dsms = make_dsms()
        with warnings.catch_warnings():
            warnings.simplefilter("error", PlanAnalysisWarning)
            dsms.register_query("q", ScanExpr("s"), roles={"R1"},
                                auto_shield=False)
            dsms.run()

    def test_invalid_mode_rejected(self):
        dsms = make_dsms()
        with pytest.raises(QueryError, match="analyze"):
            dsms.register_query("q", ScanExpr("s"), roles={"R1"},
                                analyze="paranoid")

    def test_mode_survives_with_expr(self):
        from repro.engine.query import ContinuousQuery

        query = ContinuousQuery("q", ScanExpr("s"), {"R1"},
                                analyze="strict")
        clone = query.with_expr(query.expr)
        assert clone.analyze == "strict"
