"""The ``repro lint`` CLI: formats, exit codes, strict escalation."""

import json
from pathlib import Path

import pytest

from repro.cli import main

CASES = Path(__file__).resolve().parent.parent / "verify" / "cases"
EXAMPLES = (Path(__file__).resolve().parent.parent.parent
            / "examples" / "plans")


@pytest.fixture
def bad_spec(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"op": "scan", "stream": "s"}))
    return str(path)


class TestTextFormat:
    def test_clean_file_exits_zero(self, capsys):
        code = main(["lint", str(EXAMPLES / "shielded-join.json")])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 error(s), 0 warning(s)" in out

    def test_warning_file_exits_zero(self, capsys):
        code = main(["lint",
                     str(CASES / "dupelim-shield-commute.json")])
        out = capsys.readouterr().out
        assert code == 0
        assert "SEC004 warning" in out
        assert "dupelim-shield-commute.json: " in out

    def test_error_file_exits_one(self, bad_spec, capsys):
        code = main(["lint", bad_spec])
        out = capsys.readouterr().out
        assert code == 1
        assert "SEC001 error" in out

    def test_multiple_files_aggregated(self, capsys):
        code = main(["lint",
                     str(CASES / "dupelim-shield-commute.json"),
                     str(CASES / "project-prune-widening.json")])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 file(s) checked" in out
        assert "SEC004" in out and "SEC002" in out


class TestStrict:
    def test_strict_escalates_warnings(self, capsys):
        code = main(["lint", "--strict",
                     str(CASES / "dupelim-shield-commute.json")])
        assert code == 1

    def test_strict_keeps_clean_files_green(self, capsys):
        code = main(["lint", "--strict",
                     str(EXAMPLES / "shielded-join.json"),
                     str(EXAMPLES / "shielded-select.json")])
        assert code == 0


class TestJsonFormat:
    def test_json_payload_shape(self, bad_spec, capsys):
        code = main(["lint", "--format", "json", bad_spec,
                     str(CASES / "project-prune-widening.json")])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["errors"] == 1
        assert set(payload["files"]) == {
            bad_spec, str(CASES / "project-prune-widening.json")}
        spec_report = payload["files"][bad_spec]
        (diag,) = [d for d in spec_report["diagnostics"]
                   if d["code"] == "SEC001"]
        assert diag["severity"] == "error"
        assert "fixit" in diag

    def test_json_clean(self, capsys):
        code = main(["lint", "--format", "json",
                     str(EXAMPLES / "shielded-select.json")])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["errors"] == 0 and payload["warnings"] == 0
