"""The analyzer flags the committed reproducer corpus statically.

PR 4's differential harness found these bug classes *dynamically* and
shrank them into `tests/verify/cases/`.  The static analyzer must now
flag each one — with the right SEC code — without running a single
tuple, while the clean example plans and every generated scenario stay
free of error-severity findings (no false-positive rejections).
"""

from pathlib import Path

import pytest

from repro.analysis.speclint import lint_file, lint_scenario_object
from repro.verify.generator import generate_scenario

CASES = Path(__file__).resolve().parent.parent / "verify" / "cases"
EXAMPLES = (Path(__file__).resolve().parent.parent.parent
            / "examples" / "plans")


class TestCommittedCases:
    def test_dupelim_shield_commute_flagged_sec004(self):
        report = lint_file(str(CASES / "dupelim-shield-commute.json"))
        (diag,) = report.by_code("SEC004")
        assert diag.severity.label == "warning"
        assert "commute-dupelim-shield" in diag.message
        assert report.ok  # hazard reported, scenario still runnable

    def test_project_prune_widening_flagged_sec002(self):
        report = lint_file(str(CASES / "project-prune-widening.json"))
        (diag,) = report.by_code("SEC002")
        assert diag.severity.label == "warning"
        assert "a0" in diag.message
        assert report.ok

    def test_baseline_negative_sp_noted_sec005(self):
        report = lint_file(str(CASES / "baseline-negative-sp.json"))
        assert any(d.code == "SEC005" and d.severity.label == "info"
                   for d in report)
        assert report.ok

    def test_every_committed_case_is_error_free(self):
        # The corpus is oracle-sound by construction; an error-severity
        # finding would be an analyzer false positive.
        for case in sorted(CASES.glob("*.json")):
            report = lint_file(str(case))
            assert report.ok, (
                f"{case.name}: {[str(d) for d in report.errors]}")


class TestExamplePlans:
    def test_examples_exist(self):
        assert sorted(p.name for p in EXAMPLES.glob("*.json")) == [
            "shielded-join.json", "shielded-select.json",
            "shielded-udf-select.json"]

    @pytest.mark.parametrize("name", ["shielded-join.json",
                                      "shielded-select.json",
                                      "shielded-udf-select.json"])
    def test_fully_shielded_examples_lint_clean(self, name):
        report = lint_file(str(EXAMPLES / name))
        assert len(report) == 0, [str(d) for d in report]


class TestGeneratedScenarios:
    def test_no_false_positives_across_seeds(self):
        checked = 0
        for seed in (3, 11, 42):
            for index in range(8):
                scenario = generate_scenario(seed, index)
                report = lint_scenario_object(scenario)
                assert report.ok, (
                    f"seed={seed} index={index}: "
                    f"{[str(d) for d in report.errors]}")
                checked += 1
        assert checked == 24
