"""Compiled-DAG analysis: delivery shields, sinks, shared subplans."""

from repro.algebra.expressions import ScanExpr, ShieldExpr
from repro.analysis.plancheck import analyze_plan
from repro.core.punctuation import SecurityPunctuation
from repro.engine.dsms import DSMS
from repro.stream.schema import StreamSchema
from repro.stream.tuples import DataTuple


def make_dsms():
    dsms = DSMS()
    dsms.register_stream(StreamSchema("s", ("a",)), [
        SecurityPunctuation.grant(["R1"], 0.0, provider="s"),
        DataTuple("s", 0, {"a": 1}, 1.0),
    ])
    return dsms


class TestAnalyzePlan:
    def test_auto_shielded_plan_is_clean(self):
        dsms = make_dsms()
        dsms.register_query("q", ScanExpr("s"), roles={"R1"})
        plan, _sinks = dsms.build_plan()
        assert analyze_plan(plan).codes() == set()

    def test_delivery_only_plan_warns_sec001(self):
        dsms = make_dsms()
        dsms.register_query("q", ScanExpr("s"), roles={"R1"},
                            auto_shield=False)
        plan, _sinks = dsms.build_plan()
        report = analyze_plan(plan)
        (diag,) = report.by_code("SEC001")
        assert diag.severity.label == "warning"
        assert report.ok

    def test_delivery_shield_is_exempt_from_sec003(self):
        # The delivery shield repeats the root shield's predicate by
        # design; it must not be reported as redundant.
        dsms = make_dsms()
        dsms.register_query("q", ScanExpr("s"), roles={"R1"})
        plan, _sinks = dsms.build_plan()
        assert "SEC003" not in analyze_plan(plan).codes()

    def test_dominated_inplan_shield_flagged(self):
        dsms = make_dsms()
        expr = ShieldExpr(ShieldExpr(ScanExpr("s"), frozenset({"R1"})),
                          frozenset({"R1", "R2"}))
        dsms.register_query("q", expr, roles={"R1"})
        plan, _sinks = dsms.build_plan()
        report = analyze_plan(plan)
        (diag,) = report.by_code("SEC003")
        assert diag.severity.label == "warning"

    def test_shared_subplan_analyzed_once_per_route(self):
        # Two queries over the same scan: the scan node fans out, and
        # each query's route must carry its own shield guarantee.
        dsms = make_dsms()
        dsms.register_query("q1", ScanExpr("s"), roles={"R1"})
        dsms.register_query("q2", ScanExpr("s"), roles={"R2"},
                            auto_shield=False)
        plan, _sinks = dsms.build_plan()
        report = analyze_plan(plan)
        # Only q2's sink lacks an in-plan shield.
        sec001 = report.by_code("SEC001")
        assert len(sec001) == 1
        assert report.ok
