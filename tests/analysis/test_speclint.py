"""Spec/scenario linting: SEC005 structure checks and file handling."""

import json

from repro.analysis.speclint import (lint_file, lint_scenario,
                                     lint_spec)


def scan(stream="s"):
    return {"op": "scan", "stream": stream}


def scenario(queries, streams=None):
    if streams is None:
        streams = {"s": {"attributes": ["a"], "elements": []}}
    return {"streams": streams, "queries": queries}


class TestSpecStructure:
    def test_unknown_operator(self):
        report = lint_spec({"op": "scann", "stream": "s"})
        (diag,) = report.by_code("SEC005")
        assert diag.severity.label == "error"
        assert "scann" in diag.message

    def test_missing_required_field(self):
        report = lint_spec({"op": "join", "left": scan("l"),
                            "right": scan("r"), "left_on": "k",
                            "window": 5.0})
        assert any("right_on" in d.message
                   for d in report.by_code("SEC005"))

    def test_not_an_object(self):
        report = lint_spec(["scan"])
        assert not report.ok

    def test_empty_shield_conjunct_is_error(self):
        report = lint_spec({"op": "shield", "predicates": [["R1"], []],
                            "input": scan()})
        assert any("conjunct" in d.message
                   for d in report.by_code("SEC005"))

    def test_scan_of_undeclared_stream(self):
        report = lint_scenario(scenario(
            {"q": {"roles": ["R1"],
                   "plan": {"op": "shield", "predicates": [["R1"]],
                            "input": scan("ghost")}}}))
        assert any("ghost" in d.message
                   for d in report.by_code("SEC005"))

    def test_projection_of_unknown_attribute(self):
        report = lint_scenario(scenario(
            {"q": {"roles": ["R1"],
                   "plan": {"op": "shield", "predicates": [["R1"]],
                            "input": {"op": "project",
                                      "attributes": ["ghost"],
                                      "input": scan()}}}}))
        assert any("ghost" in d.message
                   for d in report.by_code("SEC005"))

    def test_join_key_from_wrong_side(self):
        streams = {"l": {"attributes": ["k"], "elements": []},
                   "r": {"attributes": ["j"], "elements": []}}
        report = lint_scenario(scenario(
            {"q": {"roles": ["R1"],
                   "plan": {"op": "shield", "predicates": [["R1"]],
                            "input": {"op": "join", "left": scan("l"),
                                      "right": scan("r"),
                                      "left_on": "nope",
                                      "right_on": "j",
                                      "window": 5.0}}}},
            streams=streams))
        assert any("left_on" in d.message
                   for d in report.by_code("SEC005"))


class TestScenarioLint:
    def test_query_without_roles(self):
        report = lint_scenario(scenario(
            {"q": {"roles": [], "plan": scan()}}))
        assert any("roles" in d.message
                   for d in report.by_code("SEC005"))

    def test_query_without_plan(self):
        report = lint_scenario(scenario({"q": {"roles": ["R1"]}}))
        assert not report.ok

    def test_delivery_backstop_assumed_for_scenarios(self):
        # Scenario queries always get the DSMS delivery shield, so a
        # bare scan is a warning, not an error.
        report = lint_scenario(scenario(
            {"q": {"roles": ["R1"], "plan": scan()}}))
        assert report.ok
        assert "SEC001" in report.codes()

    def test_non_object_scenario(self):
        assert not lint_scenario([1, 2]).ok


class TestLintFile:
    def test_missing_file(self, tmp_path):
        report = lint_file(str(tmp_path / "nope.json"))
        assert not report.ok

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        assert not lint_file(str(path)).ok

    def test_bare_spec_dispatch(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(
            {"op": "shield", "predicates": [["R1"]], "input": scan()}))
        report = lint_file(str(path))
        assert report.ok
        assert "SEC001" not in report.codes()

    def test_unshielded_bare_spec_is_error(self, tmp_path):
        # No scenario context means no delivery backstop to assume.
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(scan()))
        report = lint_file(str(path))
        assert not report.ok
        assert "SEC001" in report.codes()
