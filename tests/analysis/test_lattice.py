"""The dataflow lattice: path states, meets, dominance, stream facts."""

from repro.analysis.lattice import (PathState, StreamFacts, dominates,
                                    join_states)
from repro.core.patterns import literal
from repro.core.punctuation import SecurityPunctuation
from repro.stream.tuples import DataTuple


class TestPathState:
    def test_source_state(self):
        state = PathState.source("s", ("a", "b"))
        assert state.streams == {"s"}
        assert state.attrs == {"a", "b"}
        assert not state.shielded
        assert not state.delivery

    def test_shield_and_project(self):
        state = PathState.source("s", ("a", "b"))
        state = state.with_shield([frozenset({"R1"})])
        assert state.shielded
        state = state.project(["a"])
        assert state.attrs == {"a"}
        assert state.pruned == {"b"}

    def test_unknown_attrs_prune_nothing(self):
        state = PathState.source("s", None).project(["a"])
        assert state.attrs == {"a"}
        assert state.pruned == frozenset()


class TestJoinStates:
    def test_meet_is_must_analysis(self):
        left = PathState.source("l", ("a",)).with_shield(
            [frozenset({"R1"})]).with_delivery()
        right = PathState.source("r", ("b",))
        met = join_states(left, right)
        # A guarantee survives only if both routes provide it.
        assert not met.shielded
        assert not met.delivery
        assert met.streams == {"l", "r"}
        assert met.attrs == {"a", "b"}

    def test_shared_shield_survives(self):
        conjunct = frozenset({"R1"})
        left = PathState.source("l", None).with_shield([conjunct])
        right = PathState.source("r", None).with_shield([conjunct])
        assert join_states(left, right).shields == {conjunct}

    def test_pruned_unions(self):
        left = PathState.source("l", ("a", "b")).project(["a"])
        right = PathState.source("r", ("c", "d")).project(["c"])
        assert join_states(left, right).pruned == {"b", "d"}

    def test_unknown_attrs_poison(self):
        left = PathState.source("l", ("a",))
        right = PathState.source("r", None)
        assert join_states(left, right).attrs is None


class TestDominates:
    def test_subset_conjunct_implies(self):
        up = [frozenset({"R1"})]
        assert dominates(up, [frozenset({"R1", "R2"})])
        assert dominates(up, [frozenset({"R1"})])

    def test_wider_upstream_does_not_imply(self):
        up = [frozenset({"R1", "R2"})]
        assert not dominates(up, [frozenset({"R1"})])

    def test_every_conjunct_must_be_implied(self):
        up = [frozenset({"R1"})]
        assert not dominates(
            up, [frozenset({"R1", "R2"}), frozenset({"R3"})])

    def test_no_upstream_never_dominates(self):
        assert not dominates([], [frozenset({"R1"})])


def _sp(roles, ts, **kw):
    return SecurityPunctuation.grant(roles, ts, provider="s", **kw)


class TestStreamFacts:
    def test_unknown_answers_none(self):
        facts = StreamFacts.unknown()
        assert facts.governed_attributes({"s"}) is None
        assert facts.heterogeneous({"s"}) is None
        assert facts.has_negative({"s"}) is None

    def test_uniform_stream(self):
        elements = [_sp(["R1"], 0.0),
                    DataTuple("s", 0, {"a": 1}, 1.0)]
        facts = StreamFacts.from_elements({"s": elements},
                                          {"s": ("a",)})
        assert facts.known
        assert facts.heterogeneous({"s"}) is False
        assert facts.governed_attributes({"s"}) == frozenset()
        assert facts.schema_of("s") == ("a",)

    def test_heterogeneous_batches_detected(self):
        elements = [_sp(["R1"], 0.0),
                    DataTuple("s", 0, {"a": 1}, 1.0),
                    _sp(["R2"], 2.0),
                    DataTuple("s", 1, {"a": 2}, 3.0)]
        facts = StreamFacts.from_elements({"s": elements}, {"s": ("a",)})
        assert facts.heterogeneous({"s"}) is True

    def test_attribute_scoped_sps_tracked(self):
        elements = [_sp(["R1"], 0.0, attribute=literal("a")),
                    DataTuple("s", 0, {"a": 1, "b": 2}, 1.0)]
        facts = StreamFacts.from_elements({"s": elements},
                                          {"s": ("a", "b")})
        assert facts.governed_attributes({"s"}) == {"a"}
        assert facts.governed_attributes({"other"}) == frozenset()

    def test_negative_sps_tracked(self):
        elements = [SecurityPunctuation.deny(["R1"], 0.0, provider="s"),
                    DataTuple("s", 0, {"a": 1}, 1.0)]
        facts = StreamFacts.from_elements({"s": elements}, {"s": ("a",)})
        assert facts.has_negative({"s"}) is True
