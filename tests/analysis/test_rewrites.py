"""Rewrite-precondition proofs: fail-closed guards and SEC004 sites."""

from repro.algebra.expressions import (DupElimExpr, GroupByExpr, JoinExpr,
                                       ProjectExpr, ScanExpr, ShieldExpr)
from repro.algebra.rules import (ALL_RULES, RewriteContext,
                                 equivalent_forms)
from repro.analysis.lattice import StreamFacts
from repro.analysis.rewrites import (Proof, hazard_absent, hazard_sites,
                                     precondition_for, proof_for,
                                     prove_absent, refusal_reason,
                                     refused_rewrites)
from repro.core.patterns import literal
from repro.core.punctuation import SecurityPunctuation
from repro.stream.tuples import DataTuple


class TestProofs:
    def test_three_valued_interpretation(self):
        assert prove_absent(False) is Proof.PROVEN
        assert prove_absent(True) is Proof.REFUTED
        assert prove_absent(None) is Proof.UNKNOWN

    def test_only_proven_admits(self):
        assert hazard_absent(False)
        assert not hazard_absent(True)
        assert not hazard_absent(None)

    def test_every_guarded_rule_has_a_precondition(self):
        for rule in ("commute-project-shield", "commute-dupelim-shield",
                     "commute-groupby-shield", "associate-join"):
            precondition = precondition_for(rule)
            assert precondition is not None
            assert hasattr(RewriteContext(), precondition.flag)

    def test_unguarded_rules_are_proven(self):
        ctx = RewriteContext()
        assert proof_for("split-shield", ctx) is Proof.PROVEN
        assert refusal_reason("split-shield", ctx) is None

    def test_refusal_reason_states_the_proof_state(self):
        refuted = RewriteContext(strict_join_windows=True)
        unknown = RewriteContext()
        assert "proven present" in refusal_reason("associate-join",
                                                  refuted)
        assert "not provable" in refusal_reason("associate-join",
                                                unknown)


class TestFailClosedDefault:
    """The adversarial-context regression: a default (all-unknown)
    context must refuse every guarded rewrite — assuming safety from
    ignorance is exactly the unsoundness the differ once found."""

    def guarded_exprs(self):
        shielded = ShieldExpr(ScanExpr("s"), frozenset({"R1"}))
        return [
            ShieldExpr(ProjectExpr(ScanExpr("s"), ("a",)),
                       frozenset({"R1"})),
            ProjectExpr(shielded, ("a",)),
            ShieldExpr(DupElimExpr(ScanExpr("s"), 5.0, None),
                       frozenset({"R1"})),
            DupElimExpr(shielded, 5.0, None),
            ShieldExpr(GroupByExpr(ScanExpr("s"), None, "sum", "a", 5.0),
                       frozenset({"R1"})),
            GroupByExpr(shielded, None, "sum", "a", 5.0),
            JoinExpr(JoinExpr(ScanExpr("a"), ScanExpr("b"),
                              "k", "k", 5.0),
                     ScanExpr("c"), "k", "k", 5.0),
        ]

    def test_default_context_refuses_all_guarded_rules(self):
        ctx = RewriteContext(policy_streams=frozenset({"s", "a", "b",
                                                       "c"}))
        guarded = {"commute-project-shield", "commute-dupelim-shield",
                   "commute-groupby-shield", "associate-join"}
        for expr in self.guarded_exprs():
            for rule in ALL_RULES:
                if rule.name in guarded:
                    assert not rule.matches(expr, ctx), (
                        f"{rule.name} admitted under an unknown "
                        f"precondition on {expr!r}")

    def test_proven_absent_readmits(self):
        ctx = RewriteContext(
            policy_streams=frozenset({"s", "a", "b", "c"}),
            attribute_policies_possible=False,
            heterogeneous_policies_possible=False,
            strict_join_windows=False)
        admitted = set()
        for expr in self.guarded_exprs():
            for rule in ALL_RULES:
                if rule.matches(expr, ctx):
                    admitted.add(rule.name)
        assert {"commute-project-shield", "commute-dupelim-shield",
                "commute-groupby-shield",
                "associate-join"} <= admitted

    def test_equivalent_forms_honours_the_guards(self):
        expr = ShieldExpr(DupElimExpr(ScanExpr("s"), 5.0, None),
                          frozenset({"R1"}))
        closed = equivalent_forms(expr, RewriteContext())
        opened = equivalent_forms(
            expr, RewriteContext(heterogeneous_policies_possible=False))
        commuted = DupElimExpr(
            ShieldExpr(ScanExpr("s"), frozenset({"R1"})), 5.0, None)
        assert commuted not in closed
        assert commuted in opened


class TestRefusedRewrites:
    def test_unknown_context_reports_refusals(self):
        expr = ShieldExpr(DupElimExpr(ScanExpr("s"), 5.0, None),
                          frozenset({"R1"}))
        diagnostics = refused_rewrites(expr, RewriteContext())
        assert any(d.code == "SEC004" for d in diagnostics)
        assert all(d.severity.label == "info" for d in diagnostics)

    def test_proven_context_reports_nothing(self):
        expr = ShieldExpr(DupElimExpr(ScanExpr("s"), 5.0, None),
                          frozenset({"R1"}))
        ctx = RewriteContext(heterogeneous_policies_possible=False)
        assert refused_rewrites(expr, ctx) == []

    def test_unguarded_plan_reports_nothing(self):
        expr = ShieldExpr(ScanExpr("s"), frozenset({"R1"}))
        assert refused_rewrites(expr, RewriteContext()) == []


def _hetero_facts():
    elements = [
        SecurityPunctuation.grant(["R1"], 0.0, provider="s"),
        DataTuple("s", 0, {"a": 1}, 1.0),
        SecurityPunctuation.grant(["R2"], 2.0, provider="s"),
        DataTuple("s", 1, {"a": 1}, 3.0),
    ]
    return StreamFacts.from_elements({"s": elements}, {"s": ("a",)})


class TestHazardSites:
    def test_heterogeneous_stream_refutes_dupelim_commute(self):
        expr = ShieldExpr(DupElimExpr(ScanExpr("s"), 5.0, None),
                          frozenset({"R1"}))
        report = hazard_sites(expr, _hetero_facts())
        (diag,) = report.by_code("SEC004")
        assert diag.severity.label == "warning"
        assert "commute-dupelim-shield" in diag.message

    def test_attribute_scoped_stream_refutes_project_commute(self):
        elements = [
            SecurityPunctuation.grant(["R1"], 0.0, provider="s",
                                      attribute=literal("a")),
            DataTuple("s", 0, {"a": 1, "b": 2}, 1.0),
        ]
        facts = StreamFacts.from_elements({"s": elements},
                                          {"s": ("a", "b")})
        expr = ProjectExpr(ShieldExpr(ScanExpr("s"), frozenset({"R1"})),
                           ("b",))
        report = hazard_sites(expr, facts)
        assert any("commute-project-shield" in d.message
                   for d in report.by_code("SEC004"))

    def test_uniform_stream_is_silent(self):
        elements = [
            SecurityPunctuation.grant(["R1"], 0.0, provider="s"),
            DataTuple("s", 0, {"a": 1}, 1.0),
        ]
        facts = StreamFacts.from_elements({"s": elements}, {"s": ("a",)})
        expr = ShieldExpr(DupElimExpr(ScanExpr("s"), 5.0, None),
                          frozenset({"R1"}))
        assert len(hazard_sites(expr, facts)) == 0

    def test_unknown_facts_are_silent(self):
        expr = ShieldExpr(DupElimExpr(ScanExpr("s"), 5.0, None),
                          frozenset({"R1"}))
        assert len(hazard_sites(expr, StreamFacts.unknown())) == 0


class TestOptimizerIntegration:
    def test_optimize_reports_refusals(self):
        from repro.algebra.optimizer import Optimizer

        expr = ShieldExpr(DupElimExpr(ScanExpr("s"), 5.0, None),
                          frozenset({"R1"}))
        result = Optimizer(context=RewriteContext(
            policy_streams=frozenset({"s"}))).optimize(expr)
        assert any(d.code == "SEC004" for d in result.refusals)
