"""Self-test for the repo's AST lint (scripts/lint_rules.py)."""

import ast
import importlib.util
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
SCRIPT = REPO / "scripts" / "lint_rules.py"

spec = importlib.util.spec_from_file_location("lint_rules", SCRIPT)
lint_rules = importlib.util.module_from_spec(spec)
spec.loader.exec_module(lint_rules)


def findings(check, source):
    return check(Path("x.py"), ast.parse(source))


class TestRL001:
    def test_id_assigned_to_tid_name(self):
        found = findings(lint_rules.check_rl001,
                         "tid = id(obj)\nself.next_tid = id(x)\n")
        assert len(found) == 2
        assert all(f.rule == "RL001" for f in found)

    def test_id_into_datatuple(self):
        found = findings(
            lint_rules.check_rl001,
            'DataTuple("s", id(x), {}, 0.0)\n')
        assert len(found) == 1

    def test_legitimate_id_uses_allowed(self):
        found = findings(lint_rules.check_rl001,
                         "oid = id(node)\nseen[id(seg)] = 1\n")
        assert found == []


class TestRL002:
    def test_wall_clock_reads(self):
        found = findings(lint_rules.check_rl002,
                         "t = time.time()\nu = time.perf_counter()\n")
        assert len(found) == 2

    def test_unseeded_module_random(self):
        found = findings(lint_rules.check_rl002,
                         "x = random.choice(xs)\n")
        assert len(found) == 1

    def test_seeded_random_allowed(self):
        found = findings(
            lint_rules.check_rl002,
            'rng = random.Random("seed")\nx = rng.choice(xs)\n')
        assert found == []

    def test_unseeded_random_instance(self):
        found = findings(lint_rules.check_rl002,
                         "rng = random.Random()\n")
        assert len(found) == 1


class TestRL003:
    def test_unaudited_drop_counter(self):
        source = (
            "class Op:\n"
            "    def f(self):\n"
            "        self.tuples_blocked += 1\n")
        found = findings(lint_rules.check_rl003, source)
        assert len(found) == 1
        assert "Op" in found[0].message

    def test_audited_drop_counter_allowed(self):
        source = (
            "class Op:\n"
            "    def f(self):\n"
            "        self.tuples_blocked += 1\n"
            "        if self.audit is not None:\n"
            "            self.audit.record('drop')\n")
        assert findings(lint_rules.check_rl003, source) == []


class TestRL004:
    def test_untraced_drop_counter(self):
        source = (
            "class Op:\n"
            "    def f(self):\n"
            "        self.tuples_blocked += 1\n"
            "        self.audit.record('drop')\n")
        found = findings(lint_rules.check_rl004, source)
        assert len(found) == 1
        assert found[0].rule == "RL004"
        assert "Op" in found[0].message

    def test_traced_drop_counter_allowed(self):
        source = (
            "class Op:\n"
            "    def f(self):\n"
            "        self.tuples_blocked += 1\n"
            "        if self._tracer is not None:\n"
            "            self._tracer.record('provenance.shield.drop', {})\n")
        assert findings(lint_rules.check_rl004, source) == []

    def test_raw_spanevent_flagged(self):
        found = findings(lint_rules.check_rl004,
                         "ev = SpanEvent('x', 1, 2, 0, 'op', {})\n")
        assert len(found) == 1
        assert "SpanEvent" in found[0].message

    def test_flat_span_call_flagged(self):
        found = findings(lint_rules.check_rl004,
                         "tracer.span('shield', {})\n")
        assert len(found) == 1
        assert ".span" in found[0].message

    def test_tracer_api_calls_allowed(self):
        source = (
            "tracer.record('provenance.shield.pass', {})\n"
            "tracer.decision('shield', 'pass', {})\n"
            "with tracer.op_span('shield'):\n"
            "    pass\n")
        assert findings(lint_rules.check_rl004, source) == []


class TestRL005:
    def test_bare_func_condition_flagged(self):
        found = findings(lint_rules.check_rl005,
                         "cond = FuncCondition(lambda t: True)\n")
        assert len(found) == 1
        assert found[0].rule == "RL005"

    def test_label_keyword_alone_still_flagged(self):
        found = findings(
            lint_rules.check_rl005,
            'cond = FuncCondition(fn, label="guard")\n')
        assert len(found) == 1

    def test_positional_attributes_allowed(self):
        found = findings(lint_rules.check_rl005,
                         'cond = FuncCondition(fn, ("x", "y"))\n')
        assert found == []

    def test_keyword_attributes_allowed(self):
        found = findings(
            lint_rules.check_rl005,
            'cond = FuncCondition(fn, attributes=["x"])\n')
        assert found == []

    def test_wrap_classmethod_not_flagged(self):
        # .wrap infers the declaration itself; the callee name differs
        # so the rule must not fire on it.
        found = findings(lint_rules.check_rl005,
                         "cond = FuncCondition.wrap(fn)\n")
        assert found == []


class TestWholeTree:
    def test_src_repro_is_clean(self):
        result = subprocess.run(
            [sys.executable, str(SCRIPT)], cwd=REPO,
            capture_output=True, text=True)
        assert result.returncode == 0, result.stdout + result.stderr

    def test_violations_fail_via_cli(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("tid = id(obj)\n")
        result = subprocess.run(
            [sys.executable, str(SCRIPT), str(bad)], cwd=REPO,
            capture_output=True, text=True)
        assert result.returncode == 1
        assert "RL001" in result.stdout
