"""UDF effect analyzer: read-sets, purity proofs, SEC006–SEC008.

The fixture callables live at module level because the analyzer's
read-set and totality proofs are AST-primary: ``inspect.getsource``
must be able to recover their source, which it can for file-backed
test modules but not for REPL/``exec``-defined functions (those fall
back to the bytecode scan and stay UNKNOWN where the AST would prove).
"""

import random
import warnings
from pathlib import Path

import pytest

from repro.algebra.expressions import ScanExpr, SelectExpr, ShieldExpr
from repro.algebra.rules import RewriteContext, equivalent_forms
from repro.analysis import (analyze_callable, condition_verified, lint_file,
                            shard_safe, udf_diagnostics, verify_declaration)
from repro.analysis.diagnostics import Severity
from repro.analysis.lattice import StreamFacts
from repro.analysis.rewrites import Proof, refused_rewrites
from repro.engine.dsms import DSMS
from repro.engine.sharded import split_workload
from repro.errors import PlanAnalysisError, UdfDeclarationWarning
from repro.operators.compiler import compile_condition
from repro.operators.conditions import And, Comparison, FuncCondition, Not
from repro.operators.udfs import named_udf, registered_udfs, udf_entry
from repro.stream.schema import StreamSchema

REPO = Path(__file__).resolve().parent.parent.parent


# -- fixture callables (provable fragment) -----------------------------------

def reads_get(t):
    return t.get("x", 0) > 1


def reads_subscript(t):
    return t["y"] == 3


def reads_values_dict(t):
    v = t.values
    return v["z"] is not None


def reads_contains(t):
    return "flag" in t


def reads_alias(t):
    values = t.values
    speed = values.get("speed", 0.0)
    return speed > 60.0


def reads_metadata_only(t):
    return t.ts > 0.0 and t.sid == "cars"


def undeclared_cheater(t):
    return t.get("x", 0) > 1 and t.get("y", 0) > 2


def total_guard(t):
    return t.get("x", 0.0) is not None


# -- adversarial fixtures (must fail closed, not misprove) -------------------

_COUNTER = {"calls": 0}


def closure_mutator(t):
    _COUNTER["calls"] += 1
    return t.get("x", 0) > _COUNTER["calls"]


def computed_getattr(t):
    field = "val" + "ues"
    return getattr(t, field)["x"] > 1


def nested_lambda(t):
    def probe():
        return t.get("x", 0)
    return probe() > 1


def uses_random(t):
    return random.random() < 0.5


def prints(t):
    print(t)
    return True


class TestReadSets:
    @pytest.mark.parametrize("fn,expected", [
        (reads_get, {"x"}),
        (reads_subscript, {"y"}),
        (reads_values_dict, {"z"}),
        (reads_contains, {"flag"}),
        (reads_alias, {"speed"}),
        (undeclared_cheater, {"x", "y"}),
    ], ids=["get", "subscript", "values", "contains", "alias", "cheater"])
    def test_inferred_reads(self, fn, expected):
        assert analyze_callable(fn).reads == frozenset(expected)

    def test_metadata_access_is_not_an_attribute_read(self):
        report = analyze_callable(reads_metadata_only)
        assert report.reads == frozenset()
        assert report.proven_pure

    def test_provable_fragment_proves_purity(self):
        for fn in (reads_get, reads_subscript, reads_alias, total_guard):
            report = analyze_callable(fn)
            assert report.purity is Proof.PROVEN, fn
            assert report.determinism is Proof.PROVEN, fn

    def test_totality_proves_on_guard_fragment(self):
        assert analyze_callable(total_guard).totality is Proof.PROVEN
        # A comparison against a .get value can still raise TypeError.
        assert analyze_callable(reads_get).totality is Proof.UNKNOWN


class TestAdversarialFixtures:
    def test_closure_mutation_blocks_purity(self):
        report = analyze_callable(closure_mutator)
        assert report.purity is not Proof.PROVEN
        assert not report.proven_pure

    def test_computed_getattr_fails_closed_on_reads(self):
        assert analyze_callable(computed_getattr).reads is None

    def test_nested_function_capture_fails_closed_on_reads(self):
        assert analyze_callable(nested_lambda).reads is None

    def test_random_refutes_determinism(self):
        report = analyze_callable(uses_random)
        assert report.determinism is Proof.REFUTED

    def test_io_refutes_purity(self):
        report = analyze_callable(prints)
        assert report.purity is Proof.REFUTED
        # t escapes into print(), so its reads are unknowable.
        assert report.reads is None


class TestDeclarations:
    def test_verify_declaration_three_values(self):
        covered = FuncCondition(reads_get, ("x",), label="ok")
        cheater = FuncCondition(undeclared_cheater, ("x",), label="cheat")
        opaque = FuncCondition(computed_getattr, ("x",), label="opaque")
        assert verify_declaration(covered) is Proof.PROVEN
        assert verify_declaration(cheater) is Proof.REFUTED
        assert verify_declaration(opaque) is Proof.UNKNOWN

    def test_undeclared_reads(self):
        report = analyze_callable(undeclared_cheater)
        assert report.undeclared(frozenset({"x"})) == frozenset({"y"})
        assert report.undeclared(frozenset({"x", "y"})) == frozenset()

    def test_empty_declaration_warns_at_construction(self):
        with pytest.warns(UdfDeclarationWarning):
            FuncCondition(reads_get, label="undeclared")

    def test_opaque_empty_declaration_warns(self):
        with pytest.warns(UdfDeclarationWarning):
            FuncCondition(computed_getattr, label="opaque")

    def test_trivial_callable_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            FuncCondition(reads_metadata_only, label="metadata")

    def test_wrap_infers_the_declaration(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cond = FuncCondition.wrap(undeclared_cheater, label="wrapped")
        assert cond.attributes() == frozenset({"x", "y"})
        assert verify_declaration(cond) is Proof.PROVEN


class TestConditionVerified:
    def test_udf_free_condition_is_proven(self):
        cond = And([Comparison("x", ">", 1), Not(Comparison("y", "<", 2))])
        assert condition_verified(cond) is Proof.PROVEN

    def test_meet_over_leaves(self):
        proven = FuncCondition(reads_get, ("x",), label="ok")
        cheater = FuncCondition(undeclared_cheater, ("x",), label="cheat")
        opaque = FuncCondition(computed_getattr, ("x",), label="opaque")
        assert condition_verified(proven) is Proof.PROVEN
        assert condition_verified(
            And([proven, Comparison("y", ">", 0)])) is Proof.PROVEN
        assert condition_verified(And([proven, cheater])) is Proof.REFUTED
        assert condition_verified(Not(opaque)) is Proof.UNKNOWN

    def test_registered_udfs_all_prove(self):
        assert registered_udfs()
        for name in registered_udfs():
            cond = named_udf(name)
            assert condition_verified(cond) is Proof.PROVEN, name
            assert cond.is_pure(), name
            assert shard_safe(cond), name


class TestDiagnostics:
    def _diags(self, cond, **kwargs):
        return udf_diagnostics(cond, "plan/select", **kwargs)

    def test_sec006_error_on_undeclared_read(self):
        cond = FuncCondition(undeclared_cheater, ("x",), label="cheat")
        diags = self._diags(cond)
        assert [d.code for d in diags] == ["SEC006"]
        assert diags[0].severity is Severity.ERROR
        assert "'y'" in diags[0].message

    def test_sec006_warning_trusts_unverifiable_declaration(self):
        cond = FuncCondition(computed_getattr, ("x",), label="opaque")
        diags = self._diags(cond)
        assert [d.code for d in diags] == ["SEC006"]
        assert diags[0].severity is Severity.WARNING

    def test_sec007_on_refuted_purity_or_determinism(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            noisy = FuncCondition(prints, label="noisy")
        rng = FuncCondition(uses_random, (), label="rng")
        assert "SEC007" in [d.code for d in self._diags(noisy)]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            rng_diags = self._diags(rng)
        assert "SEC007" in [d.code for d in rng_diags]

    def test_sec007_silent_on_unknown_purity(self):
        # UNKNOWN purity refuses optimizations but is not reportable:
        # flagging every unprovable callable would drown real findings.
        cond = FuncCondition(closure_mutator, ("x",), label="maybe")
        assert "SEC007" not in [d.code for d in self._diags(cond)]

    def test_sec008_needs_concrete_governed_overlap(self):
        cond = FuncCondition(undeclared_cheater, ("x",), label="cheat")
        facts = StreamFacts(known=True,
                            attr_scoped={"cars": frozenset({"y"})},
                            schemas={"cars": ("x", "y")})
        diags = self._diags(cond, facts=facts, streams=["cars"])
        assert {d.code for d in diags} == {"SEC006", "SEC008"}
        sec008 = next(d for d in diags if d.code == "SEC008")
        assert sec008.severity is Severity.ERROR
        # No attribute-scoped sps on the read attribute: no SEC008.
        unscoped = StreamFacts(known=True,
                               attr_scoped={"cars": frozenset({"z"})},
                               schemas={"cars": ("x", "y", "z")})
        codes = {d.code
                 for d in self._diags(cond, facts=unscoped,
                                      streams=["cars"])}
        assert "SEC008" not in codes

    def test_verified_udf_emits_nothing(self):
        assert self._diags(named_udf("in_region")) == []
        cond = FuncCondition(reads_get, ("x",), label="ok")
        assert self._diags(cond) == []


class TestStrictRegistration:
    def _dsms(self):
        dsms = DSMS()
        dsms.register_stream(StreamSchema("cars", ("x", "y", "speed")))
        return dsms

    def test_undeclared_read_rejected_strict(self):
        dsms = self._dsms()
        bad = FuncCondition(undeclared_cheater, ("x",), label="cheat")
        with pytest.raises(PlanAnalysisError) as excinfo:
            dsms.register_query("q", ScanExpr("cars").select(bad),
                                roles=["police"], analyze="strict")
        assert "SEC006" in [d.code for d in excinfo.value.report.errors]

    def test_declared_correct_udf_registers_strict(self):
        dsms = self._dsms()
        dsms.register_query("q", ScanExpr("cars").select(
            named_udf("in_region")), roles=["police"], analyze="strict")


class TestRewriteFlip:
    CTX = RewriteContext(policy_streams=frozenset({"cars"}))

    def _forms(self, cond):
        root = ShieldExpr(SelectExpr(ScanExpr("cars"), cond),
                          (frozenset({"police"}),))
        return [repr(f) for f in equivalent_forms(root, self.CTX)]

    @staticmethod
    def _select_pushed(forms):
        return any(f.index("σ") < f.index("ψ")
                   for f in forms if "σ" in f and "ψ" in f)

    def test_proven_udf_passes_commute_select_shield(self):
        assert self._select_pushed(self._forms(named_udf("in_region")))

    def test_unproven_udf_refuses_commute_select_shield(self):
        cheater = FuncCondition(undeclared_cheater, ("x",), label="cheat")
        opaque = FuncCondition(computed_getattr, ("x",), label="opaque")
        assert not self._select_pushed(self._forms(cheater))
        assert not self._select_pushed(self._forms(opaque))

    def test_refusal_is_reported_as_sec004(self):
        cheater = FuncCondition(undeclared_cheater, ("x",), label="cheat")
        root = ShieldExpr(SelectExpr(ScanExpr("cars"), cheater),
                          (frozenset({"police"}),))
        diags = refused_rewrites(root, self.CTX)
        udf_refusals = [d for d in diags
                        if "UDF" in d.message and d.code == "SEC004"]
        assert udf_refusals and udf_refusals[0].severity is Severity.INFO

    def test_proven_udf_leaves_no_refusal(self):
        root = ShieldExpr(SelectExpr(ScanExpr("cars"),
                                     named_udf("in_region")),
                          (frozenset({"police"}),))
        assert [d for d in refused_rewrites(root, self.CTX)
                if "UDF" in d.message] == []


class TestCompiler:
    def test_proven_pure_udf_vectorizes(self):
        cond = FuncCondition(reads_get, ("x",), label="pure")
        assert compile_condition(cond).fully_vectorized

    def test_unproven_udf_stays_row_stage(self):
        cond = FuncCondition(computed_getattr, ("x",), label="opaque")
        assert not compile_condition(cond).fully_vectorized
        rng = FuncCondition(uses_random, (), label="rng")
        assert not compile_condition(rng).fully_vectorized

    def test_conjunction_requires_totality(self):
        # In a conjunction the bulk kernel sees rows short-circuiting
        # would have skipped, so a non-total UDF must stay row-wise...
        nontotal = And([Comparison("x", ">", 1),
                        FuncCondition(reads_get, ("x",), label="pure")])
        assert not compile_condition(nontotal).fully_vectorized
        # ...while a proven-total one vectorizes inside the And.
        total = And([Comparison("x", ">", 1),
                     FuncCondition(total_guard, ("x",), label="guard")])
        assert compile_condition(total).fully_vectorized


class TestShardSafety:
    def test_unproven_select_pins_to_coordinator(self):
        proven = ScanExpr("cars").select(named_udf("in_region"))
        opaque = ScanExpr("cars").select(
            FuncCondition(closure_mutator, ("x",), label="stateful"))
        local, split, _ = split_workload(
            {"ok": proven, "pinned": opaque},
            {"ok": frozenset({"a"}), "pinned": frozenset({"b"})})
        assert [name for name, _, _ in local] == ["ok"]
        assert set(split) == {"pinned"}


class TestZeroFalsePositives:
    UDF_CODES = {"SEC006", "SEC007", "SEC008"}

    @pytest.mark.parametrize("pattern", [
        "examples/plans/*.json", "tests/verify/cases/*.json"])
    def test_corpus_is_clean(self, pattern):
        paths = sorted(REPO.glob(pattern))
        assert paths
        for path in paths:
            codes = {d.code for d in lint_file(str(path)).diagnostics}
            assert not codes & self.UDF_CODES, path.name

    def test_udf_example_plan_references_registered_udf(self):
        plan = REPO / "examples" / "plans" / "shielded-udf-select.json"
        assert "bpm_critical" in plan.read_text()
        assert udf_entry("bpm_critical").attributes == frozenset(
            {"beats_per_min"})
