"""Small-surface coverage: reprs, error metadata, package exports."""

import pytest

import repro


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_alls_resolve(self):
        import repro.access
        import repro.algebra
        import repro.core
        import repro.engine
        import repro.operators
        import repro.stream

        for module in (repro.core, repro.stream, repro.access,
                       repro.operators, repro.algebra, repro.engine):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, \
                    f"{module.__name__}.{name}"


class TestErrorMetadata:
    def test_cql_error_position(self):
        from repro.errors import CQLSyntaxError

        error = CQLSyntaxError("bad token", line=3, column=7)
        assert "line 3" in str(error)
        assert error.column == 7
        bare = CQLSyntaxError("no position")
        assert str(bare) == "no position"

    def test_hierarchy(self):
        from repro.errors import (CQLSyntaxError, OutOfOrderError,
                                  PatternError, ReproError, SchemaError,
                                  StreamError)

        assert issubclass(OutOfOrderError, StreamError)
        assert issubclass(SchemaError, StreamError)
        for exc in (PatternError, StreamError, CQLSyntaxError):
            assert issubclass(exc, ReproError)


class TestReprs:
    """Reprs are part of the debugging UX; keep them informative."""

    def test_core_reprs(self):
        from repro.core import (Policy, RoleSet, SecurityPunctuation,
                                TuplePolicy)

        sp = SecurityPunctuation.grant(["D"], ts=1.0)
        assert "D" in str(sp)
        assert "Policy(ts=1.0" in repr(Policy([sp]))
        assert "D" in repr(TuplePolicy(["D"]))
        assert "RoleSet" in repr(RoleSet(["D"]))

    def test_stream_reprs(self):
        from repro.stream import (DataTuple, PunctuatedWindow, Stream,
                                  StreamSchema)

        schema = StreamSchema("s", ("v",))
        assert "s" in repr(schema)
        assert "tid=1" in repr(DataTuple("s", 1, {"v": 1}, 1.0))
        assert "tuples=0" in repr(Stream(schema))
        assert "segments=0" in repr(PunctuatedWindow("s", 5.0))

    def test_engine_reprs(self):
        from repro.engine import ContinuousQuery, QueryResult
        from repro.algebra import ScanExpr

        query = ContinuousQuery("q", ScanExpr("s"), roles={"D"})
        assert "q" in repr(query)
        assert "tuples=0" in repr(QueryResult("q"))

    def test_operator_reprs(self):
        from repro.operators import OperatorStats, SecurityShield, SPIndex
        from repro.core import RoleUniverse

        assert "indexed=True" in repr(SecurityShield(["D"]))
        assert "in=0t/0sp" in repr(OperatorStats())
        assert "entries=0" in repr(SPIndex(RoleUniverse()))

    def test_algebra_reprs(self):
        from repro.algebra import (CostModel, Optimizer, ScanExpr,
                                   StreamStatistics)

        result = Optimizer(CostModel()).optimize(
            ScanExpr("s").shield({"D"}))
        assert "OptimizationResult" in repr(result)
        assert StreamStatistics().tuple_rate == 100.0


class TestSubjectsAndSessions:
    def test_subject_defaults(self):
        from repro.access import Subject

        subject = Subject("u1")
        assert subject.name == "u1"
        assert subject == Subject("u1", "Different Display Name")
        assert hash(subject) == hash(Subject("u1"))

    def test_subject_requires_id(self):
        from repro.access import Subject
        from repro.errors import AccessControlError

        with pytest.raises(AccessControlError):
            Subject("")

    def test_session_repr(self):
        from repro.access import RBACModel

        rbac = RBACModel()
        rbac.add_role("D")
        rbac.add_user("alice")
        rbac.assign_role("alice", "D")
        session = rbac.sign_in("alice")
        assert "alice" in repr(session)
        assert "D" in repr(session)


class TestDocumentationDiscipline:
    """Every public module, class and function carries a docstring."""

    def _public_modules(self):
        import importlib
        import pkgutil

        import repro

        for info in pkgutil.walk_packages(repro.__path__,
                                          prefix="repro."):
            if "__pycache__" in info.name:
                continue
            yield importlib.import_module(info.name)

    def test_every_module_documented(self):
        undocumented = [m.__name__ for m in self._public_modules()
                        if not (m.__doc__ or "").strip()]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        import inspect

        missing = []
        for module in self._public_modules():
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name, None)
                if obj is None or not (inspect.isclass(obj)
                                       or inspect.isfunction(obj)):
                    continue
                if not (inspect.getdoc(obj) or "").strip():
                    missing.append(f"{module.__name__}.{name}")
        assert sorted(set(missing)) == []
