"""Three-stream queries: nested joins and Rule 5 on real data.

Joins the paper's three health streams (Figure 4) on patient id and
checks the full security semantics: a result exists only where all
three base tuples' policies share a role, and re-associating the join
tree (Rule 5) preserves the delivered results.
"""

from repro.algebra.expressions import JoinExpr, ScanExpr, ShieldExpr
from repro.algebra.rules import AssociateJoin, RewriteContext
from repro.core.patterns import literal
from repro.core.punctuation import SecurityPunctuation
from repro.engine.dsms import DSMS
from repro.stream.schema import StreamSchema
from repro.stream.tuples import DataTuple

HR = StreamSchema("HeartRate", ("patient_id", "bpm"), key="patient_id")
BT = StreamSchema("BodyTemperature", ("patient_id", "temp"),
                  key="patient_id")
BR = StreamSchema("BreathingRate", ("patient_id", "freq"),
                  key="patient_id")


def build_streams():
    """Patients 1-3 with per-stream policies.

    patient 1: D on all three streams  → full join row for D
    patient 2: D on two streams, C on the third → no row for D
    patient 3: D+C everywhere → row for both D and C
    """
    def sp(roles, sid, ts):
        return SecurityPunctuation.grant(
            roles, ts, stream=literal(sid), provider="dp")

    hr, bt, br = [], [], []
    for patient, roles_by_stream in (
        (1, {"HeartRate": ["D"], "BodyTemperature": ["D"],
             "BreathingRate": ["D"]}),
        (2, {"HeartRate": ["D"], "BodyTemperature": ["D"],
             "BreathingRate": ["C"]}),
        (3, {"HeartRate": ["D", "C"], "BodyTemperature": ["D", "C"],
             "BreathingRate": ["D", "C"]}),
    ):
        ts = float(patient)
        hr.append(sp(roles_by_stream["HeartRate"], "HeartRate", ts))
        hr.append(DataTuple("HeartRate", patient,
                            {"patient_id": patient, "bpm": 70 + patient},
                            ts + 0.1))
        bt.append(sp(roles_by_stream["BodyTemperature"],
                     "BodyTemperature", ts))
        bt.append(DataTuple("BodyTemperature", patient,
                            {"patient_id": patient, "temp": 98.0 + patient},
                            ts + 0.2))
        br.append(sp(roles_by_stream["BreathingRate"],
                     "BreathingRate", ts))
        br.append(DataTuple("BreathingRate", patient,
                            {"patient_id": patient, "freq": 10 + patient},
                            ts + 0.3))
    return hr, bt, br


def three_way_expr():
    inner = JoinExpr(ScanExpr("HeartRate"), ScanExpr("BodyTemperature"),
                     "patient_id", "patient_id", 100.0)
    return JoinExpr(inner, ScanExpr("BreathingRate"),
                    "patient_id", "patient_id", 100.0)


def run(expr, roles):
    hr, bt, br = build_streams()
    dsms = DSMS()
    dsms.register_stream(HR, hr)
    dsms.register_stream(BT, bt)
    dsms.register_stream(BR, br)
    dsms.register_query("q", expr, roles=roles)
    result = dsms.run()["q"]
    return sorted(t.values["patient_id"] for t in result.tuples)


class TestThreeWayJoin:
    def test_doctor_sees_fully_granted_patients(self):
        assert run(three_way_expr(), {"D"}) == [1, 3]

    def test_cardiologist_sees_only_patient3(self):
        assert run(three_way_expr(), {"C"}) == [3]

    def test_stranger_sees_nothing(self):
        assert run(three_way_expr(), {"X"}) == []

    def test_rule5_reassociation_preserves_results(self):
        base = three_way_expr()
        shielded = ShieldExpr(base, frozenset({"D"}))
        rotated = AssociateJoin().apply(base, RewriteContext())
        assert run(base, {"D"}) == run(rotated, {"D"}) == [1, 3]

    def test_join_result_carries_three_way_intersection(self):
        hr, bt, br = build_streams()
        dsms = DSMS()
        dsms.register_stream(HR, hr)
        dsms.register_stream(BT, bt)
        dsms.register_stream(BR, br)
        dsms.register_query("q", three_way_expr(), roles={"C"})
        result = dsms.run()["q"]
        # Patient 3's row is governed by {D, C} ∩ {D, C} ∩ {D, C}.
        assert result.sps
        assert result.sps[-1].roles() == frozenset({"D", "C"})
