"""Multi-query optimization: shared subplans bracketed by shields."""

from repro.algebra.expressions import ScanExpr, ShieldExpr
from repro.core.punctuation import SecurityPunctuation
from repro.engine.api import OptimizeLevel
from repro.engine.dsms import DSMS
from repro.engine.plan import PhysicalPlan
from repro.operators.conditions import Comparison
from repro.operators.select import Select
from repro.operators.shield import SecurityShield
from repro.operators.sink import CollectingSink
from repro.stream.schema import StreamSchema
from repro.stream.tuples import DataTuple

SCHEMA = StreamSchema("s", ("v",))


def elements():
    out = []
    ts = 0.0
    for segment, roles in enumerate((["a"], ["b"], ["a", "b"], ["c"])):
        ts += 1.0
        out.append(SecurityPunctuation.grant(roles, ts))
        for item in range(3):
            ts += 1.0
            tid = segment * 10 + item
            out.append(DataTuple("s", tid, {"v": tid}, ts))
    return out


class TestSharedSubplans:
    def test_three_queries_share_one_select(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA, elements())
        base = ScanExpr("s").select(Comparison("v", ">=", 10))
        dsms.register_query("qa", base, roles={"a"})
        dsms.register_query("qb", base, roles={"b"})
        dsms.register_query("qc", base, roles={"c"})
        plan, sinks = dsms.build_plan()
        # One shared Select; per query one in-plan shield plus the
        # fixed delivery shield.
        assert len(plan.find_operators(Select)) == 1
        assert len(plan.find_operators(SecurityShield)) == 6

    def test_shared_plan_results_are_per_query_correct(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA, elements())
        base = ScanExpr("s")
        dsms.register_query("qa", base, roles={"a"})
        dsms.register_query("qb", base, roles={"b"})
        results = dsms.run()
        tids_a = [t.tid for t in results["qa"].tuples]
        tids_b = [t.tid for t in results["qb"].tuples]
        assert tids_a == [0, 1, 2, 20, 21, 22]
        assert tids_b == [10, 11, 12, 20, 21, 22]

    def test_merged_shield_feeding_shared_fragment(self):
        """Section VI.C: merge shields at the beginning of a shared
        fragment, split at the end — outputs equal per-query plans."""
        data = elements()

        def run_split():
            plan = PhysicalPlan()
            sink_a = plan.compile_expr(
                ShieldExpr(ScanExpr("s"), frozenset({"a"})),
                CollectingSink())
            sink_b = plan.compile_expr(
                ShieldExpr(ScanExpr("s"), frozenset({"b"})),
                CollectingSink())
            from repro.engine.executor import Executor
            from repro.stream.source import ListSource
            Executor(plan, [ListSource(SCHEMA, data)]).run()
            return ([t.tid for t in sink_a.operator.tuples()],
                    [t.tid for t in sink_b.operator.tuples()])

        def run_merged():
            plan = PhysicalPlan()
            merged = plan.add(SecurityShield(["a", "b"]))  # union predicate
            plan.connect_source("s", merged)
            shield_a = plan.add(SecurityShield(["a"]))
            shield_b = plan.add(SecurityShield(["b"]))
            sink_a = plan.add(CollectingSink())
            sink_b = plan.add(CollectingSink())
            plan.connect(merged, shield_a)
            plan.connect(merged, shield_b)
            plan.connect(shield_a, sink_a)
            plan.connect(shield_b, sink_b)
            from repro.engine.executor import Executor
            from repro.stream.source import ListSource
            Executor(plan, [ListSource(SCHEMA, data)]).run()
            return ([t.tid for t in sink_a.operator.tuples()],
                    [t.tid for t in sink_b.operator.tuples()])

        assert run_split() == run_merged()

    def test_operator_sharing_reduces_work(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA, elements())
        base = ScanExpr("s").select(Comparison("v", ">=", 0))
        dsms.register_query("qa", base, roles={"a"})
        dsms.register_query("qb", base, roles={"b"})
        plan, _ = dsms.build_plan()
        from repro.engine.executor import Executor
        Executor(plan, dsms.catalog.sources()).run()
        (select,) = plan.find_operators(Select)
        # The shared select processed the stream once, not twice.
        assert select.stats.tuples_in == 12


class TestWorkloadOptimizedRun:
    def test_workload_mode_same_results_as_plain(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA, elements())
        base = ScanExpr("s").select(Comparison("v", ">=", 0))
        for role in ("a", "b", "c"):
            dsms.register_query(f"q_{role}", base, roles={role})
        plain = dsms.run()
        workload = dsms.run(optimize=OptimizeLevel.WORKLOAD)
        for name in plain:
            assert ([t.tid for t in plain[name].tuples]
                    == [t.tid for t in workload[name].tuples])
