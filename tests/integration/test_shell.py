"""Tests for the interactive DSMS shell."""

import io

import pytest

from repro.shell import Shell, run_shell


@pytest.fixture
def shell_and_output():
    lines: list[str] = []
    return Shell(out=lines.append), lines


def setup_basic(shell: Shell) -> None:
    shell.handle("STREAM hr patient_id beats_per_min")
    shell.handle("QUERY doc ROLES D SELECT * FROM hr")


class TestDeclarations:
    def test_stream_and_query(self, shell_and_output):
        shell, lines = shell_and_output
        setup_basic(shell)
        assert any("stream 'hr' registered" in line for line in lines)
        assert any("query 'doc' registered" in line for line in lines)

    def test_declarations_rejected_after_live(self, shell_and_output):
        shell, lines = shell_and_output
        setup_basic(shell)
        shell.handle("INSERT SP INTO STREAM hr LET DDP = '*', SRP = 'D', "
                     "TIMESTAMP = 0")
        shell.handle("STREAM other v")
        assert any("already live" in line for line in lines)

    def test_unknown_command(self, shell_and_output):
        shell, lines = shell_and_output
        shell.handle("FROBNICATE now")
        assert any("unknown command" in line for line in lines)

    def test_blank_and_comment_ignored(self, shell_and_output):
        shell, lines = shell_and_output
        shell.handle("")
        shell.handle("-- a comment")
        assert lines == []


class TestLiveFlow:
    def test_push_delivers_to_subscribers(self, shell_and_output):
        shell, lines = shell_and_output
        setup_basic(shell)
        shell.handle("INSERT SP INTO STREAM hr LET DDP = '*', SRP = 'D', "
                     "TIMESTAMP = 0")
        shell.handle('PUSH hr 120 {"patient_id": 120, '
                     '"beats_per_min": 72} 1.0')
        assert any(line.startswith("doc <- ") for line in lines)

    def test_denied_push_not_delivered(self, shell_and_output):
        shell, lines = shell_and_output
        setup_basic(shell)
        shell.handle("INSERT SP INTO STREAM hr LET DDP = '*', SRP = 'C', "
                     "TIMESTAMP = 0")
        shell.handle('PUSH hr 120 {"patient_id": 120, '
                     '"beats_per_min": 72} 1.0')
        assert not any(line.startswith("doc <- ") for line in lines)

    def test_results_command(self, shell_and_output):
        shell, lines = shell_and_output
        setup_basic(shell)
        shell.handle("INSERT SP INTO STREAM hr LET DDP = '*', SRP = 'D', "
                     "TIMESTAMP = 0")
        shell.handle('PUSH hr 120 {"patient_id": 120, '
                     '"beats_per_min": 72} 1.0')
        shell.handle("RESULTS doc")
        assert any("1 tuple(s)" in line for line in lines)

    def test_explain_command(self, shell_and_output):
        shell, lines = shell_and_output
        setup_basic(shell)
        shell.handle("EXPLAIN doc")
        assert any("ψ[{D}]" in line for line in lines)

    def test_malformed_json_reported(self, shell_and_output):
        shell, lines = shell_and_output
        setup_basic(shell)
        shell.handle("PUSH hr 1 {broken json} 1.0")
        assert any("error:" in line for line in lines)


class TestScriptedRun:
    def test_run_shell_over_stdin(self):
        script = io.StringIO(
            "STREAM s v\n"
            "QUERY q ROLES D SELECT * FROM s\n"
            "INSERT SP INTO STREAM s LET DDP = '*', SRP = 'D', "
            "TIMESTAMP = 0\n"
            'PUSH s 1 {"v": 42} 1.0\n'
            "RESULTS q\n"
            "QUIT\n"
        )
        lines: list[str] = []
        code = run_shell(stdin=script, out=lines.append)
        assert code == 0
        assert any("1 tuple(s)" in line for line in lines)

    def test_cli_integration(self):
        # The CLI exposes the shell as a subcommand.
        from repro.cli import build_parser
        parser = build_parser()
        args = parser.parse_args(["shell"])
        assert args.fn is not None
