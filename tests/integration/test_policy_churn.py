"""Incremental access-control changes at runtime (paper future work).

The sp model's core claim: because policies stream with the data, a
policy change takes effect immediately at the point it appears in the
stream, with no server-side bookkeeping.  These tests drive long
streams with rapidly churning policies and verify enforcement tracks
every change exactly.
"""

import random

from repro.algebra.expressions import ScanExpr
from repro.core.punctuation import SecurityPunctuation
from repro.engine.dsms import DSMS
from repro.operators.shield import SecurityShield
from repro.stream.schema import StreamSchema
from repro.stream.tuples import DataTuple

SCHEMA = StreamSchema("s", ("v",))


def churning_stream(n_segments, tuples_per_segment, roles_pool, seed):
    """Stream with a random policy flip before every segment.

    Returns (elements, ground_truth) where ground_truth maps each role
    to the tids it may access.
    """
    rng = random.Random(seed)
    elements = []
    truth = {role: [] for role in roles_pool}
    ts = 0.0
    tid = 0
    for _ in range(n_segments):
        ts += 1.0
        roles = rng.sample(roles_pool, rng.randint(1, len(roles_pool)))
        elements.append(SecurityPunctuation.grant(sorted(roles), ts))
        for _ in range(tuples_per_segment):
            ts += 1.0
            elements.append(DataTuple("s", tid, {"v": tid}, ts))
            for role in roles:
                truth[role].append(tid)
            tid += 1
    return elements, truth


class TestChurn:
    def test_every_policy_flip_enforced(self):
        roles_pool = ["a", "b", "c"]
        elements, truth = churning_stream(40, 3, roles_pool, seed=17)
        for role in roles_pool:
            shield = SecurityShield([role])
            got = []
            for element in elements:
                for out in shield.process(element):
                    if isinstance(out, DataTuple):
                        got.append(out.tid)
            assert got == truth[role], role

    def test_dsms_under_churn(self):
        roles_pool = ["a", "b"]
        elements, truth = churning_stream(25, 2, roles_pool, seed=23)
        dsms = DSMS()
        dsms.register_stream(SCHEMA, elements)
        for role in roles_pool:
            dsms.register_query(f"q_{role}", ScanExpr("s"), roles={role})
        results = dsms.run()
        for role in roles_pool:
            assert [t.tid for t in results[f"q_{role}"].tuples] \
                == truth[role]

    def test_mid_segment_override(self):
        """A newer sp mid-stream retargets immediately — even with the
        same timestamp semantics preserved for batches."""
        shield = SecurityShield(["a"])
        out = []
        for element in [
            SecurityPunctuation.grant(["a"], 1.0),
            DataTuple("s", 1, {"v": 1}, 2.0),
            SecurityPunctuation.grant(["b"], 3.0),  # a loses access NOW
            DataTuple("s", 2, {"v": 2}, 4.0),
            SecurityPunctuation.grant(["a", "b"], 5.0),
            DataTuple("s", 3, {"v": 3}, 6.0),
        ]:
            out.extend(shield.process(element))
        tids = [e.tid for e in out if isinstance(e, DataTuple)]
        assert tids == [1, 3]

    def test_revocation_is_immediate_for_stateful_operator(self):
        """Join windows honor revocation: results pair each tuple with
        the policy in force when it ARRIVED (paper's window semantics),
        so newly arriving tuples under a revoked policy join nothing."""
        from repro.operators.index_join import IndexSAJoin

        join = IndexSAJoin("v", "v", 100.0)
        out = []
        feed = [
            (0, SecurityPunctuation.grant(["a"], 1.0)),
            (0, DataTuple("left", 1, {"v": 7}, 2.0)),
            (1, SecurityPunctuation.grant(["b"], 3.0)),  # incompatible
            (1, DataTuple("right", 2, {"v": 7}, 4.0)),
            (1, SecurityPunctuation.grant(["a"], 5.0)),  # compatible again
            (1, DataTuple("right", 3, {"v": 7}, 6.0)),
        ]
        for port, element in feed:
            out.extend(join.process(element, port))
        tids = [e.tid for e in out if isinstance(e, DataTuple)]
        assert tids == [(1, 3)]
