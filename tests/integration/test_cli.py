"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main
from repro.stream.wire import encode_element


class TestExplainCommand:
    def test_explain_plain(self, capsys):
        code = main(["explain",
                     "SELECT a, b FROM s WHERE a > 1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "π[a,b]" in out
        assert "Scan(s)" in out

    def test_explain_with_roles_and_costs(self, capsys):
        code = main(["explain", "SELECT a FROM s", "--roles", "D,C"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ψ[{C,D}]" in out
        assert "cost=" in out

    def test_explain_optimized(self, capsys):
        code = main([
            "explain",
            "SELECT x FROM s1 RANGE 10 AS a, s2 RANGE 10 AS b "
            "WHERE a.k = b.k",
            "--roles", "D", "--optimize",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "-- optimized:" in out

    def test_explain_rejects_insert_sp(self, capsys):
        code = main(["explain",
                     "INSERT SP INTO STREAM s LET DDP = '*', SRP = 'D'"])
        assert code == 2

    def test_syntax_error_reported(self, capsys):
        code = main(["explain", "SELEKT nope"])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err


class TestSPCommand:
    def test_translates_to_alphanumeric_format(self, capsys):
        code = main(["sp",
                     "INSERT SP INTO STREAM hr "
                     "LET DDP = '*, [120-133], *', SRP = '{GP, D}', "
                     "TIMESTAMP = 5"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("<hr, [120-133], *")
        assert "| + |" in out

    def test_rejects_select(self, capsys):
        assert main(["sp", "SELECT a FROM s"]) == 2


class TestWireCommand:
    def test_valid_file(self, tmp_path, capsys):
        from repro.core.punctuation import SecurityPunctuation
        from repro.stream.tuples import DataTuple

        path = tmp_path / "stream.jsonl"
        elements = [
            SecurityPunctuation.grant(["D"], ts=0.0),
            DataTuple("s", 1, {"v": 1}, 1.0),
            DataTuple("s", 2, {"v": 2}, 2.0),
        ]
        path.write_text("\n".join(encode_element(e) for e in elements))
        code = main(["wire", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "tuples:   2" in out
        assert "sps:      1" in out
        assert "ordered:  yes" in out

    def test_unordered_file_fails(self, tmp_path, capsys):
        from repro.stream.tuples import DataTuple

        path = tmp_path / "bad.jsonl"
        elements = [DataTuple("s", 1, {"v": 1}, 5.0),
                    DataTuple("s", 2, {"v": 2}, 1.0)]
        path.write_text("\n".join(encode_element(e) for e in elements))
        assert main(["wire", str(path)]) == 1

    def test_missing_file(self, capsys):
        assert main(["wire", "/nonexistent/file.jsonl"]) == 2
