"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main
from repro.stream.wire import encode_element


class TestExplainCommand:
    def test_explain_plain(self, capsys):
        code = main(["explain",
                     "SELECT a, b FROM s WHERE a > 1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "π[a,b]" in out
        assert "Scan(s)" in out

    def test_explain_with_roles_and_costs(self, capsys):
        code = main(["explain", "SELECT a FROM s", "--roles", "D,C"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ψ[{C,D}]" in out
        assert "cost=" in out

    def test_explain_optimized(self, capsys):
        code = main([
            "explain",
            "SELECT x FROM s1 RANGE 10 AS a, s2 RANGE 10 AS b "
            "WHERE a.k = b.k",
            "--roles", "D", "--optimize",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "-- optimized:" in out

    def test_explain_rejects_insert_sp(self, capsys):
        code = main(["explain",
                     "INSERT SP INTO STREAM s LET DDP = '*', SRP = 'D'"])
        assert code == 2

    def test_syntax_error_reported(self, capsys):
        code = main(["explain", "SELEKT nope"])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err


class TestSPCommand:
    def test_translates_to_alphanumeric_format(self, capsys):
        code = main(["sp",
                     "INSERT SP INTO STREAM hr "
                     "LET DDP = '*, [120-133], *', SRP = '{GP, D}', "
                     "TIMESTAMP = 5"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("<hr, [120-133], *")
        assert "| + |" in out

    def test_rejects_select(self, capsys):
        assert main(["sp", "SELECT a FROM s"]) == 2


class TestWireCommand:
    def test_valid_file(self, tmp_path, capsys):
        from repro.core.punctuation import SecurityPunctuation
        from repro.stream.tuples import DataTuple

        path = tmp_path / "stream.jsonl"
        elements = [
            SecurityPunctuation.grant(["D"], ts=0.0),
            DataTuple("s", 1, {"v": 1}, 1.0),
            DataTuple("s", 2, {"v": 2}, 2.0),
        ]
        path.write_text("\n".join(encode_element(e) for e in elements))
        code = main(["wire", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "tuples:   2" in out
        assert "sps:      1" in out
        assert "ordered:  yes" in out

    def test_unordered_file_fails(self, tmp_path, capsys):
        from repro.stream.tuples import DataTuple

        path = tmp_path / "bad.jsonl"
        elements = [DataTuple("s", 1, {"v": 1}, 5.0),
                    DataTuple("s", 2, {"v": 2}, 1.0)]
        path.write_text("\n".join(encode_element(e) for e in elements))
        assert main(["wire", str(path)]) == 1

    def test_missing_file(self, capsys):
        assert main(["wire", "/nonexistent/file.jsonl"]) == 2

class TestStatsCommand:
    def test_demo_stream_table(self, capsys):
        code = main(["stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Per-operator stage metrics" in out
        assert "SecurityShield" in out
        assert "elements in:  5" in out
        assert "drops:        1" in out
        assert "analyzer:" in out

    def test_wire_file_input(self, tmp_path, capsys):
        from repro.core.punctuation import SecurityPunctuation
        from repro.stream.tuples import DataTuple

        path = tmp_path / "stream.jsonl"
        elements = [
            SecurityPunctuation.grant(["ND"], ts=0.0),
            DataTuple("s", 1, {"v": 1}, 1.0),
            DataTuple("s", 2, {"v": 2}, 2.0),
        ]
        path.write_text("\n".join(encode_element(e) for e in elements))
        code = main(["stats", str(path), "--roles", "ND"])
        out = capsys.readouterr().out
        assert code == 0
        assert "delivered:    2 tuples" in out

    def test_multi_stream_file_rejected(self, tmp_path, capsys):
        from repro.stream.tuples import DataTuple

        path = tmp_path / "multi.jsonl"
        elements = [DataTuple("a", 1, {"v": 1}, 1.0),
                    DataTuple("b", 2, {"v": 2}, 2.0)]
        path.write_text("\n".join(encode_element(e) for e in elements))
        assert main(["stats", str(path)]) == 2
        assert "multiple stream ids" in capsys.readouterr().err


class TestAuditCommand:
    def test_demo_stream_trail(self, capsys):
        code = main(["audit"])
        out = capsys.readouterr().out
        assert code == 0
        assert "shield.drop" in out
        assert "recorded:" in out

    def test_explain_tuple(self, capsys):
        code = main(["audit", "--explain", "120"])
        out = capsys.readouterr().out
        assert code == 0
        assert "tuple=HeartRate:120" in out

    def test_explain_unknown_tuple(self, capsys):
        assert main(["audit", "--explain", "999"]) == 1

    def test_kind_filter(self, capsys):
        code = main(["audit", "--kind", "shield.segment"])
        out = capsys.readouterr().out
        assert code == 0
        assert "shield.segment" in out
        assert "shield.drop {" not in out

    def test_jsonl_export(self, tmp_path, capsys):
        import json

        path = tmp_path / "audit.jsonl"
        code = main(["audit", "--jsonl", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "wrote" in out
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert any(r["kind"] == "shield.drop" for r in records)


class TestMetricsCommand:
    def test_prom_output_parses(self, capsys):
        from repro.observability.export import parse_prometheus

        code = main(["metrics", "--format", "prom"])
        out = capsys.readouterr().out
        assert code == 0
        samples = parse_prometheus(out)
        assert any(name.startswith("repro_policy_propagation_seconds")
                   for name in samples)
        assert any(name.startswith("repro_operator_latency_seconds")
                   for name in samples)
        assert any(name.startswith("repro_shield_tuples_total")
                   for name in samples)

    def test_json_output(self, capsys):
        import json

        code = main(["metrics", "--format", "json"])
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)
        assert doc["repro_elements_total"]["kind"] == "counter"
        assert "repro_tuple_latency_seconds" in doc

    def test_wire_file_input(self, tmp_path, capsys):
        from repro.core.punctuation import SecurityPunctuation
        from repro.observability.export import parse_prometheus
        from repro.stream.tuples import DataTuple

        path = tmp_path / "stream.jsonl"
        elements = [
            SecurityPunctuation.grant(["ND"], ts=0.0),
            DataTuple("s", 1, {"v": 1}, 1.0),
            DataTuple("s", 2, {"v": 2}, 2.0),
        ]
        path.write_text("\n".join(encode_element(e) for e in elements))
        code = main(["metrics", str(path), "--roles", "ND"])
        out = capsys.readouterr().out
        assert code == 0
        samples = parse_prometheus(out)
        tuples = [value for labels, value
                  in samples["repro_elements_total"]
                  if labels["kind"] == "tuple"]
        assert tuples == [2.0]


class TestMonitorCommand:
    def test_renders_frames_over_demo_stream(self, capsys):
        code = main(["monitor", "--frames", "2", "--interval", "0",
                     "--no-clear"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("repro monitor") >= 2
        assert "latency (seconds)" in out
        assert "security" in out
        assert "health" in out

    def test_clear_mode_emits_ansi(self, capsys):
        code = main(["monitor", "--frames", "1", "--interval", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "\x1b[H\x1b[J" in out

    def test_wire_file_input(self, tmp_path, capsys):
        from repro.core.punctuation import SecurityPunctuation
        from repro.stream.tuples import DataTuple

        path = tmp_path / "stream.jsonl"
        elements = [
            SecurityPunctuation.grant(["ND"], ts=0.0),
            DataTuple("s", 1, {"v": 1}, 1.0),
            DataTuple("s", 2, {"v": 2}, 2.0),
        ]
        path.write_text("\n".join(encode_element(e) for e in elements))
        code = main(["monitor", str(path), "--roles", "ND",
                     "--frames", "1", "--interval", "0", "--no-clear"])
        out = capsys.readouterr().out
        assert code == 0
        assert "elements: 2 tuples, 1 sps" in out
