"""Moderate-scale end-to-end smoke: many objects, many segments.

The paper's testbed streams 110K moving objects; full scale is a
benchmark concern, but the engine must comfortably digest thousands of
objects with per-segment policy churn inside a unit-test budget, with
exact enforcement throughout.
"""

from repro.algebra.expressions import ScanExpr
from repro.engine.dsms import DSMS
from repro.mog.generator import MovingObjectsGenerator
from repro.operators.shield import SecurityShield
from repro.stream.element import count_elements
from repro.stream.tuples import DataTuple
from repro.workloads.synthetic import QUERY_ROLE, punctuated_stream


class TestScale:
    def test_thousand_object_fleet_through_dsms(self):
        generator = MovingObjectsGenerator(
            n_objects=1000, tuples_per_sp=20,
            roles=("family", "retail"), roles_per_policy=1, seed=71)
        elements = generator.materialize(n_ticks=4)
        n_tuples, n_sps = count_elements(elements)
        assert n_tuples == 4000

        dsms = DSMS()
        dsms.register_stream(generator.schema, elements)
        dsms.register_query("family", ScanExpr("locations"),
                            roles={"family"})
        dsms.register_query("retail", ScanExpr("locations"),
                            roles={"retail"})
        results = dsms.run()
        family = len(results["family"].tuples)
        retail = len(results["retail"].tuples)
        # Single-role policies partition the stream between the roles.
        assert family + retail == n_tuples
        assert family > 0 and retail > 0

    def test_fifty_thousand_tuples_through_shield(self):
        """Raw shield throughput at 50k tuples with 5k policy segments
        stays well inside a second-scale unit-test budget and enforces
        exactly."""
        elements = list(punctuated_stream(
            50_000, tuples_per_sp=10, policy_size=3,
            accessible_fraction=0.5, seed=73))
        shield = SecurityShield([QUERY_ROLE])
        passed = 0
        for element in elements:
            for out in shield.process(element):
                if isinstance(out, DataTuple):
                    passed += 1
        assert passed == shield.stats.tuples_out
        assert passed + shield.tuples_blocked == 50_000
        # ~half the segments are accessible.
        assert 0.35 < passed / 50_000 < 0.65
