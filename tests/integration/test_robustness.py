"""Failure injection and robustness tests."""

import pytest

from repro.algebra.expressions import ScanExpr
from repro.core.punctuation import (DataDescription, SecurityPunctuation,
                                    SecurityRestriction)
from repro.engine.dsms import DSMS
from repro.engine.plan import PhysicalPlan
from repro.errors import PlanError, PunctuationError
from repro.operators.conditions import Comparison
from repro.operators.select import Select
from repro.operators.shield import SecurityShield
from repro.operators.sink import CollectingSink
from repro.stream.schema import StreamSchema
from repro.stream.tuples import DataTuple

SCHEMA = StreamSchema("s", ("v",))


def tup(tid, ts, **values):
    return DataTuple("s", tid, values or {"v": tid}, ts)


class TestMalformedPolicies:
    def test_unresolved_open_pattern_sp_fails_closed(self):
        """An sp with an open role pattern that skipped the analyzer
        raises rather than silently granting or denying wrongly."""
        shield = SecurityShield(["D"])
        raw_sp = SecurityPunctuation(
            ddp=DataDescription(),
            srp=SecurityRestriction.parse("/r[0-9]+/"),
            ts=1.0)
        shield.process(raw_sp)
        with pytest.raises(PunctuationError):
            shield.process(tup(1, 2.0))

    def test_analyzer_makes_open_patterns_safe(self):
        """The same sp routed through the DSMS (analyzer) is fine."""
        from repro.core.bitmap import RoleUniverse

        universe = RoleUniverse(["r1", "r2", "D"])
        dsms = DSMS(universe=universe)
        raw_sp = SecurityPunctuation(
            ddp=DataDescription(),
            srp=SecurityRestriction.parse("/r[0-9]+/"),
            ts=1.0, provider="p")
        dsms.register_stream(SCHEMA, [raw_sp, tup(1, 2.0)])
        dsms.register_query("q", ScanExpr("s"), roles={"r1"})
        results = dsms.run()
        assert [t.tid for t in results["q"].tuples] == [1]


class TestDegenerateInputs:
    def test_tuple_missing_condition_attribute(self):
        select = Select(Comparison("missing", ">", 1))
        assert select.process(tup(1, 1.0)) == []

    def test_incomparable_types_fail_closed(self):
        select = Select(Comparison("v", "<", 10))
        assert select.process(tup(1, 1.0, v="not-a-number")) == []

    def test_empty_stream_run(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA, [])
        dsms.register_query("q", ScanExpr("s"), roles={"D"})
        assert dsms.run()["q"].tuples == []

    def test_sp_only_stream(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA, [
            SecurityPunctuation.grant(["D"], ts=float(i), provider="p")
            for i in range(10)
        ])
        dsms.register_query("q", ScanExpr("s"), roles={"D"})
        assert dsms.run()["q"].tuples == []

    def test_unknown_stream_elements_ignored(self):
        """Elements for streams no query reads are simply dropped."""
        from repro.engine.executor import Executor
        from repro.stream.source import ListSource

        plan = PhysicalPlan()
        sink = plan.compile_expr(ScanExpr("s").shield({"D"}),
                                 CollectingSink())
        other = ListSource(StreamSchema("other", ("v",)),
                           [DataTuple("other", 1, {"v": 1}, 1.0)])
        report = Executor(plan, [other]).run()
        assert report.elements_in == 1
        assert sink.operator.elements == []


class TestPlanValidation:
    def test_cycle_detected(self):
        plan = PhysicalPlan()
        a = plan.add(Select(Comparison("v", ">", 0)))
        b = plan.add(Select(Comparison("v", ">", 0)))
        plan.connect(a, b)
        plan.connect(b, a)
        with pytest.raises(PlanError):
            plan.topological()

    def test_invalid_port_on_process(self):
        shield = SecurityShield(["D"])
        with pytest.raises(PlanError):
            shield.process(tup(1, 1.0), port=3)

    def test_compile_chain_requires_operators(self):
        plan = PhysicalPlan()
        with pytest.raises(PlanError):
            plan.compile_chain(ScanExpr("s"), [])


class TestStatsAccounting:
    def test_operator_stats_track_elements(self):
        shield = SecurityShield(["D"])
        shield.process(SecurityPunctuation.grant(["D"], ts=0.0))
        shield.process(tup(1, 1.0))
        shield.process(tup(2, 2.0))
        assert shield.stats.sps_in == 1
        assert shield.stats.tuples_in == 2
        assert shield.stats.tuples_out == 2
        assert shield.stats.sps_out == 1
        assert shield.stats.processing_time > 0
        snapshot = shield.stats.snapshot()
        assert snapshot["tuples_in"] == 2
        shield.stats.reset()
        assert shield.stats.tuples_in == 0
