"""End-to-end scenarios from the paper's motivating examples."""

from repro.algebra.expressions import ScanExpr
from repro.core.patterns import literal
from repro.core.punctuation import SecurityPunctuation
from repro.engine.dsms import DSMS
from repro.mog.generator import MovingObjectsGenerator
from repro.operators.conditions import Comparison, FuncCondition
from repro.stream.schema import StreamSchema
from repro.stream.tuples import DataTuple
from repro.workloads.health import (HEART_RATE_SCHEMA,
                                    HealthStreamGenerator)


class TestHealthMonitoring:
    """Example 2: privacy protection of personal health data."""

    def _dsms(self, n_patients=6, n_readings=20, seed=11):
        generator = HealthStreamGenerator(n_patients=n_patients, seed=seed)
        dsms = DSMS()
        dsms.register_stream(HEART_RATE_SCHEMA,
                             list(generator.heart_rate(n_readings)))
        return dsms

    def test_doctor_sees_all_insurance_sees_nothing(self):
        dsms = self._dsms()
        dsms.register_query("doctor", ScanExpr("HeartRate"), roles={"D"})
        dsms.register_query("insurance", ScanExpr("HeartRate"),
                            roles={"INSURER"})
        results = dsms.run()
        assert len(results["doctor"].tuples) > 0
        assert results["insurance"].tuples == []

    def test_er_sees_only_emergencies(self):
        dsms = self._dsms()
        dsms.register_query("er", ScanExpr("HeartRate"), roles={"E"})
        dsms.register_query("doctor", ScanExpr("HeartRate"), roles={"D"})
        results = dsms.run()
        er_readings = results["er"].tuples
        assert er_readings, "expected at least one emergency"
        assert all(t.values["beats_per_min"] >= 140.0 for t in er_readings)
        assert len(er_readings) < len(results["doctor"].tuples)

    def test_alert_query_composition(self):
        dsms = self._dsms()
        alert = ScanExpr("HeartRate").select(
            Comparison("beats_per_min", ">", 100))
        dsms.register_query("alerts", alert, roles={"D"})
        results = dsms.run()
        assert all(t.values["beats_per_min"] > 100
                   for t in results["alerts"].tuples)


class TestLocationPrivacy:
    """Example 1: protection against context-aware spam."""

    def test_store_only_sees_consenting_objects(self):
        generator = MovingObjectsGenerator(
            n_objects=20, roles=("family", "work", "retail"),
            roles_per_policy=1, policy_mode="per-object",
            preference_change_prob=0.1, seed=13)
        elements = generator.materialize(n_ticks=5)
        dsms = DSMS()
        dsms.register_stream(generator.schema, elements)

        in_region = FuncCondition(
            lambda t: t.values["x"] ** 2 + t.values["y"] ** 2 >= 0,
            attributes=("x", "y"), label="region")
        query = ScanExpr("locations").select(in_region)
        dsms.register_query("store", query, roles={"retail"})
        dsms.register_query("family", query, roles={"family"})
        results = dsms.run()

        # Rebuild ground truth from the raw stream: tuple i is governed
        # by the sp immediately preceding it.
        visible_to = {"retail": [], "family": []}
        current = None
        for element in elements:
            if isinstance(element, SecurityPunctuation):
                current = element
            else:
                for role in visible_to:
                    if current is not None and role in current.roles():
                        visible_to[role].append(
                            (element.tid, element.ts))
        got_store = [(t.tid, t.ts) for t in results["store"].tuples]
        got_family = [(t.tid, t.ts) for t in results["family"].tuples]
        assert got_store == visible_to["retail"]
        assert got_family == visible_to["family"]
        assert got_store  # scenario is non-trivial
        assert set(got_store) != set(got_family)


class TestAttributeGranularity:
    """The paper's attribute-level policy example."""

    def test_attribute_scoped_policy_guards_column(self):
        schema = StreamSchema("vitals", ("patient", "temp", "room"))
        elements = [
            # patient readable by both; temp by D only; room by E only.
            SecurityPunctuation.grant(["D", "E"], ts=0.0,
                                      attribute=literal("patient")),
            SecurityPunctuation.grant(["D"], ts=0.0,
                                      attribute=literal("temp")),
            SecurityPunctuation.grant(["E"], ts=0.0,
                                      attribute=literal("room")),
            DataTuple("vitals", 1,
                      {"patient": 1, "temp": 98.6, "room": 12}, 1.0),
        ]
        dsms = DSMS()
        dsms.register_stream(schema, elements)
        dsms.register_query("temp_q",
                            ScanExpr("vitals").project(["temp"]),
                            roles={"D"})
        dsms.register_query("room_q",
                            ScanExpr("vitals").project(["room"]),
                            roles={"D"})
        results = dsms.run()
        assert len(results["temp_q"].tuples) == 1
        assert results["room_q"].tuples == []
