"""The example scripts must run clean end-to-end (they self-assert)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    assert "OK:" in proc.stdout
