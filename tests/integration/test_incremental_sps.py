"""Incremental (delta) security punctuations — paper future work.

An incremental sp-batch edits the current policy instead of replacing
it: positive sps add their roles, negative sps retract theirs.  These
tests cover the tracker semantics, the shield, joins, the analyzer,
CQL declaration and the wire format.
"""

import pytest

from repro.core.analyzer import SPAnalyzer
from repro.core.policy import apply_incremental_batch
from repro.core.punctuation import SecurityPunctuation
from repro.cql.translator import compile_statement
from repro.errors import PolicyError
from repro.operators.index_join import IndexSAJoin
from repro.operators.shield import SecurityShield
from repro.stream.tuples import DataTuple
from repro.stream.wire import decode_element, encode_element


def grant(roles, ts, **kwargs):
    return SecurityPunctuation.grant(roles, ts, **kwargs)


def add(roles, ts):
    return SecurityPunctuation.add_roles(roles, ts)


def retract(roles, ts):
    return SecurityPunctuation.retract_roles(roles, ts)


def tup(tid, ts, sid="s1", **values):
    return DataTuple(sid, tid, values or {"v": tid}, ts)


def drive(op, elements, port=None):
    out = []
    for element in elements:
        out.extend(op.process(element)
                   if port is None else op.process(element, port))
    return out


def tids(elements):
    return [e.tid for e in elements if isinstance(e, DataTuple)]


class TestBatchApplication:
    def test_add_and_retract(self):
        batch = [add(["C"], 5.0), retract(["ND"], 5.0)]
        out = apply_incremental_batch(frozenset({"D", "ND"}), batch)
        assert len(out) == 1
        assert out[0].roles() == frozenset({"D", "C"})
        assert out[0].ts == 5.0

    def test_order_matters(self):
        # Retract then re-add: the role survives.
        batch = [retract(["D"], 5.0), add(["D"], 5.0)]
        out = apply_incremental_batch(frozenset({"D"}), batch)
        assert out[0].roles() == frozenset({"D"})
        # Add then retract: it does not.
        batch = [add(["D"], 5.0), retract(["D"], 5.0)]
        out = apply_incremental_batch(frozenset(), batch)
        assert not out[0].is_positive  # deny-all marker

    def test_retract_everything_denies_all(self):
        out = apply_incremental_batch(frozenset({"D"}),
                                      [retract(["D"], 5.0)])
        assert len(out) == 1
        assert not out[0].is_positive
        assert out[0].srp.roles.is_wildcard()

    def test_scoped_delta_rejected(self):
        from repro.core.patterns import literal
        scoped = SecurityPunctuation.grant(
            ["C"], 5.0, tuple_id=literal(7), incremental=True)
        with pytest.raises(PolicyError):
            apply_incremental_batch(frozenset(), [scoped])


class TestShieldWithDeltas:
    def test_er_admitted_then_removed(self):
        """The motivating scenario: vitals spike, the ER is admitted on
        top of the standing policy, then dropped again — all without
        restating the doctor's access."""
        shield = SecurityShield(["E"])
        out = drive(shield, [
            grant(["D"], 1.0), tup(1, 2.0),
            add(["E"], 3.0), tup(2, 4.0),      # emergency: ER admitted
            retract(["E"], 5.0), tup(3, 6.0),  # recovered: ER dropped
        ])
        assert tids(out) == [2]

    def test_standing_roles_unaffected(self):
        shield = SecurityShield(["D"])
        out = drive(shield, [
            grant(["D"], 1.0), tup(1, 2.0),
            add(["E"], 3.0), tup(2, 4.0),
            retract(["E"], 5.0), tup(3, 6.0),
        ])
        assert tids(out) == [1, 2, 3]

    def test_delta_before_any_policy_starts_from_empty(self):
        shield = SecurityShield(["D"])
        out = drive(shield, [add(["D"], 1.0), tup(1, 2.0)])
        assert tids(out) == [1]

    def test_mixed_batch_rejected(self):
        shield = SecurityShield(["D"])
        shield.process(grant(["D"], 1.0))
        shield.process(add(["E"], 1.0))
        with pytest.raises(PolicyError):
            shield.process(tup(1, 2.0))


class TestJoinWithDeltas:
    def test_delta_opens_new_segment_on_base_policy(self):
        join = IndexSAJoin("v", "v", 100.0)
        out = []
        out += drive(join, [grant(["D"], 1.0),
                            tup(1, 2.0, sid="left", v=7)], port=0)
        out += drive(join, [grant(["E"], 1.0),
                            tup(2, 3.0, sid="right", v=7)], port=1)
        assert out == []  # D vs E: incompatible
        out += drive(join, [add(["E"], 4.0),
                            tup(3, 5.0, sid="left", v=7)], port=0)
        # Left's policy is now {D, E}: compatible with right's {E}.
        assert tids(out) == [(3, 2)]


class TestAnalyzerWithDeltas:
    def test_server_refines_added_roles(self):
        analyzer = SPAnalyzer()
        analyzer.add_server_policy(SecurityPunctuation.grant(["D", "E"],
                                                             ts=0.0))
        out = analyzer.process_batch([add(["E", "X"], 1.0)])
        assert len(out) == 1
        assert out[0].incremental
        assert out[0].roles() == frozenset({"E"})

    def test_noop_delta_emits_nothing(self):
        """A delta refined away adds nobody: the current policy stays
        (unlike an absolute batch, which must become deny-all)."""
        analyzer = SPAnalyzer()
        analyzer.add_server_policy(SecurityPunctuation.grant(["D"], ts=0.0))
        assert analyzer.process_batch([add(["X"], 1.0)]) == []


class TestDeclarationAndWire:
    def test_cql_incremental_binding(self):
        sp = compile_statement(
            "INSERT SP INTO STREAM hr LET DDP = '*', SRP = 'E', "
            "INCREMENTAL = TRUE, TIMESTAMP = 3")
        assert sp.incremental
        assert sp.roles() == frozenset({"E"})

    def test_text_round_trip(self):
        sp = add(["E"], 3.0)
        assert "| INC>" in sp.to_text()
        back = SecurityPunctuation.parse(sp.to_text())
        assert back.incremental
        assert back.roles() == frozenset({"E"})

    def test_wire_round_trip(self):
        sp = retract(["ND"], 4.0)
        back = decode_element(encode_element(sp))
        assert back.incremental
        assert not back.is_positive
