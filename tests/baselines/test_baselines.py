"""Tests for the store-and-probe and tuple-embedded baselines."""

from repro.baselines.store_and_probe import (PolicyTable,
                                             StoreAndProbeEnforcer,
                                             persistent_table_bytes)
from repro.baselines.tuple_embedded import (TupleEmbeddedEnforcer,
                                            embed_policies)
from repro.core.bitmap import RoleUniverse
from repro.core.patterns import literal, numeric_range
from repro.core.punctuation import SecurityPunctuation
from repro.stream.tuples import DataTuple


def grant(roles, ts, **kwargs):
    return SecurityPunctuation.grant(roles, ts, **kwargs)


def tup(tid, ts, sid="s1"):
    return DataTuple(sid, tid, {"v": tid}, ts)


class TestPolicyTable:
    def test_exact_tid_policy(self):
        table = PolicyTable()
        table.store(grant(["D"], 0.0, stream=literal("s1"),
                          tuple_id=literal(7)))
        assert table.probe(tup(7, 1.0)).roles.names() == frozenset({"D"})
        assert table.probe(tup(8, 1.0)).is_empty()

    def test_pattern_policy_scanned(self):
        table = PolicyTable()
        table.store(grant(["GP"], 0.0, tuple_id=numeric_range(120, 133)))
        assert table.probe(tup(125, 1.0)).roles.names() == frozenset({"GP"})
        assert table.probe(tup(200, 1.0)).is_empty()
        assert table.scan_steps > 0

    def test_override_by_newer_ts(self):
        table = PolicyTable()
        table.store(grant(["D"], 0.0))
        table.store(grant(["C"], 5.0))
        assert table.probe(tup(1, 6.0)).roles.names() == frozenset({"C"})
        assert table.policy_count() == 1  # same DDP: replaced

    def test_same_ts_policies_union(self):
        table = PolicyTable()
        table.store(grant(["D"], 1.0, stream=literal("s1")))
        table.store(grant(["C"], 1.0, tuple_id=literal(1)))
        roles = table.probe(tup(1, 2.0)).roles.names()
        assert roles == frozenset({"D", "C"})

    def test_update_counter(self):
        table = PolicyTable()
        table.store(grant(["D"], 0.0))
        table.store(grant(["D"], 1.0))
        assert table.updates == 2

    def test_persistent_size_is_page_granular(self):
        table = PolicyTable()
        empty = persistent_table_bytes(table)
        assert empty % 8192 == 0
        table.store(grant(["D"], 0.0))
        assert persistent_table_bytes(table) >= empty


class TestStoreAndProbeEnforcer:
    def test_enforcement(self):
        enforcer = StoreAndProbeEnforcer(["D"])
        elements = [grant(["D"], 0.0), tup(1, 1.0),
                    grant(["C"], 2.0), tup(2, 3.0)]
        out = list(enforcer.ingest(elements))
        assert [t.tid for t in out] == [1]
        assert enforcer.tuples_in == 2
        assert enforcer.tuples_out == 1


class TestTupleEmbedded:
    def test_each_tuple_gets_policy_copy(self):
        elements = [grant(["D", "ND"], 0.0), tup(1, 1.0), tup(2, 2.0)]
        embedded = list(embed_policies(elements))
        assert len(embedded) == 2
        assert all(pt.policy.names() == frozenset({"D", "ND"})
                   for pt in embedded)
        # Copies, not shared objects — the architecture's redundancy.
        assert embedded[0].policy is not embedded[1].policy

    def test_batch_union_and_override(self):
        elements = [
            grant(["D"], 0.0), grant(["ND"], 0.0),  # one batch: union
            tup(1, 1.0),
            grant(["C"], 2.0),  # newer ts: override
            tup(2, 3.0),
        ]
        embedded = list(embed_policies(elements))
        assert embedded[0].policy.names() == frozenset({"D", "ND"})
        assert embedded[1].policy.names() == frozenset({"C"})

    def test_tuple_before_sp_gets_empty_policy(self):
        embedded = list(embed_policies([tup(1, 1.0)]))
        assert embedded[0].policy.is_empty()

    def test_bitmap_mode(self):
        universe = RoleUniverse()
        elements = [grant(["D"], 0.0), tup(1, 1.0)]
        embedded = list(embed_policies(elements, universe=universe,
                                       bitmap=True))
        assert embedded[0].policy.names() == frozenset({"D"})
        assert type(embedded[0].policy).__name__ == "RoleBitmap"

    def test_enforcer(self):
        elements = [grant(["D"], 0.0), tup(1, 1.0),
                    grant(["C"], 2.0), tup(2, 3.0)]
        enforcer = TupleEmbeddedEnforcer(["C"])
        out = list(enforcer.ingest(embed_policies(elements)))
        assert [t.tid for t in out] == [2]
        assert enforcer.checks == 2


class TestMechanismAgreement:
    def test_all_three_agree(self):
        """The three enforcement mechanisms produce identical outputs."""
        from repro.operators.shield import SecurityShield

        elements = []
        ts = 0.0
        for segment in range(20):
            ts += 1.0
            roles = ["D"] if segment % 3 == 0 else ["C"]
            elements.append(grant(roles, ts))
            for item in range(5):
                ts += 1.0
                elements.append(tup(segment * 10 + item, ts))

        sp_out = []
        shield = SecurityShield(["D"])
        for element in elements:
            for out in shield.process(element):
                if isinstance(out, DataTuple):
                    sp_out.append(out.tid)

        sap = StoreAndProbeEnforcer(["D"])
        sap_out = [t.tid for t in sap.ingest(elements)]

        te = TupleEmbeddedEnforcer(["D"])
        te_out = [t.tid for t in te.ingest(embed_policies(elements))]

        assert sp_out == sap_out == te_out
        assert sp_out  # non-trivial
