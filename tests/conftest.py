"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.stream.schema import StreamSchema


@pytest.fixture
def hr_schema() -> StreamSchema:
    """The paper's HeartRate stream schema (Figure 4)."""
    return StreamSchema("HeartRate", ("patient_id", "beats_per_min"),
                        key="patient_id")
