"""Tests for CQL → logical plan / sp translation."""

import pytest

from repro.algebra.expressions import (DupElimExpr, GroupByExpr, JoinExpr,
                                       ProjectExpr, ScanExpr, SelectExpr)
from repro.cql.translator import compile_statement
from repro.core.punctuation import SecurityPunctuation, Sign
from repro.errors import CQLSyntaxError


class TestSelectTranslation:
    def test_select_project(self):
        expr = compile_statement("SELECT a, b FROM s WHERE a > 1")
        assert isinstance(expr, ProjectExpr)
        assert expr.attributes == ("a", "b")
        assert isinstance(expr.input, SelectExpr)
        assert isinstance(expr.input.input, ScanExpr)

    def test_star_skips_projection(self):
        expr = compile_statement("SELECT * FROM s")
        assert isinstance(expr, ScanExpr)

    def test_join_from_two_streams(self):
        expr = compile_statement(
            "SELECT x FROM s1 RANGE 10 AS a, s2 RANGE 10 AS b "
            "WHERE a.k = b.k")
        assert isinstance(expr, ProjectExpr)
        join = expr.input
        assert isinstance(join, JoinExpr)
        assert join.left_on == "k" and join.right_on == "k"
        assert join.window == 10.0

    def test_join_with_local_predicate(self):
        expr = compile_statement(
            "SELECT x FROM s1 RANGE 10 AS a, s2 RANGE 10 AS b "
            "WHERE a.k = b.k AND x > 3")
        select = expr.input
        assert isinstance(select, SelectExpr)
        assert isinstance(select.input, JoinExpr)

    def test_join_requires_equality(self):
        with pytest.raises(CQLSyntaxError):
            compile_statement("SELECT x FROM a, b WHERE x > 1")

    def test_three_streams_rejected(self):
        with pytest.raises(CQLSyntaxError):
            compile_statement("SELECT x FROM a, b, c WHERE a.k = b.k")

    def test_aggregate_group_by(self):
        expr = compile_statement(
            "SELECT avg(bpm) FROM hr RANGE 30 GROUP BY patient")
        assert isinstance(expr, GroupByExpr)
        assert expr.key == "patient"
        assert expr.agg == "avg"
        assert expr.window == 30.0

    def test_group_by_without_aggregate_rejected(self):
        with pytest.raises(CQLSyntaxError):
            compile_statement("SELECT x FROM s GROUP BY x")

    def test_distinct(self):
        expr = compile_statement("SELECT DISTINCT a FROM s RANGE 20")
        assert isinstance(expr, DupElimExpr)
        assert expr.attributes == ("a",)
        assert expr.window == 20.0

    def test_where_semantics(self):
        """Translated conditions actually evaluate correctly."""
        from repro.stream.tuples import DataTuple
        expr = compile_statement(
            "SELECT x FROM s WHERE x >= 2 AND NOT x = 5")
        condition = expr.input.condition
        assert condition(DataTuple("s", 0, {"x": 3}, 0.0))
        assert not condition(DataTuple("s", 0, {"x": 5}, 0.0))
        assert not condition(DataTuple("s", 0, {"x": 1}, 0.0))


class TestInsertSPTranslation:
    def test_basic(self):
        sp = compile_statement(
            "INSERT SP INTO STREAM hr LET DDP = '*, [120-133], *', "
            "SRP = '{GP, D}', TIMESTAMP = 5", provider="patient7")
        assert isinstance(sp, SecurityPunctuation)
        assert sp.roles() == frozenset({"GP", "D"})
        assert sp.ts == 5.0
        assert sp.provider == "patient7"
        # The target stream is folded into the wildcard stream pattern.
        assert sp.describes("hr", 125)
        assert not sp.describes("other", 125)

    def test_explicit_stream_pattern_kept(self):
        sp = compile_statement(
            "INSERT SP INTO STREAM hr "
            "LET DDP = '{hr, temp}, *, *', SRP = 'D'")
        assert sp.describes("temp", 1)

    def test_negative_immutable(self):
        sp = compile_statement(
            "INSERT SP INTO STREAM hr LET DDP = '*', SRP = 'E', "
            "SIGN = NEGATIVE, IMMUTABLE = TRUE")
        assert sp.sign is Sign.NEGATIVE
        assert sp.immutable

    def test_default_ts(self):
        sp = compile_statement(
            "INSERT SP INTO STREAM hr LET DDP = '*', SRP = 'D'",
            default_ts=42.0)
        assert sp.ts == 42.0


class TestEndToEndCQL:
    def test_cql_query_runs_on_dsms(self):
        from repro.engine.dsms import DSMS
        from repro.stream.schema import StreamSchema
        from repro.stream.tuples import DataTuple

        dsms = DSMS()
        dsms.register_stream(
            StreamSchema("hr", ("patient", "bpm")), [
                compile_statement(
                    "INSERT SP INTO STREAM hr LET DDP = '*', SRP = 'D', "
                    "TIMESTAMP = 0", provider="p"),
                DataTuple("hr", 1, {"patient": 1, "bpm": 95}, 1.0),
                DataTuple("hr", 2, {"patient": 2, "bpm": 60}, 2.0),
            ])
        expr = compile_statement("SELECT patient FROM hr WHERE bpm > 80")
        dsms.register_query("q", expr, roles={"D"})
        results = dsms.run()
        assert [t.values["patient"] for t in results["q"].tuples] == [1]


class TestUnionStatements:
    def test_union_parses_and_translates(self):
        from repro.algebra.expressions import UnionExpr
        expr = compile_statement(
            "SELECT v FROM a WHERE v > 1 UNION SELECT v FROM b")
        assert isinstance(expr, UnionExpr)

    def test_three_way_union_left_deep(self):
        from repro.algebra.expressions import UnionExpr
        expr = compile_statement(
            "SELECT v FROM a UNION SELECT v FROM b UNION SELECT v FROM c")
        assert isinstance(expr, UnionExpr)
        assert isinstance(expr.left, UnionExpr)

    def test_union_executes_with_policies(self):
        from repro.core.punctuation import SecurityPunctuation
        from repro.engine.dsms import DSMS
        from repro.stream.schema import StreamSchema
        from repro.stream.tuples import DataTuple

        dsms = DSMS()
        dsms.register_stream(StreamSchema("a", ("v",)), [
            SecurityPunctuation.grant(["D"], ts=0.0, provider="p"),
            DataTuple("a", 1, {"v": 1}, 1.0),
        ])
        dsms.register_stream(StreamSchema("b", ("v",)), [
            SecurityPunctuation.grant(["C"], ts=0.0, provider="p"),
            DataTuple("b", 2, {"v": 2}, 2.0),
        ])
        expr = compile_statement("SELECT v FROM a UNION SELECT v FROM b")
        dsms.register_query("doc", expr, roles={"D"})
        dsms.register_query("both", expr, roles={"D", "C"})
        results = dsms.run()
        assert [t.tid for t in results["doc"].tuples] == [1]
        assert sorted(t.tid for t in results["both"].tuples) == [1, 2]
