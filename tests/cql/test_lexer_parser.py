"""Tests for the CQL lexer and parser."""

import pytest

from repro.cql.ast import (AggregateItem, ComparisonAST, InsertSPStatement,
                           LogicalAST, SelectItem, SelectStatement)
from repro.cql.lexer import TokenType, tokenize
from repro.cql.parser import parse, parse_insert_sp, parse_select
from repro.errors import CQLSyntaxError


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        token = tokenize("HeartRate")[0]
        assert token.type is TokenType.IDENT
        assert token.value == "HeartRate"

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert [t.value for t in tokens[:-1]] == ["42", "3.14"]
        assert all(t.type is TokenType.NUMBER for t in tokens[:-1])

    def test_strings_both_quotes(self):
        tokens = tokenize("'abc' \"def\"")
        assert [t.value for t in tokens[:-1]] == ["abc", "def"]

    def test_operators_longest_match(self):
        tokens = tokenize("a <= b <> c")
        ops = [t.value for t in tokens if t.type is TokenType.OP]
        assert ops == ["<=", "<>"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- a comment\n x")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "x"]

    def test_unterminated_string(self):
        with pytest.raises(CQLSyntaxError):
            tokenize("'oops")

    def test_unexpected_character(self):
        with pytest.raises(CQLSyntaxError):
            tokenize("SELECT @")

    def test_positions_tracked(self):
        error = None
        try:
            tokenize("SELECT\n  @")
        except CQLSyntaxError as exc:
            error = exc
        assert error is not None
        assert error.line == 2


class TestSelectParsing:
    def test_simple_select(self):
        statement = parse_select("SELECT a, b FROM s")
        assert statement.items == [SelectItem("a"), SelectItem("b")]
        assert statement.streams[0].name == "s"
        assert statement.where is None

    def test_star(self):
        statement = parse_select("SELECT * FROM s")
        assert statement.items == [SelectItem("*")]

    def test_range_and_alias(self):
        statement = parse_select("SELECT x FROM s RANGE 60 AS a")
        ref = statement.streams[0]
        assert ref.window == 60.0
        assert ref.alias == "a"

    def test_where_conjunction(self):
        statement = parse_select(
            "SELECT x FROM s WHERE x > 1 AND y = 'abc'")
        assert isinstance(statement.where, LogicalAST)
        assert statement.where.op == "AND"
        comparison = statement.where.parts[1]
        assert comparison.rhs == "abc"

    def test_or_and_precedence(self):
        statement = parse_select(
            "SELECT x FROM s WHERE a = 1 OR b = 2 AND c = 3")
        assert statement.where.op == "OR"
        assert statement.where.parts[1].op == "AND"

    def test_parenthesized(self):
        statement = parse_select(
            "SELECT x FROM s WHERE (a = 1 OR b = 2) AND c = 3")
        assert statement.where.op == "AND"

    def test_not(self):
        statement = parse_select("SELECT x FROM s WHERE NOT a = 1")
        from repro.cql.ast import NotAST
        assert isinstance(statement.where, NotAST)

    def test_column_comparison(self):
        statement = parse_select("SELECT x FROM a, b WHERE a.k = b.k")
        comparison = statement.where
        assert isinstance(comparison, ComparisonAST)
        assert comparison.rhs_is_column

    def test_aggregate_and_group_by(self):
        statement = parse_select(
            "SELECT avg(bpm) FROM hr RANGE 30 GROUP BY patient")
        assert statement.items == [AggregateItem("avg", "bpm")]
        assert statement.group_by == "patient"

    def test_count_star(self):
        statement = parse_select("SELECT count(*) FROM s")
        assert statement.items == [AggregateItem("count", "*")]

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT x FROM s").distinct

    def test_trailing_garbage_rejected(self):
        with pytest.raises(CQLSyntaxError):
            parse_select("SELECT x FROM s JUNK extra")

    def test_wrong_statement_type(self):
        with pytest.raises(CQLSyntaxError):
            parse_insert_sp("SELECT x FROM s")


class TestInsertSPParsing:
    FULL = ("INSERT SP AS mysp INTO STREAM hr "
            "LET DDP = '*, [120-133], *', SRP = '{GP, D}', "
            "SIGN = NEGATIVE, IMMUTABLE = TRUE, TIMESTAMP = 9")

    def test_full_form(self):
        statement = parse_insert_sp(self.FULL)
        assert isinstance(statement, InsertSPStatement)
        assert statement.sp_name == "mysp"
        assert statement.stream == "hr"
        assert statement.ddp == "*, [120-133], *"
        assert statement.srp == "{GP, D}"
        assert statement.sign == "negative"
        assert statement.immutable is True
        assert statement.timestamp == 9.0

    def test_minimal_form(self):
        statement = parse_insert_sp(
            "INSERT SP INTO STREAM hr LET DDP = '*', SRP = 'D'")
        assert statement.sign == "positive"
        assert statement.immutable is False
        assert statement.timestamp is None

    def test_qualified_let_bindings(self):
        statement = parse_insert_sp(
            "INSERT SP AS p INTO STREAM hr "
            "LET p.DDP = '*', p.SRP = 'D'")
        assert statement.ddp == "*"

    def test_wrong_sp_name_in_binding(self):
        with pytest.raises(CQLSyntaxError):
            parse_insert_sp("INSERT SP AS p INTO STREAM hr "
                            "LET other.DDP = '*', p.SRP = 'D'")

    def test_missing_required_bindings(self):
        with pytest.raises(CQLSyntaxError):
            parse_insert_sp("INSERT SP INTO STREAM hr LET DDP = '*'")

    def test_unquoted_ddp_rejected(self):
        with pytest.raises(CQLSyntaxError):
            parse_insert_sp("INSERT SP INTO STREAM hr LET DDP = 5, SRP = 'D'")

    def test_parse_dispatches(self):
        assert isinstance(parse("SELECT x FROM s"), SelectStatement)
        assert isinstance(
            parse("INSERT SP INTO STREAM s LET DDP = '*', SRP = 'D'"),
            InsertSPStatement)
