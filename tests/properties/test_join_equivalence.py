"""Property tests: all SAJoin variants compute the same join."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitmap import RoleUniverse
from repro.operators.index_join import IndexSAJoin
from repro.operators.join import NestedLoopSAJoin
from repro.stream.tuples import DataTuple

from tests.properties.strategies import punctuated_streams


@st.composite
def join_feeds(draw):
    """Interleaved (port, element) feeds over two random streams."""
    left = draw(punctuated_streams(max_segments=5,
                                   max_tuples_per_segment=3, sid="left"))
    right = draw(punctuated_streams(max_segments=5,
                                    max_tuples_per_segment=3, sid="right"))
    feed = ([(0, e) for e in left] + [(1, e) for e in right])
    # Merge by timestamp (stable: port breaks ties) so windows see a
    # globally ordered arrival sequence.
    feed.sort(key=lambda pair: (pair[1].ts, pair[0]))
    return feed


def run_join(make_join, feed):
    join = make_join()
    results = []
    for port, element in feed:
        for out in join.process(element, port):
            if isinstance(out, DataTuple):
                results.append(out.tid)
    return sorted(results)


WINDOW = 1000.0  # effectively unbounded for these small feeds

VARIANTS = {
    "nl-pf": lambda: NestedLoopSAJoin("key", "key", WINDOW, method="PF"),
    "nl-fp": lambda: NestedLoopSAJoin("key", "key", WINDOW, method="FP"),
    "index": lambda: IndexSAJoin("key", "key", WINDOW,
                                 universe=RoleUniverse()),
    "index-noskip": lambda: IndexSAJoin("key", "key", WINDOW,
                                        universe=RoleUniverse(),
                                        skipping=False),
}


class TestVariantEquivalence:
    @given(join_feeds())
    @settings(max_examples=50, deadline=None)
    def test_all_variants_same_results(self, feed):
        results = {name: run_join(make, feed)
                   for name, make in VARIANTS.items()}
        baseline = results["nl-pf"]
        for name, outcome in results.items():
            assert outcome == baseline, name

    @given(join_feeds())
    @settings(max_examples=30, deadline=None)
    def test_results_respect_both_policies(self, feed):
        """Every result's base tuples were policy-compatible: verified
        against ground truth reconstructed from the feed."""
        from tests.properties.strategies import ROLE_POOL, visible_tids

        lefts = [e for p, e in feed if p == 0]
        rights = [e for p, e in feed if p == 1]
        visible_left = {role: set(visible_tids(lefts, role))
                        for role in ROLE_POOL}
        visible_right = {role: set(visible_tids(rights, role))
                         for role in ROLE_POOL}
        for left_tid, right_tid in run_join(VARIANTS["index"], feed):
            compatible = any(
                left_tid in visible_left[role]
                and right_tid in visible_right[role]
                for role in ROLE_POOL)
            assert compatible

    @given(join_feeds())
    @settings(max_examples=30, deadline=None)
    def test_window_equivalence_small(self, feed):
        """A tighter window only ever removes results."""
        wide = set(run_join(VARIANTS["index"], feed))
        narrow_join = lambda: IndexSAJoin("key", "key", 5.0,
                                          universe=RoleUniverse())
        narrow = set(run_join(narrow_join, feed))
        assert narrow <= wide
