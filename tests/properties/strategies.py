"""Hypothesis strategies and ground-truth helpers for property tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.punctuation import SecurityPunctuation
from repro.stream.tuples import DataTuple

ROLE_POOL = ("ra", "rb", "rc", "rd")

role_sets = st.sets(st.sampled_from(ROLE_POOL), min_size=1, max_size=3)


@st.composite
def punctuated_streams(draw, max_segments=8, max_tuples_per_segment=4,
                       value_range=5, sid="s"):
    """A random punctuated stream of positive wildcard-DDP sp-batches."""
    n_segments = draw(st.integers(1, max_segments))
    elements = []
    ts = 0.0
    tid = 0
    for _ in range(n_segments):
        ts += 1.0
        roles = sorted(draw(role_sets))
        elements.append(SecurityPunctuation.grant(roles, ts))
        n_tuples = draw(st.integers(0, max_tuples_per_segment))
        for _ in range(n_tuples):
            ts += 1.0
            value = draw(st.integers(0, value_range))
            elements.append(DataTuple(sid, tid, {"key": value, "v": value},
                                      ts))
            tid += 1
    return elements


def visible_tids(elements, role):
    """Ground truth: tids accessible to ``role`` under segment-scoped
    sp semantics (batch = consecutive same-ts sps, union of roles)."""
    current: set[str] = set()
    batch_ts = None
    in_batch = False
    out = []
    for element in elements:
        if isinstance(element, SecurityPunctuation):
            if in_batch and element.ts == batch_ts:
                current |= element.roles()
            else:
                current = set(element.roles())
                batch_ts = element.ts
            in_batch = True
        else:
            in_batch = False
            if role in current:
                out.append(element.tid)
    return out
