"""Property tests: the three enforcement mechanisms always agree."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.store_and_probe import StoreAndProbeEnforcer
from repro.baselines.tuple_embedded import (TupleEmbeddedEnforcer,
                                            embed_policies)
from repro.core.bitmap import RoleUniverse
from repro.operators.shield import SecurityShield
from repro.stream.tuples import DataTuple

from tests.properties.strategies import (ROLE_POOL, punctuated_streams,
                                         visible_tids)


def sp_mechanism(elements, role):
    shield = SecurityShield([role])
    out = []
    for element in elements:
        for item in shield.process(element):
            if isinstance(item, DataTuple):
                out.append(item.tid)
    return out


def store_and_probe(elements, role):
    return [t.tid for t in StoreAndProbeEnforcer([role]).ingest(elements)]


def tuple_embedded(elements, role, bitmap=False):
    universe = RoleUniverse(ROLE_POOL) if bitmap else None
    enforcer = TupleEmbeddedEnforcer([role])
    return [t.tid for t in enforcer.ingest(
        embed_policies(elements, universe=universe, bitmap=bitmap))]


class TestMechanismAgreement:
    @given(punctuated_streams(), st.sampled_from(ROLE_POOL))
    @settings(max_examples=50, deadline=None)
    def test_all_mechanisms_match_ground_truth(self, elements, role):
        truth = visible_tids(elements, role)
        assert sp_mechanism(elements, role) == truth
        assert store_and_probe(elements, role) == truth
        assert tuple_embedded(elements, role) == truth

    @given(punctuated_streams(), st.sampled_from(ROLE_POOL))
    @settings(max_examples=30, deadline=None)
    def test_bitmap_encoding_equivalent(self, elements, role):
        assert tuple_embedded(elements, role, bitmap=True) == \
            tuple_embedded(elements, role, bitmap=False)
