"""Property tests for stateful-operator invariants.

* Duplicate elimination: for every role, the *visible* output values
  equal the visible distinct input values (no missed values, no
  duplicate deliveries) — within an unbounded window.
* Group-by: incremental windowed aggregates equal batch recomputation
  over the live window at every step, per subgroup.
* SP Analyzer: processing a batch is deterministic, and re-processing
  its own output changes nothing further (idempotence).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analyzer import SPAnalyzer
from repro.core.punctuation import SecurityPunctuation
from repro.operators.dupelim import DuplicateElimination
from repro.operators.groupby import GroupBy
from repro.stream.tuples import DataTuple

from tests.properties.strategies import ROLE_POOL, punctuated_streams


def drive(op, elements):
    out = []
    for element in elements:
        out.extend(op.process(element))
    return out


def visible_output_values(out_elements, role):
    """Values of output tuples whose governing output policy holds role."""
    current: frozenset = frozenset()
    values = []
    batch_ts = None
    in_batch = False
    for element in out_elements:
        if isinstance(element, SecurityPunctuation):
            if in_batch and element.ts == batch_ts:
                current = current | element.roles()
            else:
                current = element.roles()
                batch_ts = element.ts
            in_batch = True
        else:
            in_batch = False
            if role in current:
                values.append(element.values["v"])
    return values


class TestDupElimVisibility:
    @given(punctuated_streams(value_range=3), st.sampled_from(ROLE_POOL))
    @settings(max_examples=50, deadline=None)
    def test_role_visibility_complete(self, elements, role):
        """Every distinct value visible to a role in the input is
        delivered to that role — and nothing it may not see is.

        (Exactly-once is *not* the paper's invariant: case 1 stores
        ``Pnew``, forgetting who saw the value before a disjoint-policy
        switch, so a role can legitimately be re-delivered a value
        after such a reset.)
        """
        de = DuplicateElimination(window=1e9, attributes=("v",))
        out = drive(de, elements)
        seen_out = visible_output_values(out, role)
        from tests.properties.strategies import visible_tids
        visible = set(visible_tids(elements, role))
        distinct_in = {element.values["v"] for element in elements
                       if isinstance(element, DataTuple)
                       and element.tid in visible}
        assert set(seen_out) == distinct_in

    @given(punctuated_streams(value_range=3), st.sampled_from(ROLE_POOL))
    @settings(max_examples=30, deadline=None)
    def test_exactly_once_under_stable_policies(self, elements, role):
        """With no disjoint-policy switches (every consecutive pair of
        policies shares a role), each value is delivered exactly once
        per role."""
        # Make policies overlap: add a common role to every sp.
        stabilized = []
        for element in elements:
            if isinstance(element, SecurityPunctuation):
                stabilized.append(element.with_roles(
                    sorted(element.roles() | {"omni"})))
            else:
                stabilized.append(element)
        de = DuplicateElimination(window=1e9, attributes=("v",))
        out = drive(de, stabilized)
        seen_out = visible_output_values(out, role)
        assert len(seen_out) == len(set(seen_out))


class _ReferenceASG:
    """Mirror of the operator's ASG lifecycle, but *batch* aggregated.

    Merging follows the same policy-overlap rules as the operator
    (merges are permanent for the subgroup's lifetime; a subgroup dies
    when all its values expire).  Aggregates, however, are recomputed
    from the stored values on every query — so comparing against the
    operator checks that its *incremental* add/remove arithmetic never
    drifts from batch recomputation.
    """

    def __init__(self):
        self.subgroups: dict[object, list[dict]] = {}

    def expire(self, horizon: float) -> None:
        for group, subgroups in list(self.subgroups.items()):
            for subgroup in subgroups:
                subgroup["values"] = [
                    (ts, v) for ts, v in subgroup["values"] if ts > horizon]
            self.subgroups[group] = [s for s in subgroups if s["values"]]

    def add(self, group: object, roles: frozenset, ts: float,
            value: object) -> list:
        subgroups = self.subgroups.setdefault(group, [])
        matching = [s for s in subgroups if s["roles"] & roles]
        if not matching:
            target = {"roles": set(roles), "values": []}
            subgroups.append(target)
        else:
            target = matching[0]
            for other in matching[1:]:
                target["roles"] |= other["roles"]
                target["values"] = sorted(
                    target["values"] + other["values"])
                subgroups.remove(other)
            target["roles"] |= roles
        target["values"].append((ts, value))
        return [v for _, v in target["values"]]


class TestGroupByIncrementalCorrectness:
    @given(punctuated_streams(value_range=4),
           st.sampled_from(["sum", "count", "min", "max", "avg"]))
    @settings(max_examples=40, deadline=None)
    def test_matches_batch_recomputation(self, elements, agg):
        window = 15.0
        gb = GroupBy("key", agg, "v", window=window)
        reference = _ReferenceASG()
        from repro.operators.base import PolicyTracker
        tracker = PolicyTracker("s")

        for element in elements:
            out = gb.process(element)
            if isinstance(element, SecurityPunctuation):
                tracker.observe_sp(element)
                continue
            policy = tracker.policy_for(element)
            reference.expire(element.ts - window)
            if policy.is_empty():
                assert not [e for e in out if isinstance(e, DataTuple)]
                continue
            members = reference.add(
                element.values.get("key"), policy.roles.names(),
                element.ts, element.values["v"])
            result_tuples = [e for e in out if isinstance(e, DataTuple)]
            assert result_tuples, "visible tuple must refresh its ASG"
            final = result_tuples[-1]
            expected = _batch_agg(agg, members)
            assert final.values[f"{agg}(v)"] == expected


def _batch_agg(agg, values):
    if agg == "count":
        return len(values)
    if not values:
        return None if agg in ("min", "max", "avg") else 0
    if agg == "sum":
        return sum(values)
    if agg == "min":
        return min(values)
    if agg == "max":
        return max(values)
    return sum(values) / len(values)


class TestAnalyzerIdempotence:
    @given(punctuated_streams())
    @settings(max_examples=40, deadline=None)
    def test_reprocessing_output_is_stable(self, elements):
        first = list(SPAnalyzer().analyze(elements))
        second = list(SPAnalyzer().analyze(first))

        def signature(stream):
            out = []
            for element in stream:
                if isinstance(element, SecurityPunctuation):
                    out.append(("sp", element.ts,
                                tuple(sorted(element.roles()))))
                else:
                    out.append(("t", element.tid))
            return out

        assert signature(second) == signature(first)

    @given(punctuated_streams())
    @settings(max_examples=40, deadline=None)
    def test_analyze_is_deterministic(self, elements):
        a = list(SPAnalyzer().analyze(elements))
        b = list(SPAnalyzer().analyze(elements))
        assert len(a) == len(b)
        for x, y in zip(a, b):
            if isinstance(x, SecurityPunctuation):
                assert x.roles() == y.roles()
                assert x.ts == y.ts
            else:
                assert x is y
