"""Property tests: Table II rewrites preserve query results.

For random punctuated streams and random plans, every one-step rewrite
reachable via the equivalence rules must compile to a physical plan
producing the same data tuples (policy metadata may be batched
differently, but visible results are identical).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.expressions import (JoinExpr, ScanExpr, SelectExpr,
                                       ShieldExpr)
from repro.algebra.rules import RewriteContext, equivalent_forms
from repro.engine.executor import Executor
from repro.engine.plan import PhysicalPlan
from repro.operators.conditions import Comparison
from repro.operators.sink import CollectingSink
from repro.stream.schema import StreamSchema
from repro.stream.source import ListSource
from repro.stream.tuples import DataTuple

from tests.properties.strategies import ROLE_POOL, punctuated_streams

SCHEMA_S = StreamSchema("s", ("key", "v"))
SCHEMA_L = StreamSchema("left", ("key", "v"))
SCHEMA_R = StreamSchema("right", ("key", "v"))

CTX = RewriteContext(policy_streams=frozenset({"s", "left", "right"}))


def run_plan(expr, sources):
    """Execute a plan and return its *delivered* results.

    Delivery applies the query's roles one final time (as the DSMS
    does): rewrites may change which policy-tagged results reach the
    plan root, but the results visible to the query's subjects must be
    identical.
    """
    from repro.operators.shield import SecurityShield

    roles = _root_roles(expr)
    plan = PhysicalPlan()
    delivery = SecurityShield(roles, name="delivery")
    sink = plan.compile_chain(expr, [delivery, CollectingSink()])[-1]
    Executor(plan, sources).run()
    return sorted(t.tid for t in sink.operator.tuples()
                  if isinstance(t, DataTuple))


def _root_roles(expr):
    """The union of shield roles in the plan (the query's roles)."""
    from repro.algebra.expressions import walk

    roles = set()
    for node in walk(expr):
        if isinstance(node, ShieldExpr):
            roles |= node.roles
    return frozenset(roles) or frozenset({"__none__"})


unary_plans = st.builds(
    lambda roles, threshold, shield_outside: (
        ShieldExpr(SelectExpr(ScanExpr("s"),
                              Comparison("v", ">=", threshold)),
                   frozenset(roles))
        if shield_outside else
        SelectExpr(ShieldExpr(ScanExpr("s"), frozenset(roles)),
                   Comparison("v", ">=", threshold))
    ),
    st.sets(st.sampled_from(ROLE_POOL), min_size=1, max_size=2),
    st.integers(0, 4),
    st.booleans(),
)


class TestUnaryRewrites:
    @given(punctuated_streams(), unary_plans)
    @settings(max_examples=40, deadline=None)
    def test_all_rewrites_equivalent(self, elements, plan):
        sources = [ListSource(SCHEMA_S, elements)]
        baseline = run_plan(plan, sources)
        for rewritten in equivalent_forms(plan, CTX):
            assert run_plan(rewritten,
                            [ListSource(SCHEMA_S, elements)]) == baseline


class TestJoinRewrites:
    @given(punctuated_streams(max_segments=4, sid="left"),
           punctuated_streams(max_segments=4, sid="right"),
           st.sets(st.sampled_from(ROLE_POOL), min_size=1, max_size=2))
    @settings(max_examples=25, deadline=None)
    def test_shield_push_over_join_equivalent(self, left, right, roles):
        plan = ShieldExpr(
            JoinExpr(ScanExpr("left"), ScanExpr("right"),
                     "key", "key", 1000.0),
            frozenset(roles))

        def sources():
            return [ListSource(SCHEMA_L, left), ListSource(SCHEMA_R, right)]

        baseline = run_plan(plan, sources())
        for rewritten in equivalent_forms(plan, CTX):
            result = run_plan(rewritten, sources())
            if _is_swap(rewritten):
                # Rule 4 swaps the inputs: tids come back mirrored.
                result = sorted((b, a) for a, b in result)
            assert result == baseline, rewritten


def _is_swap(expr) -> bool:
    """Whether the rewrite swapped join inputs (Rule 4)."""
    node = expr
    while isinstance(node, ShieldExpr):
        node = node.input
    if isinstance(node, JoinExpr):
        left = node.left
        while isinstance(left, ShieldExpr):
            left = left.input
        return isinstance(left, ScanExpr) and left.stream_id == "right"
    return False
