"""Property tests for patterns, reordering and windows."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.patterns import parse_pattern
from repro.stream.ordering import reorder
from repro.stream.tuples import DataTuple

from tests.properties.strategies import punctuated_streams


class TestPatternProperties:
    @given(st.sets(st.text(alphabet="abcdef", min_size=1, max_size=4),
                   min_size=1, max_size=5))
    @settings(max_examples=60)
    def test_set_pattern_round_trip(self, values):
        pattern = parse_pattern("{" + ", ".join(sorted(values)) + "}")
        reparsed = parse_pattern(pattern.spec())
        assert reparsed == pattern
        for value in values:
            assert pattern.matches(value)
        assert not pattern.matches("not-in-the-set-zzz")

    @given(st.integers(-1000, 1000), st.integers(0, 1000),
           st.integers(-2000, 2000))
    @settings(max_examples=80)
    def test_range_pattern_membership(self, low, span, probe):
        pattern = parse_pattern(f"[{low}-{low + span}]")
        assert pattern.matches(probe) == (low <= probe <= low + span)

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=20))
    @settings(max_examples=60)
    def test_eval_is_filter(self, values):
        pattern = parse_pattern("[10-30]")
        assert pattern.eval(values) == [v for v in values
                                        if pattern.matches(v)]


class TestReorderProperties:
    @given(punctuated_streams(), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_local_shuffle_recovered(self, elements, rng):
        """Shuffling within a bounded distance, a big-enough-slack
        reorder buffer restores a timestamp-ordered stream containing
        the same elements."""
        shuffled = list(elements)
        # Adjacent swaps only: displacement is bounded by max ts gap.
        for i in range(len(shuffled) - 1):
            if rng.random() < 0.5:
                shuffled[i], shuffled[i + 1] = shuffled[i + 1], shuffled[i]
        max_ts = max((e.ts for e in elements), default=0.0)
        recovered = list(reorder(shuffled, slack=max_ts + 1))
        timestamps = [e.ts for e in recovered]
        assert timestamps == sorted(timestamps)
        assert len(recovered) == len(elements)
        assert {id(e) for e in recovered} == {id(e) for e in elements}

    @given(punctuated_streams())
    @settings(max_examples=30, deadline=None)
    def test_ordered_input_passes_through(self, elements):
        assert list(reorder(elements, slack=0.0)) == elements


class TestWindowProperties:
    @given(punctuated_streams(max_segments=6),
           st.floats(min_value=1.0, max_value=20.0))
    @settings(max_examples=40, deadline=None)
    def test_invalidation_keeps_exactly_in_window_tuples(self, elements,
                                                         extent):
        from repro.core.policy import Policy
        from repro.core.punctuation import SecurityPunctuation
        from repro.stream.window import PunctuatedWindow

        window = PunctuatedWindow("s", extent)
        inserted = []
        batch = []
        for element in elements:
            if isinstance(element, SecurityPunctuation):
                if batch and element.ts != batch[0].ts:
                    window.open_segment(Policy(tuple(batch)), batch)
                    batch = []
                batch.append(element)
            else:
                if batch:
                    window.open_segment(Policy(tuple(batch)), batch)
                    batch = []
                window.insert(element)
                inserted.append(element)
        if not inserted:
            return
        now = inserted[-1].ts + extent / 2
        window.invalidate(now)
        live = [t for t, _ in window.iter_entries()]
        expected = [t for t in inserted if t.ts > now - extent]
        assert [t.tid for t in live] == [t.tid for t in expected]
