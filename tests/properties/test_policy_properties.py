"""Property-based tests for policy algebra invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitmap import RoleBitmap, RoleSet, RoleUniverse
from repro.core.policy import Policy, TuplePolicy, override
from repro.core.punctuation import SecurityPunctuation

ROLES = ("a", "b", "c", "d", "e")

role_sets = st.sets(st.sampled_from(ROLES), min_size=0, max_size=4)
nonempty_role_sets = st.sets(st.sampled_from(ROLES), min_size=1, max_size=4)


def tp(roles):
    return TuplePolicy(roles)


class TestTuplePolicyLattice:
    @given(role_sets, role_sets)
    def test_intersect_commutes(self, a, b):
        assert tp(a).intersect(tp(b)) == tp(b).intersect(tp(a))

    @given(role_sets, role_sets)
    def test_union_commutes(self, a, b):
        assert tp(a).union(tp(b)) == tp(b).union(tp(a))

    @given(role_sets, role_sets, role_sets)
    def test_intersect_associates(self, a, b, c):
        left = tp(a).intersect(tp(b)).intersect(tp(c))
        right = tp(a).intersect(tp(b).intersect(tp(c)))
        assert left == right

    @given(role_sets)
    def test_intersect_idempotent(self, a):
        assert tp(a).intersect(tp(a)) == tp(a)

    @given(role_sets, role_sets)
    def test_intersection_never_widens(self, a, b):
        joined = tp(a).intersect(tp(b))
        assert joined.roles.names() <= a
        assert joined.roles.names() <= b

    @given(role_sets, role_sets)
    def test_difference_definition(self, a, b):
        """Case 3 of dup-elim: Pnew − (Pold ∩ Pnew)."""
        new, old = tp(a), tp(b)
        common = new.intersect(old)
        assert new.difference(common).roles.names() == a - (a & b)

    @given(role_sets, role_sets)
    def test_permits_any_iff_nonempty_intersection(self, a, b):
        assert tp(a).permits_any(RoleSet(b)) == bool(a & b)


class TestBitmapSetAgreement:
    @given(nonempty_role_sets, nonempty_role_sets)
    def test_all_ops_agree(self, a, b):
        universe = RoleUniverse(ROLES)
        set_a, set_b = RoleSet(a), RoleSet(b)
        bm_a = RoleBitmap(universe, a)
        bm_b = RoleBitmap(universe, b)
        assert bm_a.intersect(bm_b).names() == set_a.intersect(set_b).names()
        assert bm_a.union(bm_b).names() == set_a.union(set_b).names()
        assert bm_a.difference(bm_b).names() == \
            set_a.difference(set_b).names()
        assert bm_a.intersects(bm_b) == set_a.intersects(set_b)


class TestPolicySemantics:
    @given(nonempty_role_sets, nonempty_role_sets)
    def test_union_monotone(self, a, b):
        pa = Policy([SecurityPunctuation.grant(sorted(a), 1.0)])
        pb = Policy([SecurityPunctuation.grant(sorted(b), 2.0)])
        union = pa.union(pb)
        assert union.authorized_roles("s") >= pa.authorized_roles("s")
        assert union.authorized_roles("s") == a | b

    @given(nonempty_role_sets, nonempty_role_sets)
    def test_intersect_antitone(self, a, b):
        pa = Policy([SecurityPunctuation.grant(sorted(a), 1.0)])
        pb = Policy([SecurityPunctuation.grant(sorted(b), 2.0)])
        combined = pa.intersect(pb)
        assert combined.authorized_roles("s") <= pa.authorized_roles("s")
        assert combined.authorized_roles("s") == a & b

    @given(nonempty_role_sets, nonempty_role_sets,
           st.floats(0, 100), st.floats(0, 100))
    def test_override_picks_newer(self, a, b, ts_a, ts_b):
        pa = Policy([SecurityPunctuation.grant(sorted(a), ts_a)])
        pb = Policy([SecurityPunctuation.grant(sorted(b), ts_b)])
        winner = override(pa, pb)
        if ts_b >= ts_a:
            assert winner is pb
        else:
            assert winner is pa

    @given(nonempty_role_sets, nonempty_role_sets)
    def test_negative_sps_subtract_exactly(self, granted, denied):
        sps = [SecurityPunctuation.grant(sorted(granted), 1.0),
               SecurityPunctuation.deny(sorted(denied), 1.0)]
        policy = Policy(sps)
        assert policy.authorized_roles("s") == granted - denied
