"""Property tests for the CQL layer: round trips and fuzzing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cql.parser import parse, parse_insert_sp, parse_select
from repro.cql.translator import translate_insert_sp, translate_select
from repro.errors import CQLSyntaxError, ReproError

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s.upper() not in {
        "SELECT", "DISTINCT", "FROM", "WHERE", "AND", "OR", "NOT",
        "GROUP", "BY", "RANGE", "AS", "INSERT", "SP", "INTO", "STREAM",
        "LET", "DDP", "SRP", "SIGN", "IMMUTABLE", "TIMESTAMP",
        "POSITIVE", "NEGATIVE", "TRUE", "FALSE", "COUNT", "SUM", "AVG",
        "MIN", "MAX",
    })


@st.composite
def select_statements(draw):
    """Grammar-directed random SELECT statements."""
    columns = draw(st.lists(identifiers, min_size=1, max_size=3,
                            unique=True))
    stream = draw(identifiers)
    text = "SELECT " + ", ".join(columns) + f" FROM {stream}"
    if draw(st.booleans()):
        text += f" RANGE {draw(st.integers(1, 500))}"
    predicates = draw(st.lists(
        st.tuples(identifiers, st.sampled_from(["=", "<", ">", "<=",
                                                ">=", "!="]),
                  st.integers(-100, 100)),
        max_size=3))
    if predicates:
        text += " WHERE " + " AND ".join(
            f"{attr} {op} {value}" for attr, op, value in predicates)
    return text


@st.composite
def insert_sp_statements(draw):
    stream = draw(identifiers)
    roles = draw(st.lists(identifiers, min_size=1, max_size=3,
                          unique=True))
    low = draw(st.integers(0, 100))
    high = low + draw(st.integers(0, 100))
    ddp_choice = draw(st.sampled_from(["*", f"[{low}-{high}]"]))
    ddp = f"*, {ddp_choice}, *"
    srp = "{" + ", ".join(roles) + "}" if len(roles) > 1 else roles[0]
    text = (f"INSERT SP INTO STREAM {stream} "
            f"LET DDP = '{ddp}', SRP = '{srp}'")
    if draw(st.booleans()):
        text += f", SIGN = {draw(st.sampled_from(['POSITIVE', 'NEGATIVE']))}"
    if draw(st.booleans()):
        text += f", TIMESTAMP = {draw(st.integers(0, 1000))}"
    return text, frozenset(roles)


class TestGrammarRoundTrips:
    @given(select_statements())
    @settings(max_examples=80, deadline=None)
    def test_generated_selects_parse_and_translate(self, text):
        statement = parse_select(text)
        expr = translate_select(statement)
        assert expr is not None

    @given(insert_sp_statements())
    @settings(max_examples=80, deadline=None)
    def test_generated_insert_sps_translate(self, statement_and_roles):
        text, roles = statement_and_roles
        statement = parse_insert_sp(text)
        sp = translate_insert_sp(statement, provider="fuzz")
        assert sp.roles() == roles
        assert sp.provider == "fuzz"


class TestFuzzRobustness:
    @given(st.text(max_size=60))
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_text_never_crashes_unexpectedly(self, text):
        """The parser either succeeds or raises a framework error —
        never an unhandled exception type."""
        try:
            parse(text)
        except (CQLSyntaxError, ReproError):
            pass

    @given(st.text(alphabet="SELECT FROMWHERE*(),.<>='x1 ", max_size=50))
    @settings(max_examples=150, deadline=None)
    def test_sql_shaped_garbage(self, text):
        try:
            parse(text)
        except (CQLSyntaxError, ReproError):
            pass
