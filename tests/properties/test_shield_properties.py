"""Property tests: SS enforcement matches the naive ground truth."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.punctuation import SecurityPunctuation
from repro.operators.shield import SecurityShield
from repro.stream.tuples import DataTuple

from tests.properties.strategies import (ROLE_POOL, punctuated_streams,
                                         visible_tids)


def shield_output_tids(elements, role, **kwargs):
    shield = SecurityShield([role], **kwargs)
    out = []
    for element in elements:
        for item in shield.process(element):
            if isinstance(item, DataTuple):
                out.append(item.tid)
    return out


class TestShieldGroundTruth:
    @given(punctuated_streams(), st.sampled_from(ROLE_POOL))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_interpreter(self, elements, role):
        assert shield_output_tids(elements, role) == \
            visible_tids(elements, role)

    @given(punctuated_streams(), st.sampled_from(ROLE_POOL))
    @settings(max_examples=30, deadline=None)
    def test_indexed_equals_naive_scan(self, elements, role):
        assert shield_output_tids(elements, role, indexed=True) == \
            shield_output_tids(elements, role, indexed=False)

    @given(punctuated_streams())
    @settings(max_examples=30, deadline=None)
    def test_no_unauthorized_tuple_ever_passes(self, elements):
        """Security invariant: every emitted tuple's governing policy
        intersected the predicate — checked against ground truth for
        every role at once."""
        for role in ROLE_POOL:
            emitted = set(shield_output_tids(elements, role))
            allowed = set(visible_tids(elements, role))
            assert emitted <= allowed

    @given(punctuated_streams())
    @settings(max_examples=30, deadline=None)
    def test_output_sp_always_precedes_first_tuple(self, elements):
        shield = SecurityShield([ROLE_POOL[0]])
        out = []
        for element in elements:
            out.extend(shield.process(element))
        saw_sp = False
        for element in out:
            if isinstance(element, SecurityPunctuation):
                saw_sp = True
            else:
                assert saw_sp, "tuple emitted before any sp"

    @given(punctuated_streams(), st.sampled_from(ROLE_POOL))
    @settings(max_examples=30, deadline=None)
    def test_idempotent_stacking(self, elements, role):
        """ψp(ψp(T)) ≡ ψp(T)."""
        once = shield_output_tids(elements, role)
        inner = SecurityShield([role])
        outer = SecurityShield([role])
        twice = []
        for element in elements:
            for mid in inner.process(element):
                for item in outer.process(mid):
                    if isinstance(item, DataTuple):
                        twice.append(item.tid)
        assert twice == once
