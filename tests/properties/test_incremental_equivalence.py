"""Property test: delta-encoded policy streams ≡ absolute streams.

For any sequence of (absolute) segment policies, the same sequence can
be transmitted as incremental sps — grant the added roles, retract the
removed ones.  Enforcement must be indistinguishable: the Security
Shield delivers exactly the same tuples either way, for every role.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.punctuation import SecurityPunctuation
from repro.operators.shield import SecurityShield
from repro.stream.tuples import DataTuple

from tests.properties.strategies import ROLE_POOL, role_sets


@st.composite
def policy_sequences(draw):
    """[(roles, n_tuples), ...] — one entry per segment."""
    n_segments = draw(st.integers(1, 8))
    return [(draw(role_sets), draw(st.integers(0, 3)))
            for _ in range(n_segments)]


def absolute_stream(sequence):
    elements = []
    ts = 0.0
    tid = 0
    for roles, n_tuples in sequence:
        ts += 1.0
        elements.append(SecurityPunctuation.grant(sorted(roles), ts))
        for _ in range(n_tuples):
            ts += 1.0
            elements.append(DataTuple("s", tid, {"v": tid}, ts))
            tid += 1
    return elements


def delta_stream(sequence):
    """The same policies, transmitted as deltas where possible."""
    elements = []
    ts = 0.0
    tid = 0
    current: frozenset = frozenset()
    for roles, n_tuples in sequence:
        ts += 1.0
        roles = frozenset(roles)
        added = roles - current
        removed = current - roles
        if current == roles:
            # Policy unchanged: a no-op delta (retracting a role that
            # was never granted) still marks the batch boundary.
            elements.append(
                SecurityPunctuation.retract_roles(["__nobody__"], ts))
        else:
            for role in sorted(added):
                elements.append(SecurityPunctuation.add_roles([role], ts))
            for role in sorted(removed):
                elements.append(
                    SecurityPunctuation.retract_roles([role], ts))
        current = roles
        for _ in range(n_tuples):
            ts += 1.0
            elements.append(DataTuple("s", tid, {"v": tid}, ts))
            tid += 1
    return elements


def shield_tids(elements, role):
    shield = SecurityShield([role])
    out = []
    for element in elements:
        for item in shield.process(element):
            if isinstance(item, DataTuple):
                out.append(item.tid)
    return out


class TestDeltaEquivalence:
    @given(policy_sequences(), st.sampled_from(ROLE_POOL))
    @settings(max_examples=60, deadline=None)
    def test_delta_and_absolute_enforce_identically(self, sequence, role):
        absolute = absolute_stream(sequence)
        delta = delta_stream(sequence)
        assert shield_tids(delta, role) == shield_tids(absolute, role)

    @given(policy_sequences())
    @settings(max_examples=30, deadline=None)
    def test_holds_for_every_role_simultaneously(self, sequence):
        absolute = absolute_stream(sequence)
        delta = delta_stream(sequence)
        for role in ROLE_POOL:
            assert shield_tids(delta, role) == \
                shield_tids(absolute, role), role
