"""Property test: fully optimized plans deliver identical results.

Stronger than the one-step rule checks: the greedy optimizer may apply
many rewrites (shield pushes, select splits/pushdowns, commutes); the
final plan must still deliver exactly the original results on random
punctuated streams, for every role.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.cost import CostModel
from repro.algebra.expressions import (JoinExpr, ScanExpr, SelectExpr,
                                       ShieldExpr)
from repro.algebra.optimizer import Optimizer
from repro.algebra.rules import RewriteContext
from repro.algebra.statistics import StatisticsCatalog, StreamStatistics
from repro.engine.executor import Executor
from repro.engine.plan import PhysicalPlan
from repro.operators.conditions import And, Comparison
from repro.operators.shield import SecurityShield
from repro.operators.sink import CollectingSink
from repro.stream.schema import StreamSchema
from repro.stream.source import ListSource
from repro.stream.tuples import DataTuple

from tests.properties.strategies import ROLE_POOL, punctuated_streams

SCHEMA_L = StreamSchema("left", ("key", "v"))
SCHEMA_R = StreamSchema("right", ("key", "v"))

CTX = RewriteContext(
    policy_streams=frozenset({"left", "right"}),
    # 'key' is on both sides: join-key conditions may not be pushed.
    schemas={"left": frozenset({"key", "v"}),
             "right": frozenset({"key", "v"})},
)


def make_optimizer() -> Optimizer:
    catalog = StatisticsCatalog(condition_selectivity=0.3)
    catalog.set_stream("left", StreamStatistics(tuple_rate=100.0,
                                                sp_rate=10.0))
    catalog.set_stream("right", StreamStatistics(tuple_rate=100.0,
                                                 sp_rate=10.0))
    return Optimizer(CostModel(catalog), CTX)


def run_delivered(expr, roles, left, right):
    plan = PhysicalPlan()
    sink = plan.compile_chain(
        expr, [SecurityShield(roles), CollectingSink()])[-1]
    Executor(plan, [ListSource(SCHEMA_L, left),
                    ListSource(SCHEMA_R, right)]).run()
    return sorted(t.tid for t in sink.operator.tuples()
                  if isinstance(t, DataTuple))


@st.composite
def shielded_join_plans(draw):
    roles = frozenset(draw(st.sets(st.sampled_from(ROLE_POOL),
                                   min_size=1, max_size=2)))
    thresholds = draw(st.lists(st.integers(0, 4), min_size=0, max_size=2))
    expr = JoinExpr(ScanExpr("left"), ScanExpr("right"),
                    "key", "key", 1000.0)
    if thresholds:
        conditions = [Comparison("v", ">=", t) for t in thresholds]
        condition = conditions[0] if len(conditions) == 1 \
            else And(conditions)
        expr = SelectExpr(expr, condition)
    return ShieldExpr(expr, roles), roles


class TestOptimizedPlansEquivalent:
    @given(shielded_join_plans(),
           punctuated_streams(max_segments=4, sid="left"),
           punctuated_streams(max_segments=4, sid="right"))
    @settings(max_examples=25, deadline=None)
    def test_greedy_optimum_delivers_same_results(self, plan_and_roles,
                                                  left, right):
        plan, roles = plan_and_roles
        optimizer = make_optimizer()
        optimized = optimizer.optimize(plan).plan
        baseline = run_delivered(plan, roles, left, right)
        rewritten = run_delivered(optimized, roles, left, right)

        def normalize(ids):
            # Rule 4 may mirror the join: compare orientation-free.
            return sorted(frozenset(pair) if isinstance(pair, tuple)
                          else pair for pair in ids)

        assert normalize(rewritten) == normalize(baseline)

    @given(shielded_join_plans())
    @settings(max_examples=25, deadline=None)
    def test_optimizer_never_increases_cost(self, plan_and_roles):
        plan, _ = plan_and_roles
        optimizer = make_optimizer()
        result = optimizer.optimize(plan)
        assert result.cost <= result.initial_cost + 1e-9
