"""Tests for role universes and the set/bitmap role-set encodings."""

import pytest

from repro.core.bitmap import RoleBitmap, RoleSet, RoleUniverse
from repro.errors import AccessControlError


class TestRoleUniverse:
    def test_registration_is_idempotent(self):
        universe = RoleUniverse()
        first = universe.register("C")
        second = universe.register("C")
        assert first == second == 0

    def test_ids_are_ordered_by_registration(self):
        universe = RoleUniverse(["a", "b", "c"])
        assert [universe.id_of(r) for r in ("a", "b", "c")] == [0, 1, 2]
        assert universe.roles() == ("a", "b", "c")

    def test_name_round_trip(self):
        universe = RoleUniverse(["x"])
        assert universe.name_of(universe.id_of("x")) == "x"

    def test_unknown_role_raises(self):
        with pytest.raises(AccessControlError):
            RoleUniverse().id_of("ghost")
        with pytest.raises(AccessControlError):
            RoleUniverse().name_of(3)

    def test_empty_name_rejected(self):
        with pytest.raises(AccessControlError):
            RoleUniverse().register("")

    def test_sort_key_registers_lazily(self):
        universe = RoleUniverse()
        assert universe.sort_key("new") == 0
        assert "new" in universe


class TestRoleSet:
    def test_basic_ops(self):
        a = RoleSet(["C", "D"])
        b = RoleSet(["D", "E"])
        assert a.intersect(b).names() == frozenset({"D"})
        assert a.union(b).names() == frozenset({"C", "D", "E"})
        assert a.difference(b).names() == frozenset({"C"})

    def test_intersects_fast_path(self):
        assert RoleSet(["a"]).intersects(RoleSet(["a", "b"]))
        assert not RoleSet(["a"]).intersects(RoleSet(["b"]))

    def test_string_treated_as_single_role(self):
        assert RoleSet("doctor").names() == frozenset({"doctor"})

    def test_emptiness_and_bool(self):
        assert RoleSet().is_empty()
        assert not RoleSet()
        assert RoleSet(["x"])

    def test_of_constructor(self):
        assert RoleSet.of("a", "b").names() == frozenset({"a", "b"})

    def test_iteration_sorted(self):
        assert list(RoleSet(["b", "a"])) == ["a", "b"]


class TestRoleBitmap:
    def test_round_trip_names(self):
        universe = RoleUniverse()
        bitmap = RoleBitmap(universe, ["C", "D", "ND"])
        assert bitmap.names() == frozenset({"C", "D", "ND"})
        assert len(bitmap) == 3

    def test_bitwise_ops(self):
        universe = RoleUniverse()
        a = RoleBitmap(universe, ["C", "D"])
        b = RoleBitmap(universe, ["D", "E"])
        assert a.intersect(b).names() == frozenset({"D"})
        assert a.union(b).names() == frozenset({"C", "D", "E"})
        assert a.difference(b).names() == frozenset({"C"})
        assert a.intersects(b)

    def test_cross_encoding_ops(self):
        universe = RoleUniverse()
        bitmap = RoleBitmap(universe, ["C", "D"])
        plain = RoleSet(["D", "E"])
        assert bitmap.intersect(plain).names() == frozenset({"D"})
        assert plain.intersect(bitmap).names() == frozenset({"D"})

    def test_set_and_bitmap_equal_when_same_roles(self):
        universe = RoleUniverse()
        assert RoleBitmap(universe, ["a", "b"]) == RoleSet(["a", "b"])

    def test_contains(self):
        universe = RoleUniverse()
        bitmap = RoleBitmap(universe, ["C"])
        assert "C" in bitmap
        assert "D" not in bitmap

    def test_different_universes_rejected(self):
        a = RoleBitmap(RoleUniverse(), ["x"])
        b = RoleBitmap(RoleUniverse(), ["x"])
        with pytest.raises(AccessControlError):
            a.intersect(b)

    def test_registers_roles_in_universe(self):
        universe = RoleUniverse()
        RoleBitmap(universe, ["new_role"])
        assert "new_role" in universe
