"""Tests for the SP Analyzer: combination, refinement, normalization."""

from repro.core.analyzer import (SPAnalyzer, combine_batch, conjoin_ddp,
                                 conjoin_patterns, conjunction_is_empty)
from repro.core.bitmap import RoleUniverse
from repro.core.patterns import ANY, literal, numeric_range, one_of, regex
from repro.core.punctuation import (DataDescription, SecurityPunctuation,
                                    SecurityRestriction)
from repro.stream.tuples import DataTuple


def grant(roles, ts=1.0, provider="p", **kwargs):
    return SecurityPunctuation.grant(roles, ts, provider=provider, **kwargs)


class TestConjoinPatterns:
    def test_wildcard_absorbs(self):
        assert conjoin_patterns(ANY, literal("x")) == literal("x")
        assert conjoin_patterns(literal("x"), ANY) == literal("x")

    def test_equal_patterns(self):
        assert conjoin_patterns(literal(5), literal(5)) == literal(5)

    def test_enumerable_intersection(self):
        result = conjoin_patterns(one_of([1, 2, 3]), one_of([2, 3, 4]))
        assert result is not None
        assert result.matches(2) and result.matches(3)
        assert not result.matches(1) and not result.matches(4)

    def test_disjoint_enumerables_empty(self):
        result = conjoin_patterns(literal(1), literal(2))
        assert conjunction_is_empty(result)

    def test_range_intersection(self):
        result = conjoin_patterns(numeric_range(0, 10), numeric_range(5, 20))
        assert result is not None
        assert result.matches(7)
        assert not result.matches(3)
        assert not result.matches(15)

    def test_disjoint_ranges_empty(self):
        assert conjunction_is_empty(
            conjoin_patterns(numeric_range(0, 5), numeric_range(10, 20)))

    def test_enumerable_filtered_by_range(self):
        result = conjoin_patterns(one_of([3, 8, 15]), numeric_range(0, 10))
        assert result is not None
        assert result.matches(3) and result.matches(8)
        assert not result.matches(15)

    def test_two_regexes_undecidable(self):
        assert conjoin_patterns(regex("a+"), regex("b+")) is None


class TestConjoinDDP:
    def test_wildcard_ddp_absorbs(self):
        specific = DataDescription(stream=literal("s1"),
                                   tuple_id=numeric_range(1, 9))
        assert conjoin_ddp(DataDescription(), specific) == specific

    def test_disjoint_streams_is_none(self):
        a = DataDescription(stream=literal("s1"))
        b = DataDescription(stream=literal("s2"))
        assert conjoin_ddp(a, b) is None


class TestCombineBatch:
    def test_merges_same_ddp_sign_ts(self):
        batch = [grant(["C"]), grant(["D"])]
        combined = combine_batch(batch)
        assert len(combined) == 1
        assert combined[0].roles() == frozenset({"C", "D"})

    def test_distinct_ddps_not_merged(self):
        batch = [grant(["C"], stream=literal("s1")),
                 grant(["D"], stream=literal("s2"))]
        assert len(combine_batch(batch)) == 2

    def test_signs_not_merged(self):
        batch = [grant(["C"]),
                 SecurityPunctuation.deny(["D"], 1.0, provider="p")]
        assert len(combine_batch(batch)) == 2

    def test_preserves_order(self):
        batch = [grant(["C"], stream=literal("s1")),
                 grant(["D"], stream=literal("s2")),
                 grant(["E"], stream=literal("s1"))]
        combined = combine_batch(batch)
        assert combined[0].roles() == frozenset({"C", "E"})
        assert combined[1].roles() == frozenset({"D"})


class TestServerRefinement:
    def test_server_intersects_roles(self):
        analyzer = SPAnalyzer()
        analyzer.add_server_policy(
            SecurityPunctuation.grant(["C", "D"], ts=0.0))
        out = analyzer.process_batch([grant(["C", "D", "ND"])])
        assert len(out) == 1
        assert out[0].roles() == frozenset({"C", "D"})

    def test_immutable_sp_bypasses_server(self):
        analyzer = SPAnalyzer()
        analyzer.add_server_policy(SecurityPunctuation.grant(["C"], ts=0.0))
        out = analyzer.process_batch([grant(["D", "ND"], immutable=True)])
        assert out[0].roles() == frozenset({"D", "ND"})

    def test_empty_refinement_yields_deny_all_boundary(self):
        """A batch refined away must still mark the segment boundary —
        as an explicit grant-nobody policy, not by disappearing (which
        would leave the previous policy in force)."""
        analyzer = SPAnalyzer()
        analyzer.add_server_policy(SecurityPunctuation.grant(["X"], ts=0.0))
        out = analyzer.process_batch([grant(["Y"])])
        assert len(out) == 1
        boundary = out[0]
        assert not boundary.is_positive
        assert boundary.srp.roles.is_wildcard()
        assert boundary.ts == 1.0

    def test_disjoint_server_scope_leaves_sp_untouched(self):
        analyzer = SPAnalyzer()
        analyzer.add_server_policy(SecurityPunctuation.grant(
            ["C"], ts=0.0, stream=literal("other")))
        provider_sp = grant(["D"], stream=literal("s1"))
        out = analyzer.process_batch([provider_sp])
        assert out[0].roles() == frozenset({"D"})

    def test_partial_overlap_splits_scope(self):
        analyzer = SPAnalyzer()
        analyzer.add_server_policy(SecurityPunctuation.grant(
            ["C"], ts=0.0, tuple_id=one_of([1, 2])))
        out = analyzer.process_batch(
            [grant(["C", "D"], tuple_id=one_of([1, 2, 3]))])
        # Refined part: tids {1,2} roles {C}; remainder: tid {3} roles {C,D}.
        by_roles = {sp.roles(): sp for sp in out}
        assert frozenset({"C"}) in by_roles
        assert frozenset({"C", "D"}) in by_roles
        assert by_roles[frozenset({"C"})].describes("s", 1)
        assert not by_roles[frozenset({"C"})].describes("s", 3)
        assert by_roles[frozenset({"C", "D"})].describes("s", 3)

    def test_negative_server_sp_joins_batch(self):
        analyzer = SPAnalyzer()
        analyzer.add_server_policy(SecurityPunctuation.deny(["ND"], ts=0.0))
        out = analyzer.process_batch([grant(["C", "ND"])])
        signs = {sp.sign.value for sp in out}
        assert signs == {"+", "-"}
        # All batch members share the provider batch timestamp.
        assert {sp.ts for sp in out} == {1.0}


class TestNormalization:
    def test_open_pattern_resolved_against_universe(self):
        universe = RoleUniverse(["r1", "r2", "nurse"])
        analyzer = SPAnalyzer(universe)
        sp = SecurityPunctuation(
            ddp=DataDescription(),
            srp=SecurityRestriction.parse("/r[0-9]+/"),
            ts=1.0, provider="p")
        out = analyzer.process_batch([sp])
        assert out[0].roles() == frozenset({"r1", "r2"})

    def test_concrete_roles_registered(self):
        analyzer = SPAnalyzer()
        analyzer.process_batch([grant(["brand_new_role"])])
        assert "brand_new_role" in analyzer.universe


class TestAnalyzeStream:
    def test_tuples_pass_through_and_batches_rewritten(self):
        analyzer = SPAnalyzer()
        elements = [
            grant(["C"], ts=1.0),
            grant(["D"], ts=1.0),
            DataTuple("s1", 1, {"v": 1}, 2.0),
            grant(["E"], ts=3.0),
            DataTuple("s1", 2, {"v": 2}, 4.0),
        ]
        out = list(analyzer.analyze(elements))
        sps = [e for e in out if isinstance(e, SecurityPunctuation)]
        tuples = [e for e in out if isinstance(e, DataTuple)]
        assert len(tuples) == 2
        assert len(sps) == 2  # first batch combined into one sp
        assert sps[0].roles() == frozenset({"C", "D"})
        assert analyzer.sps_in == 3
        assert analyzer.sps_out == 2

    def test_trailing_batch_flushed(self):
        analyzer = SPAnalyzer()
        out = list(analyzer.analyze([grant(["C"], ts=1.0)]))
        assert len(out) == 1

    def test_different_ts_batches_kept_separate(self):
        analyzer = SPAnalyzer()
        out = list(analyzer.analyze([grant(["C"], ts=1.0),
                                     grant(["D"], ts=2.0)]))
        assert len(out) == 2
