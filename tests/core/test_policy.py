"""Tests for policy semantics: match/union/intersect/override + defaults."""

import pytest

from repro.core.bitmap import RoleSet
from repro.core.patterns import literal, numeric_range
from repro.core.policy import (EMPTY_POLICY, Policy, PolicyIntersection,
                               PolicyUnion, TuplePolicy, override,
                               policy_from_sps)
from repro.core.punctuation import SecurityPunctuation
from repro.errors import PolicyError


def grant(roles, ts=1.0, **kwargs):
    return SecurityPunctuation.grant(roles, ts, **kwargs)


def deny(roles, ts=1.0, **kwargs):
    return SecurityPunctuation.deny(roles, ts, **kwargs)


class TestLeafPolicy:
    def test_authorized_roles_from_positive_sp(self):
        policy = Policy([grant(["C", "D"])])
        assert policy.authorized_roles("s1") == frozenset({"C", "D"})

    def test_denial_by_default(self):
        policy = Policy([grant(["C"], stream=literal("s1"))])
        assert policy.authorized_roles("s2") == frozenset()
        assert not policy.allows("C", "s2")

    def test_negative_sp_subtracts(self):
        policy = Policy([grant(["C", "D", "ND"]), deny(["ND"])])
        assert policy.authorized_roles("s1") == frozenset({"C", "D"})

    def test_negative_only_policy_authorizes_nobody(self):
        policy = Policy([deny(["C"])])
        assert policy.authorized_roles("s1") == frozenset()

    def test_object_scoping(self):
        policy = Policy([
            grant(["GP"], tuple_id=numeric_range(120, 133)),
            grant(["E"], tuple_id=literal(500)),
        ])
        assert policy.authorized_roles("s1", 125) == frozenset({"GP"})
        assert policy.authorized_roles("s1", 500) == frozenset({"E"})
        assert policy.authorized_roles("s1", 600) == frozenset()

    def test_matching_sps(self):
        sp1 = grant(["GP"], tuple_id=numeric_range(120, 133))
        sp2 = grant(["E"], tuple_id=literal(500))
        policy = Policy([sp1, sp2])
        assert policy.matching_sps("s1", 125) == [sp1]

    def test_mixed_timestamps_rejected(self):
        with pytest.raises(PolicyError):
            Policy([grant(["A"], ts=1.0), grant(["B"], ts=2.0)])

    def test_empty_rejected(self):
        with pytest.raises(PolicyError):
            Policy([])

    def test_immutable_flag_propagates(self):
        assert Policy([grant(["A"], immutable=True)]).immutable
        assert not Policy([grant(["A"])]).immutable


class TestCombinators:
    def test_union_increases_access(self):
        a = Policy([grant(["C"])])
        b = Policy([grant(["D"], ts=2.0)])
        union = a.union(b)
        assert union.authorized_roles("s1") == frozenset({"C", "D"})

    def test_same_ts_union_merges_to_leaf(self):
        a = Policy([grant(["C"], ts=1.0)])
        b = Policy([grant(["D"], ts=1.0)])
        merged = a.union(b)
        assert isinstance(merged, Policy)
        assert merged.authorized_roles("s1") == frozenset({"C", "D"})

    def test_intersection_decreases_access(self):
        provider = Policy([grant(["C", "D", "ND"])])
        server = Policy([grant(["C", "D"], ts=2.0)])
        combined = provider.intersect(server)
        assert combined.authorized_roles("s1") == frozenset({"C", "D"})

    def test_intersection_respects_object_scope(self):
        provider = Policy([grant(["C", "D"])])
        server = Policy([grant(["C"], tuple_id=literal(5), ts=2.0)])
        combined = provider.intersect(server)
        assert combined.authorized_roles("s1", 5) == frozenset({"C"})
        # Server policy does not cover tid 6: intersection is empty.
        assert combined.authorized_roles("s1", 6) == frozenset()

    def test_composite_ts_is_max(self):
        a = Policy([grant(["C"], ts=1.0)])
        b = Policy([grant(["D"], ts=5.0)])
        assert a.intersect(b).ts == 5.0
        assert PolicyUnion((a, b)).ts == 5.0

    def test_nested_composites_flatten(self):
        a = Policy([grant(["A"])])
        b = Policy([grant(["B"], ts=2.0)])
        c = Policy([grant(["C"], ts=3.0)])
        nested = PolicyIntersection((PolicyIntersection((a, b)), c))
        assert len(nested.parts) == 3


class TestOverride:
    def test_newer_wins(self):
        old = Policy([grant(["C"], ts=1.0)])
        new = Policy([grant(["D"], ts=2.0)])
        assert override(old, new) is new
        assert override(new, old) is new

    def test_tie_goes_to_new(self):
        old = Policy([grant(["C"], ts=1.0)])
        new = Policy([grant(["D"], ts=1.0)])
        assert override(old, new) is new

    def test_none_old(self):
        new = Policy([grant(["D"], ts=2.0)])
        assert override(None, new) is new


class TestTuplePolicy:
    def test_permits_any(self):
        policy = TuplePolicy(["C", "D"])
        assert policy.permits_any(RoleSet(["D", "E"]))
        assert not policy.permits_any(RoleSet(["E"]))

    def test_intersect_keeps_max_ts(self):
        a = TuplePolicy(["C", "D"], ts=1.0)
        b = TuplePolicy(["D"], ts=3.0)
        joined = a.intersect(b)
        assert joined.roles.names() == frozenset({"D"})
        assert joined.ts == 3.0

    def test_difference_case3(self):
        new = TuplePolicy(["A", "B", "C"])
        common = TuplePolicy(["B"])
        assert new.difference(common).roles.names() == frozenset({"A", "C"})

    def test_empty_policy_constant(self):
        assert EMPTY_POLICY.is_empty()
        assert not EMPTY_POLICY.permits_any(RoleSet(["anything"]))

    def test_to_sp_round_trip(self):
        policy = TuplePolicy(["C", "D"], ts=7.0)
        sp = policy.to_sp()
        assert sp.roles() == frozenset({"C", "D"})
        assert sp.ts == 7.0

    def test_to_sp_empty_rejected(self):
        with pytest.raises(PolicyError):
            TuplePolicy([]).to_sp()

    def test_resolve_for_tuple(self):
        policy = Policy([grant(["C"], stream=literal("s1"))])
        resolved = policy.resolve_for_tuple("s1")
        assert resolved.roles.names() == frozenset({"C"})
        assert policy.resolve_for_tuple("s2").is_empty()


class TestPolicyFromSps:
    def test_same_provider_same_ts_unions(self):
        policy = policy_from_sps([
            grant(["C"], ts=1.0, provider="p"),
            grant(["D"], ts=1.0, provider="p"),
        ])
        assert policy.authorized_roles("s1") == frozenset({"C", "D"})

    def test_same_provider_newer_overrides(self):
        policy = policy_from_sps([
            grant(["C"], ts=1.0, provider="p"),
            grant(["D"], ts=2.0, provider="p"),
        ])
        assert policy.authorized_roles("s1") == frozenset({"D"})

    def test_server_intersects(self):
        policy = policy_from_sps([
            grant(["C", "D"], ts=1.0, provider="p"),
            grant(["C"], ts=1.0),  # provider=None → server
        ])
        assert policy.authorized_roles("s1") == frozenset({"C"})

    def test_immutable_ignores_server(self):
        policy = policy_from_sps([
            grant(["C", "D"], ts=1.0, provider="p", immutable=True),
            grant(["C"], ts=1.0),
        ])
        assert policy.authorized_roles("s1") == frozenset({"C", "D"})

    def test_distinct_providers_intersect(self):
        policy = policy_from_sps([
            grant(["C", "D"], ts=1.0, provider="p1"),
            grant(["D", "E"], ts=1.0, provider="p2"),
        ])
        assert policy.authorized_roles("s1") == frozenset({"D"})

    def test_empty_rejected(self):
        with pytest.raises(PolicyError):
            policy_from_sps([])
