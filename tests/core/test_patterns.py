"""Tests for the eval(N, e) pattern language."""

import pytest

from repro.core.patterns import (ANY, CompositePattern, LiteralPattern,
                                 RangePattern, RegexPattern, SetPattern,
                                 literal, numeric_range, one_of,
                                 parse_pattern, regex)
from repro.errors import PatternError


class TestWildcard:
    def test_matches_everything(self):
        assert ANY.matches("anything")
        assert ANY.matches(42)
        assert ANY.matches(None)

    def test_is_wildcard(self):
        assert ANY.is_wildcard()
        assert not literal("x").is_wildcard()

    def test_eval_returns_all(self):
        assert ANY.eval([1, 2, 3]) == [1, 2, 3]


class TestLiteral:
    def test_exact_match(self):
        assert literal(120).matches(120)
        assert not literal(120).matches(121)

    def test_string_insensitive(self):
        # Tuple ids may surface as int or str depending on the schema.
        assert literal(120).matches("120")
        assert literal("120").matches(120)

    def test_eval_subset(self):
        assert literal("b").eval(["a", "b", "c"]) == ["b"]


class TestSet:
    def test_membership(self):
        pattern = one_of(["C", "D", "ND"])
        assert pattern.matches("D")
        assert not pattern.matches("GP")

    def test_singleton_collapses_to_literal(self):
        assert isinstance(one_of(["C"]), LiteralPattern)

    def test_empty_set_rejected(self):
        with pytest.raises(PatternError):
            SetPattern([])

    def test_order_insensitive_equality(self):
        assert SetPattern([1, 2]) == SetPattern([2, 1])
        assert hash(SetPattern([1, 2])) == hash(SetPattern([2, 1]))


class TestRange:
    def test_inclusive_bounds(self):
        pattern = numeric_range(120, 133)
        assert pattern.matches(120)
        assert pattern.matches(133)
        assert pattern.matches(125)
        assert not pattern.matches(119)
        assert not pattern.matches(134)

    def test_numeric_strings_match(self):
        assert numeric_range(120, 133).matches("125")

    def test_non_numeric_never_matches(self):
        assert not numeric_range(0, 10).matches("abc")
        assert not numeric_range(0, 10).matches(None)

    def test_bool_is_not_numeric(self):
        assert not numeric_range(0, 10).matches(True)

    def test_empty_range_rejected(self):
        with pytest.raises(PatternError):
            numeric_range(10, 5)


class TestRegex:
    def test_fullmatch_semantics(self):
        pattern = regex("12[0-9]")
        assert pattern.matches(125)
        assert not pattern.matches(1250)  # no partial match

    def test_invalid_regex_rejected(self):
        with pytest.raises(PatternError):
            regex("([")


class TestComposite:
    def test_union_matching(self):
        pattern = literal("a") | literal("b")
        assert pattern.matches("a")
        assert pattern.matches("b")
        assert not pattern.matches("c")

    def test_union_with_wildcard_is_wildcard(self):
        assert (literal("a") | ANY).is_wildcard()

    def test_nested_composites_flatten(self):
        pattern = CompositePattern(
            (CompositePattern((literal(1), literal(2))), literal(3)))
        assert all(not isinstance(p, CompositePattern)
                   for p in pattern.parts)

    def test_empty_composite_rejected(self):
        with pytest.raises(PatternError):
            CompositePattern(())


class TestParse:
    def test_wildcard(self):
        assert parse_pattern("*") is ANY

    def test_literal_number(self):
        pattern = parse_pattern("120")
        assert isinstance(pattern, LiteralPattern)
        assert pattern.matches(120)

    def test_set(self):
        pattern = parse_pattern("{a, b, c}")
        assert pattern.matches("b")
        assert not pattern.matches("d")

    def test_range(self):
        pattern = parse_pattern("[120-133]")
        assert isinstance(pattern, RangePattern)
        assert pattern.matches(130)

    def test_negative_range(self):
        pattern = parse_pattern("[-10-10]")
        assert pattern.matches(-5)

    def test_regex(self):
        pattern = parse_pattern("/s[0-9]+/")
        assert isinstance(pattern, RegexPattern)
        assert pattern.matches("s12")

    def test_union(self):
        pattern = parse_pattern("120|[200-210]")
        assert pattern.matches(120)
        assert pattern.matches(205)
        assert not pattern.matches(150)

    def test_union_inside_braces_not_split(self):
        # The '|' inside a regex body must not split the union.
        pattern = parse_pattern("/a|b/")
        assert isinstance(pattern, RegexPattern)

    def test_empty_rejected(self):
        with pytest.raises(PatternError):
            parse_pattern("   ")

    def test_malformed_rejected(self):
        with pytest.raises(PatternError):
            parse_pattern("{unclosed")

    def test_round_trip_spec(self):
        for text in ("*", "120", "{a, b}", "[120-133]", "/x+/"):
            pattern = parse_pattern(text)
            again = parse_pattern(pattern.spec())
            assert again == pattern
