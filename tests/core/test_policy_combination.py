"""Exhaustive small-domain tests of the policy combination semantics.

Enumerates every sp-batch over a two-role universe and both signs and
checks match/union/intersect/override and denial-by-default in
:mod:`repro.core.policy` against a brute-force model.  The domains are
tiny, so these tests cover the *whole* space rather than sampled
points — any regression in the combination laws is caught exactly.
"""

import itertools

import pytest

from repro.core.bitmap import RoleSet
from repro.core.policy import (EMPTY_POLICY, Policy, TuplePolicy, override,
                               policy_from_sps)
from repro.core.punctuation import SecurityPunctuation
from repro.errors import PolicyError

ROLES = ("R1", "R2")
SID = "s"


def sp(roles, ts, positive=True, provider="p"):
    make = SecurityPunctuation.grant if positive else SecurityPunctuation.deny
    return make(list(roles), ts, provider=provider)


def all_batches(ts, max_size=2):
    """Every batch of ≤ max_size signed sps over the two-role universe."""
    parts = []
    for roles in (("R1",), ("R2",), ("R1", "R2")):
        for positive in (True, False):
            parts.append((roles, positive))
    batches = []
    for size in range(1, max_size + 1):
        for combo in itertools.product(parts, repeat=size):
            batches.append(tuple(sp(r, ts, positive=p) for r, p in combo))
    return batches


def brute_force_roles(batch):
    """Union the positives; if non-empty, subtract the negatives."""
    granted = set()
    for one in batch:
        if one.is_positive:
            granted |= one.roles()
    if granted:
        for one in batch:
            if not one.is_positive:
                granted -= {r for r in granted if one.srp.authorizes(r)}
    return frozenset(granted)


class TestBatchResolution:
    def test_every_batch_matches_brute_force(self):
        for batch in all_batches(1.0):
            policy = Policy(batch)
            expected = brute_force_roles(batch)
            assert policy.authorized_roles(SID, 0) == expected, batch

    def test_empty_batch_is_rejected(self):
        with pytest.raises(PolicyError):
            Policy(())

    def test_denial_by_default_without_positive(self):
        for roles in (("R1",), ("R2",), ("R1", "R2")):
            policy = Policy((sp(roles, 1.0, positive=False),))
            assert policy.authorized_roles(SID, 0) == frozenset()

    def test_conflicting_signs_same_roles_deny(self):
        policy = Policy((sp(("R1",), 1.0), sp(("R1",), 1.0, positive=False)))
        assert policy.authorized_roles(SID, 0) == frozenset()


class TestTuplePolicyAlgebra:
    def subsets(self):
        return [frozenset(c) for size in range(len(ROLES) + 1)
                for c in itertools.combinations(ROLES, size)]

    def test_intersect_union_difference_exhaustive(self):
        for a_roles in self.subsets():
            for b_roles in self.subsets():
                a = TuplePolicy(a_roles, ts=1.0)
                b = TuplePolicy(b_roles, ts=2.0)
                assert set(a.intersect(b).roles.names()) \
                    == set(a_roles & b_roles)
                assert set(a.union(b).roles.names()) \
                    == set(a_roles | b_roles)
                assert set(a.difference(b).roles.names()) \
                    == set(a_roles - b_roles)

    def test_permits_any_exhaustive(self):
        for roles in self.subsets():
            policy = TuplePolicy(roles, ts=1.0)
            for asked in self.subsets():
                assert policy.permits_any(RoleSet(asked)) == bool(roles & asked)

    def test_empty_policy_permits_nothing(self):
        for asked in self.subsets():
            assert not EMPTY_POLICY.permits_any(RoleSet(asked))


class TestOverride:
    def test_newer_always_wins_exhaustive(self):
        for old_ts, new_ts in itertools.product((1.0, 2.0, 3.0), repeat=2):
            old = TuplePolicy(frozenset({"R1"}), ts=old_ts)
            new = TuplePolicy(frozenset({"R2"}), ts=new_ts)
            winner = override(old, new)
            if new_ts >= old_ts:  # equal ts: the refresh replaces
                assert set(winner.roles.names()) == {"R2"}
            else:
                assert set(winner.roles.names()) == {"R1"}


class TestPolicyFromSps:
    def test_same_provider_same_ts_unions(self):
        policy = policy_from_sps([sp(("R1",), 1.0), sp(("R2",), 1.0)])
        assert policy.authorized_roles(SID, 0) == {"R1", "R2"}

    def test_same_provider_newer_overrides(self):
        policy = policy_from_sps([sp(("R1",), 1.0), sp(("R2",), 2.0)])
        assert policy.authorized_roles(SID, 0) == {"R2"}

    def test_distinct_providers_intersect(self):
        policy = policy_from_sps([
            sp(("R1", "R2"), 1.0, provider="alice"),
            sp(("R2",), 1.0, provider="bob"),
        ])
        assert policy.authorized_roles(SID, 0) == {"R2"}

    def test_provider_intersection_can_deny_everything(self):
        policy = policy_from_sps([
            sp(("R1",), 1.0, provider="alice"),
            sp(("R2",), 1.0, provider="bob"),
        ])
        assert policy.authorized_roles(SID, 0) == frozenset()
