"""Tests for the security punctuation structure (Definition 3.1)."""

import pytest

from repro.core.patterns import literal, numeric_range, one_of, parse_pattern
from repro.core.punctuation import (DataDescription, Granularity,
                                    SecurityPunctuation, SecurityRestriction,
                                    Sign, SPBatch)
from repro.errors import PunctuationError


class TestSign:
    def test_parse_forms(self):
        assert Sign.parse("+") is Sign.POSITIVE
        assert Sign.parse("positive") is Sign.POSITIVE
        assert Sign.parse("-") is Sign.NEGATIVE
        assert Sign.parse("NEGATIVE") is Sign.NEGATIVE

    def test_parse_invalid(self):
        with pytest.raises(PunctuationError):
            Sign.parse("maybe")


class TestDataDescription:
    def test_granularity_levels(self):
        assert DataDescription().granularity() is Granularity.STREAM
        assert DataDescription(
            tuple_id=literal(120)).granularity() is Granularity.TUPLE
        assert DataDescription(
            attribute=literal("temp")).granularity() is Granularity.ATTRIBUTE

    def test_describes_stream_object(self):
        ddp = DataDescription(stream=literal("s1"))
        assert ddp.describes("s1")
        assert not ddp.describes("s2")

    def test_tuple_scoped_ddp_does_not_describe_whole_stream(self):
        ddp = DataDescription(stream=literal("s1"), tuple_id=literal(1))
        assert not ddp.describes("s1")  # asks about the whole stream
        assert ddp.describes("s1", 1)
        assert not ddp.describes("s1", 2)

    def test_attribute_matching(self):
        ddp = DataDescription(attribute=one_of(["temp", "bpm"]))
        assert ddp.describes("s1", 5, "temp")
        assert not ddp.describes("s1", 5, "depth")

    def test_parse_defaults_trailing_wildcards(self):
        ddp = DataDescription.parse("s1")
        assert ddp.tuple_id.is_wildcard()
        assert ddp.attribute.is_wildcard()

    def test_parse_three_parts(self):
        ddp = DataDescription.parse("s1, [120-133], temp")
        assert ddp.describes("s1", 125, "temp")

    def test_parse_too_many_parts(self):
        with pytest.raises(PunctuationError):
            DataDescription.parse("a, b, c, d")


class TestSecurityRestriction:
    def test_for_roles_concrete(self):
        srp = SecurityRestriction.for_roles(["C", "D"])
        assert srp.concrete_roles() == frozenset({"C", "D"})

    def test_for_roles_requires_roles(self):
        with pytest.raises(PunctuationError):
            SecurityRestriction.for_roles([])

    def test_open_pattern_not_concrete(self):
        srp = SecurityRestriction.parse("/r[0-9]+/")
        assert srp.concrete_roles() is None

    def test_resolve_against_universe(self):
        srp = SecurityRestriction.parse("/r[0-9]+/")
        roles = srp.resolve(["r1", "r2", "nurse"])
        assert roles == frozenset({"r1", "r2"})

    def test_authorizes(self):
        srp = SecurityRestriction.for_roles(["D"])
        assert srp.authorizes("D")
        assert not srp.authorizes("C")


class TestSecurityPunctuation:
    def test_grant_constructor(self):
        sp = SecurityPunctuation.grant(["D", "ND"], ts=5.0)
        assert sp.is_positive
        assert sp.roles() == frozenset({"D", "ND"})
        assert sp.ts == 5.0
        assert not sp.immutable

    def test_deny_constructor(self):
        sp = SecurityPunctuation.deny(["E"], ts=1.0)
        assert not sp.is_positive
        assert sp.sign is Sign.NEGATIVE

    def test_describes_via_ddp(self):
        sp = SecurityPunctuation.grant(
            ["GP"], ts=0.0, tuple_id=numeric_range(120, 133))
        assert sp.describes("any_stream", 125)
        assert not sp.describes("any_stream", 140)

    def test_roles_raises_on_open_pattern(self):
        sp = SecurityPunctuation(
            ddp=DataDescription(),
            srp=SecurityRestriction.parse("/x.*/"),
            ts=0.0,
        )
        with pytest.raises(PunctuationError):
            sp.roles()

    def test_with_roles_and_ts(self):
        sp = SecurityPunctuation.grant(["A"], ts=1.0)
        sp2 = sp.with_roles(["B"]).with_ts(2.0)
        assert sp2.roles() == frozenset({"B"})
        assert sp2.ts == 2.0
        assert sp.roles() == frozenset({"A"})  # original untouched

    def test_text_round_trip(self):
        sp = SecurityPunctuation.grant(
            ["C", "D"], ts=9.0,
            stream=literal("HeartRate"),
            tuple_id=parse_pattern("[120-133]"),
            immutable=True)
        parsed = SecurityPunctuation.parse(sp.to_text())
        assert parsed.roles() == sp.roles()
        assert parsed.ts == sp.ts
        assert parsed.immutable
        assert parsed.describes("HeartRate", 125)
        assert not parsed.describes("BodyTemperature", 125)

    def test_parse_rejects_malformed(self):
        with pytest.raises(PunctuationError):
            SecurityPunctuation.parse("not an sp")
        with pytest.raises(PunctuationError):
            SecurityPunctuation.parse("<a | b | c>")
        with pytest.raises(PunctuationError):
            SecurityPunctuation.parse("<*, *, * | D | + | F | soon>")

    def test_sp_ids_unique(self):
        a = SecurityPunctuation.grant(["D"], ts=0.0)
        b = SecurityPunctuation.grant(["D"], ts=0.0)
        assert a.sp_id != b.sp_id


class TestSPBatch:
    def test_batch_shares_timestamp(self):
        sps = [SecurityPunctuation.grant(["A"], ts=1.0),
               SecurityPunctuation.grant(["B"], ts=1.0)]
        batch = SPBatch(sps)
        assert batch.ts == 1.0
        assert len(batch) == 2

    def test_mixed_timestamps_rejected(self):
        sps = [SecurityPunctuation.grant(["A"], ts=1.0),
               SecurityPunctuation.grant(["B"], ts=2.0)]
        with pytest.raises(PunctuationError):
            SPBatch(sps)

    def test_empty_batch_rejected(self):
        with pytest.raises(PunctuationError):
            SPBatch([])
