"""Scenario generator invariants: determinism, round-trip, legality."""

from repro.core.punctuation import SecurityPunctuation
from repro.stream.tuples import DataTuple
from repro.verify.generator import ROLE_POOL, Scenario, generate_scenario

SAMPLE = [(seed, index) for seed in (0, 7) for index in range(12)]


def _plans(spec):
    yield spec
    for key in ("input", "left", "right"):
        child = spec.get(key)
        if child is not None:
            yield from _plans(child)


class TestDeterminism:
    def test_same_seed_same_scenario(self):
        for seed, index in SAMPLE:
            first = generate_scenario(seed, index)
            second = generate_scenario(seed, index)
            assert first.to_json() == second.to_json()

    def test_different_indexes_differ(self):
        jsons = {generate_scenario(7, i).to_json() for i in range(10)}
        assert len(jsons) == 10


class TestRoundTrip:
    def test_json_round_trip(self):
        for seed, index in SAMPLE:
            scenario = generate_scenario(seed, index)
            again = Scenario.from_json(scenario.to_json())
            assert again.to_dict() == scenario.to_dict()

    def test_decoded_returns_fresh_elements(self):
        scenario = generate_scenario(0, 0)
        first = scenario.decoded()
        second = scenario.decoded()
        for sid in first:
            assert first[sid] is not second[sid]
            assert len(first[sid]) == len(second[sid])


class TestLegality:
    def test_streams_are_ts_ordered(self):
        for seed, index in SAMPLE:
            for elements in generate_scenario(seed, index).decoded().values():
                ts = [e.ts for e in elements]
                assert ts == sorted(ts)

    def test_elements_decode_to_known_kinds(self):
        for seed, index in SAMPLE:
            for elements in generate_scenario(seed, index).decoded().values():
                assert all(isinstance(e, (SecurityPunctuation, DataTuple))
                           for e in elements)

    def test_roles_drawn_from_pool(self):
        for seed, index in SAMPLE:
            scenario = generate_scenario(seed, index)
            for query in scenario.queries.values():
                assert set(query["roles"]) <= set(ROLE_POOL)

    def test_shield_conjuncts_contain_query_roles(self):
        # Table II Rule 3's two-sided push is delivery-equivalent only
        # when every conjunct contains the query's roles; the generator
        # must respect that to keep optimizer diffs explainable.
        for seed, index in SAMPLE:
            scenario = generate_scenario(seed, index)
            for query in scenario.queries.values():
                qroles = set(query["roles"])
                for spec in _plans(query["plan"]):
                    if spec["op"] != "shield":
                        continue
                    for conjunct in spec["predicates"]:
                        assert qroles <= set(conjunct)

    def test_scans_reference_registered_streams(self):
        for seed, index in SAMPLE:
            scenario = generate_scenario(seed, index)
            for query in scenario.queries.values():
                for spec in _plans(query["plan"]):
                    if spec["op"] == "scan":
                        assert spec["stream"] in scenario.streams

    def test_baseline_shape_is_baseline_compatible(self):
        found = False
        for index in range(40):
            scenario = generate_scenario(5, index)
            if scenario.shape == "baseline":
                found = True
                assert scenario.baseline_compatible()
        assert found, "no baseline shape in 40 draws"
