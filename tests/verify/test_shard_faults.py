"""Shard worker fault injection: the pool must fail closed.

A worker that crashes or hangs mid-segment can never cause partial
delivery — the run raises :class:`~repro.errors.ShardExecutionError`
instead of returning results, emits a ``health.alert`` span through
the coordinator's observability, and reaps every worker process
(bounded drain, no orphans).
"""

import multiprocessing
import time

import pytest

from repro.engine.dsms import DSMS
from repro.engine.sharded import run_sharded
from repro.errors import ShardExecutionError
from repro.observability import Observability
from repro.verify.differ import expr_from_spec
from repro.verify.faults import run_shard_fault_drill
from repro.verify.generator import generate_scenario
from repro.stream.schema import StreamSchema


def build_dsms(scenario, observability=None):
    dsms = DSMS(observability=observability)
    for sid, spec in scenario.streams.items():
        dsms.register_stream(
            StreamSchema(sid, tuple(spec["attributes"])),
            scenario.decoded()[sid])
    for name, query in scenario.queries.items():
        dsms.register_query(name, expr_from_spec(query["plan"]),
                            roles=frozenset(query["roles"]),
                            auto_shield=False)
    return dsms


@pytest.mark.parametrize("seed,index", [(5, 0), (5, 1), (17, 2)])
def test_drill_passes_on_generated_scenarios(seed, index):
    scenario = generate_scenario(seed, index)
    mismatches = run_shard_fault_drill(scenario)
    assert not mismatches, "\n".join(str(m) for m in mismatches)


@pytest.mark.parametrize("kind,timeout", [("crash", 30.0),
                                          ("hang", 0.75)])
def test_fault_raises_alerts_and_drains(kind, timeout):
    scenario = generate_scenario(5, 0)
    dsms = build_dsms(scenario, Observability.in_memory())
    start = time.monotonic()
    with pytest.raises(ShardExecutionError) as excinfo:
        run_sharded(dsms, n_shards=2, timeout=timeout,
                    faults={0: kind})
    elapsed = time.monotonic() - start
    assert "fail-closed" in str(excinfo.value)
    # Queues drain bounded: a hung worker costs at most the deadline
    # plus the terminate/join grace, never an unbounded wait.
    assert elapsed < timeout + 15.0
    alerts = dsms.observability.tracer.events("health.alert")
    assert len(alerts) == 1
    attrs = alerts[0].attrs
    assert attrs["rule"] == "shard.worker"
    assert attrs["severity"] == "critical"
    assert "fail-closed" in attrs["message"]
    # No tuple was delivered without its shield decision: the failed
    # run never populated a report or returned results.
    assert dsms.last_report is None
    assert not [p for p in multiprocessing.active_children()
                if p.is_alive()]


def test_healthy_workers_unaffected_by_drill_api():
    # faults=None (the default) must behave exactly like DSMS.run.
    scenario = generate_scenario(5, 1)
    base = build_dsms(scenario).run()
    dsms = build_dsms(scenario)
    got = run_sharded(dsms, n_shards=2)
    for name in base:
        assert [t.tid for t in got[name].tuples] \
            == [t.tid for t in base[name].tuples]
