"""The differential harness end to end.

* every committed reproducer under ``cases/`` must verify clean — these
  are shrunken scenarios from bugs the differ actually caught (stale
  policies after full-batch projection pruning, the unsound δ/ψ
  commute, sign-blind baselines);
* a seeded fuzz smoke run must be mismatch-free;
* the known-bad mutation (denial-by-default disabled) must be caught
  and shrink to a tiny reproducer — proof the harness detects real
  violations, not just agreement.
"""

import os

import pytest

from repro.verify.campaign import run_campaign
from repro.verify.differ import verify_scenario
from repro.verify.faults import disable_denial_by_default
from repro.verify.generator import generate_scenario
from repro.verify.shrink import load_cases, shrink_scenario

CASES_DIR = os.path.join(os.path.dirname(__file__), "cases")
CASES = load_cases(CASES_DIR)


def test_cases_are_committed():
    names = [name for name, _ in CASES]
    assert "project-prune-widening.json" in names
    assert "dupelim-shield-commute.json" in names
    assert "baseline-negative-sp.json" in names


@pytest.mark.parametrize("name,scenario", CASES,
                         ids=[name for name, _ in CASES])
def test_committed_case_verifies_clean(name, scenario):
    report = verify_scenario(scenario)
    assert report.ok, "\n".join(str(m) for m in report.mismatches)


def test_fuzz_smoke_run_is_clean():
    transcript = []
    result = run_campaign(seed=11, runs=4, emit=transcript.append)
    assert result.ok, "\n".join(transcript)
    assert result.scenarios == 4
    assert result.configs > 0


class TestKnownBadMutation:
    """Disabling denial-by-default must be caught and shrunk small."""

    def _catch(self):
        mutator = disable_denial_by_default()
        for index in range(10):
            scenario = generate_scenario(99, index)
            report = verify_scenario(scenario, include_baselines=False,
                                     element_mutator=mutator)
            if not report.ok:
                return scenario, mutator, report
        pytest.fail("known-bad mutation was never detected in 10 scenarios")

    def test_caught_and_shrunk(self):
        scenario, mutator, report = self._catch()
        assert any(m.kind == "delivered" for m in report.mismatches)

        def failing(candidate):
            return not verify_scenario(candidate, include_baselines=False,
                                       element_mutator=mutator).ok

        small = shrink_scenario(scenario, failing)
        assert small.element_count() <= 10
        assert failing(small)
        # The minimal witness still shows unauthorized delivery.
        bad = verify_scenario(small, include_baselines=False,
                              element_mutator=mutator)
        assert any("extra" in m.detail for m in bad.mismatches
                   if m.kind == "delivered")
