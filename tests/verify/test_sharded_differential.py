"""The differential oracle's shard axis.

Every generated scenario now also runs through the partitioned
multi-process executor (``n_shards ∈ {1, 2, 4}``, plus sharded
columnar / audited / index-join crossings).  This suite proves the
axis is wired — the configs exist, seeded fuzz runs verify clean
through them, and the known-bad mutation (denial-by-default disabled)
is still caught when the engine runs sharded.
"""

import pytest

from repro.verify.differ import configs_for, verify_scenario
from repro.verify.faults import disable_denial_by_default
from repro.verify.generator import generate_scenario


def test_shard_axis_is_in_the_config_matrix():
    scenario = generate_scenario(23, 0)
    configs = configs_for(scenario)
    shard_counts = sorted({c.n_shards for c in configs if c.n_shards})
    assert shard_counts == [1, 2, 4]
    labels = [c.label for c in configs]
    assert "sharded2-columnar/nl/none" in labels
    assert "sharded2-audited/nl/none" in labels
    modes = {c.mode for c in configs if c.n_shards}
    assert "sharded2-batched" in modes
    # Sharded audited config keeps the element-wise reference path.
    audited = [c for c in configs if c.audit and c.n_shards]
    assert audited and not audited[0].batching


@pytest.mark.parametrize("seed,index", [(31, 0), (31, 1), (31, 2),
                                        (47, 0), (47, 3)])
def test_seeded_scenarios_verify_clean_with_shards(seed, index):
    scenario = generate_scenario(seed, index)
    report = verify_scenario(scenario, include_baselines=False)
    assert report.ok, "\n".join(str(m) for m in report.mismatches)
    # The run really crossed the shard axis.
    assert report.configs_run >= len(configs_for(scenario))


def test_known_bad_mutation_caught_by_sharded_configs():
    """Disabling denial-by-default must be flagged by sharded runs too.

    Parallelism must never silently widen access — if only the
    single-process configs flagged the mutation, a sharded deployment
    would be fail-open.
    """
    mutator = disable_denial_by_default()
    for index in range(10):
        scenario = generate_scenario(99, index)
        report = verify_scenario(scenario, include_baselines=False,
                                 element_mutator=mutator)
        if not report.ok:
            sharded_hits = [m for m in report.mismatches
                            if m.config.startswith("sharded")]
            assert sharded_hits, (
                "mutation caught only by single-process configs:\n"
                + "\n".join(str(m) for m in report.mismatches))
            return
    pytest.fail("known-bad mutation was never detected in 10 scenarios")
