"""``repro verify`` must be byte-deterministic for a fixed seed."""

import io
from contextlib import redirect_stdout

from repro.cli import main


def _run(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


def test_seed_42_is_byte_identical_across_runs():
    first_code, first = _run(["verify", "--seed", "42", "--runs", "6"])
    second_code, second = _run(["verify", "--seed", "42", "--runs", "6"])
    assert first_code == second_code == 0
    assert first == second
    assert "seed=42" in first


def test_different_seeds_change_the_transcript():
    _, first = _run(["verify", "--seed", "42", "--runs", "3"])
    _, second = _run(["verify", "--seed", "43", "--runs", "3"])
    assert first != second


def test_replay_exit_codes(tmp_path):
    import os
    cases = os.path.join(os.path.dirname(__file__), "cases")
    paths = [os.path.join(cases, f) for f in sorted(os.listdir(cases))
             if f.endswith(".json")]
    code, out = _run(["verify", "--replay", *paths])
    assert code == 0
    assert f"replaying {len(paths)}" in out
