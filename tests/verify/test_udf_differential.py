"""Differential proof for registered-UDF select plans.

A ``{"udf": name}`` select condition must deliver the oracle's exact
multiset under every configuration ``configs_for`` generates —
element-wise / segment-batched / fused-columnar, every optimizer
level, and the 1/2/4-worker sharded executor — because the registered
callable *is* the semantics on both sides: the oracle calls it
directly while the engine routes it through ``FuncCondition``, the
effect analyzer's proofs, the predicate compiler's bulk kernels and
the shard-safety gate.  Zero mismatches here is the PR's acceptance
bar for the whole proof chain.
"""

import json

from repro.operators.udfs import udf_entry
from repro.verify.differ import verify_scenario
from repro.verify.generator import Scenario


def _sp(roles, ts):
    inner = ", ".join(sorted(roles))
    return json.dumps({
        "k": "sp",
        "sp": f"<*, *, * | {{{inner}}} | + | F | {ts}>",
        "p": "cars",
    })


def _tuple(tid, x, y, speed, ts):
    return json.dumps({"k": "t", "sid": "cars", "tid": tid,
                       "v": {"x": x, "y": y, "speed": speed}, "ts": ts})


def _udf_scenario():
    """Two registered-UDF queries over a policy-churning stream.

    Tuple values sweep across both predicate boundaries (the
    ``in_region`` disc around (500, 500) and the ``fast_mover`` speed
    threshold) and the sp stream revokes then restores access
    mid-stream, so enforcement and selection both flip repeatedly.
    """
    elements = [_sp({"police"}, 0.0)]
    for i in range(48):
        x = 150.0 + 17.0 * i
        y = 420.0 + (i * 53) % 260
        speed = 30.0 + (i * 7) % 80
        elements.append(_tuple(i, x, y, speed, 1.0 + i))
        if i % 16 == 15:
            roles = {"dispatch"} if (i // 16) % 2 == 0 else {"police"}
            elements.append(_sp(roles, 1.5 + i))
    streams = {"cars": {"attributes": ["x", "y", "speed"],
                        "elements": elements}}

    def query(udf_name):
        return {
            "roles": ["police"],
            "plan": {
                "op": "shield",
                "predicates": [["police"]],
                "input": {
                    "op": "select",
                    "input": {"op": "scan", "stream": "cars"},
                    "condition": {"udf": udf_name},
                },
            },
        }

    return Scenario(
        seed=0, index=0, shape="udf_select", knobs={},
        streams=streams,
        queries={"region": query("in_region"),
                 "fast": query("fast_mover")},
        note="registered-UDF select differential")


def test_udf_select_matches_oracle_everywhere():
    """Zero mismatches across the full engine-configuration matrix."""
    report = verify_scenario(_udf_scenario())
    assert report.configs_run >= 10
    assert not report.mismatches, [str(m) for m in report.mismatches]


def test_udf_scenario_exercises_both_predicate_sides():
    scenario = _udf_scenario()
    decoded = scenario.decoded()["cars"]
    tuples = [e for e in decoded if getattr(e, "values", None) is not None]
    region = udf_entry("in_region").fn
    fast = udf_entry("fast_mover").fn
    for fn in (region, fast):
        hits = sum(1 for t in tuples if fn(t))
        assert 0 < hits < len(tuples), fn
