"""Direct checks of the reference oracle's denotational semantics.

The oracle is the harness's ground truth, so it gets its own tests:
each asserts a fact that follows from the paper's semantics by hand,
independent of the engine.
"""

from repro.core.patterns import literal
from repro.core.punctuation import SecurityPunctuation
from repro.stream.tuples import DataTuple
from repro.verify.oracle import (NaiveTracker, canonical_tid, resolve_batch,
                                 run_oracle, signature)


def grant(roles, ts, **kw):
    kw.setdefault("stream", literal("s"))
    return SecurityPunctuation.grant(roles, ts, provider="s", **kw)


def deny(roles, ts, **kw):
    kw.setdefault("stream", literal("s"))
    return SecurityPunctuation.deny(roles, ts, provider="s", **kw)


def t(tid, ts, **values):
    values = values or {"a": tid}
    return DataTuple("s", tid, values, ts)


def scan_query(roles):
    return {"q": {"roles": list(roles), "plan": {"op": "scan", "stream": "s"}}}


def delivered_tids(outcome, name="q"):
    return [sig[1] for sig in outcome.delivered[name]]


class TestTracker:
    def test_batch_accumulates_same_ts(self):
        tracker = NaiveTracker()
        tracker.observe(grant(["R1"], 1.0))
        tracker.observe(grant(["R2"], 1.0))
        assert len(tracker.governing()) == 2

    def test_new_ts_overrides(self):
        tracker = NaiveTracker()
        tracker.observe(grant(["R1"], 1.0))
        tracker.observe(grant(["R2"], 2.0))
        (sp,) = tracker.governing()
        assert sp.roles() == {"R2"}

    def test_stale_batch_discarded(self):
        tracker = NaiveTracker()
        tracker.observe(grant(["R1"], 5.0))
        assert tracker.governing()[0].ts == 5.0
        tracker.observe(grant(["R2"], 1.0))
        (sp,) = tracker.governing()
        assert sp.roles() == {"R1"}


class TestResolution:
    def test_denial_by_default(self):
        assert resolve_batch((), t(0, 1.0)) == frozenset()

    def test_union_within_batch(self):
        batch = (grant(["R1"], 0.0), grant(["R2"], 0.0))
        assert resolve_batch(batch, t(0, 1.0)) == {"R1", "R2"}

    def test_negative_subtracts(self):
        batch = (grant(["R1", "R2"], 0.0), deny(["R1"], 0.0))
        assert resolve_batch(batch, t(0, 1.0)) == {"R2"}

    def test_deny_without_grant_is_empty(self):
        batch = (deny(["R1"], 0.0),)
        assert resolve_batch(batch, t(0, 1.0)) == frozenset()

    def test_attribute_scope_intersects_over_attributes(self):
        batch = (grant(["R1", "R2"], 0.0, attribute=literal("a")),
                 grant(["R1"], 0.0, attribute=literal("b")))
        item = DataTuple("s", 0, {"a": 1, "b": 2}, 1.0)
        assert resolve_batch(batch, item) == {"R1"}

    def test_attribute_scope_missing_attr_denies(self):
        batch = (grant(["R1"], 0.0, attribute=literal("a")),)
        item = DataTuple("s", 0, {"a": 1, "b": 2}, 1.0)
        assert resolve_batch(batch, item) == frozenset()

    def test_tuple_scope(self):
        batch = (grant(["R1"], 0.0, tuple_id=literal(7)),)
        assert resolve_batch(batch, t(7, 1.0)) == {"R1"}
        assert resolve_batch(batch, t(8, 1.0)) == frozenset()


class TestCanonicalTid:
    def test_scalar_passthrough(self):
        assert canonical_tid(3) == 3

    def test_nested_pairs_flatten_sorted(self):
        assert canonical_tid(((1, 2), 3)) == canonical_tid((3, (2, 1)))


class TestScanSemantics:
    def test_tuple_before_any_sp_is_invisible(self):
        outcome = run_oracle(
            {"s": [t(0, 0.5), grant(["R1"], 1.0), t(1, 2.0)]},
            scan_query(["R1"]))
        assert delivered_tids(outcome) == [1]
        assert outcome.denied["q"] == 1

    def test_override_changes_visibility(self):
        outcome = run_oracle(
            {"s": [grant(["R1"], 0.0), t(0, 1.0),
                   grant(["R2"], 2.0), t(1, 3.0)]},
            scan_query(["R1"]))
        assert delivered_tids(outcome) == [0]
        assert outcome.denied["q"] == 1

    def test_delivery_keeps_full_role_set(self):
        outcome = run_oracle(
            {"s": [grant(["R1", "R2"], 0.0), t(0, 1.0)]},
            scan_query(["R1"]))
        (sig,) = outcome.delivered["q"]
        assert sig[4] == ("R1", "R2")


class TestShieldSemantics:
    def test_all_conjuncts_must_intersect(self):
        plan = {"op": "shield", "input": {"op": "scan", "stream": "s"},
                "predicates": [["R1"], ["R2"]]}
        outcome = run_oracle(
            {"s": [grant(["R1"], 0.0), t(0, 1.0),
                   grant(["R1", "R2"], 2.0), t(1, 3.0)]},
            {"q": {"roles": ["R1"], "plan": plan}})
        assert delivered_tids(outcome) == [1]


class TestDupElimSemantics:
    def plan(self):
        return {"op": "dupelim", "input": {"op": "scan", "stream": "s"},
                "window": 100.0, "attributes": ["a"]}

    def test_three_cases(self):
        # {R1} emit; {R1} suppress; {R2} disjoint -> emit; {R1,R2}
        # overlapping -> emit for the new role only (roles narrow to R1
        # after the {R2} replacement... here: {R2} replaced the entry).
        streams = {"s": [
            grant(["R1"], 0.0), t(0, 1.0, a=5),
            t(1, 2.0, a=5),
            grant(["R2"], 3.0), t(2, 4.0, a=5),
            grant(["R1", "R2"], 5.0), t(3, 6.0, a=5),
        ]}
        outcome = run_oracle(
            streams, {"q": {"roles": ["R1", "R2"],
                            "plan": self.plan()}})
        sigs = outcome.delivered["q"]
        assert [s[1] for s in sigs] == [0, 2, 3]
        # the last emission is for the roles that had not seen a=5 yet
        assert sigs[-1][4] == ("R1",)

    def test_invisible_tuples_do_not_suppress(self):
        streams = {"s": [
            t(0, 1.0, a=5),                      # denial-by-default
            grant(["R1"], 2.0), t(1, 3.0, a=5),  # must still be emitted
        ]}
        outcome = run_oracle(streams,
                             {"q": {"roles": ["R1"], "plan": self.plan()}})
        assert delivered_tids(outcome) == [1]


class TestJoinSemantics:
    def plan(self, window=100.0):
        return {"op": "join",
                "left": {"op": "scan", "stream": "s"},
                "right": {"op": "scan", "stream": "r"},
                "left_on": "k", "right_on": "k", "window": window}

    def streams(self, left_roles, right_roles):
        return {
            "s": [SecurityPunctuation.grant(left_roles, 0.0, provider="s"),
                  DataTuple("s", 0, {"k": 1}, 1.0)],
            "r": [SecurityPunctuation.grant(right_roles, 0.0, provider="r"),
                  DataTuple("r", 10, {"k": 1}, 2.0)],
        }

    def test_result_policy_is_intersection(self):
        outcome = run_oracle(
            self.streams(["R1", "R2"], ["R2", "R3"]),
            {"q": {"roles": ["R2"], "plan": self.plan()}})
        (sig,) = outcome.delivered["q"]
        assert sig[4] == ("R2",)

    def test_disjoint_policies_join_nothing(self):
        outcome = run_oracle(
            self.streams(["R1"], ["R2"]),
            {"q": {"roles": ["R1", "R2"], "plan": self.plan()}})
        assert outcome.delivered["q"] == []

    def test_window_expiry(self):
        streams = {
            "s": [SecurityPunctuation.grant(["R1"], 0.0, provider="s"),
                  DataTuple("s", 0, {"k": 1}, 1.0)],
            "r": [SecurityPunctuation.grant(["R1"], 0.0, provider="r"),
                  DataTuple("r", 10, {"k": 1}, 50.0)],
        }
        outcome = run_oracle(
            streams, {"q": {"roles": ["R1"], "plan": self.plan(window=10.0)}})
        assert outcome.delivered["q"] == []


class TestGroupBySemantics:
    def test_subgroups_partition_by_policy(self):
        plan = {"op": "groupby", "input": {"op": "scan", "stream": "s"},
                "key": None, "agg": "sum", "attribute": "a",
                "window": 100.0}
        streams = {"s": [
            grant(["R1"], 0.0), t(0, 1.0, a=10),
            grant(["R2"], 2.0), t(1, 3.0, a=5),
        ]}
        outcome = run_oracle(streams,
                             {"q": {"roles": ["R1", "R2"], "plan": plan}})
        sums = [dict(sig[3])["sum(a)"] for sig in outcome.delivered["q"]]
        # R1's aggregate never mixes with R2's disjoint subgroup
        assert sums == [10, 5]
