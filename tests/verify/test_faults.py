"""Fault injection: benign faults, consistency faults, malformed sps."""

import random

import pytest

from repro.core.punctuation import SecurityPunctuation
from repro.errors import PunctuationError
from repro.stream.tuples import DataTuple
from repro.verify.faults import (_sp_batches, disable_denial_by_default,
                                 malformed_sp_texts, run_fault_campaign)
from repro.verify.generator import generate_scenario
from repro.verify.oracle import run_oracle


class TestBatchSpans:
    def test_spans_split_on_tuples_and_ts(self):
        elements = [
            SecurityPunctuation.grant(["R1"], 0.0, provider="s"),
            SecurityPunctuation.grant(["R2"], 0.0, provider="s"),
            DataTuple("s", 0, {"a": 1}, 1.0),
            SecurityPunctuation.grant(["R1"], 2.0, provider="s"),
            SecurityPunctuation.grant(["R2"], 3.0, provider="s"),
        ]
        assert _sp_batches(elements) == [(0, 2), (3, 4), (4, 5)]

    def test_no_sps_no_spans(self):
        assert _sp_batches([DataTuple("s", 0, {"a": 1}, 1.0)]) == []


@pytest.mark.parametrize("index", range(6))
def test_fault_campaign_is_clean(index):
    scenario = generate_scenario(23, index)
    outcome = run_fault_campaign(scenario, random.Random(f"t:{index}"))
    assert outcome.ok, "\n".join(str(m) for m in outcome.mismatches)
    assert outcome.faults_run >= 5


class TestMalformedSp:
    def test_all_corruptions_fail_to_parse(self):
        sp = SecurityPunctuation.grant(["R1", "R2"], 3.5, provider="s")
        for bad in malformed_sp_texts(sp):
            with pytest.raises(PunctuationError):
                SecurityPunctuation.parse(bad)

    def test_original_still_parses(self):
        sp = SecurityPunctuation.grant(["R1"], 1.0, provider="s")
        again = SecurityPunctuation.parse(sp.to_text())
        assert again.roles() == {"R1"}


class TestKnownBadMutator:
    def test_mutation_widens_oracle_outcome(self):
        # With the wildcard grant prepended, the oracle itself delivers
        # at least as much — demonstrating the mutation models a real
        # denial-by-default failure rather than a no-op.
        scenario = generate_scenario(99, 1)
        mutated = scenario.mutate_elements(disable_denial_by_default())
        base = run_oracle(scenario.decoded(), scenario.queries)
        wide = run_oracle(mutated.decoded(), mutated.queries)
        for name in scenario.queries:
            assert len(wide.delivered[name]) >= len(base.delivered[name])
        assert any(len(wide.delivered[n]) > len(base.delivered[n])
                   for n in scenario.queries)
