"""Differential proof for the fused columnar execution tier.

Every committed reproducer case and a fresh block of generated
scenarios must deliver the oracle's exact multiset under
``columnar/nl/none`` — the segment-batched engine with fused
shield/select/project kernels forced onto every run length — and agree
with the element-wise engine on the whole-plan drop counter.  The full
three-mode cross-product (including optimizer levels and the audited
run) is exercised by ``verify_scenario`` itself, which since the
columnar tier landed includes a ``columnar/*/*`` config per plan.
"""

import os
from collections import Counter

import pytest

from repro.verify.differ import (EngineConfig, configs_for, diff_delivered,
                                 run_engine)
from repro.verify.generator import generate_scenario
from repro.verify.oracle import run_oracle
from repro.verify.shrink import load_cases

CASES_DIR = os.path.join(os.path.dirname(__file__), "cases")
CASES = load_cases(CASES_DIR)

COLUMNAR = EngineConfig(label="columnar/nl/none", batching=True,
                        columnar=True)
ELEMENTWISE = EngineConfig(label="elementwise/nl/none", batching=False)

#: Generated-scenario block: seed fixed for reproducibility, size is
#: the satellite's floor.
GENERATED_SEED = 733
GENERATED_COUNT = 24


def assert_columnar_matches_oracle(scenario):
    oracle = run_oracle(scenario.decoded(), scenario.queries)
    columnar = run_engine(scenario, COLUMNAR)
    element = run_engine(scenario, ELEMENTWISE)
    for name in scenario.queries:
        detail = diff_delivered(oracle.delivered[name],
                                columnar.delivered.get(name, Counter()))
        assert detail is None, f"{scenario.describe()} {name}: {detail}"
    assert columnar.total_drops == element.total_drops


def test_configs_include_columnar_axis():
    scenario = generate_scenario(GENERATED_SEED, 0)
    modes = {config.mode for config in configs_for(scenario)}
    assert "columnar" in modes and "batched" in modes \
        and "elementwise" in modes


@pytest.mark.parametrize("name,scenario", CASES,
                         ids=[name for name, _ in CASES])
def test_committed_case_columnar(name, scenario):
    assert_columnar_matches_oracle(scenario)


@pytest.mark.parametrize("index", range(GENERATED_COUNT))
def test_generated_scenario_columnar(index):
    assert_columnar_matches_oracle(
        generate_scenario(GENERATED_SEED, index))
