"""Tests for the flat RBAC model and registration locking."""

import pytest

from repro.access.model import Right, Subject
from repro.access.rbac import RBACModel
from repro.errors import AccessControlError


@pytest.fixture
def rbac():
    model = RBACModel()
    for role in ("C", "D", "ND"):
        model.add_role(role)
    model.add_user("alice")
    model.assign_role("alice", "D")
    model.assign_role("alice", "ND")
    return model


class TestAdministration:
    def test_roles_of(self, rbac):
        assert rbac.roles_of("alice") == frozenset({"D", "ND"})

    def test_unknown_role_rejected(self, rbac):
        with pytest.raises(AccessControlError):
            rbac.assign_role("alice", "SUPERUSER")

    def test_unknown_user_rejected(self, rbac):
        with pytest.raises(AccessControlError):
            rbac.roles_of("bob")

    def test_revoke(self, rbac):
        rbac.revoke_role("alice", "ND")
        assert rbac.roles_of("alice") == frozenset({"D"})

    def test_subject_object_accepted(self, rbac):
        subject = rbac.add_user(Subject("bob", "Bob"))
        assert subject.name == "Bob"
        assert rbac.roles_of("bob") == frozenset()


class TestSessions:
    def test_sign_in_activates_all_by_default(self, rbac):
        session = rbac.sign_in("alice")
        assert session.active_roles == frozenset({"D", "ND"})

    def test_sign_in_with_subset(self, rbac):
        session = rbac.sign_in("alice", frozenset({"D"}))
        assert session.active_roles == frozenset({"D"})

    def test_at_least_one_role_required(self, rbac):
        rbac.add_user("norole")
        with pytest.raises(AccessControlError):
            rbac.sign_in("norole")

    def test_cannot_activate_unassigned(self, rbac):
        with pytest.raises(AccessControlError):
            rbac.sign_in("alice", frozenset({"C"}))

    def test_principals_for_uses_session(self, rbac):
        subject = Subject("alice")
        rbac.sign_in("alice", frozenset({"D"}))
        assert rbac.principals_for(subject) == frozenset({"D"})
        rbac.sign_out("alice")
        assert rbac.principals_for(subject) == frozenset({"D", "ND"})


class TestLocking:
    def test_locked_user_cannot_change_roles(self, rbac):
        rbac.lock("alice")
        with pytest.raises(AccessControlError):
            rbac.assign_role("alice", "C")
        with pytest.raises(AccessControlError):
            rbac.revoke_role("alice", "D")

    def test_unlock_restores(self, rbac):
        rbac.lock("alice")
        rbac.unlock("alice")
        rbac.assign_role("alice", "C")
        assert "C" in rbac.roles_of("alice")

    def test_lock_is_counted(self, rbac):
        rbac.lock("alice")
        rbac.lock("alice")
        rbac.unlock("alice")
        assert rbac.is_locked("alice")
        rbac.unlock("alice")
        assert not rbac.is_locked("alice")

    def test_unlock_without_lock_rejected(self, rbac):
        with pytest.raises(AccessControlError):
            rbac.unlock("alice")

    def test_locked_user_cannot_sign_out(self, rbac):
        rbac.sign_in("alice")
        rbac.lock("alice")
        with pytest.raises(AccessControlError):
            rbac.sign_out("alice")


class TestRights:
    def test_read_only_model(self):
        model = RBACModel()
        subject = Subject("x")
        assert model.holds(subject, Right.READ)
        assert not model.holds(subject, Right.UPDATE)
        assert not model.holds(subject, Right.DELETE)
