"""Tests for the DAC and MAC models mapped onto sps."""

import pytest

from repro.access.dac import DACModel, user_principal
from repro.access.mac import DEFAULT_LEVELS, MACModel, level_principal
from repro.access.model import Subject
from repro.core.bitmap import RoleSet
from repro.core.punctuation import SecurityPunctuation
from repro.errors import AccessControlError
from repro.operators.shield import SecurityShield
from repro.stream.tuples import DataTuple


class TestDAC:
    def test_principal_naming(self):
        assert user_principal("alice") == "user:alice"
        with pytest.raises(AccessControlError):
            user_principal("")

    def test_principals_for(self):
        model = DACModel()
        model.add_user("alice")
        assert model.principals_for(Subject("alice")) == frozenset(
            {"user:alice"})

    def test_unknown_user_rejected(self):
        model = DACModel()
        with pytest.raises(AccessControlError):
            model.principals_for(Subject("ghost"))

    def test_dac_enforcement_via_sps(self):
        """A grant to alice lets alice — and only alice — through."""
        model = DACModel()
        model.add_user("alice")
        model.add_user("bob")
        sp = SecurityPunctuation.grant([user_principal("alice")], ts=0.0)
        t = DataTuple("s", 1, {"v": 1}, 1.0)

        alice_shield = SecurityShield(model.principals_for(Subject("alice")))
        assert [e for e in (alice_shield.process(sp)
                            + alice_shield.process(t))
                if isinstance(e, DataTuple)]

        bob_shield = SecurityShield(model.principals_for(Subject("bob")))
        assert not (bob_shield.process(sp) + bob_shield.process(t))


class TestMAC:
    def test_default_lattice(self):
        model = MACModel()
        assert model.dominates("top_secret", "secret")
        assert model.dominates("secret", "secret")
        assert not model.dominates("confidential", "secret")

    def test_unknown_level_rejected(self):
        model = MACModel()
        with pytest.raises(AccessControlError):
            model.dominates("secret", "super_duper_secret")
        with pytest.raises(AccessControlError):
            model.set_clearance("u", "nope")

    def test_clearance_management(self):
        model = MACModel()
        model.set_clearance("alice", "secret")
        assert model.clearance_of("alice") == "secret"
        with pytest.raises(AccessControlError):
            model.clearance_of("bob")

    def test_principals_for_classification_upward_closure(self):
        model = MACModel()
        principals = model.principals_for_classification("secret")
        assert principals == frozenset({
            level_principal("secret"), level_principal("top_secret")})

    def test_duplicate_levels_rejected(self):
        with pytest.raises(AccessControlError):
            MACModel(("a", "a"))

    def test_mac_enforcement_matches_dominance(self):
        """sp principal sets reproduce exactly clearance >= class."""
        model = MACModel()
        for clearance in DEFAULT_LEVELS:
            model.set_clearance(f"user_{clearance}", clearance)
        for classification in DEFAULT_LEVELS:
            object_principals = RoleSet(
                model.principals_for_classification(classification))
            for clearance in DEFAULT_LEVELS:
                subject = Subject(f"user_{clearance}")
                subject_principals = RoleSet(model.principals_for(subject))
                allowed = object_principals.intersects(subject_principals)
                assert allowed == model.dominates(clearance, classification)
