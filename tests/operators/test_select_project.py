"""Tests for sp-aware selection and projection (Table I: σ, π)."""

import pytest

from repro.core.patterns import literal, one_of
from repro.core.punctuation import SecurityPunctuation
from repro.errors import PlanError
from repro.operators.conditions import Comparison
from repro.operators.project import Project
from repro.operators.select import Select
from repro.stream.tuples import DataTuple


def grant(roles, ts, **kwargs):
    return SecurityPunctuation.grant(roles, ts, **kwargs)


def tup(tid, value, ts):
    return DataTuple("s1", tid, {"v": value, "extra": tid}, ts)


def drive(op, elements):
    out = []
    for element in elements:
        out.extend(op.process(element))
    return out


class TestSelect:
    def test_drops_failing_tuples(self):
        select = Select(Comparison("v", ">", 10))
        out = drive(select, [grant(["D"], 0.0), tup(1, 5, 1.0),
                             tup(2, 15, 2.0)])
        tids = [e.tid for e in out if isinstance(e, DataTuple)]
        assert tids == [2]
        assert select.tuples_dropped == 1

    def test_sp_delayed_until_first_pass(self):
        """Table I: select delays sp propagation until a covered tuple
        satisfies the condition."""
        select = Select(Comparison("v", ">", 10))
        out = []
        out.extend(select.process(grant(["D"], 0.0)))
        assert out == []  # sp held
        out.extend(select.process(tup(1, 5, 1.0)))
        assert out == []  # still held: tuple failed
        out.extend(select.process(tup(2, 15, 2.0)))
        assert isinstance(out[0], SecurityPunctuation)
        assert out[1].tid == 2

    def test_sp_discarded_when_segment_fully_filtered(self):
        select = Select(Comparison("v", ">", 10))
        out = drive(select, [
            grant(["D"], 0.0), tup(1, 5, 1.0),      # all filtered
            grant(["C"], 2.0), tup(2, 20, 3.0),      # passes
        ])
        sps = [e for e in out if isinstance(e, SecurityPunctuation)]
        assert len(sps) == 1
        assert sps[0].roles() == frozenset({"C"})
        assert select.sps_discarded == 1

    def test_sp_emitted_once_per_segment(self):
        select = Select(Comparison("v", ">", 0))
        out = drive(select, [grant(["D"], 0.0), tup(1, 1, 1.0),
                             tup(2, 2, 2.0)])
        sps = [e for e in out if isinstance(e, SecurityPunctuation)]
        assert len(sps) == 1

    def test_flush_counts_leftover_sps(self):
        select = Select(Comparison("v", ">", 10))
        drive(select, [grant(["D"], 0.0), tup(1, 1, 1.0)])
        select.flush()
        assert select.sps_discarded == 1

    def test_plain_callable_accepted(self):
        select = Select(lambda t: t.values["v"] == 1)
        out = drive(select, [grant(["D"], 0.0), tup(1, 1, 1.0)])
        assert [e.tid for e in out if isinstance(e, DataTuple)] == [1]


class TestProject:
    def test_keeps_only_named_attributes(self):
        project = Project(("v",))
        out = drive(project, [tup(1, 5, 1.0)])
        assert out[0].values == {"v": 5}
        assert out[0].tid == 1  # identity preserved

    def test_wildcard_sps_pass(self):
        project = Project(("v",))
        out = drive(project, [grant(["D"], 0.0), tup(1, 5, 1.0)])
        assert isinstance(out[0], SecurityPunctuation)

    def test_attribute_sp_for_kept_attribute_passes(self):
        project = Project(("v",))
        sp = grant(["D"], 0.0, attribute=literal("v"))
        out = drive(project, [sp])
        assert out == [sp]

    def test_attribute_sp_for_dropped_attribute_discarded(self):
        """Table I: sps describing only projected-away attributes go."""
        project = Project(("v",))
        sp = grant(["D"], 0.0, attribute=literal("extra"))
        out = drive(project, [sp])
        assert out == []
        assert project.sps_discarded == 1

    def test_attribute_sp_spanning_kept_and_dropped(self):
        project = Project(("v",))
        sp = grant(["D"], 0.0, attribute=one_of(["v", "extra"]))
        assert drive(project, [sp]) == [sp]

    def test_empty_projection_rejected(self):
        with pytest.raises(PlanError):
            Project(())
