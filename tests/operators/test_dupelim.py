"""Tests for sp-aware duplicate elimination (Table I / IV.B: δ)."""

import pytest

from repro.core.punctuation import SecurityPunctuation
from repro.errors import PlanError
from repro.operators.dupelim import DuplicateElimination
from repro.stream.tuples import DataTuple


def grant(roles, ts):
    return SecurityPunctuation.grant(roles, ts)


def tup(tid, value, ts):
    return DataTuple("s", tid, {"v": value}, ts)


def drive(op, elements):
    out = []
    for element in elements:
        out.extend(op.process(element))
    return out


def out_values(elements):
    return [e.values["v"] for e in elements if isinstance(e, DataTuple)]


def sp_roles(elements):
    return [e.roles() for e in elements
            if isinstance(e, SecurityPunctuation)]


class TestBasics:
    def test_distinct_values_pass(self):
        de = DuplicateElimination(window=100.0, attributes=("v",))
        out = drive(de, [grant(["D"], 0.0), tup(1, "a", 1.0),
                         tup(2, "b", 2.0)])
        assert out_values(out) == ["a", "b"]

    def test_duplicate_same_policy_suppressed(self):
        """Case 2: Pold ∩ Pnew = Pnew → nothing emitted."""
        de = DuplicateElimination(window=100.0, attributes=("v",))
        out = drive(de, [grant(["D"], 0.0), tup(1, "a", 1.0),
                         tup(2, "a", 2.0)])
        assert out_values(out) == ["a"]
        assert de.duplicates_suppressed == 1

    def test_case1_disjoint_policy_reemits(self):
        """Case 1: Pold ∩ Pnew = ∅ → re-emit with Pnew, store Pnew."""
        de = DuplicateElimination(window=100.0, attributes=("v",))
        out = drive(de, [
            grant(["D"], 0.0), tup(1, "a", 1.0),
            grant(["C"], 2.0), tup(2, "a", 3.0),
        ])
        assert out_values(out) == ["a", "a"]
        assert sp_roles(out) == [frozenset({"D"}), frozenset({"C"})]

    def test_case3_partial_overlap_emits_difference(self):
        """Case 3: emit Pnew − (Pold ∩ Pnew)."""
        de = DuplicateElimination(window=100.0, attributes=("v",))
        out = drive(de, [
            grant(["D"], 0.0), tup(1, "a", 1.0),
            grant(["D", "C"], 2.0), tup(2, "a", 3.0),
        ])
        assert out_values(out) == ["a", "a"]
        assert sp_roles(out)[-1] == frozenset({"C"})

    def test_case3_stored_union_suppresses_followups(self):
        """After case 3, both old and new roles count as 'have seen'."""
        de = DuplicateElimination(window=100.0, attributes=("v",))
        out = drive(de, [
            grant(["D"], 0.0), tup(1, "a", 1.0),
            grant(["D", "C"], 2.0), tup(2, "a", 3.0),
            grant(["C"], 4.0), tup(3, "a", 5.0),   # C already saw "a"
            grant(["D"], 6.0), tup(4, "a", 7.0),   # D already saw "a"
        ])
        assert out_values(out) == ["a", "a"]
        assert de.duplicates_suppressed == 2

    def test_expiry_allows_reemission(self):
        de = DuplicateElimination(window=10.0, attributes=("v",))
        out = drive(de, [
            grant(["D"], 0.0), tup(1, "a", 1.0),
            tup(2, "a", 50.0),  # far past the window: entry expired
        ])
        assert out_values(out) == ["a", "a"]

    def test_denied_tuple_neither_output_nor_remembered(self):
        de = DuplicateElimination(window=100.0, attributes=("v",))
        out = drive(de, [
            tup(1, "a", 1.0),                # denial-by-default
            grant(["D"], 2.0), tup(2, "a", 3.0),
        ])
        assert out_values(out) == ["a"]
        assert sp_roles(out) == [frozenset({"D"})]

    def test_whole_tuple_distinctness_default(self):
        de = DuplicateElimination(window=100.0)
        out = drive(de, [grant(["D"], 0.0),
                         DataTuple("s", 1, {"v": 1, "w": 1}, 1.0),
                         DataTuple("s", 2, {"v": 1, "w": 2}, 2.0)])
        assert len(out_values(out)) == 2  # differ in attribute w

    def test_invalid_window_rejected(self):
        with pytest.raises(PlanError):
            DuplicateElimination(window=0.0)

    def test_state_size(self):
        de = DuplicateElimination(window=100.0, attributes=("v",))
        drive(de, [grant(["D"], 0.0), tup(1, "a", 1.0), tup(2, "b", 2.0)])
        assert de.state_size() == 2
