"""Tests for the SAJoin operators (nested-loop PF/FP and index)."""

import pytest

from repro.core.bitmap import RoleUniverse
from repro.core.punctuation import SecurityPunctuation
from repro.errors import PlanError
from repro.operators.index_join import IndexSAJoin
from repro.operators.join import NestedLoopSAJoin
from repro.stream.tuples import DataTuple


def grant(roles, ts):
    return SecurityPunctuation.grant(roles, ts)


def left(tid, key, ts):
    return DataTuple("left", tid, {"key": key, "payload": tid}, ts)


def right(tid, key, ts):
    return DataTuple("right", tid, {"key": key, "payload": tid}, ts)


def drive(join, feed):
    """feed = [(port, element), ...]; returns output elements."""
    out = []
    for port, element in feed:
        out.extend(join.process(element, port))
    return out


def result_tids(elements):
    return [e.tid for e in elements if isinstance(e, DataTuple)]


ALL_VARIANTS = [
    lambda: NestedLoopSAJoin("key", "key", 100.0, method="PF"),
    lambda: NestedLoopSAJoin("key", "key", 100.0, method="FP"),
    lambda: IndexSAJoin("key", "key", 100.0, universe=RoleUniverse()),
]


@pytest.mark.parametrize("make_join", ALL_VARIANTS)
class TestJoinSemantics:
    def test_matching_values_compatible_policies_join(self, make_join):
        join = make_join()
        out = drive(join, [
            (0, grant(["D"], 0.0)), (0, left(1, 7, 1.0)),
            (1, grant(["D", "C"], 0.0)), (1, right(2, 7, 2.0)),
        ])
        assert result_tids(out) == [(1, 2)]
        # Output sp carries the policy intersection.
        sp = next(e for e in out if isinstance(e, SecurityPunctuation))
        assert sp.roles() == frozenset({"D"})

    def test_incompatible_policies_suppress_result(self, make_join):
        """Table I: join results of policy-incompatible tuples go."""
        join = make_join()
        out = drive(join, [
            (0, grant(["D"], 0.0)), (0, left(1, 7, 1.0)),
            (1, grant(["C"], 0.0)), (1, right(2, 7, 2.0)),
        ])
        assert out == []

    def test_value_mismatch_suppresses_result(self, make_join):
        join = make_join()
        out = drive(join, [
            (0, grant(["D"], 0.0)), (0, left(1, 7, 1.0)),
            (1, grant(["D"], 0.0)), (1, right(2, 8, 2.0)),
        ])
        assert out == []

    def test_denied_by_default_tuples_never_join(self, make_join):
        join = make_join()
        out = drive(join, [
            (0, left(1, 7, 1.0)),  # no sp: nobody may access
            (1, grant(["D"], 0.0)), (1, right(2, 7, 2.0)),
        ])
        assert out == []

    def test_window_invalidation(self, make_join):
        join = make_join()
        out = drive(join, [
            (0, grant(["D"], 0.0)), (0, left(1, 7, 1.0)),
            # Right tuple arrives far beyond the window: left expired.
            (1, grant(["D"], 150.0)), (1, right(2, 7, 200.0)),
        ])
        assert out == []
        assert join.windows[0].tuples_expired == 1

    def test_both_directions_probe(self, make_join):
        join = make_join()
        out = drive(join, [
            (1, grant(["D"], 0.0)), (1, right(2, 7, 1.0)),
            (0, grant(["D"], 0.0)), (0, left(1, 7, 2.0)),
        ])
        assert result_tids(out) == [(1, 2)]

    def test_multiple_matches(self, make_join):
        join = make_join()
        out = drive(join, [
            (0, grant(["D"], 0.0)),
            (0, left(1, 7, 1.0)), (0, left(2, 7, 2.0)),
            (1, grant(["D"], 0.0)), (1, right(3, 7, 3.0)),
        ])
        assert sorted(result_tids(out)) == [(1, 3), (2, 3)]

    def test_shared_sp_across_segment_tuples(self, make_join):
        join = make_join()
        out = drive(join, [
            (0, grant(["D"], 0.0)),
            (0, left(1, 7, 1.0)), (0, left(2, 8, 2.0)),
            (1, grant(["D"], 0.0)),
            (1, right(3, 7, 3.0)), (1, right(4, 8, 4.0)),
        ])
        assert sorted(result_tids(out)) == [(1, 3), (2, 4)]
        # Results share one policy, so only one sp precedes them.
        sps = [e for e in out if isinstance(e, SecurityPunctuation)]
        assert len(sps) == 1

    def test_policy_switch_between_segments(self, make_join):
        join = make_join()
        out = drive(join, [
            (0, grant(["D"], 0.0)), (0, left(1, 7, 1.0)),
            (0, grant(["C"], 2.0)), (0, left(2, 7, 3.0)),
            (1, grant(["C"], 0.0)), (1, right(3, 7, 4.0)),
        ])
        # Only the C-segment left tuple is compatible with right's C.
        assert result_tids(out) == [(2, 3)]

    def test_extra_predicate(self, make_join):
        join = make_join()
        join.predicate = lambda a, b: a.values["payload"] < b.values["payload"]
        out = drive(join, [
            (0, grant(["D"], 0.0)),
            (0, left(5, 7, 1.0)), (0, left(9, 7, 2.0)),
            (1, grant(["D"], 0.0)), (1, right(7, 7, 3.0)),
        ])
        assert result_tids(out) == [(5, 7)]


class TestNestedLoopSpecifics:
    def test_invalid_method_rejected(self):
        with pytest.raises(PlanError):
            NestedLoopSAJoin("k", "k", 10.0, method="XX")

    def test_pf_and_fp_same_results(self):
        feed = [
            (0, grant(["A"], 0.0)), (0, left(1, 7, 1.0)),
            (0, grant(["B"], 2.0)), (0, left(2, 7, 3.0)),
            (1, grant(["A"], 0.0)), (1, right(3, 7, 4.0)),
            (1, grant(["B", "A"], 5.0)), (1, right(4, 7, 6.0)),
        ]
        pf = NestedLoopSAJoin("key", "key", 100.0, method="PF")
        fp = NestedLoopSAJoin("key", "key", 100.0, method="FP")
        assert sorted(result_tids(drive(pf, list(feed)))) == \
            sorted(result_tids(drive(fp, list(feed))))

    def test_cost_breakdown_keys(self):
        join = NestedLoopSAJoin("key", "key", 100.0)
        drive(join, [(0, grant(["D"], 0.0)), (0, left(1, 7, 1.0))])
        breakdown = join.cost_breakdown()
        assert set(breakdown) == {"join", "sp_maintenance",
                                  "tuple_maintenance", "total"}
        assert breakdown["total"] >= breakdown["join"]


class TestIndexSpecifics:
    def test_index_maintained_on_expiry(self):
        join = IndexSAJoin("key", "key", 10.0, universe=RoleUniverse())
        drive(join, [
            (0, grant(["D"], 0.0)), (0, left(1, 7, 1.0)),
            (0, grant(["D"], 5.0)), (0, left(2, 7, 6.0)),
            (1, grant(["D"], 90.0)), (1, right(3, 7, 100.0)),
        ])
        # Both old left segments expired; their entries removed.
        assert join.indexes[0].deletions >= 1

    def test_index_matches_nested_loop(self):
        feed = [
            (0, grant(["A", "B"], 0.0)), (0, left(1, 7, 1.0)),
            (1, grant(["B", "C"], 0.0)), (1, right(2, 7, 2.0)),
            (1, grant(["C"], 3.0)), (1, right(3, 7, 4.0)),
            (0, grant(["C"], 5.0)), (0, left(4, 7, 6.0)),
        ]
        nl = NestedLoopSAJoin("key", "key", 100.0)
        ix = IndexSAJoin("key", "key", 100.0, universe=RoleUniverse())
        assert sorted(result_tids(drive(nl, list(feed)))) == \
            sorted(result_tids(drive(ix, list(feed))))

    def test_skipping_rule_no_duplicates(self):
        """Policies sharing several roles yield each pair exactly once."""
        join = IndexSAJoin("key", "key", 100.0, universe=RoleUniverse())
        out = drive(join, [
            (0, grant(["A", "B", "C"], 0.0)), (0, left(1, 7, 1.0)),
            (1, grant(["A", "B", "C"], 0.0)), (1, right(2, 7, 2.0)),
        ])
        assert result_tids(out) == [(1, 2)]  # exactly one result

    def test_skipping_disabled_still_correct(self):
        join = IndexSAJoin("key", "key", 100.0, universe=RoleUniverse(),
                           skipping=False)
        out = drive(join, [
            (0, grant(["A", "B"], 0.0)), (0, left(1, 7, 1.0)),
            (1, grant(["A", "B"], 0.0)), (1, right(2, 7, 2.0)),
        ])
        assert result_tids(out) == [(1, 2)]
