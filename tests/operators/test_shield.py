"""Tests for the Security Shield operator (Table I: ψ)."""

from repro.core.bitmap import RoleSet
from repro.core.patterns import numeric_range
from repro.core.punctuation import SecurityPunctuation
from repro.operators.shield import SecurityShield
from repro.stream.tuples import DataTuple


def grant(roles, ts, **kwargs):
    return SecurityPunctuation.grant(roles, ts, **kwargs)


def tup(tid, ts, sid="s1"):
    return DataTuple(sid, tid, {"v": tid}, ts)


def drive(shield, elements):
    out = []
    for element in elements:
        out.extend(shield.process(element))
    return out


def out_tids(elements):
    return [e.tid for e in elements if isinstance(e, DataTuple)]


class TestBasicFiltering:
    def test_passing_policy(self):
        shield = SecurityShield(["D"])
        out = drive(shield, [grant(["D", "ND"], 0.0), tup(1, 1.0)])
        assert out_tids(out) == [1]
        # The sp is propagated ahead of the tuple.
        assert isinstance(out[0], SecurityPunctuation)

    def test_blocking_policy(self):
        shield = SecurityShield(["C"])
        out = drive(shield, [grant(["D"], 0.0), tup(1, 1.0)])
        assert out == []
        assert shield.tuples_blocked == 1
        assert shield.sps_blocked == 1

    def test_denial_by_default(self):
        """Tuples before any sp are discarded (no sp ⇒ no access)."""
        shield = SecurityShield(["D"])
        out = drive(shield, [tup(1, 1.0)])
        assert out == []

    def test_decision_shared_across_segment(self):
        shield = SecurityShield(["D"])
        out = drive(shield, [grant(["D"], 0.0),
                             tup(1, 1.0), tup(2, 2.0), tup(3, 3.0)])
        assert out_tids(out) == [1, 2, 3]
        # Only one sp emitted for the whole segment.
        assert sum(isinstance(e, SecurityPunctuation) for e in out) == 1

    def test_policy_switch_mid_stream(self):
        shield = SecurityShield(["D"])
        out = drive(shield, [
            grant(["D"], 0.0), tup(1, 1.0),
            grant(["C"], 2.0), tup(2, 3.0),
            grant(["D", "C"], 4.0), tup(3, 5.0),
        ])
        assert out_tids(out) == [1, 3]

    def test_sp_batch_union_semantics(self):
        """Consecutive same-ts sps are one policy (union of roles)."""
        shield = SecurityShield(["ND"])
        out = drive(shield, [grant(["D"], 0.0), grant(["ND"], 0.0),
                             tup(1, 1.0)])
        assert out_tids(out) == [1]

    def test_newer_batch_overrides(self):
        """A different-ts sp replaces the previous policy entirely."""
        shield = SecurityShield(["D"])
        out = drive(shield, [grant(["D"], 0.0), grant(["C"], 1.0),
                             tup(1, 2.0)])
        assert out == []


class TestTupleGranularity:
    def test_per_tuple_decisions(self):
        shield = SecurityShield(["GP"])
        sp = grant(["GP"], 0.0, tuple_id=numeric_range(120, 133))
        out = drive(shield, [sp, tup(125, 1.0), tup(200, 2.0),
                             tup(130, 3.0)])
        assert out_tids(out) == [125, 130]

    def test_sps_propagated_with_first_passing_tuple(self):
        shield = SecurityShield(["GP"])
        sp = grant(["GP"], 0.0, tuple_id=numeric_range(120, 133))
        out = drive(shield, [sp, tup(200, 1.0), tup(125, 2.0)])
        # First tuple blocked; sp emitted right before the passing one.
        assert isinstance(out[0], SecurityPunctuation)
        assert out_tids(out) == [125]

    def test_fully_blocked_segment_drops_sps(self):
        shield = SecurityShield(["GP"])
        sp = grant(["GP"], 0.0, tuple_id=numeric_range(120, 133))
        out = drive(shield, [sp, tup(200, 1.0), grant(["GP"], 2.0),
                             tup(300, 3.0)])
        assert out_tids(out) == [300]
        assert shield.sps_blocked == 1


class TestConjunctivePredicates:
    def test_all_conjuncts_must_intersect(self):
        shield = SecurityShield(
            RoleSet(["A", "B"]),
            conjuncts=[RoleSet(["A"]), RoleSet(["B"])])
        out = drive(shield, [grant(["A", "B"], 0.0), tup(1, 1.0)])
        assert out_tids(out) == [1]
        out = drive(shield, [grant(["A"], 2.0), tup(2, 3.0)])
        assert out_tids(out) == []

    def test_split_preserves_semantics(self):
        merged = SecurityShield(
            RoleSet(["A", "B"]),
            conjuncts=[RoleSet(["A"]), RoleSet(["B"])])
        first, second = merged.split()
        elements = [grant(["A", "B"], 0.0), tup(1, 1.0),
                    grant(["A"], 2.0), tup(2, 3.0)]
        merged_out = out_tids(drive(merged, list(elements)))
        stacked_out = out_tids(drive(first, drive(second, list(elements))))
        assert merged_out == stacked_out == [1]

    def test_merged_constructor(self):
        a = SecurityShield(["A"])
        b = SecurityShield(["B"])
        merged = SecurityShield.merged([a, b])
        assert merged.conjuncts == (a.predicate, b.predicate)
        assert merged.predicate.names() == frozenset({"A", "B"})


class TestIndexedVsUnindexed:
    def test_same_decisions(self):
        elements = [grant(["r5", "r9"], 0.0), tup(1, 1.0),
                    grant(["r1"], 2.0), tup(2, 3.0)]
        indexed = SecurityShield([f"r{i}" for i in range(10)], indexed=True)
        naive = SecurityShield([f"r{i}" for i in range(10)], indexed=False)
        assert (out_tids(drive(indexed, list(elements)))
                == out_tids(drive(naive, list(elements))) == [1, 2])

    def test_naive_scans_whole_state(self):
        naive = SecurityShield([f"r{i}" for i in range(50)], indexed=False)
        drive(naive, [grant(["r5"], 0.0), tup(1, 1.0)])
        assert naive.stats.comparisons >= 50

    def test_state_size(self):
        shield = SecurityShield(["a", "b", "c"])
        assert shield.state_size() == 3
