"""Tests for aggregates and the sp-aware group-by (ASG partitioning)."""

import pytest

from repro.core.punctuation import SecurityPunctuation
from repro.errors import PlanError
from repro.operators.aggregates import (Avg, Count, Max, Min, Sum,
                                        make_aggregate)
from repro.operators.groupby import GroupBy
from repro.stream.tuples import DataTuple


def grant(roles, ts):
    return SecurityPunctuation.grant(roles, ts)


def tup(tid, group, value, ts):
    return DataTuple("s", tid, {"g": group, "v": value}, ts)


def drive(op, elements):
    out = []
    for element in elements:
        out.extend(op.process(element))
    return out


def results(elements, agg="sum(v)"):
    return [(e.values.get("g"), e.values[agg]) for e in elements
            if isinstance(e, DataTuple)]


class TestAggregates:
    def test_count(self):
        agg = Count()
        agg.add(5)
        agg.add(7)
        agg.remove(5, [7])
        assert agg.result() == 1

    def test_sum(self):
        agg = Sum()
        for value in (1, 2, 3):
            agg.add(value)
        agg.remove(2, [1, 3])
        assert agg.result() == 4

    def test_avg(self):
        agg = Avg()
        agg.add(2)
        agg.add(4)
        assert agg.result() == 3.0
        agg.remove(2, [4])
        assert agg.result() == 4.0
        agg.remove(4, [])
        assert agg.result() is None

    def test_min_recomputes_on_extremum_removal(self):
        agg = Min()
        for value in (5, 2, 9):
            agg.add(value)
        assert agg.result() == 2
        agg.remove(2, [5, 9])
        assert agg.result() == 5

    def test_max(self):
        agg = Max()
        for value in (5, 2, 9):
            agg.add(value)
        agg.remove(9, [5, 2])
        assert agg.result() == 5

    def test_factory(self):
        assert isinstance(make_aggregate("AVG"), Avg)
        with pytest.raises(PlanError):
            make_aggregate("median")


class TestGroupBy:
    def test_incremental_results_per_group(self):
        gb = GroupBy("g", "sum", "v", window=100.0)
        out = drive(gb, [
            grant(["D"], 0.0),
            tup(1, "x", 10, 1.0), tup(2, "x", 5, 2.0), tup(3, "y", 2, 3.0),
        ])
        assert results(out) == [("x", 10), ("x", 15), ("y", 2)]

    def test_results_preceded_by_subgroup_policy(self):
        gb = GroupBy("g", "count", "v", window=100.0)
        out = drive(gb, [grant(["D", "ND"], 0.0), tup(1, "x", 1, 1.0)])
        assert isinstance(out[0], SecurityPunctuation)
        assert out[0].roles() == frozenset({"D", "ND"})

    def test_asg_partitioning_disjoint_policies(self):
        """Tuples with non-intersecting policies form separate ASGs."""
        gb = GroupBy("g", "sum", "v", window=100.0)
        out = drive(gb, [
            grant(["D"], 0.0), tup(1, "x", 10, 1.0),
            grant(["C"], 2.0), tup(2, "x", 5, 3.0),
        ])
        # Two subgroup results for the same group value, not 10+5=15.
        assert results(out) == [("x", 10), ("x", 5)]

    def test_intersecting_policies_share_asg(self):
        gb = GroupBy("g", "sum", "v", window=100.0)
        out = drive(gb, [
            grant(["D"], 0.0), tup(1, "x", 10, 1.0),
            grant(["D", "C"], 2.0), tup(2, "x", 5, 3.0),
        ])
        assert results(out) == [("x", 10), ("x", 15)]
        # Subgroup policy widens to the union.
        last_sp = [e for e in out
                   if isinstance(e, SecurityPunctuation)][-1]
        assert last_sp.roles() == frozenset({"D", "C"})

    def test_bridging_policy_merges_asgs(self):
        gb = GroupBy("g", "sum", "v", window=100.0)
        out = drive(gb, [
            grant(["D"], 0.0), tup(1, "x", 10, 1.0),
            grant(["C"], 2.0), tup(2, "x", 5, 3.0),
            grant(["D", "C"], 4.0), tup(3, "x", 1, 5.0),  # bridges both
        ])
        assert results(out)[-1] == ("x", 16)
        assert gb.merges == 1

    def test_expiry_refreshes_results(self):
        gb = GroupBy("g", "sum", "v", window=10.0)
        out = drive(gb, [
            grant(["D"], 0.0), tup(1, "x", 10, 1.0), tup(2, "x", 5, 2.0),
            tup(3, "x", 1, 20.0),  # ts 1 and 2 expired by now
        ])
        assert results(out) == [("x", 10), ("x", 15), ("x", 1)]

    def test_single_group_aggregation(self):
        gb = GroupBy(None, "count", "v", window=100.0)
        out = drive(gb, [grant(["D"], 0.0), tup(1, "x", 1, 1.0),
                         tup(2, "y", 2, 2.0)])
        counts = [e.values["count(v)"] for e in out
                  if isinstance(e, DataTuple)]
        assert counts == [1, 2]

    def test_denied_tuples_excluded_from_aggregates(self):
        gb = GroupBy("g", "sum", "v", window=100.0)
        out = drive(gb, [
            tup(1, "x", 100, 1.0),  # no sp → denied
            grant(["D"], 2.0), tup(2, "x", 5, 3.0),
        ])
        assert results(out) == [("x", 5)]

    def test_invalid_params_rejected(self):
        with pytest.raises(PlanError):
            GroupBy("g", "sum", "v", window=0.0)
        with pytest.raises(PlanError):
            GroupBy("g", "nope", "v", window=1.0)

    def test_state_size(self):
        gb = GroupBy("g", "sum", "v", window=100.0)
        drive(gb, [grant(["D"], 0.0), tup(1, "x", 1, 1.0),
                   tup(2, "y", 2, 2.0)])
        assert gb.state_size() == 2
