"""Tests for selection/join condition objects."""

import pytest

from repro.errors import PlanError
from repro.operators.conditions import (And, Comparison, FuncCondition, Not,
                                        Or, TrueCondition)
from repro.stream.tuples import DataTuple


def tup(**values):
    return DataTuple("s", 0, values, 0.0)


class TestComparison:
    @pytest.mark.parametrize("op,value,expected", [
        ("=", 5, True), ("==", 5, True), ("!=", 5, False),
        ("<>", 5, False), ("<", 6, True), ("<=", 5, True),
        (">", 4, True), (">=", 6, False),
    ])
    def test_operators(self, op, value, expected):
        assert Comparison("x", op, value)(tup(x=5)) is expected

    def test_attribute_vs_attribute(self):
        condition = Comparison("x", "=", "y", rhs_attribute=True)
        assert condition(tup(x=3, y=3))
        assert not condition(tup(x=3, y=4))

    def test_missing_attribute_is_false(self):
        assert not Comparison("missing", "=", 1)(tup(x=1))

    def test_type_error_is_false(self):
        assert not Comparison("x", "<", 5)(tup(x="string"))

    def test_unknown_operator_rejected(self):
        with pytest.raises(PlanError):
            Comparison("x", "LIKE", 1)

    def test_attributes_footprint(self):
        assert Comparison("x", "=", 1).attributes() == frozenset({"x"})
        both = Comparison("x", "=", "y", rhs_attribute=True)
        assert both.attributes() == frozenset({"x", "y"})


class TestCombinators:
    def test_and(self):
        condition = Comparison("x", ">", 1) & Comparison("x", "<", 5)
        assert condition(tup(x=3))
        assert not condition(tup(x=7))

    def test_or(self):
        condition = Comparison("x", "=", 1) | Comparison("x", "=", 2)
        assert condition(tup(x=2))
        assert not condition(tup(x=3))

    def test_not(self):
        condition = ~Comparison("x", "=", 1)
        assert condition(tup(x=2))
        assert not condition(tup(x=1))

    def test_and_flattens(self):
        a, b, c = (Comparison("x", "=", i) for i in range(3))
        condition = And((And((a, b)), c))
        assert len(condition.parts) == 3

    def test_conjuncts(self):
        a = Comparison("x", ">", 1)
        b = Comparison("y", "<", 2)
        assert And((a, b)).conjuncts() == [a, b]
        assert a.conjuncts() == [a]

    def test_attribute_union(self):
        condition = Comparison("x", "=", 1) & Comparison("y", "=", 2)
        assert condition.attributes() == frozenset({"x", "y"})
        condition = Or((Comparison("x", "=", 1), Comparison("z", "=", 2)))
        assert condition.attributes() == frozenset({"x", "z"})
        assert Not(Comparison("w", "=", 0)).attributes() == frozenset({"w"})


class TestSpecial:
    def test_true_condition(self):
        assert TrueCondition()(tup(x=0))
        assert TrueCondition().attributes() == frozenset()

    def test_func_condition(self):
        condition = FuncCondition(lambda t: t.values["x"] % 2 == 0,
                                  attributes=("x",), label="even")
        assert condition(tup(x=4))
        assert not condition(tup(x=3))
        assert condition.attributes() == frozenset({"x"})
