"""Tests for the SPIndex structure and the skipping rule (Lemma 5.1)."""

from repro.core.bitmap import RoleUniverse
from repro.core.policy import Policy
from repro.core.punctuation import SecurityPunctuation
from repro.operators.spindex import SPIndex
from repro.stream.window import Segment


def make_segment(roles, ts=0.0):
    sp = SecurityPunctuation.grant(sorted(roles), ts)
    return Segment("s", Policy([sp]), [sp])


class TestMaintenance:
    def test_insert_links_all_roles(self):
        universe = RoleUniverse(["r1", "r2", "r3"])
        index = SPIndex(universe)
        entry = index.insert(make_segment({"r1", "r3"}), frozenset({"r1", "r3"}))
        assert entry.roles_ordered == ("r1", "r3")
        assert index.entry_count() == 1
        assert index.insertions == 1

    def test_roles_ordered_by_universe_id(self):
        universe = RoleUniverse(["z_first", "a_second"])
        index = SPIndex(universe)
        entry = index.insert(make_segment({"a_second", "z_first"}),
                             frozenset({"a_second", "z_first"}))
        # Universe order (registration), not lexicographic.
        assert entry.roles_ordered == ("z_first", "a_second")

    def test_remove_marks_dead(self):
        universe = RoleUniverse(["r1"])
        index = SPIndex(universe)
        segment = make_segment({"r1"})
        index.insert(segment, frozenset({"r1"}))
        index.remove_segment(segment)
        assert index.entry_count() == 0
        assert index.deletions == 1
        assert list(index.probe(frozenset({"r1"}))) == []

    def test_remove_unknown_segment_is_noop(self):
        index = SPIndex(RoleUniverse())
        index.remove_segment(make_segment({"r1"}))
        assert index.deletions == 0

    def test_fifo_removal_cleans_heads(self):
        universe = RoleUniverse(["r1"])
        index = SPIndex(universe)
        first = make_segment({"r1"})
        second = make_segment({"r1"})
        index.insert(first, frozenset({"r1"}))
        index.insert(second, frozenset({"r1"}))
        index.remove_segment(first)
        live = list(index.probe(frozenset({"r1"})))
        assert live == [second]


class TestProbing:
    def test_only_compatible_segments_returned(self):
        universe = RoleUniverse(["a", "b", "c"])
        index = SPIndex(universe)
        seg_a = make_segment({"a"})
        seg_b = make_segment({"b"})
        index.insert(seg_a, frozenset({"a"}))
        index.insert(seg_b, frozenset({"b"}))
        assert list(index.probe(frozenset({"a"}))) == [seg_a]
        assert list(index.probe(frozenset({"c"}))) == []

    def test_empty_probe(self):
        index = SPIndex(RoleUniverse())
        assert list(index.probe(frozenset())) == []

    def test_skipping_rule_dedups_multi_role_overlap(self):
        """A segment sharing k roles with the probe is yielded once."""
        universe = RoleUniverse(["a", "b", "c"])
        index = SPIndex(universe)
        segment = make_segment({"a", "b", "c"})
        index.insert(segment, frozenset({"a", "b", "c"}))
        results = list(index.probe(frozenset({"a", "b", "c"})))
        assert results == [segment]
        assert index.entries_skipped == 2  # visited via b and c, skipped

    def test_skipping_generalization(self):
        """Entry's first role NOT in the probe: processed at the first
        *common* role, not skipped incorrectly."""
        universe = RoleUniverse(["a", "b"])
        index = SPIndex(universe)
        segment = make_segment({"a", "b"})
        index.insert(segment, frozenset({"a", "b"}))
        # Probe only has "b": the entry's first role "a" is not in the
        # probe, so the entry must be processed at "b".
        assert list(index.probe(frozenset({"b"}))) == [segment]

    def test_no_skipping_mode_yields_duplicates(self):
        universe = RoleUniverse(["a", "b"])
        index = SPIndex(universe, skipping=False)
        segment = make_segment({"a", "b"})
        index.insert(segment, frozenset({"a", "b"}))
        results = list(index.probe(frozenset({"a", "b"})))
        assert results == [segment, segment]
