"""Negative authorizations (Sign = '-') through the operator pipeline.

The paper adopts Bertino-style positive/negative authorizations; these
tests drive deny-sps through the Security Shield, joins and duplicate
elimination to verify subtraction semantics end to end.
"""

from repro.core.patterns import numeric_range
from repro.core.punctuation import SecurityPunctuation
from repro.operators.dupelim import DuplicateElimination
from repro.operators.index_join import IndexSAJoin
from repro.operators.shield import SecurityShield
from repro.stream.tuples import DataTuple


def grant(roles, ts, **kwargs):
    return SecurityPunctuation.grant(roles, ts, **kwargs)


def deny(roles, ts, **kwargs):
    return SecurityPunctuation.deny(roles, ts, **kwargs)


def tup(tid, ts, sid="s1", **values):
    return DataTuple(sid, tid, values or {"v": tid}, ts)


def drive(op, elements, port=None):
    out = []
    for element in elements:
        if port is None:
            out.extend(op.process(element))
        else:
            out.extend(op.process(element, port))
    return out


def tids(elements):
    return [e.tid for e in elements if isinstance(e, DataTuple)]


class TestShieldWithDenials:
    def test_deny_subtracts_from_batch(self):
        shield = SecurityShield(["C"])
        out = drive(shield, [grant(["C", "D"], 1.0), deny(["C"], 1.0),
                             tup(1, 2.0)])
        assert out == []

    def test_deny_of_other_role_is_harmless(self):
        shield = SecurityShield(["D"])
        out = drive(shield, [grant(["C", "D"], 1.0), deny(["C"], 1.0),
                             tup(1, 2.0)])
        assert tids(out) == [1]

    def test_deny_only_batch_blocks_everyone(self):
        shield = SecurityShield(["C"])
        out = drive(shield, [deny(["X"], 1.0), tup(1, 2.0)])
        assert out == []  # no positive grant anywhere

    def test_scoped_denial(self):
        """Grant D everywhere, deny D for patients 120-133."""
        shield = SecurityShield(["D"])
        elements = [
            grant(["D"], 1.0),
            deny(["D"], 1.0, tuple_id=numeric_range(120, 133)),
            tup(125, 2.0), tup(200, 3.0), tup(130, 4.0),
        ]
        out = drive(shield, elements)
        assert tids(out) == [200]

    def test_newer_batch_clears_denial(self):
        shield = SecurityShield(["C"])
        out = drive(shield, [
            grant(["C"], 1.0), deny(["C"], 1.0), tup(1, 2.0),
            grant(["C"], 3.0), tup(2, 4.0),
        ])
        assert tids(out) == [2]


class TestJoinWithDenials:
    def test_denied_roles_cannot_carry_a_join(self):
        join = IndexSAJoin("v", "v", 100.0)
        out = []
        out += drive(join, [grant(["A", "B"], 1.0), deny(["B"], 1.0),
                            tup(1, 2.0, sid="left", v=7)], port=0)
        out += drive(join, [grant(["B"], 1.0),
                            tup(2, 3.0, sid="right", v=7)], port=1)
        # Left effective policy {A}, right {B}: incompatible.
        assert out == []

    def test_join_sp_reflects_subtraction(self):
        join = IndexSAJoin("v", "v", 100.0)
        drive(join, [grant(["A", "B"], 1.0), deny(["B"], 1.0),
                     tup(1, 2.0, sid="left", v=7)], port=0)
        out = drive(join, [grant(["A", "B"], 1.0),
                           tup(2, 3.0, sid="right", v=7)], port=1)
        sps = [e for e in out if isinstance(e, SecurityPunctuation)]
        assert tids(out) == [(1, 2)]
        assert sps[0].roles() == frozenset({"A"})


class TestDupElimWithDenials:
    def test_denied_role_does_not_count_as_having_seen(self):
        de = DuplicateElimination(window=100.0, attributes=("v",))
        out = drive(de, [
            grant(["A", "B"], 1.0), deny(["B"], 1.0),
            tup(1, 2.0, v="x"),           # visible to A only
            grant(["B"], 3.0), tup(2, 4.0, v="x"),  # news for B
        ])
        assert tids(out) == [1, 2]
