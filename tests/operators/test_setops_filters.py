"""Tests for sp-aware set operations, access filters and sinks."""

import pytest

from repro.core.punctuation import SecurityPunctuation
from repro.errors import PlanError
from repro.operators.accessfilter import AccessFilter
from repro.operators.setops import Intersect, Union
from repro.operators.sink import CollectingSink, CountingSink
from repro.stream.tuples import DataTuple


def grant(roles, ts):
    return SecurityPunctuation.grant(roles, ts)


def tup(tid, value, ts, sid="left"):
    return DataTuple(sid, tid, {"v": value}, ts)


class TestUnion:
    def test_interleaved_inputs_repunctuated(self):
        union = Union()
        out = []
        out.extend(union.process(grant(["D"], 0.0), 0))
        out.extend(union.process(grant(["C"], 0.0), 1))
        out.extend(union.process(tup(1, "a", 1.0), 0))
        out.extend(union.process(tup(2, "b", 2.0, sid="right"), 1))
        tuples = [e for e in out if isinstance(e, DataTuple)]
        sps = [e for e in out if isinstance(e, SecurityPunctuation)]
        assert [t.tid for t in tuples] == [1, 2]
        # Each tuple is governed by its own input's policy: the output
        # must re-punctuate on every policy flip.
        assert [s.roles() for s in sps] == [frozenset({"D"}),
                                            frozenset({"C"})]

    def test_same_policy_share_one_sp(self):
        union = Union()
        out = []
        out.extend(union.process(grant(["D"], 0.0), 0))
        out.extend(union.process(grant(["D"], 0.0), 1))
        out.extend(union.process(tup(1, "a", 1.0), 0))
        out.extend(union.process(tup(2, "b", 2.0, sid="right"), 1))
        sps = [e for e in out if isinstance(e, SecurityPunctuation)]
        assert len(sps) == 1

    def test_denied_inputs_dropped(self):
        union = Union()
        assert union.process(tup(1, "a", 1.0), 0) == []


class TestIntersect:
    def test_common_values_under_policy_intersection(self):
        op = Intersect(("v",), window=100.0)
        out = []
        out.extend(op.process(grant(["D", "C"], 0.0), 0))
        out.extend(op.process(tup(1, "a", 1.0), 0))
        out.extend(op.process(grant(["D"], 0.0), 1))
        out.extend(op.process(tup(2, "a", 2.0, sid="right"), 1))
        tuples = [e for e in out if isinstance(e, DataTuple)]
        sps = [e for e in out if isinstance(e, SecurityPunctuation)]
        assert len(tuples) == 1
        assert sps[0].roles() == frozenset({"D"})

    def test_policy_incompatible_suppressed(self):
        op = Intersect(("v",), window=100.0)
        op.process(grant(["C"], 0.0), 0)
        op.process(tup(1, "a", 1.0), 0)
        op.process(grant(["D"], 0.0), 1)
        out = op.process(tup(2, "a", 2.0, sid="right"), 1)
        assert out == []
        assert op.policy_rejects == 1

    def test_value_mismatch_suppressed(self):
        op = Intersect(("v",), window=100.0)
        op.process(grant(["D"], 0.0), 0)
        op.process(tup(1, "a", 1.0), 0)
        op.process(grant(["D"], 0.0), 1)
        assert op.process(tup(2, "b", 2.0, sid="right"), 1) == []

    def test_invalid_params(self):
        with pytest.raises(PlanError):
            Intersect((), window=10.0)
        with pytest.raises(PlanError):
            Intersect(("v",), window=0.0)


class TestAccessFilter:
    def test_prefilter_strips_sps(self):
        prefilter = AccessFilter(["D"], strip_sps=True)
        out = []
        out.extend(prefilter.process(grant(["D"], 0.0)))
        out.extend(prefilter.process(tup(1, "a", 1.0)))
        assert all(isinstance(e, DataTuple) for e in out)
        assert len(out) == 1

    def test_postfilter_keeps_sps(self):
        postfilter = AccessFilter(["D"], strip_sps=False)
        out = []
        out.extend(postfilter.process(grant(["D"], 0.0)))
        out.extend(postfilter.process(tup(1, "a", 1.0)))
        assert isinstance(out[0], SecurityPunctuation)

    def test_blocks_unauthorized(self):
        f = AccessFilter(["C"])
        f.process(grant(["D"], 0.0))
        assert f.process(tup(1, "a", 1.0)) == []
        assert f.tuples_blocked == 1


class TestSinks:
    def test_collecting_sink(self):
        sink = CollectingSink()
        sink.process(grant(["D"], 0.0))
        sink.process(tup(1, "a", 1.0))
        assert len(sink.tuples()) == 1
        assert len(sink.sps()) == 1
        sink.clear()
        assert sink.elements == []

    def test_counting_sink(self):
        sink = CountingSink()
        sink.process(grant(["D"], 0.0))
        sink.process(tup(1, "a", 1.0))
        sink.process(tup(2, "b", 5.0))
        assert sink.tuple_count == 2
        assert sink.sp_count == 1
        assert sink.first_ts == 1.0
        assert sink.last_ts == 5.0
