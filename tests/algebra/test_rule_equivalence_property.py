"""Property test: Table II rewrites preserve engine delivery semantics.

For a set of scenarios (handcrafted to guarantee coverage of all five
SS rule families, plus a slice of generated ones) every single-rule
rewrite that the engine's strict :class:`RewriteContext` admits must
produce the same delivered multiset as the original plan.  Rewrites the
context *refuses* are checked the other way: the δ/ψ, G/ψ and join-
associativity guards must actually be active, and the documented
join-associativity counterexample must really diverge when the guard
is lifted — the guards exist because the differ (or analysis during
its construction) proved the unguarded rewrites unsound.
"""

from collections import Counter

import pytest

from repro.algebra.expressions import JoinExpr, ScanExpr, ShieldExpr
from repro.algebra.rules import (ALL_RULES, AssociateJoin,
                                 CommuteDupElimShield, CommuteGroupByShield,
                                 RewriteContext, apply_at)
from repro.core.punctuation import SecurityPunctuation
from repro.engine.api import OptimizeLevel
from repro.engine.dsms import DSMS
from repro.stream.schema import StreamSchema
from repro.stream.tuples import DataTuple
from repro.verify.differ import _decode_sink, expr_from_spec
from repro.verify.generator import generate_scenario

#: Table II rule families, by rule name.
FAMILIES = {
    "split-shield": 1, "merge-shields": 1, "commute-shields": 1,
    "commute-select-shield": 2, "commute-project-shield": 2,
    "commute-dupelim-shield": 2, "commute-groupby-shield": 2,
    "push-shield-binary": 3, "pull-shield-binary": 3,
    "commute-binary-inputs": 4,
    "associate-join": 5,
}


def strict_context(scenario):
    return RewriteContext(
        policy_streams=frozenset(scenario.streams),
        attribute_policies_possible=True,
        heterogeneous_policies_possible=True,
        strict_join_windows=True,
        schemas={sid: tuple(spec["attributes"])
                 for sid, spec in scenario.streams.items()})


def run_expr(scenario, expr, roles):
    dsms = DSMS()
    for sid, spec in scenario.streams.items():
        dsms.register_stream(StreamSchema(sid, tuple(spec["attributes"])),
                             scenario.decoded()[sid])
    dsms.register_query("q", expr, roles=frozenset(roles),
                        auto_shield=False)
    results = dsms.run(optimize=OptimizeLevel.NONE)
    return _decode_sink(results["q"].elements)


def rewrites(root, ctx):
    """(rule name, rewritten plan) for every admissible application."""
    out = []

    def visit(expr, path):
        for rule in ALL_RULES:
            if rule.matches(expr, ctx):
                out.append((rule.name, apply_at(root, path, rule, ctx)))
        for index, child in enumerate(expr.children()):
            visit(child, path + (index,))

    visit(root, ())
    return out


def coverage_scenarios():
    """Handcrafted scenarios whose plans trigger every rule family."""
    from repro.verify.generator import Scenario
    from repro.stream.wire import encode_element

    def stream(sid, attrs, elements):
        return {"attributes": list(attrs),
                "elements": [encode_element(e) for e in elements]}

    def feed(sid, k_values, roles_by_segment, attrs=("a", "k")):
        elements = []
        ts = 0.0
        tid = 0
        for roles, ks in zip(roles_by_segment, k_values):
            elements.append(SecurityPunctuation.grant(
                roles, ts, provider=sid))
            for k in ks:
                ts += 1.0
                elements.append(DataTuple(
                    sid, tid, {attrs[0]: tid, attrs[1]: k}, ts))
                tid += 1
            ts += 1.0
        return elements

    s0 = stream("s0", ("a", "k"),
                feed("s0", [[1, 2], [1, 3]], [["R1", "R2"], ["R2"]]))
    s1 = stream("s1", ("b", "j"),
                feed("s1", [[1, 1], [2, 3]], [["R1", "R2"], ["R1"]],
                     attrs=("b", "j")))

    shield2 = {"op": "shield", "predicates": [["R1", "R2"], ["R1", "R3"]]}
    scenarios = []

    # family 1 (split/merge/commute) + family 2 (select/project commute)
    scenarios.append(("unary", Scenario(
        seed=0, index=0, shape="custom", knobs={},
        streams={"s0": s0},
        queries={"q": {"roles": ["R1"], "plan": {
            **shield2,
            "input": {"op": "select",
                      "input": {"op": "shield",
                                "predicates": [["R1", "R2"]],
                                "input": {"op": "project",
                                          "input": {"op": "scan",
                                                    "stream": "s0"},
                                          "attributes": ["a", "k"]}},
                      "condition": {"attribute": "k", "op": "<",
                                    "value": 3}}}}})))

    # family 3 (push/pull around a join) + family 4 (commute inputs)
    scenarios.append(("join", Scenario(
        seed=0, index=1, shape="custom", knobs={},
        streams={"s0": s0, "s1": s1},
        queries={"q": {"roles": ["R1"], "plan": {
            "op": "shield", "predicates": [["R1", "R2"]],
            "input": {"op": "join",
                      "left": {"op": "shield", "predicates": [["R1", "R4"]],
                               "input": {"op": "scan", "stream": "s0"}},
                      "right": {"op": "scan", "stream": "s1"},
                      "left_on": "k", "right_on": "j",
                      "window": 50.0}}}})))
    return scenarios


class TestAdmittedRewritesAreEquivalent:
    @pytest.mark.parametrize("label,scenario", coverage_scenarios(),
                             ids=[l for l, _ in coverage_scenarios()])
    def test_handcrafted_coverage(self, label, scenario):
        ctx = strict_context(scenario)
        query = scenario.queries["q"]
        root = expr_from_spec(query["plan"])
        baseline = run_expr(scenario, root, query["roles"])
        applied = rewrites(root, ctx)
        assert applied, "no rule applied — coverage scenario is dead"
        families = set()
        for name, rewritten in applied:
            families.add(FAMILIES[name])
            got = run_expr(scenario, rewritten, query["roles"])
            assert got == baseline, (
                f"{name} changed delivery: {rewritten!r}")
        if label == "unary":
            assert {1, 2} <= families
        else:
            assert {3, 4} <= families

    def test_generated_scenarios(self):
        checked = 0
        for index in range(10):
            scenario = generate_scenario(31, index)
            ctx = strict_context(scenario)
            for query in scenario.queries.values():
                root = expr_from_spec(query["plan"])
                baseline = run_expr(scenario, root, query["roles"])
                for name, rewritten in rewrites(root, ctx)[:6]:
                    got = run_expr(scenario, rewritten, query["roles"])
                    assert got == baseline, f"{name} changed delivery"
                    checked += 1
        assert checked >= 5


class TestGuards:
    def make_ctx(self, **kw):
        return RewriteContext(policy_streams=frozenset({"s"}), **kw)

    def test_stateful_commutes_refused_when_heterogeneous(self):
        from repro.algebra.expressions import DupElimExpr, GroupByExpr
        shield_over_dupelim = ShieldExpr(
            DupElimExpr(ScanExpr("s"), 10.0, ("a",)), frozenset({"R1"}))
        shield_over_groupby = ShieldExpr(
            GroupByExpr(ScanExpr("s"), None, "sum", "a", 10.0),
            frozenset({"R1"}))
        strict = self.make_ctx(heterogeneous_policies_possible=True)
        unknown = self.make_ctx()  # default: hazard unproven
        relaxed = self.make_ctx(heterogeneous_policies_possible=False)
        assert not CommuteDupElimShield().matches(shield_over_dupelim, strict)
        assert not CommuteGroupByShield().matches(shield_over_groupby, strict)
        # Fail-closed: an unknown precondition refuses like a proven one.
        assert not CommuteDupElimShield().matches(shield_over_dupelim,
                                                  unknown)
        assert not CommuteGroupByShield().matches(shield_over_groupby,
                                                  unknown)
        assert CommuteDupElimShield().matches(shield_over_dupelim, relaxed)
        assert CommuteGroupByShield().matches(shield_over_groupby, relaxed)

    def test_dupelim_commute_sound_on_uniform_policies(self):
        # The guard is about *heterogeneous* segments; with one policy
        # for the whole stream the commute is exact, and applying it
        # manually (guard lifted) must preserve engine output.
        from repro.algebra.expressions import DupElimExpr
        from repro.verify.generator import Scenario
        from repro.stream.wire import encode_element

        elements = [SecurityPunctuation.grant(["R1", "R2"], 0.0,
                                              provider="s")]
        for tid, a in enumerate([5, 5, 7, 5]):
            elements.append(DataTuple("s", tid, {"a": a}, 1.0 + tid))
        scenario = Scenario(
            seed=0, index=0, shape="custom", knobs={},
            streams={"s": {"attributes": ["a"],
                           "elements": [encode_element(e)
                                        for e in elements]}},
            queries={})
        root = ShieldExpr(DupElimExpr(ScanExpr("s"), 50.0, ("a",)),
                          frozenset({"R1"}))
        ctx = self.make_ctx(heterogeneous_policies_possible=False)
        rewritten = CommuteDupElimShield().apply(root, ctx)
        assert run_expr(scenario, rewritten, ["R1"]) \
            == run_expr(scenario, root, ["R1"])

    def test_associate_join_refused_with_strict_windows(self):
        expr = JoinExpr(JoinExpr(ScanExpr("a"), ScanExpr("b"),
                                 "k", "k", 6.0),
                        ScanExpr("c"), "k", "k", 6.0)
        assert not AssociateJoin().matches(
            expr, self.make_ctx(strict_join_windows=True))
        # Fail-closed: the default (unknown) context refuses too.
        assert not AssociateJoin().matches(expr, self.make_ctx())
        assert AssociateJoin().matches(
            expr, self.make_ctx(strict_join_windows=False))

    def test_associate_join_counterexample_diverges(self):
        # ta=0, tb=5, tc=9, w=6: (a⋈b) joins (|5-0|<6) and the result
        # (ts 5) joins c (|9-5|<6); but b⋈c joins first (|9-5|<6) with
        # ts 9, and a can no longer reach it (|9-0|≥6).  Re-association
        # therefore changes the delivered set — why the guard exists.
        from repro.verify.generator import Scenario
        from repro.stream.wire import encode_element

        def stream(sid, ts):
            return {"attributes": ["k"], "elements": [
                encode_element(SecurityPunctuation.grant(
                    ["R1"], ts - 0.5, provider=sid)),
                encode_element(DataTuple(sid, 0, {"k": 1}, ts)),
            ]}

        scenario = Scenario(
            seed=0, index=0, shape="custom", knobs={},
            streams={"a": stream("a", 0.0), "b": stream("b", 5.0),
                     "c": stream("c", 9.0)},
            queries={})
        left_deep = JoinExpr(
            JoinExpr(ScanExpr("a"), ScanExpr("b"), "k", "k", 6.0),
            ScanExpr("c"), "k", "k", 6.0)
        ctx = self.make_ctx(strict_join_windows=False)  # guard lifted
        right_deep = AssociateJoin().apply(left_deep, ctx)
        got_left = run_expr(scenario, left_deep, ["R1"])
        got_right = run_expr(scenario, right_deep, ["R1"])
        assert sum(got_left.values()) == 1
        assert sum(got_right.values()) == 0
