"""Tests for the Table II equivalence rules (structural side).

Semantic equivalence (same visible results on real streams) is covered
by tests/properties/test_rules_equivalence.py; here we verify the
rewrites produce the intended shapes and respect their guards.
"""

import pytest

from repro.algebra.expressions import (JoinExpr, ProjectExpr, ScanExpr,
                                       SelectExpr, ShieldExpr, UnionExpr)
from repro.algebra.rules import (AssociateJoin, CommuteJoinInputs,
                                 CommuteProjectShield, CommuteSelectShield,
                                 CommuteShields, MergeShields,
                                 PullShieldOutOfBinary, PushShieldIntoBinary,
                                 RewriteContext, SplitShield, apply_at,
                                 equivalent_forms)
from repro.errors import OptimizerError
from repro.operators.conditions import Comparison

CTX = RewriteContext(policy_streams=frozenset({"a", "b"}))
COND = Comparison("v", ">", 1)


class TestRule1:
    def test_split_peels_first_conjunct(self):
        expr = ShieldExpr(ScanExpr("a"),
                          (frozenset({"p"}), frozenset({"q"})))
        rule = SplitShield()
        assert rule.matches(expr, CTX)
        split = rule.apply(expr, CTX)
        assert isinstance(split, ShieldExpr)
        assert split.predicates == (frozenset({"p"}),)
        assert isinstance(split.input, ShieldExpr)
        assert split.input.predicates == (frozenset({"q"}),)

    def test_single_conjunct_cannot_split(self):
        expr = ScanExpr("a").shield({"p"})
        assert not SplitShield().matches(expr, CTX)

    def test_merge_inverts_split(self):
        expr = ShieldExpr(ScanExpr("a"),
                          (frozenset({"p"}), frozenset({"q"})))
        split = SplitShield().apply(expr, CTX)
        merged = MergeShields().apply(split, CTX)
        assert merged == expr


class TestRule2:
    def test_commute_shields(self):
        expr = ShieldExpr(ShieldExpr(ScanExpr("a"), frozenset({"q"})),
                          frozenset({"p"}))
        swapped = CommuteShields().apply(expr, CTX)
        assert swapped.predicates == (frozenset({"q"}),)
        assert swapped.input.predicates == (frozenset({"p"}),)

    def test_select_shield_push_down(self):
        expr = ShieldExpr(SelectExpr(ScanExpr("a"), COND), frozenset({"p"}))
        rule = CommuteSelectShield()
        pushed = rule.apply(expr, CTX)
        assert isinstance(pushed, SelectExpr)
        assert isinstance(pushed.input, ShieldExpr)

    def test_select_shield_pull_up(self):
        expr = SelectExpr(ShieldExpr(ScanExpr("a"), frozenset({"p"})), COND)
        pulled = CommuteSelectShield().apply(expr, CTX)
        assert isinstance(pulled, ShieldExpr)
        assert isinstance(pulled.input, SelectExpr)

    def test_project_shield_guard(self):
        expr = ShieldExpr(ProjectExpr(ScanExpr("a"), ("v",)),
                          frozenset({"p"}))
        safe = RewriteContext(attribute_policies_possible=False)
        unsafe = RewriteContext(attribute_policies_possible=True)
        assert CommuteProjectShield().matches(expr, safe)
        assert not CommuteProjectShield().matches(expr, unsafe)


class TestRule3:
    def _join(self, left="a", right="b"):
        return JoinExpr(ScanExpr(left), ScanExpr(right), "x", "x", 10.0)

    def test_push_two_sided_when_both_stream_policies(self):
        expr = ShieldExpr(self._join(), frozenset({"p"}))
        pushed = PushShieldIntoBinary().apply(expr, CTX)
        assert isinstance(pushed, JoinExpr)
        assert isinstance(pushed.left, ShieldExpr)
        assert isinstance(pushed.right, ShieldExpr)

    def test_push_one_sided_when_only_left_streams(self):
        ctx = RewriteContext(policy_streams=frozenset({"a"}))
        expr = ShieldExpr(self._join(), frozenset({"p"}))
        pushed = PushShieldIntoBinary().apply(expr, ctx)
        assert isinstance(pushed.left, ShieldExpr)
        assert isinstance(pushed.right, ScanExpr)

    def test_pull_two_sided_requires_equal_predicates(self):
        join = JoinExpr(ScanExpr("a").shield({"p"}),
                        ScanExpr("b").shield({"p"}), "x", "x", 10.0)
        pulled = PullShieldOutOfBinary().apply(join, CTX)
        assert isinstance(pulled, ShieldExpr)
        assert isinstance(pulled.input, JoinExpr)
        mismatched = JoinExpr(ScanExpr("a").shield({"p"}),
                              ScanExpr("b").shield({"q"}), "x", "x", 10.0)
        assert not PullShieldOutOfBinary().matches(mismatched, CTX)

    def test_pull_one_sided_requires_policy_free_other_side(self):
        ctx = RewriteContext(policy_streams=frozenset({"a"}))
        join = JoinExpr(ScanExpr("a").shield({"p"}), ScanExpr("b"),
                        "x", "x", 10.0)
        assert PullShieldOutOfBinary().matches(join, ctx)
        # Under CTX both streams carry policies: one-sided pull invalid.
        assert not PullShieldOutOfBinary().matches(join, CTX)


class TestRules4And5:
    def test_commute_join_inputs_swaps_keys(self):
        join = JoinExpr(ScanExpr("a"), ScanExpr("b"), "x", "y", 10.0)
        swapped = CommuteJoinInputs().apply(join, CTX)
        assert swapped.left == ScanExpr("b")
        assert swapped.left_on == "y" and swapped.right_on == "x"

    def test_commute_union(self):
        union = UnionExpr(ScanExpr("a"), ScanExpr("b"))
        swapped = CommuteJoinInputs().apply(union, CTX)
        assert swapped.left == ScanExpr("b")

    def test_associate_join(self):
        inner = JoinExpr(ScanExpr("a"), ScanExpr("b"), "x", "x", 10.0)
        outer = JoinExpr(inner, ScanExpr("c"), "y", "y", 10.0)
        rotated = AssociateJoin().apply(outer, CTX)
        assert rotated.left == ScanExpr("a")
        assert isinstance(rotated.right, JoinExpr)
        assert rotated.right.left == ScanExpr("b")
        assert rotated.right.right == ScanExpr("c")


class TestRewriteMachinery:
    def test_apply_at_path(self):
        expr = UnionExpr(ScanExpr("a"),
                         ShieldExpr(SelectExpr(ScanExpr("b"), COND),
                                    frozenset({"p"})))
        rewritten = apply_at(expr, (1,), CommuteSelectShield(), CTX)
        assert isinstance(rewritten.right, SelectExpr)

    def test_apply_at_bad_path(self):
        with pytest.raises(OptimizerError):
            apply_at(ScanExpr("a"), (3,), CommuteShields(), CTX)

    def test_apply_at_non_matching_rule(self):
        with pytest.raises(OptimizerError):
            apply_at(ScanExpr("a"), (), CommuteShields(), CTX)

    def test_equivalent_forms_deduplicated(self):
        expr = ShieldExpr(SelectExpr(ScanExpr("a"), COND), frozenset({"p"}))
        forms = equivalent_forms(expr, CTX)
        assert len(forms) == len(set(forms))
        assert expr not in forms
        assert SelectExpr(ShieldExpr(ScanExpr("a"), frozenset({"p"})),
                          COND) in forms
