"""Tests for plan explain/pretty-printing."""

from repro.algebra.cost import CostModel
from repro.algebra.explain import explain, node_label
from repro.algebra.expressions import (JoinExpr, ScanExpr, ShieldExpr,
                                       UnionExpr)
from repro.algebra.statistics import StatisticsCatalog, StreamStatistics
from repro.operators.conditions import Comparison


def sample_plan():
    return (ScanExpr("s")
            .select(Comparison("v", ">", 1))
            .shield({"D", "C"})
            .project(["v"]))


class TestNodeLabels:
    def test_each_node_type_labelled(self):
        assert node_label(ScanExpr("s")) == "Scan(s)"
        assert node_label(ScanExpr("s").shield({"D"})) == "ψ[{D}]"
        assert "σ[" in node_label(
            ScanExpr("s").select(Comparison("v", ">", 1)))
        assert node_label(ScanExpr("s").project(["a", "b"])) == "π[a,b]"
        join = JoinExpr(ScanExpr("a"), ScanExpr("b"), "x", "y", 5.0)
        assert "⋈[x=y" in node_label(join)
        assert "δ[" in node_label(ScanExpr("s").distinct(5.0, ["v"]))
        assert "G[" in node_label(
            ScanExpr("s").group_by("g", "sum", "v", 5.0))
        assert node_label(UnionExpr(ScanExpr("a"), ScanExpr("b"))) == "∪"

    def test_conjunctive_shield_label(self):
        shield = ShieldExpr(ScanExpr("s"),
                            (frozenset({"a"}), frozenset({"b"})))
        assert node_label(shield) == "ψ[{a}∧{b}]"


class TestExplain:
    def test_tree_structure(self):
        text = explain(sample_plan())
        lines = text.splitlines()
        assert lines[0].startswith("π[v]")
        assert lines[1].startswith("  ψ[")
        assert lines[2].startswith("    σ[")
        assert lines[3].startswith("      Scan(s)")

    def test_cost_annotations(self):
        catalog = StatisticsCatalog()
        catalog.set_stream("s", StreamStatistics(tuple_rate=100.0,
                                                 sp_rate=10.0))
        text = explain(sample_plan(), CostModel(catalog))
        assert "cost=" in text
        assert "out=" in text
        # Scan nodes show rates but carry no cost of their own.
        scan_line = [l for l in text.splitlines() if "Scan(s)" in l][0]
        assert "cost=" not in scan_line
        assert "out=100.0t/s" in scan_line

    def test_binary_plans(self):
        plan = ShieldExpr(
            JoinExpr(ScanExpr("a"), ScanExpr("b"), "x", "x", 5.0),
            frozenset({"D"}))
        text = explain(plan, CostModel())
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("ψ[{D}]")
        assert sum("Scan" in line for line in lines) == 2
