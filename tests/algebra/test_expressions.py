"""Tests for logical algebra expressions."""

import pytest

from repro.algebra.expressions import (DupElimExpr, GroupByExpr, JoinExpr,
                                       ProjectExpr, ScanExpr, SelectExpr,
                                       ShieldExpr, UnionExpr, walk)
from repro.errors import PlanError
from repro.operators.conditions import Comparison


class TestConstruction:
    def test_fluent_chain(self):
        expr = (ScanExpr("s1")
                .select(Comparison("v", ">", 1))
                .project(["v"])
                .shield({"D"}))
        assert isinstance(expr, ShieldExpr)
        assert isinstance(expr.input, ProjectExpr)
        assert isinstance(expr.input.input, SelectExpr)
        assert isinstance(expr.input.input.input, ScanExpr)

    def test_scan_requires_id(self):
        with pytest.raises(PlanError):
            ScanExpr("")

    def test_join_builder(self):
        expr = ScanExpr("a").join(ScanExpr("b"), "x", "y", 10.0)
        assert isinstance(expr, JoinExpr)
        assert expr.left_on == "x" and expr.right_on == "y"
        assert expr.variant == "index"

    def test_invalid_join_variant(self):
        with pytest.raises(PlanError):
            JoinExpr(ScanExpr("a"), ScanExpr("b"), "x", "y", 1.0,
                     variant="hash")


class TestStructuralEquality:
    def test_equal_trees(self):
        a = ScanExpr("s").shield({"D"}).project(["v"])
        b = ScanExpr("s").shield({"D"}).project(["v"])
        assert a == b
        assert hash(a) == hash(b)

    def test_role_order_irrelevant(self):
        assert ScanExpr("s").shield({"a", "b"}) == \
            ScanExpr("s").shield({"b", "a"})

    def test_different_roles_differ(self):
        assert ScanExpr("s").shield({"a"}) != ScanExpr("s").shield({"b"})

    def test_conjunct_structure_matters(self):
        single = ShieldExpr(ScanExpr("s"), (frozenset({"a", "b"}),))
        double = ShieldExpr(ScanExpr("s"),
                            (frozenset({"a"}), frozenset({"b"})))
        assert single != double


class TestShieldPredicates:
    def test_roles_union_of_conjuncts(self):
        shield = ShieldExpr(ScanExpr("s"),
                            (frozenset({"a"}), frozenset({"b"})))
        assert shield.roles == frozenset({"a", "b"})

    def test_predicates_normalized_sorted(self):
        a = ShieldExpr(ScanExpr("s"), (frozenset({"b"}), frozenset({"a"})))
        b = ShieldExpr(ScanExpr("s"), (frozenset({"a"}), frozenset({"b"})))
        assert a == b

    def test_empty_predicates_rejected(self):
        with pytest.raises(PlanError):
            ShieldExpr(ScanExpr("s"), ())


class TestWithChildren:
    def test_replace_child(self):
        expr = ScanExpr("s").shield({"D"})
        replaced = expr.with_children(ScanExpr("other"))
        assert replaced.input == ScanExpr("other")
        assert replaced.predicates == expr.predicates

    def test_binary_children(self):
        join = JoinExpr(ScanExpr("a"), ScanExpr("b"), "x", "y", 5.0)
        swapped = join.with_children(ScanExpr("b"), ScanExpr("a"))
        assert swapped.left == ScanExpr("b")

    def test_scan_rejects_children(self):
        with pytest.raises(PlanError):
            ScanExpr("s").with_children(ScanExpr("x"))


class TestWalk:
    def test_preorder(self):
        expr = UnionExpr(ScanExpr("a"), ScanExpr("b").shield({"D"}))
        nodes = list(walk(expr))
        assert isinstance(nodes[0], UnionExpr)
        assert ScanExpr("a") in nodes
        assert ScanExpr("b") in nodes
        assert len(nodes) == 4

    def test_other_constructors(self):
        expr = ScanExpr("s").distinct(10.0, ["v"])
        assert isinstance(expr, DupElimExpr)
        expr = ScanExpr("s").group_by("g", "sum", "v", 10.0)
        assert isinstance(expr, GroupByExpr)
        assert expr.agg == "sum"
