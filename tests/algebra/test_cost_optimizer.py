"""Tests for the Section VI.A cost model and the optimizer."""

import pytest

from repro.algebra.cost import CostModel
from repro.algebra.expressions import (JoinExpr, ScanExpr, SelectExpr,
                                       ShieldExpr)
from repro.algebra.optimizer import Optimizer
from repro.algebra.rules import RewriteContext
from repro.algebra.statistics import (StatisticsCatalog, StreamStatistics)
from repro.errors import OptimizerError
from repro.operators.conditions import Comparison

COND = Comparison("v", ">", 1)


def catalog(**kwargs) -> StatisticsCatalog:
    cat = StatisticsCatalog(**kwargs)
    cat.set_stream("a", StreamStatistics(tuple_rate=100.0, sp_rate=10.0,
                                         roles_per_sp=2.0,
                                         role_universe_size=10))
    cat.set_stream("b", StreamStatistics(tuple_rate=50.0, sp_rate=5.0,
                                         roles_per_sp=2.0,
                                         role_universe_size=10))
    return cat


class TestPerOperatorFormulas:
    def test_scan_costs_nothing(self):
        model = CostModel(catalog())
        assert model.cost(ScanExpr("a")).total == 0.0

    def test_select_cost_is_rate_sum(self):
        """σ/π cost: Σ (λi + λspi)."""
        model = CostModel(catalog())
        cost = model.cost(SelectExpr(ScanExpr("a"), COND))
        assert cost.total == pytest.approx(100.0 + 10.0)

    def test_shield_cost_formula(self):
        """SS cost: λ + λsp·(NRsp + NR)."""
        model = CostModel(catalog())
        shield = ShieldExpr(ScanExpr("a"), frozenset({"r1", "r2", "r3"}))
        cost = model.cost(shield)
        assert cost.total == pytest.approx(100.0 + 10.0 * (2.0 + 3))

    def test_nested_loop_join_cost(self):
        """NL SAJoin: λ1(N2+Nsp2) + λ2(N1+Nsp1)."""
        model = CostModel(catalog())
        join = JoinExpr(ScanExpr("a"), ScanExpr("b"), "x", "x", 2.0,
                        variant="nl")
        n1, nsp1 = 2.0 * 100.0, 2.0 * 10.0
        n2, nsp2 = 2.0 * 50.0, 2.0 * 5.0
        expected = 100.0 * (n2 + nsp2) + 50.0 * (n1 + nsp1)
        assert model.cost(join).total == pytest.approx(expected)

    def test_index_join_cheaper_when_selective(self):
        selective = catalog(sp_compatibility=0.1)
        nl = JoinExpr(ScanExpr("a"), ScanExpr("b"), "x", "x", 2.0,
                      variant="nl")
        ix = JoinExpr(ScanExpr("a"), ScanExpr("b"), "x", "x", 2.0,
                      variant="index")
        model = CostModel(selective)
        assert model.cost(ix).total < model.cost(nl).total

    def test_index_join_approaches_nl_at_sigma_one(self):
        """σsp = 1 degenerates the index join to nested-loop + maintenance."""
        model = CostModel(catalog(sp_compatibility=1.0))
        nl = JoinExpr(ScanExpr("a"), ScanExpr("b"), "x", "x", 2.0,
                      variant="nl")
        ix = JoinExpr(ScanExpr("a"), ScanExpr("b"), "x", "x", 2.0,
                      variant="index")
        nl_cost = model.cost(nl).total
        ix_cost = model.cost(ix).total
        assert ix_cost >= nl_cost  # maintenance overhead on top
        assert ix_cost == pytest.approx(nl_cost + 2.0 * (10.0 + 5.0))

    def test_shield_reduces_downstream_rates(self):
        model = CostModel(catalog())
        shielded_then_select = SelectExpr(
            ShieldExpr(ScanExpr("a"), frozenset({"r1"})), COND)
        select_only = SelectExpr(ScanExpr("a"), COND)
        shielded_breakdown = model.cost(shielded_then_select).breakdown
        plain_breakdown = model.cost(select_only).breakdown
        select_cost_after_shield = [
            v for k, v in shielded_breakdown.items() if "select" in k][0]
        select_cost_plain = [
            v for k, v in plain_breakdown.items() if "select" in k][0]
        assert select_cost_after_shield < select_cost_plain

    def test_groupby_cost(self):
        model = CostModel(catalog(aggregate_cost=3.0))
        expr = ScanExpr("a").group_by("g", "sum", "v", 5.0)
        assert model.cost(expr).total == pytest.approx(
            2.0 * 3.0 * (100.0 + 10.0))

    def test_unknown_node_rejected(self):
        class Bogus:
            pass
        with pytest.raises(OptimizerError):
            CostModel(catalog())._visit(Bogus(), {}, "root")


class TestOptimizer:
    def _optimizer(self, **cat_kwargs) -> Optimizer:
        context = RewriteContext(policy_streams=frozenset({"a", "b"}))
        return Optimizer(CostModel(catalog(**cat_kwargs)), context)

    def test_pushes_shield_below_expensive_join(self):
        """SS interleaving: ψ over ⋈ gets pushed toward the scans."""
        optimizer = self._optimizer()
        plan = ShieldExpr(
            JoinExpr(ScanExpr("a"), ScanExpr("b"), "x", "x", 2.0),
            frozenset({"r1"}))
        result = optimizer.optimize(plan)
        assert result.cost < result.initial_cost
        # Shields now sit below the join.
        assert max(Optimizer.shield_depths(result.plan)) >= 1
        assert not isinstance(result.plan, ShieldExpr)

    def test_optimum_is_fixpoint(self):
        optimizer = self._optimizer()
        plan = ShieldExpr(SelectExpr(ScanExpr("a"), COND), frozenset({"r1"}))
        result = optimizer.optimize(plan)
        again = optimizer.optimize(result.plan)
        assert again.steps == 0
        assert again.cost == pytest.approx(result.cost)

    def test_greedy_matches_exhaustive_on_small_plan(self):
        optimizer = self._optimizer()
        plan = ShieldExpr(
            SelectExpr(
                JoinExpr(ScanExpr("a"), ScanExpr("b"), "x", "x", 2.0),
                COND),
            frozenset({"r1"}))
        greedy = optimizer.optimize(plan)
        exhaustive = optimizer.optimize_exhaustive(plan, budget=500)
        assert greedy.cost == pytest.approx(exhaustive.cost, rel=1e-9)

    def test_improvement_metric(self):
        optimizer = self._optimizer()
        plan = ShieldExpr(
            JoinExpr(ScanExpr("a"), ScanExpr("b"), "x", "x", 2.0),
            frozenset({"r1"}))
        result = optimizer.optimize(plan)
        assert 0.0 < result.improvement < 1.0

    def test_operator_count(self):
        plan = ShieldExpr(SelectExpr(ScanExpr("a"), COND), frozenset({"p"}))
        assert Optimizer.operator_count(plan) == 3
