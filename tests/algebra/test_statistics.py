"""Tests for stream statistics, including observation from samples."""

import pytest

from repro.algebra.statistics import (DerivedStats, StatisticsCatalog,
                                      StreamStatistics)
from repro.errors import OptimizerError
from repro.workloads.synthetic import punctuated_stream


class TestStreamStatistics:
    def test_role_selectivity_bounds(self):
        stats = StreamStatistics(role_universe_size=10, roles_per_sp=2.0)
        assert stats.role_selectivity(0) == 0.0
        assert stats.role_selectivity(10) == 1.0
        mid = stats.role_selectivity(5)
        assert 0.0 < mid < 1.0

    def test_role_selectivity_monotone(self):
        stats = StreamStatistics(role_universe_size=20, roles_per_sp=3.0)
        values = [stats.role_selectivity(k) for k in range(0, 21, 5)]
        assert values == sorted(values)

    def test_role_selectivity_accepts_frozensets(self):
        stats = StreamStatistics(role_universe_size=4)
        assert stats.role_selectivity(frozenset({"a", "b"})) == \
            stats.role_selectivity(2)


class TestCatalog:
    def test_defaults_and_overrides(self):
        catalog = StatisticsCatalog()
        assert catalog.for_stream("unknown") is catalog.default
        catalog.set_stream("s", StreamStatistics(tuple_rate=7.0))
        assert catalog.for_stream("s").tuple_rate == 7.0

    def test_negative_rates_rejected(self):
        with pytest.raises(OptimizerError):
            StatisticsCatalog().set_stream(
                "s", StreamStatistics(tuple_rate=-1.0))

    def test_base_stats_derivation(self):
        catalog = StatisticsCatalog()
        catalog.set_stream("s", StreamStatistics(
            tuple_rate=50.0, sp_rate=5.0, roles_per_sp=3.0))
        derived = catalog.base_stats("s")
        assert isinstance(derived, DerivedStats)
        assert derived.tuple_rate == 50.0
        assert derived.roles_per_sp == 3.0

    def test_scaled(self):
        derived = StatisticsCatalog().base_stats("x")
        half = derived.scaled(0.5)
        assert half.tuple_rate == derived.tuple_rate * 0.5
        assert half.sp_rate == derived.sp_rate * 0.5
        thirds = derived.scaled(0.5, 0.25)
        assert thirds.sp_rate == derived.sp_rate * 0.25

    def test_join_selectivity(self):
        catalog = StatisticsCatalog()
        assert catalog.effective_join_selectivity(50) == pytest.approx(0.02)
        catalog.join_selectivity = 0.1
        assert catalog.effective_join_selectivity(50) == 0.1


class TestObservation:
    def test_observe_derives_real_rates(self):
        catalog = StatisticsCatalog()
        elements = list(punctuated_stream(
            500, tuples_per_sp=10, policy_size=4, seed=1))
        stats = catalog.observe("synthetic", elements,
                                value_attribute="object_id")
        # 500 tuples + 50 sps over ~550 time units (dt=1 per element).
        assert stats.tuple_rate == pytest.approx(500 / 549, rel=0.05)
        assert stats.sp_rate == pytest.approx(50 / 549, rel=0.05)
        assert stats.roles_per_sp == pytest.approx(4.0)
        assert stats.distinct_values == 500
        assert catalog.for_stream("synthetic") is stats

    def test_observe_ratio_matches_generation(self):
        catalog = StatisticsCatalog()
        elements = list(punctuated_stream(
            300, tuples_per_sp=25, policy_size=2, seed=2))
        stats = catalog.observe("s", elements)
        assert stats.tuple_rate / stats.sp_rate == pytest.approx(25.0)

    def test_observe_empty_sample(self):
        stats = StatisticsCatalog().observe("s", [])
        assert stats.tuple_rate == 0.0
        assert stats.role_universe_size == 1
