"""Tests for the classical selection rules (split/merge/pushdown)."""

import pytest

from repro.algebra.cost import CostModel
from repro.algebra.expressions import (JoinExpr, ScanExpr, SelectExpr,
                                       ShieldExpr)
from repro.algebra.optimizer import Optimizer
from repro.algebra.rules import (MergeSelects, PushSelectIntoJoin,
                                 RewriteContext, SplitSelect)
from repro.algebra.statistics import StatisticsCatalog, StreamStatistics
from repro.operators.conditions import And, Comparison

LEFT_COND = Comparison("x", ">", 1)
RIGHT_COND = Comparison("y", "<", 5)

CTX = RewriteContext(
    policy_streams=frozenset({"a", "b"}),
    schemas={"a": frozenset({"k", "x"}), "b": frozenset({"k", "y"})},
)


def join():
    return JoinExpr(ScanExpr("a"), ScanExpr("b"), "k", "k", 10.0)


class TestSplitMerge:
    def test_split(self):
        expr = SelectExpr(ScanExpr("a"), And((LEFT_COND, RIGHT_COND)))
        rule = SplitSelect()
        assert rule.matches(expr, CTX)
        split = rule.apply(expr, CTX)
        assert isinstance(split, SelectExpr)
        assert isinstance(split.input, SelectExpr)

    def test_single_conjunct_no_split(self):
        expr = SelectExpr(ScanExpr("a"), LEFT_COND)
        assert not SplitSelect().matches(expr, CTX)

    def test_merge_inverts_split(self):
        expr = SelectExpr(ScanExpr("a"), And((LEFT_COND, RIGHT_COND)))
        split = SplitSelect().apply(expr, CTX)
        merged = MergeSelects().apply(split, CTX)
        assert merged == expr


class TestPushdown:
    def test_left_side(self):
        expr = SelectExpr(join(), LEFT_COND)
        rule = PushSelectIntoJoin()
        assert rule.matches(expr, CTX)
        pushed = rule.apply(expr, CTX)
        assert isinstance(pushed, JoinExpr)
        assert isinstance(pushed.left, SelectExpr)
        assert isinstance(pushed.right, ScanExpr)

    def test_right_side(self):
        expr = SelectExpr(join(), RIGHT_COND)
        pushed = PushSelectIntoJoin().apply(expr, CTX)
        assert isinstance(pushed.right, SelectExpr)

    def test_shared_attribute_not_pushed(self):
        # 'k' exists on both sides: ambiguous, must not push.
        expr = SelectExpr(join(), Comparison("k", "=", 3))
        assert not PushSelectIntoJoin().matches(expr, CTX)

    def test_no_schemas_no_pushdown(self):
        bare = RewriteContext(policy_streams=frozenset({"a", "b"}))
        expr = SelectExpr(join(), LEFT_COND)
        assert not PushSelectIntoJoin().matches(expr, bare)

    def test_semantics_preserved_on_execution(self):
        from repro.core.punctuation import SecurityPunctuation
        from repro.engine.executor import Executor
        from repro.engine.plan import PhysicalPlan
        from repro.operators.sink import CollectingSink
        from repro.stream.schema import StreamSchema
        from repro.stream.source import ListSource
        from repro.stream.tuples import DataTuple

        expr = ShieldExpr(SelectExpr(join(), LEFT_COND),
                          frozenset({"D"}))
        pushed = ShieldExpr(
            PushSelectIntoJoin().apply(expr.input, CTX),
            frozenset({"D"}))

        def run(plan_expr):
            plan = PhysicalPlan()
            sink = plan.compile_expr(plan_expr, CollectingSink())
            sources = [
                ListSource(StreamSchema("a", ("k", "x")), [
                    SecurityPunctuation.grant(["D"], ts=0.0),
                    DataTuple("a", 1, {"k": 7, "x": 0}, 1.0),
                    DataTuple("a", 2, {"k": 7, "x": 9}, 2.0),
                ]),
                ListSource(StreamSchema("b", ("k", "y")), [
                    SecurityPunctuation.grant(["D"], ts=0.0),
                    DataTuple("b", 3, {"k": 7, "y": 1}, 3.0),
                ]),
            ]
            Executor(plan, sources).run()
            return sorted(t.tid for t in sink.operator.tuples())

        assert run(expr) == run(pushed) == [(2, 3)]


class TestOptimizerUsesSelectionPushdown:
    def test_selective_condition_pushed_below_join(self):
        catalog = StatisticsCatalog(condition_selectivity=0.05)
        catalog.set_stream("a", StreamStatistics(tuple_rate=100.0,
                                                 sp_rate=10.0))
        catalog.set_stream("b", StreamStatistics(tuple_rate=100.0,
                                                 sp_rate=10.0))
        optimizer = Optimizer(CostModel(catalog), CTX)
        plan = SelectExpr(join(), LEFT_COND)
        result = optimizer.optimize(plan)
        assert result.cost < result.initial_cost
        assert isinstance(result.plan, JoinExpr)
