"""Tests for Section VI.C multi-query (workload) optimization."""

import pytest

from repro.algebra.cost import CostModel
from repro.algebra.expressions import (JoinExpr, ScanExpr, SelectExpr,
                                       ShieldExpr)
from repro.algebra.optimizer import Optimizer
from repro.algebra.rules import RewriteContext
from repro.algebra.statistics import StatisticsCatalog, StreamStatistics
from repro.operators.conditions import Comparison

COND = Comparison("v", ">", 1)


def catalog() -> StatisticsCatalog:
    cat = StatisticsCatalog()
    cat.set_stream("a", StreamStatistics(tuple_rate=100.0, sp_rate=10.0,
                                         role_universe_size=10))
    cat.set_stream("b", StreamStatistics(tuple_rate=80.0, sp_rate=8.0,
                                         role_universe_size=10))
    return cat


def optimizer() -> Optimizer:
    return Optimizer(CostModel(catalog()),
                     RewriteContext(policy_streams=frozenset({"a", "b"})))


class TestWorkloadCost:
    def test_shared_subplans_counted_once(self):
        model = CostModel(catalog())
        shared = SelectExpr(ScanExpr("a"), COND)
        q1 = ShieldExpr(shared, frozenset({"r1"}))
        q2 = ShieldExpr(shared, frozenset({"r2"}))
        both = model.workload_cost([q1, q2])
        alone = model.cost(q1).total + model.cost(q2).total
        assert both < alone
        # Exactly one select cost is saved.
        select_cost = model.cost(shared).total
        assert both == pytest.approx(alone - select_cost)

    def test_disjoint_plans_add_up(self):
        model = CostModel(catalog())
        q1 = SelectExpr(ScanExpr("a"), COND)
        q2 = SelectExpr(ScanExpr("b"), COND)
        assert model.workload_cost([q1, q2]) == pytest.approx(
            model.cost(q1).total + model.cost(q2).total)

    def test_identical_plans_cost_once(self):
        model = CostModel(catalog())
        q = ShieldExpr(SelectExpr(ScanExpr("a"), COND), frozenset({"r"}))
        assert model.workload_cost([q, q]) == pytest.approx(
            model.cost(q).total)


class TestWorkloadOptimization:
    def test_sharing_kept_when_shields_are_not_selective(self):
        """Many queries with *loose* access rights over one expensive
        join: pushing shields down barely shrinks the join inputs but
        duplicates the join per query, so the workload optimizer must
        keep the per-query shields above the shared join (the paper's
        merge-at-the-beginning/split-at-the-end layout)."""
        join = JoinExpr(ScanExpr("a"), ScanExpr("b"), "x", "x", 2.0)
        # Each query holds 8 of the 10 roles: security selectivity ≈ 1.
        queries = [
            ShieldExpr(join, frozenset(
                f"r{j}" for j in range(10) if j != i and j != i + 1))
            for i in range(0, 6)
        ]
        result = optimizer().optimize_workload(queries)
        assert result.cost <= result.independent_cost + 1e-9
        shared_joins = {plan.input for plan in result.plans
                        if isinstance(plan, ShieldExpr)
                        and isinstance(plan.input, JoinExpr)}
        assert len(shared_joins) == 1

    def test_pushdown_chosen_when_shields_are_selective(self):
        """The converse regime: one-role shields cut the join inputs by
        ~5x each, so per-query pushed-down joins beat one shared join
        even though nothing is shared."""
        join = JoinExpr(ScanExpr("a"), ScanExpr("b"), "x", "x", 2.0)
        queries = [ShieldExpr(join, frozenset({f"r{i}"}))
                   for i in range(6)]
        result = optimizer().optimize_workload(queries)
        assert result.cost <= result.independent_cost + 1e-9
        # The chosen plans pushed their shields below the join.
        assert all(isinstance(plan, JoinExpr) for plan in result.plans)

    def test_single_query_falls_back_to_individual(self):
        """With nothing to share, the individually optimized plan wins."""
        plan = ShieldExpr(
            JoinExpr(ScanExpr("a"), ScanExpr("b"), "x", "x", 2.0),
            frozenset({"r1"}))
        result = optimizer().optimize_workload([plan])
        single = optimizer().optimize(plan)
        assert result.cost == pytest.approx(single.cost)
        assert result.plans[0] == single.plan

    def test_workload_never_worse_than_either_extreme(self):
        join = JoinExpr(ScanExpr("a"), ScanExpr("b"), "x", "x", 2.0)
        queries = [ShieldExpr(join, frozenset({f"r{i}"}))
                   for i in range(3)]
        opt = optimizer()
        result = opt.optimize_workload(queries)
        all_shared = opt.cost_model.workload_cost(queries)
        assert result.cost <= all_shared + 1e-9
        assert result.cost <= result.independent_cost + 1e-9

    def test_end_to_end_shared_execution(self):
        """Workload-chosen plans actually share operators in the engine
        and produce per-query-correct results."""
        from repro.core.punctuation import SecurityPunctuation
        from repro.engine.executor import Executor
        from repro.engine.plan import PhysicalPlan
        from repro.operators.join import SAJoinBase
        from repro.operators.sink import CollectingSink
        from repro.stream.schema import StreamSchema
        from repro.stream.source import ListSource
        from repro.stream.tuples import DataTuple

        join = JoinExpr(ScanExpr("a"), ScanExpr("b"), "x", "x", 100.0)
        queries = [ShieldExpr(join, frozenset({"r1"})),
                   ShieldExpr(join, frozenset({"r2"})),
                   ShieldExpr(join, frozenset({"r3"}))]
        result = optimizer().optimize_workload(queries)

        plan = PhysicalPlan()
        sinks = [plan.compile_expr(p, CollectingSink())
                 for p in result.plans]
        if len({id(op) for op in plan.find_operators(SAJoinBase)}) == 1:
            # Sharing chosen: single join instance.
            pass
        elements_a = [SecurityPunctuation.grant(["r1", "r2"], 0.0),
                      DataTuple("a", 1, {"x": 5}, 1.0)]
        elements_b = [SecurityPunctuation.grant(["r1"], 0.0),
                      DataTuple("b", 2, {"x": 5}, 2.0)]
        Executor(plan, [
            ListSource(StreamSchema("a", ("x",)), elements_a),
            ListSource(StreamSchema("b", ("x",)), elements_b),
        ]).run()
        outs = [[t.tid for t in sink.operator.tuples()] for sink in sinks]
        assert outs[0] == [(1, 2)]   # r1 compatible on both sides
        assert outs[1] == []         # r2 missing on b
        assert outs[2] == []         # r3 nowhere
