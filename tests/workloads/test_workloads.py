"""Tests for the synthetic and health workload generators."""

import pytest

from repro.core.punctuation import SecurityPunctuation
from repro.stream.element import count_elements, is_punctuation
from repro.stream.ordering import ensure_ordered
from repro.stream.tuples import DataTuple
from repro.workloads.health import (HealthStreamGenerator,
                                    attribute_level_policy,
                                    stream_level_policy, tuple_level_policy)
from repro.workloads.synthetic import (QUERY_ROLE, join_streams,
                                       punctuated_stream, role_names)


class TestSynthetic:
    def test_ratio_controlled(self):
        elements = list(punctuated_stream(200, tuples_per_sp=10, seed=1))
        n_tuples, n_sps = count_elements(elements)
        assert n_tuples == 200
        assert n_sps == 20

    def test_policy_size_controlled(self):
        elements = list(punctuated_stream(50, tuples_per_sp=5,
                                          policy_size=7, seed=2))
        for element in elements:
            if is_punctuation(element):
                assert len(element.roles()) == 7

    def test_accessible_fraction_extremes(self):
        all_access = list(punctuated_stream(
            100, tuples_per_sp=10, accessible_fraction=1.0, seed=3))
        none_access = list(punctuated_stream(
            100, tuples_per_sp=10, accessible_fraction=0.0, seed=3))
        assert all(QUERY_ROLE in e.roles() for e in all_access
                   if is_punctuation(e))
        assert all(QUERY_ROLE not in e.roles() for e in none_access
                   if is_punctuation(e))

    def test_ordered(self):
        list(ensure_ordered(punctuated_stream(100, seed=4)))

    def test_validation(self):
        with pytest.raises(ValueError):
            list(punctuated_stream(10, tuples_per_sp=0))
        with pytest.raises(ValueError):
            list(punctuated_stream(10, policy_size=0))

    def test_role_names(self):
        assert role_names(3) == ["r1", "r2", "r3"]
        assert role_names(2, prefix="q") == ["q1", "q2"]


class TestJoinStreams:
    def test_structure(self):
        left, right, left_schema, right_schema = join_streams(
            100, tuples_per_sp=10, compatibility=0.5, seed=5)
        assert count_elements(left)[0] == 100
        assert count_elements(right)[0] == 100
        assert left_schema.stream_id == "left"
        assert right_schema.stream_id == "right"

    def test_left_always_shared_role(self):
        left, _, _, _ = join_streams(50, compatibility=0.5, seed=6)
        assert all(e.roles() == frozenset({"shared"}) for e in left
                   if is_punctuation(e))

    def test_compatibility_extremes(self):
        _, right_all, _, _ = join_streams(100, compatibility=1.0, seed=7)
        assert all(e.roles() == frozenset({"shared"}) for e in right_all
                   if is_punctuation(e))
        _, right_none, _, _ = join_streams(100, compatibility=0.0, seed=7)
        assert all("shared" not in e.roles() for e in right_none
                   if is_punctuation(e))

    def test_compatibility_mid_is_mixed(self):
        _, right, _, _ = join_streams(300, compatibility=0.5, seed=8)
        kinds = {("shared" in e.roles()) for e in right
                 if is_punctuation(e)}
        assert kinds == {True, False}


class TestHealthWorkload:
    def test_figure4_policies(self):
        assert stream_level_policy(1.0).describes("HeartRate")
        assert not stream_level_policy(1.0).describes("BodyTemperature")
        assert tuple_level_policy(1.0).describes("any", 125)
        assert not tuple_level_policy(1.0).describes("any", 200)
        attr_sp = attribute_level_policy(1.0)
        assert attr_sp.describes("HeartRate", 1, "beats_per_min")
        assert attr_sp.describes("BodyTemperature", 1, "temperature")
        assert not attr_sp.describes("BreathingRate", 1, "depth")
        assert attr_sp.roles() == frozenset({"D", "ND"})

    def test_heart_rate_stream_shape(self):
        gen = HealthStreamGenerator(n_patients=4, seed=1)
        elements = list(gen.heart_rate(5))
        n_tuples, n_sps = count_elements(elements)
        assert n_tuples == 20
        assert n_sps == 20  # per-patient sp before each reading

    def test_emergency_escalation(self):
        """Spiking vitals widen the policy with the ER role (Example 2)."""
        gen = HealthStreamGenerator(n_patients=8, seed=2,
                                    emergency_bpm=140.0)
        elements = list(gen.heart_rate(30))
        paired = list(zip(elements[::2], elements[1::2]))
        escalated = [(sp, t) for sp, t in paired
                     if t.values["beats_per_min"] >= 140.0]
        normal = [(sp, t) for sp, t in paired
                  if t.values["beats_per_min"] < 140.0]
        assert escalated, "seed must produce at least one emergency"
        assert all("E" in sp.roles() for sp, _ in escalated)
        assert all("E" not in sp.roles() for sp, _ in normal)

    def test_body_temperature_policy(self):
        gen = HealthStreamGenerator(n_patients=2, seed=3)
        sps = [e for e in gen.body_temperature(2)
               if isinstance(e, SecurityPunctuation)]
        assert all(e.roles() == frozenset({"D", "ND"}) for e in sps)

    def test_sp_scoped_to_patient(self):
        gen = HealthStreamGenerator(n_patients=2, seed=4)
        elements = list(gen.heart_rate(1))
        sp, reading = elements[0], elements[1]
        assert isinstance(reading, DataTuple)
        assert sp.describes("HeartRate", reading.tid)
        other = 999
        assert not sp.describes("HeartRate", other)
