"""Tests for the redesigned execution API surface.

Covers :class:`OptimizeLevel` (including legacy-value coercion with
deprecation warnings), the public ``DSMS.shields`` view, and
``SecurityShield.rebind``.
"""

import warnings

import pytest

from repro.algebra.expressions import ScanExpr
from repro.core.punctuation import SecurityPunctuation
from repro.engine.api import OptimizeLevel
from repro.engine.dsms import DSMS
from repro.errors import QueryError
from repro.operators.shield import SecurityShield
from repro.stream.schema import StreamSchema
from repro.stream.tuples import DataTuple

SCHEMA = StreamSchema("hr", ("patient", "bpm"), key="patient")


class TestOptimizeLevelCoercion:
    def test_enum_values_pass_through(self):
        for level in OptimizeLevel:
            assert OptimizeLevel.coerce(level) is level

    def test_none_means_no_optimization(self):
        assert OptimizeLevel.coerce(None) is OptimizeLevel.NONE

    def test_string_names_warn_and_translate(self):
        with pytest.warns(DeprecationWarning):
            assert (OptimizeLevel.coerce("per_query")
                    is OptimizeLevel.PER_QUERY)
        with pytest.warns(DeprecationWarning):
            assert OptimizeLevel.coerce("none") is OptimizeLevel.NONE

    @pytest.mark.parametrize("legacy,expected", [
        (False, OptimizeLevel.NONE),
        (True, OptimizeLevel.PER_QUERY),
        ("workload", OptimizeLevel.WORKLOAD),
    ])
    def test_legacy_values_warn_and_translate(self, legacy, expected):
        with pytest.warns(DeprecationWarning):
            assert OptimizeLevel.coerce(legacy) is expected

    def test_unknown_values_rejected(self):
        with pytest.raises(QueryError):
            OptimizeLevel.coerce("turbo")
        with pytest.raises(QueryError):
            OptimizeLevel.coerce(3)

    def test_dsms_run_accepts_legacy_bool(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA, [
            SecurityPunctuation.grant(["D"], 0.0, provider="p"),
            DataTuple("hr", 1, {"patient": 1, "bpm": 70}, 1.0),
        ])
        dsms.register_query("q", ScanExpr("hr"), roles={"D"})
        with pytest.warns(DeprecationWarning):
            results = dsms.run(optimize=True)
        assert len(results["q"].tuples) == 1

    def test_dsms_run_enum_emits_no_warning(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA, [])
        dsms.register_query("q", ScanExpr("hr"), roles={"D"})
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            dsms.run(optimize=OptimizeLevel.PER_QUERY)


class TestShieldsView:
    def test_unknown_query_raises(self):
        dsms = DSMS()
        with pytest.raises(QueryError):
            dsms.shields("nope")

    def test_returns_query_and_delivery_shields(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA, [])
        dsms.register_query("q", ScanExpr("hr"), roles={"D"})
        dsms.run()
        shields = dsms.shields("q")
        assert shields and all(isinstance(s, SecurityShield)
                               for s in shields)
        assert all(s.predicate.names() == frozenset({"D"}) for s in shields)

    def test_before_any_run_is_empty(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA, [])
        dsms.register_query("q", ScanExpr("hr"), roles={"D"})
        assert dsms.shields("q") == ()


class TestShieldRebind:
    def test_rebind_replaces_predicate_and_invalidates_cache(self):
        shield = SecurityShield({"D"})
        shield.process(SecurityPunctuation.grant(["D"], 0.0))
        assert shield.process(DataTuple("s", 1, {"x": 1}, 1.0))
        shield.rebind({"C"})
        assert shield.predicate.names() == frozenset({"C"})
        # Cached segment decision must not survive the rebind.
        assert shield.process(DataTuple("s", 2, {"x": 2}, 2.0)) == []

    def test_update_query_roles_uses_rebind(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA, [])
        dsms.register_query("q", ScanExpr("hr"), roles={"D"})
        session = dsms.open_session()
        session.push("hr", SecurityPunctuation.grant(["D"], 0.0,
                                                     provider="p"))
        out = session.push("hr", DataTuple("hr", 1,
                                           {"patient": 1, "bpm": 70}, 1.0))
        assert [t.tid for t in out["q"] if isinstance(t, DataTuple)] == [1]
        dsms.update_query_roles("q", {"C"})
        assert all(s.predicate.names() == frozenset({"C"})
                   for s in dsms.shields("q"))
        out = session.push("hr", DataTuple("hr", 2,
                                           {"patient": 2, "bpm": 80}, 2.0))
        assert [t for t in out["q"] if isinstance(t, DataTuple)] == []
        session.close()
