"""Property suite for the segment-granular stream partitioner.

Hypothesis-style randomized cases over fixed seeds, backing the
sharded executor's core invariants:

* the routing hash is a pure function of stream content — stable
  across calls, processes and runs (``PYTHONHASHSEED``-independent,
  pinned by golden vectors);
* chunking is a partition of the element list: concatenating chunks
  in order reproduces the stream exactly, every chunk is one sp-batch
  plus its governed tuples (or the leading denial prefix);
* segment affinity: all sps and tuples of one segment land on one
  shard, in stream order;
* no sp-scope leakage: resolving each shard's sub-stream with a fresh
  policy tracker yields exactly the roles the full stream resolves —
  no shard ever sees (or misses) policy from another shard's segment;
* streams carrying incremental sps (the one cross-segment dependency)
  are pinned whole onto a single shard;
* merging per-shard output runs reconstructs the original order.
"""

import random

import pytest

from repro.core.punctuation import SecurityPunctuation
from repro.engine.partition import (NO_ANCHOR, assign_chunks, chunk_runs,
                                    merge_chunk_runs, partition_stream,
                                    shard_of, split_chunks, stable_hash)
from repro.stream.tuples import DataTuple
from repro.verify.oracle import NaiveTracker, resolve_batch

ROLES = [("analyst",), ("admin",), ("nurse", "doctor"), ("other",)]

SEEDS = list(range(20))


def random_stream(seed, *, incremental=False):
    """A punctuated stream with the shapes the generator produces.

    Denial-by-default prefixes, multi-sp batches, empty segments,
    tuples sharing their batch's timestamp, strictly increasing batch
    timestamps.
    """
    rng = random.Random(f"partitioner:{seed}")
    elements = []
    ts = 0.0
    tid = 0
    if rng.random() < 0.4:  # leading tuple-only denial prefix
        for _ in range(rng.randrange(1, 4)):
            ts += rng.uniform(0.1, 0.5)
            tid += 1
            elements.append(DataTuple("s1", f"t{tid}", {"v": tid}, ts))
    for _ in range(rng.randrange(3, 14)):
        ts += rng.uniform(0.5, 2.0)
        for _ in range(rng.randrange(1, 3)):  # multi-sp batches
            sp = SecurityPunctuation.grant(rng.choice(ROLES), ts)
            if incremental and rng.random() < 0.3:
                sp = SecurityPunctuation.grant(rng.choice(ROLES), ts,
                                               incremental=True)
            elements.append(sp)
        if rng.random() < 0.2:
            continue  # empty segment
        share = rng.random() < 0.2
        for i in range(rng.randrange(1, 6)):
            if not (share and i == 0):
                ts += rng.uniform(0.1, 0.5)
            tid += 1
            elements.append(DataTuple("s1", f"t{tid}", {"v": tid}, ts))
    return elements


class TestStableHash:
    def test_golden_vectors(self):
        # Published FNV-1a 64-bit vectors: any change to the hash
        # breaks cross-run routing stability, so pin it exactly.
        assert stable_hash("") == 0xCBF29CE484222325
        assert stable_hash("a") == 0xAF63DC4C8601EC8C
        assert stable_hash("foobar") == 0x85944171F73967E8

    def test_stable_across_calls_and_unicode(self):
        for text in ("s1|t17", "s2|sp|3.5", "ehr|пациент", ""):
            assert stable_hash(text) == stable_hash(text)
            assert 0 <= stable_hash(text) < 2 ** 64

    def test_shard_of_range_and_determinism(self):
        for n in (1, 2, 3, 4, 7):
            seen = {shard_of(f"s1|t{i}", n) for i in range(200)}
            assert seen <= set(range(n))
            if n > 1:
                assert len(seen) > 1  # keys actually spread
        with pytest.raises(ValueError):
            shard_of("s1|t1", 0)


class TestSplitChunks:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_chunks_partition_the_stream(self, seed):
        elements = random_stream(seed)
        chunks = split_chunks("s1", elements)
        rebuilt = []
        prev_stop = 0
        for chunk in chunks:
            assert chunk.start == prev_stop  # contiguous, gap-free
            rebuilt.extend(elements[chunk.start:chunk.stop])
            prev_stop = chunk.stop
        assert prev_stop == len(elements)
        assert rebuilt == elements

    @pytest.mark.parametrize("seed", SEEDS)
    def test_each_chunk_is_one_segment(self, seed):
        elements = random_stream(seed)
        for chunk in split_chunks("s1", elements):
            sps = elements[chunk.start:chunk.tuples_at]
            tuples = elements[chunk.tuples_at:chunk.stop]
            assert all(isinstance(e, SecurityPunctuation) for e in sps)
            assert not any(isinstance(e, SecurityPunctuation)
                           for e in tuples)
            if sps:
                # One sp-batch: a maximal same-ts adjacent run.
                assert len({sp.ts for sp in sps}) == 1
                assert chunk.anchor_ts == sps[0].ts
            else:
                assert chunk.anchor_ts == NO_ANCHOR
                assert chunk.start == 0  # only the denial prefix

    def test_anchor_ordering_strictly_increases(self):
        # Generator-shaped streams have strictly increasing batch ts,
        # so chunk anchors must too — the property the merge sort
        # relies on.
        for seed in SEEDS:
            anchors = [c.anchor_ts
                       for c in split_chunks("s1", random_stream(seed))]
            assert anchors == sorted(anchors)


class TestPartitionStream:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4])
    def test_permutation_and_order_preservation(self, seed, n_shards):
        elements = random_stream(seed)
        parts = partition_stream("s1", elements, n_shards)
        assert len(parts) == n_shards
        ids = {id(e) for part in parts for e in part}
        assert len(ids) == len(elements)  # a permutation, no dup/loss
        index_of = {id(e): i for i, e in enumerate(elements)}
        for part in parts:
            positions = [index_of[id(e)] for e in part]
            assert positions == sorted(positions)  # stream order kept

    @pytest.mark.parametrize("seed", SEEDS)
    def test_routing_is_stable_across_runs(self, seed):
        elements = random_stream(seed)
        first = partition_stream("s1", elements, 4)
        again = partition_stream("s1", list(elements), 4)
        assert [[e for e in part] for part in first] \
            == [[e for e in part] for part in again]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_segment_affinity(self, seed):
        """All sps + tuples of one segment land on exactly one shard."""
        elements = random_stream(seed)
        chunks = split_chunks("s1", elements)
        parts = partition_stream("s1", elements, 4)
        member_shard = {}
        for shard, part in enumerate(parts):
            for element in part:
                member_shard[id(element)] = shard
        for chunk in chunks:
            shards = {member_shard[id(e)]
                      for e in elements[chunk.start:chunk.stop]}
            assert len(shards) <= 1

    def test_single_shard_is_identity(self):
        elements = random_stream(0)
        assert partition_stream("s1", elements, 1) == [elements]

    @pytest.mark.parametrize("seed", SEEDS[:8])
    def test_incremental_streams_are_pinned(self, seed):
        elements = random_stream(seed, incremental=True)
        if not any(isinstance(e, SecurityPunctuation) and e.incremental
                   for e in elements):
            pytest.skip("seed produced no incremental sp")
        parts = partition_stream("s1", elements, 4)
        non_empty = [part for part in parts if part]
        assert len(non_empty) == 1
        assert non_empty[0] == elements

    @pytest.mark.parametrize("seed", SEEDS)
    def test_no_sp_scope_leakage(self, seed):
        """Per-shard policy resolution == full-stream resolution.

        Each shard runs its own tracker over only its sub-stream; every
        tuple must still resolve to exactly the roles the unsharded
        tracker gives it — segments are self-contained, so no policy
        scope crosses a shard boundary.
        """
        elements = random_stream(seed)
        full = NaiveTracker()
        expected = {}
        for element in elements:
            if isinstance(element, SecurityPunctuation):
                full.observe(element)
            else:
                expected[element.tid] = resolve_batch(
                    full.governing(), element)
        for part in partition_stream("s1", elements, 4):
            local = NaiveTracker()
            for element in part:
                if isinstance(element, SecurityPunctuation):
                    local.observe(element)
                else:
                    assert resolve_batch(local.governing(), element) \
                        == expected[element.tid], element.tid


class TestChunkRunMerge:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4])
    def test_merge_inverts_partition(self, seed, n_shards):
        elements = random_stream(seed)
        parts = partition_stream("s1", elements, n_shards)
        runs = [chunk_runs("s1", part) for part in parts]
        assert merge_chunk_runs(runs) == elements

    def test_same_anchor_chunks_chain_to_one_shard(self):
        # A same-ts sp-batch re-opening after tuples (legal in
        # production streams) creates equal anchors; they must land on
        # one shard or the merge order would depend on the layout.
        ts = 5.0
        elements = [
            SecurityPunctuation.grant(("analyst",), ts),
            DataTuple("s1", "t1", {"v": 1}, ts),
            SecurityPunctuation.grant(("admin",), ts),
            DataTuple("s1", "t2", {"v": 2}, ts),
        ]
        chunks = split_chunks("s1", elements)
        assert len(chunks) == 2
        assert chunks[0].anchor_ts == chunks[1].anchor_ts
        for n_shards in (2, 3, 4):
            assignment = assign_chunks(chunks, n_shards)
            assert len(set(assignment)) == 1
            parts = partition_stream("s1", elements, n_shards)
            runs = [chunk_runs("s1", part) for part in parts]
            assert merge_chunk_runs(runs) == elements
