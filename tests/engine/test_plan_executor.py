"""Tests for physical plan construction, compilation and execution."""

import pytest

from repro.algebra.expressions import ScanExpr, ShieldExpr
from repro.core.punctuation import SecurityPunctuation
from repro.engine.executor import Executor
from repro.engine.plan import PhysicalPlan
from repro.errors import PlanError
from repro.operators.conditions import Comparison
from repro.operators.index_join import IndexSAJoin
from repro.operators.join import NestedLoopSAJoin
from repro.operators.select import Select
from repro.operators.shield import SecurityShield
from repro.operators.sink import CollectingSink
from repro.stream.schema import StreamSchema
from repro.stream.source import ListSource
from repro.stream.tuples import DataTuple


def grant(roles, ts):
    return SecurityPunctuation.grant(roles, ts)


def tup(tid, value, ts, sid="s1"):
    return DataTuple(sid, tid, {"v": value}, ts)


SCHEMA = StreamSchema("s1", ("v",))


class TestManualConstruction:
    def test_linear_plan(self):
        plan = PhysicalPlan()
        shield = plan.add(SecurityShield(["D"]))
        sink = plan.add(CollectingSink())
        plan.connect(shield, sink)
        plan.connect_source("s1", shield)
        source = ListSource(SCHEMA, [grant(["D"], 0.0), tup(1, 5, 1.0)])
        Executor(plan, [source]).run()
        assert [t.tid for t in sink.operator.tuples()] == [1]

    def test_invalid_port_rejected(self):
        plan = PhysicalPlan()
        a = plan.add(Select(Comparison("v", ">", 0)))
        b = plan.add(Select(Comparison("v", ">", 0)))
        with pytest.raises(PlanError):
            plan.connect(a, b, port=1)
        with pytest.raises(PlanError):
            plan.connect_source("s1", a, port=2)

    def test_topological_order(self):
        plan = PhysicalPlan()
        a = plan.add(Select(Comparison("v", ">", 0)))
        b = plan.add(Select(Comparison("v", ">", 0)))
        c = plan.add(CollectingSink())
        plan.connect(a, b)
        plan.connect(b, c)
        order = plan.topological()
        assert order.index(a) < order.index(b) < order.index(c)


class TestCompilation:
    def test_compiles_each_node_type(self):
        plan = PhysicalPlan()
        expr = (ScanExpr("s1")
                .select(Comparison("v", ">", 0))
                .project(["v"])
                .shield({"D"})
                .distinct(10.0, ["v"]))
        plan.compile_expr(expr, CollectingSink())
        names = {type(op).__name__ for op in plan.operators()}
        assert {"Select", "Project", "SecurityShield",
                "DuplicateElimination", "CollectingSink"} <= names

    def test_join_variants_compile(self):
        plan = PhysicalPlan()
        nl = ScanExpr("a").join(ScanExpr("b"), "x", "x", 5.0, variant="nl")
        ix = ScanExpr("a").join(ScanExpr("b"), "x", "x", 5.0,
                                variant="index")
        plan.compile_expr(nl, CollectingSink())
        plan.compile_expr(ix, CollectingSink())
        assert plan.find_operators(NestedLoopSAJoin)
        assert plan.find_operators(IndexSAJoin)

    def test_common_subexpression_shared(self):
        """Figure 5: queries sharing a subexpression share its node."""
        plan = PhysicalPlan()
        shared = ScanExpr("s1").select(Comparison("v", ">", 0)).shield({"D"})
        plan.compile_expr(shared.project(["v"]), CollectingSink())
        plan.compile_expr(shared.distinct(5.0), CollectingSink())
        selects = plan.find_operators(Select)
        shields = plan.find_operators(SecurityShield)
        assert len(selects) == 1
        assert len(shields) == 1

    def test_distinct_predicates_not_shared(self):
        plan = PhysicalPlan()
        base = ScanExpr("s1").select(Comparison("v", ">", 0))
        plan.compile_expr(base.shield({"D"}), CollectingSink())
        plan.compile_expr(base.shield({"C"}), CollectingSink())
        assert len(plan.find_operators(Select)) == 1
        assert len(plan.find_operators(SecurityShield)) == 2

    def test_shield_conjuncts_compiled(self):
        plan = PhysicalPlan()
        expr = ShieldExpr(ScanExpr("s1"),
                          (frozenset({"a"}), frozenset({"b"})))
        plan.compile_expr(expr, CollectingSink())
        (shield,) = plan.find_operators(SecurityShield)
        assert len(shield.conjuncts) == 2


class TestExecutor:
    def test_merges_sources_and_reports(self):
        plan = PhysicalPlan()
        sink = plan.compile_expr(ScanExpr("s1").shield({"D"}),
                                 CollectingSink())
        source = ListSource(SCHEMA, [grant(["D"], 0.0), tup(1, 5, 1.0),
                                     tup(2, 6, 2.0)])
        report = Executor(plan, [source]).run()
        assert report.elements_in == 3
        assert report.tuples_in == 2
        assert report.sps_in == 1
        assert len(sink.operator.tuples()) == 2

    def test_two_stream_join_execution(self):
        plan = PhysicalPlan()
        expr = ScanExpr("a").join(ScanExpr("b"), "v", "v", 100.0)
        sink = plan.compile_expr(expr, CollectingSink())
        source_a = ListSource(StreamSchema("a", ("v",)), [
            grant(["D"], 0.0), tup(1, 7, 1.0, "a")])
        source_b = ListSource(StreamSchema("b", ("v",)), [
            grant(["D"], 0.0), tup(2, 7, 2.0, "b")])
        Executor(plan, [source_a, source_b]).run()
        assert [t.tid for t in sink.operator.tuples()] == [(1, 2)]

    def test_feed_incremental(self):
        plan = PhysicalPlan()
        sink = plan.compile_expr(ScanExpr("s1").shield({"D"}),
                                 CollectingSink())
        executor = Executor(plan, [])
        executor.feed("s1", grant(["D"], 0.0))
        executor.feed("s1", tup(1, 5, 1.0))
        assert len(sink.operator.tuples()) == 1


class TestIterativePush:
    def test_deep_plan_exceeds_recursion_limit(self):
        """A >1000-operator chain must run without recursion errors."""
        import sys
        depth = sys.getrecursionlimit() + 100
        for batching in (False, True):
            plan = PhysicalPlan()
            nodes = [plan.add(Select(Comparison("v", ">", -1)))
                     for _ in range(depth)]
            sink = plan.add(CollectingSink())
            for upstream, downstream in zip(nodes, nodes[1:]):
                plan.connect(upstream, downstream)
            plan.connect(nodes[-1], sink)
            plan.connect_source("s1", nodes[0])
            source = ListSource(SCHEMA, [tup(i, 5, float(i + 1))
                                         for i in range(8)])
            Executor(plan, [source], batching=batching).run()
            assert [t.tid for t in sink.operator.tuples()] == list(range(8))

    def test_batched_run_matches_element_wise_counters(self):
        def build():
            plan = PhysicalPlan()
            sink = plan.compile_expr(
                ScanExpr("s1").shield({"D"}), CollectingSink())
            source = ListSource(SCHEMA, [
                grant(["D"], 0.0), tup(1, 5, 1.0), tup(2, 6, 2.0),
                grant(["N"], 3.0), tup(3, 7, 4.0),
            ])
            return plan, sink, source

        reports, outputs = [], []
        for batching in (False, True):
            plan, sink, source = build()
            reports.append(Executor(plan, [source],
                                    batching=batching).run())
            outputs.append([t.tid for t in sink.operator.tuples()])
        assert outputs[0] == outputs[1] == [1, 2]
        assert reports[0].elements_in == reports[1].elements_in == 5
        assert reports[0].tuples_in == reports[1].tuples_in == 3
        assert reports[0].sps_in == reports[1].sps_in == 2
        assert reports[0].total_drops == reports[1].total_drops == 1


class TestExecutionReportStageLookup:
    def test_stage_lookup_by_name(self):
        plan = PhysicalPlan()
        plan.compile_expr(ScanExpr("s1").shield({"D"}), CollectingSink())
        source = ListSource(SCHEMA, [grant(["D"], 0.0), tup(1, 5, 1.0)])
        report = Executor(plan, [source]).run()
        shield_stage = report.stage("SecurityShield")
        assert shield_stage is not None
        assert shield_stage.tuples_in == 1
        assert report.stage("NoSuchOperator") is None

    def test_stage_index_rebuilt_on_assignment(self):
        plan = PhysicalPlan()
        plan.compile_expr(ScanExpr("s1").shield({"D"}), CollectingSink())
        source = ListSource(SCHEMA, [grant(["D"], 0.0), tup(1, 5, 1.0)])
        report = Executor(plan, [source]).run()
        report.stages = []
        assert report.stage("SecurityShield") is None
