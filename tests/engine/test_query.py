"""Tests for continuous-query objects and auto-shielding."""

import pytest

from repro.algebra.expressions import ScanExpr, ShieldExpr
from repro.engine.query import ContinuousQuery
from repro.errors import QueryError


class TestContinuousQuery:
    def test_auto_shield_added_at_root(self):
        query = ContinuousQuery("q", ScanExpr("s"), roles={"D"})
        assert isinstance(query.expr, ShieldExpr)
        assert query.expr.roles == frozenset({"D"})

    def test_existing_shield_not_doubled(self):
        expr = ScanExpr("s").shield({"D"})
        query = ContinuousQuery("q", expr, roles={"D"})
        assert query.expr is expr

    def test_nested_shield_counts(self):
        expr = ScanExpr("s").shield({"D"}).project(["v"])
        query = ContinuousQuery("q", expr, roles={"D"})
        assert query.expr is expr  # shield anywhere in the tree suffices

    def test_auto_shield_can_be_disabled(self):
        query = ContinuousQuery("q", ScanExpr("s"), roles={"D"},
                                auto_shield=False)
        assert isinstance(query.expr, ScanExpr)

    def test_requires_name_and_roles(self):
        with pytest.raises(QueryError):
            ContinuousQuery("", ScanExpr("s"), roles={"D"})
        with pytest.raises(QueryError):
            ContinuousQuery("q", ScanExpr("s"), roles=set())

    def test_with_expr_preserves_identity(self):
        query = ContinuousQuery("q", ScanExpr("s"), roles={"D"},
                                user_id="alice")
        rewritten = query.with_expr(ScanExpr("other"))
        assert rewritten.name == "q"
        assert rewritten.roles == frozenset({"D"})
        assert rewritten.user_id == "alice"
        assert rewritten.expr == ScanExpr("other")


class TestIntersectCompilation:
    def test_intersect_expr_compiles_and_runs(self):
        from repro.algebra.expressions import IntersectExpr
        from repro.core.punctuation import SecurityPunctuation
        from repro.engine.executor import Executor
        from repro.engine.plan import PhysicalPlan
        from repro.operators.sink import CollectingSink
        from repro.stream.schema import StreamSchema
        from repro.stream.source import ListSource
        from repro.stream.tuples import DataTuple

        expr = IntersectExpr(ScanExpr("a"), ScanExpr("b"), ("v",), 100.0)
        plan = PhysicalPlan()
        sink = plan.compile_expr(expr, CollectingSink())
        source_a = ListSource(StreamSchema("a", ("v",)), [
            SecurityPunctuation.grant(["D"], ts=0.0),
            DataTuple("a", 1, {"v": 7}, 1.0),
        ])
        source_b = ListSource(StreamSchema("b", ("v",)), [
            SecurityPunctuation.grant(["D"], ts=0.0),
            DataTuple("b", 2, {"v": 7}, 2.0),
            DataTuple("b", 3, {"v": 9}, 3.0),
        ])
        Executor(plan, [source_a, source_b]).run()
        values = [t.values["v"] for t in sink.operator.tuples()]
        assert values == [7]
