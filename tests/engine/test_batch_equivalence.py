"""Batched vs element-wise execution equivalence (segment batching).

Property-style suite backing the segment-batched execution engine:
for every plan shape and stream shape exercised here, running the same
workload with ``batching=True`` and ``batching=False`` must produce

* identical ordered result elements per query,
* identical drop counts (whole-plan and per stage),
* identical audit event sequences (with observability on),
* identical security metric counters (shield verdicts,
  denial-by-default drops, segment/sp-batch size distributions) —
  latency histograms may legitimately differ in observation counts
  (one observation per batch vs per element), but decision counting
  must not depend on the execution mode.

Stream shapes cover uniform segments, non-uniform (tuple-scoped)
segments, held-sp release, empty segments, denial-by-default prefixes
and segment lengths from 1 tuple per sp upward.
"""

from dataclasses import asdict

import pytest

from repro.algebra.expressions import ScanExpr
from repro.core.patterns import one_of
from repro.core.punctuation import SecurityPunctuation
from repro.engine.dsms import DSMS
from repro.observability import Observability
from repro.operators.conditions import Comparison
from repro.stream.schema import StreamSchema
from repro.stream.tuples import DataTuple
from repro.workloads.synthetic import SYNTH_SCHEMA, punctuated_stream

SCHEMA = StreamSchema("s1", ("v",))


def run_both(make_dsms, *, observability: bool = True):
    """Run a freshly built DSMS in both modes; return both outcomes."""
    outcomes = {}
    for batching in (False, True):
        dsms = make_dsms(
            Observability.in_memory() if observability
            else Observability.disabled())
        results = dsms.run(batching=batching)
        outcomes[batching] = (results, dsms)
    return outcomes[False], outcomes[True]


def assert_equivalent(plain, batched):
    """The full equivalence contract between the two execution modes."""
    plain_results, plain_dsms = plain
    batched_results, batched_dsms = batched
    assert plain_results.keys() == batched_results.keys()
    for name in plain_results:
        assert (plain_results[name].elements
                == batched_results[name].elements), name
    plain_report = plain_dsms.last_report
    batched_report = batched_dsms.last_report
    assert plain_report.elements_in == batched_report.elements_in
    assert plain_report.tuples_in == batched_report.tuples_in
    assert plain_report.sps_in == batched_report.sps_in
    assert plain_report.total_drops == batched_report.total_drops
    for p_stage, b_stage in zip(plain_report.stages,
                                batched_report.stages):
        assert p_stage.name == b_stage.name
        for counter in ("tuples_in", "tuples_out", "sps_in", "sps_out",
                        "drops", "comparisons"):
            assert getattr(p_stage, counter) == getattr(b_stage, counter), \
                f"{p_stage.name}.{counter}"
    if plain_dsms.audit is not None:
        plain_events = [asdict(e) for e in plain_dsms.audit]
        batched_events = [asdict(e) for e in batched_dsms.audit]
        assert plain_events == batched_events
    if plain_dsms.observability.metrics is not None:
        assert_security_metrics_equivalent(plain_dsms, batched_dsms)


#: Counter families whose per-series totals must match across modes.
_SECURITY_COUNTERS = ("repro_shield_tuples_total",
                      "repro_denial_by_default_drops_total")
#: Histogram families whose full distribution must match across modes
#: (sizes are data-dependent, not timing-dependent).
_SECURITY_HISTOGRAMS = ("repro_segment_size_tuples",
                        "repro_sp_batch_size_sps")


def _counter_series(registry, name):
    family = registry.get(name)
    if family is None:
        return {}
    return {values: child.current() for values, child in family.series()}


def _histogram_series(registry, name):
    family = registry.get(name)
    if family is None:
        return {}
    return {values: (child.count, child.sum, tuple(child.counts))
            for values, child in family.series()}


def assert_security_metrics_equivalent(plain_dsms, batched_dsms):
    """Security decision metrics must not depend on execution mode."""
    plain_reg = plain_dsms.observability.metrics
    batched_reg = batched_dsms.observability.metrics
    for name in _SECURITY_COUNTERS:
        assert _counter_series(plain_reg, name) == \
            _counter_series(batched_reg, name), name
    for name in _SECURITY_HISTOGRAMS:
        assert _histogram_series(plain_reg, name) == \
            _histogram_series(batched_reg, name), name


# -- stream shapes ---------------------------------------------------------

def uniform_stream(seed: int, tuples_per_sp: int, n_tuples: int = 120):
    return list(punctuated_stream(
        n_tuples, tuples_per_sp=tuples_per_sp, policy_size=3,
        accessible_fraction=0.5, seed=seed))


def tuple_scoped_stream(n_segments: int = 12, seg_len: int = 5):
    """Non-uniform segments: per-tuple-id policies within a segment."""
    elements = []
    ts = 0.0
    tid = 0
    for _ in range(n_segments):
        ts += 1.0
        ids = list(range(tid, tid + seg_len))
        evens = [i for i in ids if i % 2 == 0]
        odds = [i for i in ids if i % 2 == 1]
        if evens:
            elements.append(SecurityPunctuation.grant(
                ["D"], ts, tuple_id=one_of(evens)))
        if odds:
            elements.append(SecurityPunctuation.grant(
                ["N"], ts, tuple_id=one_of(odds)))
        for i in ids:
            ts += 1.0
            elements.append(DataTuple("s1", i, {"v": float(i)}, ts))
            tid += 1
    return elements


def held_sp_stream():
    """Segments whose first tuple(s) are dropped: sps release late."""
    elements = []
    ts = 0.0
    tid = 0
    for segment in range(8):
        ts += 1.0
        # Odd tids only: the segment's first tuple never passes the
        # shield, so its sps are held until the first odd tid.
        elements.append(SecurityPunctuation.grant(
            ["D"], ts, tuple_id=one_of([tid + 1, tid + 3])))
        for _ in range(4):
            ts += 1.0
            elements.append(DataTuple("s1", tid, {"v": float(tid)}, ts))
            tid += 1
    return elements


def empty_segment_stream():
    """Consecutive sp-batches with no tuples, plus a no-sp prefix."""
    return [
        # Denial-by-default prefix: tuples before any sp.
        DataTuple("s1", 0, {"v": 0.0}, 1.0),
        DataTuple("s1", 1, {"v": 1.0}, 2.0),
        # Empty segment: immediately overridden policy.
        SecurityPunctuation.grant(["N"], 3.0),
        SecurityPunctuation.grant(["D"], 4.0),
        DataTuple("s1", 2, {"v": 2.0}, 5.0),
        DataTuple("s1", 3, {"v": 3.0}, 6.0),
        # Trailing sp-batch with no tuples at all.
        SecurityPunctuation.grant(["D"], 7.0),
    ]


# -- plan shapes ------------------------------------------------------------

@pytest.mark.parametrize("tuples_per_sp", [1, 3, 10])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_select_shield_uniform(seed, tuples_per_sp):
    elements = uniform_stream(seed, tuples_per_sp)

    def make(observability):
        dsms = DSMS(observability=observability)
        dsms.register_stream(SYNTH_SCHEMA, elements)
        dsms.register_query(
            "q", ScanExpr("synthetic").select(Comparison("x", ">", 400.0)),
            roles={"q_role"})
        return dsms

    assert_equivalent(*run_both(make))
    assert_equivalent(*run_both(make, observability=False))


@pytest.mark.parametrize("stream_builder",
                         [tuple_scoped_stream, held_sp_stream,
                          empty_segment_stream])
def test_shield_non_uniform_and_edges(stream_builder):
    elements = stream_builder()

    def make(observability):
        dsms = DSMS(observability=observability)
        dsms.register_stream(SCHEMA, elements)
        dsms.register_query("q", ScanExpr("s1"), roles={"D"})
        return dsms

    assert_equivalent(*run_both(make))
    assert_equivalent(*run_both(make, observability=False))


@pytest.mark.parametrize("seed", [0, 7])
def test_project_dupelim_plan(seed):
    elements = uniform_stream(seed, 5, n_tuples=100)

    def make(observability):
        dsms = DSMS(observability=observability)
        dsms.register_stream(SYNTH_SCHEMA, elements)
        expr = (ScanExpr("synthetic")
                .project(["object_id", "x"])
                .distinct(50.0, ["object_id"]))
        dsms.register_query("q", expr, roles={"q_role"})
        return dsms

    assert_equivalent(*run_both(make))
    assert_equivalent(*run_both(make, observability=False))


def test_dupelim_suppression_equivalence():
    """Duplicate values across overlapping policies, both modes."""
    elements = []
    ts = 0.0
    for segment in range(10):
        ts += 1.0
        roles = ["D"] if segment % 3 else ["D", "N"]
        elements.append(SecurityPunctuation.grant(roles, ts))
        for k in range(4):
            ts += 1.0
            elements.append(DataTuple(
                "s1", segment * 4 + k, {"v": float(k % 2)}, ts))

    def make(observability):
        dsms = DSMS(observability=observability)
        dsms.register_stream(SCHEMA, elements)
        dsms.register_query(
            "q", ScanExpr("s1").distinct(100.0, ["v"]), roles={"D"})
        return dsms

    assert_equivalent(*run_both(make))
    assert_equivalent(*run_both(make, observability=False))


@pytest.mark.parametrize("seed", [0, 3])
def test_groupby_plan(seed):
    elements = uniform_stream(seed, 4, n_tuples=80)

    def make(observability):
        dsms = DSMS(observability=observability)
        dsms.register_stream(SYNTH_SCHEMA, elements)
        expr = ScanExpr("synthetic").group_by(
            None, "sum", "x", window=40.0)
        dsms.register_query("q", expr, roles={"q_role"})
        return dsms

    assert_equivalent(*run_both(make))
    assert_equivalent(*run_both(make, observability=False))


@pytest.mark.parametrize("variant", ["nl", "index"])
def test_join_plan(variant):
    left_schema = StreamSchema("left", ("k", "a"))
    right_schema = StreamSchema("right", ("k", "b"))
    left, right = [], []
    ts = 0.0
    for segment in range(6):
        ts += 1.0
        left.append(SecurityPunctuation.grant(["D"], ts, provider="l"))
        right.append(SecurityPunctuation.grant(
            ["D"] if segment % 2 else ["N"], ts + 0.25, provider="r"))
        for k in range(3):
            ts += 1.0
            tid = segment * 3 + k
            left.append(DataTuple("left", tid, {"k": k, "a": tid}, ts))
            right.append(DataTuple(
                "right", tid, {"k": k, "b": tid}, ts + 0.25))

    def make(observability):
        dsms = DSMS(observability=observability)
        dsms.register_stream(left_schema, left)
        dsms.register_stream(right_schema, right)
        expr = ScanExpr("left").join(ScanExpr("right"), "k", "k", 30.0,
                                     variant=variant)
        dsms.register_query("q", expr, roles={"D"})
        return dsms

    assert_equivalent(*run_both(make))
    assert_equivalent(*run_both(make, observability=False))


def test_multi_query_shared_plan():
    """Fan-out: one shared subplan feeding several query shields."""
    elements = uniform_stream(5, 10, n_tuples=150)

    def make(observability):
        dsms = DSMS(observability=observability)
        dsms.register_stream(SYNTH_SCHEMA, elements)
        base = ScanExpr("synthetic").select(Comparison("x", ">", 200.0))
        for index in range(3):
            dsms.register_query(f"q{index}", base,
                                roles={f"r{index + 1}", "q_role"})
        return dsms

    assert_equivalent(*run_both(make))
    assert_equivalent(*run_both(make, observability=False))
