"""Tests for the DSMS facade: streams, queries, runs, runtime changes."""

import pytest

from repro.access.rbac import RBACModel
from repro.algebra.expressions import ScanExpr
from repro.core.punctuation import SecurityPunctuation
from repro.engine.api import OptimizeLevel
from repro.engine.dsms import DSMS
from repro.errors import QueryError, StreamError
from repro.operators.conditions import Comparison
from repro.stream.schema import StreamSchema
from repro.stream.tuples import DataTuple

SCHEMA = StreamSchema("hr", ("patient", "bpm"), key="patient")


def grant(roles, ts, **kwargs):
    return SecurityPunctuation.grant(roles, ts, provider="p1", **kwargs)


def reading(patient, bpm, ts):
    return DataTuple("hr", patient, {"patient": patient, "bpm": bpm}, ts)


def basic_elements():
    return [
        grant(["D", "ND"], 0.0),
        reading(1, 72, 1.0),
        reading(2, 95, 2.0),
        grant(["C"], 3.0),
        reading(3, 99, 4.0),
    ]


class TestRegistration:
    def test_duplicate_stream_rejected(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA, [])
        with pytest.raises(StreamError):
            dsms.register_stream(SCHEMA, [])

    def test_duplicate_query_rejected(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA, [])
        dsms.register_query("q", ScanExpr("hr"), roles={"D"})
        with pytest.raises(QueryError):
            dsms.register_query("q", ScanExpr("hr"), roles={"D"})

    def test_query_requires_roles_or_user(self):
        dsms = DSMS()
        with pytest.raises(QueryError):
            dsms.register_query("q", ScanExpr("hr"))

    def test_run_without_queries_rejected(self):
        dsms = DSMS()
        with pytest.raises(QueryError):
            dsms.run()


class TestEnforcement:
    def test_roles_see_only_their_segments(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA, basic_elements())
        dsms.register_query("doc", ScanExpr("hr"), roles={"D"})
        dsms.register_query("cardio", ScanExpr("hr"), roles={"C"})
        results = dsms.run()
        assert [t.tid for t in results["doc"].tuples] == [1, 2]
        assert [t.tid for t in results["cardio"].tuples] == [3]

    def test_selection_composes_with_enforcement(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA, basic_elements())
        expr = ScanExpr("hr").select(Comparison("bpm", ">", 80))
        dsms.register_query("q", expr, roles={"D"})
        results = dsms.run()
        assert [t.tid for t in results["q"].tuples] == [2]

    def test_optimized_run_same_results(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA, basic_elements())
        expr = ScanExpr("hr").select(Comparison("bpm", ">", 80))
        dsms.register_query("q", expr, roles={"D"})
        plain = dsms.run()["q"].tuples
        optimized = dsms.run(optimize=OptimizeLevel.PER_QUERY)["q"].tuples
        assert [t.tid for t in plain] == [t.tid for t in optimized]

    def test_server_policy_refines(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA, basic_elements())
        # Server allows only C globally: D/ND segments become empty.
        dsms.add_server_policy(SecurityPunctuation.grant(["C"], ts=0.0))
        dsms.register_query("doc", ScanExpr("hr"), roles={"D"})
        dsms.register_query("cardio", ScanExpr("hr"), roles={"C"})
        results = dsms.run()
        assert results["doc"].tuples == []
        assert [t.tid for t in results["cardio"].tuples] == [3]

    def test_results_include_sps(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA, basic_elements())
        dsms.register_query("doc", ScanExpr("hr"), roles={"D"})
        result = dsms.run()["doc"]
        assert len(result.sps) >= 1


class TestRBACIntegration:
    def _dsms(self):
        rbac = RBACModel()
        rbac.add_role("D")
        rbac.add_role("C")
        rbac.add_user("alice")
        rbac.assign_role("alice", "D")
        dsms = DSMS(rbac=rbac)
        dsms.register_stream(SCHEMA, basic_elements())
        return dsms, rbac

    def test_query_inherits_user_roles(self):
        dsms, _ = self._dsms()
        query = dsms.register_query("q", ScanExpr("hr"), user_id="alice")
        assert query.roles == frozenset({"D"})

    def test_registration_locks_user(self):
        dsms, rbac = self._dsms()
        dsms.register_query("q", ScanExpr("hr"), user_id="alice")
        assert rbac.is_locked("alice")
        dsms.deregister_query("q")
        assert not rbac.is_locked("alice")

    def test_session_roles_preferred(self):
        dsms, rbac = self._dsms()
        rbac.assign_role("alice", "C")
        rbac.sign_in("alice", frozenset({"C"}))
        query = dsms.register_query("q", ScanExpr("hr"), user_id="alice")
        assert query.roles == frozenset({"C"})


class TestRuntimeRoleChange:
    def test_update_query_roles_changes_results(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA, basic_elements())
        dsms.register_query("q", ScanExpr("hr"), roles={"D"})
        assert [t.tid for t in dsms.run()["q"].tuples] == [1, 2]
        dsms.update_query_roles("q", {"C"})
        assert [t.tid for t in dsms.run()["q"].tuples] == [3]

    def test_update_requires_nonempty(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA, [])
        dsms.register_query("q", ScanExpr("hr"), roles={"D"})
        with pytest.raises(QueryError):
            dsms.update_query_roles("q", set())

    def test_update_unknown_query(self):
        dsms = DSMS()
        with pytest.raises(QueryError):
            dsms.update_query_roles("ghost", {"D"})

    def test_live_shield_updated_in_place(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA, basic_elements())
        dsms.register_query("q", ScanExpr("hr"), roles={"D"})
        plan, sinks = dsms.build_plan()
        dsms.update_query_roles("q", {"C"})
        shields = dsms.shields("q")
        assert shields
        assert shields[0].predicate.names() == frozenset({"C"})


class TestImmutablePolicies:
    def test_immutable_provider_sp_defeats_server_refinement(self):
        dsms = DSMS()
        elements = [
            SecurityPunctuation.grant(["D"], ts=0.0, provider="p1",
                                      immutable=True),
            reading(1, 72, 1.0),
            SecurityPunctuation.grant(["D"], ts=2.0, provider="p1"),
            reading(2, 80, 3.0),
        ]
        dsms.register_stream(SCHEMA, elements)
        # The server tries to restrict everything to C.
        dsms.add_server_policy(SecurityPunctuation.grant(["C"], ts=0.0))
        dsms.register_query("doc", ScanExpr("hr"), roles={"D"})
        results = dsms.run()
        # The immutable sp survives the server policy; the mutable one
        # is refined to nothing.
        assert [t.tid for t in results["doc"].tuples] == [1]
