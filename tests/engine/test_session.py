"""Tests for the online streaming session API."""

import pytest

from repro.algebra.expressions import ScanExpr
from repro.core.punctuation import SecurityPunctuation
from repro.engine.dsms import DSMS
from repro.errors import QueryError, StreamError
from repro.operators.conditions import Comparison
from repro.stream.schema import StreamSchema
from repro.stream.tuples import DataTuple

SCHEMA = StreamSchema("s", ("v",))


def grant(roles, ts):
    return SecurityPunctuation.grant(roles, ts, provider="p")


def tup(tid, ts):
    return DataTuple("s", tid, {"v": tid}, ts)


@pytest.fixture
def dsms():
    instance = DSMS()
    instance.register_stream(SCHEMA)  # no pre-materialized source
    instance.register_query("q", ScanExpr("s"), roles={"D"})
    return instance


class TestPushPull:
    def test_results_arrive_per_push(self, dsms):
        with dsms.open_session() as session:
            assert session.push("s", grant(["D"], 0.0)) == {"q": []}
            out = session.push("s", tup(1, 1.0))
            tids = [e.tid for e in out["q"] if isinstance(e, DataTuple)]
            assert tids == [1]

    def test_policy_change_effective_immediately(self, dsms):
        with dsms.open_session() as session:
            session.push("s", grant(["D"], 0.0))
            assert session.push("s", tup(1, 1.0))["q"]
            session.push("s", grant(["C"], 2.0))
            assert session.push("s", tup(2, 3.0))["q"] == []
            session.push("s", grant(["D"], 4.0))
            assert session.push("s", tup(3, 5.0))["q"]
            assert [t.tid for t in session.results("q")] == [1, 3]

    def test_sp_batch_buffered_until_released(self, dsms):
        """Two same-ts sps are one batch: union takes effect together."""
        with dsms.open_session() as session:
            session.push("s", grant(["X"], 0.0))
            session.push("s", grant(["D"], 0.0))
            out = session.push("s", tup(1, 1.0))
            assert [e.tid for e in out["q"]
                    if isinstance(e, DataTuple)] == [1]

    def test_push_many(self, dsms):
        session = dsms.open_session()
        out = session.push_many("s", [grant(["D"], 0.0), tup(1, 1.0),
                                      tup(2, 2.0)])
        assert len([e for e in out["q"]
                    if isinstance(e, DataTuple)]) == 2

    def test_server_policy_applies_to_pushed_sps(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA)
        dsms.add_server_policy(SecurityPunctuation.grant(["C"], ts=0.0))
        dsms.register_query("q", ScanExpr("s"), roles={"D"})
        with dsms.open_session() as session:
            session.push("s", grant(["D"], 0.0))  # refined to ∅ → dropped
            assert session.push("s", tup(1, 1.0))["q"] == []


class TestSubscriptions:
    def test_callback_receives_results(self, dsms):
        got = []
        with dsms.open_session() as session:
            session.subscribe("q", got.append)
            session.push("s", grant(["D"], 0.0))
            session.push("s", tup(1, 1.0))
        tids = [e.tid for e in got if isinstance(e, DataTuple)]
        assert tids == [1]

    def test_unknown_query_rejected(self, dsms):
        session = dsms.open_session()
        with pytest.raises(QueryError):
            session.subscribe("ghost", lambda e: None)
        with pytest.raises(QueryError):
            session.results("ghost")


class TestLifecycle:
    def test_out_of_order_push_rejected(self, dsms):
        session = dsms.open_session()
        session.push("s", tup(1, 5.0))
        with pytest.raises(StreamError):
            session.push("s", tup(2, 4.0))

    def test_unknown_stream_rejected(self, dsms):
        session = dsms.open_session()
        with pytest.raises(StreamError):
            session.push("nope", tup(1, 1.0))

    def test_closed_session_rejects_pushes(self, dsms):
        session = dsms.open_session()
        session.close()
        with pytest.raises(StreamError):
            session.push("s", tup(1, 1.0))

    def test_close_flushes_select_state(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA)
        dsms.register_query(
            "q", ScanExpr("s").select(Comparison("v", ">", 0)),
            roles={"D"})
        session = dsms.open_session()
        session.push("s", grant(["D"], 0.0))
        session.push("s", tup(1, 1.0))
        final = session.close()
        total = session.results("q")
        assert [t.tid for t in total] == [1]
        assert isinstance(final, dict)

    def test_counts(self, dsms):
        session = dsms.open_session()
        session.push("s", grant(["D"], 0.0))
        session.push("s", tup(1, 1.0))
        assert session.elements_pushed == 2
