"""Columnar (fused) vs batched vs element-wise execution equivalence.

The columnar tier extends the segment-batched engine with fused
shield/select/project chains over :class:`ColumnBatch` layouts.  The
equivalence contract is the same one ``test_batch_equivalence``
enforces between element-wise and batched execution — identical
ordered result elements, per-stage counter totals, security metric
series — now across all three modes, with the fusion row threshold
forced to 1 so the columnar kernels actually execute on the short
segments these shapes use.

Also covers fusion *detection*: which plan prefixes qualify, and which
are broken by fan-out, audit, or non-fusable operators.
"""

import pytest

from repro.algebra.expressions import ScanExpr
from repro.engine import fusion
from repro.engine.dsms import DSMS
from repro.engine.fusion import FusedChain, build_fused_chains
from repro.engine.plan import PhysicalPlan
from repro.observability import Observability
from repro.operators.conditions import Comparison, FuncCondition
from repro.operators.project import Project
from repro.operators.select import Select
from repro.operators.shield import SecurityShield
from repro.operators.sink import CollectingSink
from repro.workloads.synthetic import SYNTH_SCHEMA, punctuated_stream

from tests.engine.test_batch_equivalence import (
    SCHEMA, assert_equivalent, empty_segment_stream, held_sp_stream,
    tuple_scoped_stream, uniform_stream)


@pytest.fixture(autouse=True)
def force_fusion(monkeypatch):
    """Engage the columnar kernels regardless of segment length."""
    monkeypatch.setattr(fusion, "MIN_FUSED_ROWS", 1)


def run_three(make_dsms, *, observability: bool = True):
    """Run a fresh DSMS element-wise, batched and columnar."""
    outcomes = {}
    for mode, batching, columnar in (("elementwise", False, False),
                                     ("batched", True, False),
                                     ("columnar", True, True)):
        dsms = make_dsms(
            Observability.in_memory() if observability
            else Observability.disabled())
        results = dsms.run(batching=batching, columnar=columnar)
        outcomes[mode] = (results, dsms)
    return outcomes


def assert_all_equivalent(make_dsms, *, observability: bool = True):
    outcomes = run_three(make_dsms, observability=observability)
    assert_equivalent(outcomes["elementwise"], outcomes["batched"])
    assert_equivalent(outcomes["elementwise"], outcomes["columnar"])


# -- execution equivalence ---------------------------------------------------

@pytest.mark.parametrize("tuples_per_sp", [1, 3, 10, 40])
@pytest.mark.parametrize("seed", [0, 1])
def test_select_shield_uniform(seed, tuples_per_sp):
    elements = uniform_stream(seed, tuples_per_sp)

    def make(observability):
        dsms = DSMS(observability=observability)
        dsms.register_stream(SYNTH_SCHEMA, elements)
        dsms.register_query(
            "q", ScanExpr("synthetic").select(Comparison("x", ">", 400.0)),
            roles={"q_role"})
        return dsms

    assert_all_equivalent(make)
    assert_all_equivalent(make, observability=False)


@pytest.mark.parametrize("stream_builder",
                         [tuple_scoped_stream, held_sp_stream,
                          empty_segment_stream])
def test_shield_non_uniform_and_edges(stream_builder):
    elements = stream_builder()

    def make(observability):
        dsms = DSMS(observability=observability)
        dsms.register_stream(SCHEMA, elements)
        dsms.register_query("q", ScanExpr("s1"), roles={"D"})
        return dsms

    assert_all_equivalent(make)
    assert_all_equivalent(make, observability=False)


def test_select_project_shield_chain():
    """A 3-deep fused chain (σ → π → delivery ψ) with dirty rows."""
    elements = uniform_stream(3, 8, n_tuples=160)

    def make(observability):
        dsms = DSMS(observability=observability)
        dsms.register_stream(SYNTH_SCHEMA, elements)
        expr = (ScanExpr("synthetic")
                .select(Comparison("x", ">", 200.0))
                .project(["object_id", "x"]))
        dsms.register_query("q", expr, roles={"q_role"})
        return dsms

    assert_all_equivalent(make)
    assert_all_equivalent(make, observability=False)


def test_opaque_condition_chain():
    """Opaque FuncCondition conjunct: call-order-preserving row stage."""
    elements = uniform_stream(5, 10, n_tuples=120)

    def make(observability):
        dsms = DSMS(observability=observability)
        dsms.register_stream(SYNTH_SCHEMA, elements)
        cond = FuncCondition(lambda t: t.values["x"] > 300.0, ["x"])
        dsms.register_query("q", ScanExpr("synthetic").select(cond),
                            roles={"q_role"})
        return dsms

    assert_all_equivalent(make)
    assert_all_equivalent(make, observability=False)


def test_multi_query_shared_plan_fanout():
    """Fan-out from a shared subplan: fusion must stop at the fork."""
    elements = uniform_stream(7, 10, n_tuples=150)

    def make(observability):
        dsms = DSMS(observability=observability)
        dsms.register_stream(SYNTH_SCHEMA, elements)
        base = ScanExpr("synthetic").select(Comparison("x", ">", 200.0))
        for index in range(3):
            dsms.register_query(f"q{index}", base,
                                roles={f"r{index + 1}", "q_role"})
        return dsms

    assert_all_equivalent(make)
    assert_all_equivalent(make, observability=False)


def test_production_threshold_equivalence():
    """Mixed regime: runs straddling MIN_FUSED_ROWS at its real value."""
    import repro.engine.fusion as fusion_mod
    fusion_mod.MIN_FUSED_ROWS = 32  # undo the autouse fixture
    elements = list(punctuated_stream(
        2000, tuples_per_sp=50, policy_size=3,
        accessible_fraction=0.5, seed=13))

    def make(observability):
        dsms = DSMS(observability=observability)
        dsms.register_stream(SYNTH_SCHEMA, elements)
        dsms.register_query(
            "q", ScanExpr("synthetic").select(Comparison("x", ">", 300.0)),
            roles={"q_role"})
        return dsms

    assert_all_equivalent(make)


# -- fusion detection --------------------------------------------------------

def _linear_plan(*operators):
    plan = PhysicalPlan()
    nodes = [plan.add(op) for op in operators]
    for a, b in zip(nodes, nodes[1:]):
        plan.connect(a, b)
    plan.connect_source("s1", nodes[0])
    return plan, nodes


class TestFusionDetection:
    def test_linear_chain_is_fused(self):
        plan, nodes = _linear_plan(
            Select(Comparison("v", ">", 0)),
            SecurityShield(["D"]),
            Project(["v"]),
            CollectingSink())
        chains = build_fused_chains(plan)
        assert set(chains) == {nodes[0].node_id}
        chain = chains[nodes[0].node_id]
        assert isinstance(chain, FusedChain)
        assert len(chain) == 3
        assert chain.tail is nodes[2]

    def test_single_operator_is_not_fused(self):
        plan, _ = _linear_plan(Select(Comparison("v", ">", 0)),
                               CollectingSink())
        assert build_fused_chains(plan) == {}

    def test_fanout_breaks_chain(self):
        plan = PhysicalPlan()
        select = plan.add(Select(Comparison("v", ">", 0)))
        shield_a = plan.add(SecurityShield(["D"]))
        shield_b = plan.add(SecurityShield(["N"]))
        sink_a = plan.add(CollectingSink())
        sink_b = plan.add(CollectingSink())
        plan.connect(select, shield_a)
        plan.connect(select, shield_b)
        plan.connect(shield_a, sink_a)
        plan.connect(shield_b, sink_b)
        plan.connect_source("s1", select)
        # The select fans out: no chain may swallow it or cross it.
        assert build_fused_chains(plan) == {}

    def test_audit_disables_fusion(self):
        plan, nodes = _linear_plan(
            Select(Comparison("v", ">", 0)),
            SecurityShield(["D"]),
            CollectingSink())
        # Any attached audit log removes the operator from fusion (the
        # fused kernels do not replay per-tuple audit interleavings).
        nodes[1].operator.audit = object()
        assert build_fused_chains(plan) == {}

    def test_dsms_plan_produces_fused_chain(self):
        """The standard DSMS pipeline (σ → π → delivery ψ) fuses."""
        dsms = DSMS()
        dsms.register_stream(SYNTH_SCHEMA, [])
        expr = (ScanExpr("synthetic")
                .select(Comparison("x", ">", 100.0))
                .project(["object_id", "x"]))
        dsms.register_query("q", expr, roles={"q_role"})
        plan, _ = dsms.build_plan()
        chains = build_fused_chains(plan)
        assert chains, "expected the σ→π→ψ→delivery-ψ chain to fuse"
        (chain,) = chains.values()
        names = [type(op).__name__ for op in chain.operators]
        # auto_shield adds the query's root shield; the delivery shield
        # is always last.
        assert names == ["Select", "Project", "SecurityShield",
                         "SecurityShield"]
        assert chain.operators[-1].name == "delivery:q"
