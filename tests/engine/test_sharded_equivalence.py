"""Sharded vs single-process execution equivalence.

``DSMS.run(shards=N)`` must be observably identical to ``run()`` for
every composition it claims: stateless (worker-local) queries, split
stateful queries (joins), multi-query workloads, every optimizer
level, the columnar tier, and audited runs — same delivered elements,
same drop totals, plus the sharded extras (shard-labelled stages and
audit events, the ``shard_timing`` breakdown).
"""

import random

import pytest

from repro.algebra.expressions import ScanExpr
from repro.core.punctuation import SecurityPunctuation
from repro.engine.api import OptimizeLevel
from repro.engine.dsms import DSMS
from repro.engine.sharded import split_workload
from repro.errors import QueryError, ShardExecutionError
from repro.observability import Observability
from repro.operators.conditions import Comparison
from repro.stream.schema import StreamSchema
from repro.stream.tuples import DataTuple

ROLES = [("analyst",), ("admin",), ("analyst", "admin"), ("other",)]


def punctuated(sid, seed, segments=18):
    rng = random.Random(f"sharded-eq:{sid}:{seed}")
    elements = []
    ts = 0.0
    tid = 0
    for _ in range(segments):
        ts += rng.uniform(0.5, 2.0)
        elements.append(SecurityPunctuation.grant(rng.choice(ROLES), ts))
        for _ in range(rng.randrange(0, 5)):
            ts += rng.uniform(0.1, 0.4)
            tid += 1
            elements.append(DataTuple(
                sid, f"{sid}-{tid}", {"k": tid % 4, "x": tid * 3}, ts))
    return elements


def build_dsms(seed, *, observability=None, join=True):
    dsms = DSMS(observability=observability)
    dsms.register_stream(StreamSchema("s1", ("k", "x")),
                         punctuated("s1", seed))
    dsms.register_stream(StreamSchema("s2", ("k", "x")),
                         punctuated("s2", seed + 1))
    dsms.register_query("q_sel",
                        ScanExpr("s1").select(Comparison("x", ">", 9)),
                        roles={"analyst"})
    if join:
        dsms.register_query(
            "q_join",
            ScanExpr("s1").join(ScanExpr("s2"), left_on="k",
                                right_on="k", window=4.0),
            roles={"admin"})
    return dsms


def delivered(results):
    return {name: [(t.sid, t.tid, dict(t.values), t.ts)
                   for t in res.tuples]
            for name, res in results.items()}


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_local_and_split_queries_match(seed, n_shards):
    base_dsms = build_dsms(seed)
    base = delivered(base_dsms.run())
    dsms = build_dsms(seed)
    got = delivered(dsms.run(shards=n_shards))
    assert got == base
    # Drop totals are preserved exactly: shard-local stage counters
    # plus the coordinator suffix sum to the single-process totals.
    assert (dsms.last_report.total_drops
            == base_dsms.last_report.total_drops)
    assert dsms.last_report.elements_in == base_dsms.last_report.elements_in


@pytest.mark.parametrize("level", [OptimizeLevel.NONE,
                                   OptimizeLevel.PER_QUERY,
                                   OptimizeLevel.WORKLOAD])
def test_optimize_levels_match(level):
    base = delivered(build_dsms(3).run(optimize=level))
    got = delivered(build_dsms(3).run(optimize=level, shards=2))
    assert got == base


def test_columnar_tier_composes():
    from repro.engine import fusion

    saved = fusion.MIN_FUSED_ROWS
    fusion.MIN_FUSED_ROWS = 1
    try:
        base = delivered(build_dsms(4).run(columnar=True))
        got = delivered(build_dsms(4).run(columnar=True, shards=2))
    finally:
        fusion.MIN_FUSED_ROWS = saved
    assert got == base


def test_stage_stats_carry_shard_labels():
    dsms = build_dsms(5)
    dsms.run(shards=2)
    names = [stage.name for stage in dsms.last_report.stages]
    assert any(name.startswith("shard0/") for name in names)
    assert any(name.startswith("shard1/") for name in names)
    # The stateful suffix runs unprefixed in the coordinator.
    assert any(name.startswith("delivery:q_join")
               or "join" in name
               for name in names if "/" not in name)


def test_shard_timing_breakdown():
    dsms = build_dsms(6)
    dsms.run(shards=2)
    timing = dsms.last_report.shard_timing
    assert timing is not None
    assert timing["n_shards"] == 2
    assert len(timing["worker_cpu_seconds"]) == 2
    assert timing["critical_path_seconds"] >= (
        timing["partition_seconds"] + timing["merge_seconds"])
    assert timing["elements_in"] == dsms.last_report.elements_in
    # Single-process runs carry no shard timing.
    base = build_dsms(6)
    base.run()
    assert base.last_report.shard_timing is None


def test_audit_events_match_and_carry_shard_labels():
    base_dsms = build_dsms(7, observability=Observability.in_memory())
    base = delivered(base_dsms.run())
    dsms = build_dsms(7, observability=Observability.in_memory())
    got = delivered(dsms.run(shards=2))
    assert got == base

    def drop_counts(audit):
        counts = {}
        for event in audit.events(kind="shield.drop"):
            counts[event.operator] = counts.get(event.operator, 0) + 1
        return counts

    assert drop_counts(dsms.audit) == drop_counts(base_dsms.audit)
    shard_labels = {event.detail.get("shard")
                    for event in dsms.audit.events()
                    if "shard" in event.detail}
    assert shard_labels <= {0, 1}
    assert shard_labels  # worker events did flow through with labels


def test_tracing_tier_composes_with_shard_attrs():
    dsms = build_dsms(8, observability=Observability.with_tracing(
        sample=1.0))
    base = delivered(build_dsms(8).run())
    got = delivered(dsms.run(shards=2))
    assert got == base
    tracer = dsms.observability.tracer
    shard_attrs = {event.attrs.get("shard")
                   for event in tracer.events()
                   if "shard" in event.attrs}
    assert shard_attrs & {0, 1}


def test_incremental_sp_stream_still_matches():
    # Incremental sps pin their stream to one shard; results must be
    # unchanged even though parallelism degrades.
    def build():
        dsms = DSMS()
        elements = punctuated("s1", 11)
        sps = [i for i, e in enumerate(elements)
               if isinstance(e, SecurityPunctuation)]
        patch_at = sps[len(sps) // 2]
        patched = elements[patch_at]
        elements[patch_at] = SecurityPunctuation.grant(
            ("extra",), patched.ts, incremental=True)
        dsms.register_stream(StreamSchema("s1", ("k", "x")), elements)
        dsms.register_query(
            "q", ScanExpr("s1").select(Comparison("x", ">", 0)),
            roles={"analyst", "extra"})
        return dsms

    base = delivered(build().run())
    for n_shards in (2, 4):
        assert delivered(build().run(shards=n_shards)) == base


def test_split_workload_classification():
    sel = ScanExpr("s1").select(Comparison("x", ">", 1))
    join = ScanExpr("s1").join(ScanExpr("s2"), left_on="k",
                               right_on="k", window=1.0)
    local, split, registry = split_workload(
        {"a": sel, "b": join},
        {"a": frozenset({"r"}), "b": frozenset({"r"})})
    assert [name for name, _, _ in local] == ["a"]
    assert set(split) == {"b"}
    # The join's two scan legs become two virtual prefix units.
    assert len(registry.ordered) == 2
    assert all(vsid.startswith("__part.") for vsid, _, _ in registry.ordered)


def test_shared_stateless_prefix_is_deduped():
    # Two split queries over the same stateless subtree share one unit.
    left = ScanExpr("s1").select(Comparison("x", ">", 1))
    j1 = left.join(ScanExpr("s2"), left_on="k", right_on="k", window=1.0)
    j2 = left.join(ScanExpr("s3"), left_on="k", right_on="k", window=2.0)
    _, split, registry = split_workload(
        {"a": j1, "b": j2},
        {"a": frozenset({"r"}), "b": frozenset({"r"})})
    assert set(split) == {"a", "b"}
    sources = [source for _, _, source in registry.ordered]
    assert sources.count("s1") == 1  # the shared prefix interned once


def test_invalid_shard_counts_rejected():
    dsms = build_dsms(9)
    with pytest.raises(ValueError):
        dsms.run(shards=0)
    empty = DSMS()
    with pytest.raises(QueryError):
        empty.run(shards=2)


def test_worker_crash_fails_closed():
    from repro.engine.sharded import run_sharded

    dsms = build_dsms(10, observability=Observability.in_memory())
    with pytest.raises(ShardExecutionError):
        run_sharded(dsms, n_shards=2, faults={1: "crash"})
    alerts = dsms.observability.tracer.events("health.alert")
    assert alerts and alerts[0].attrs["severity"] == "critical"
