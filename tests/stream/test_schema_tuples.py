"""Tests for stream schemas and data tuples."""

import pytest

from repro.errors import SchemaError, StreamError
from repro.stream.schema import StreamSchema
from repro.stream.stream import Stream
from repro.stream.tuples import DataTuple
from repro.core.punctuation import SecurityPunctuation


class TestSchema:
    def test_attributes_and_key(self):
        schema = StreamSchema("s", ("a", "b"), key="a")
        assert schema.attributes == ("a", "b")
        assert schema.key == "a"
        assert "a" in schema and "c" not in schema
        assert len(schema) == 2

    def test_position(self):
        schema = StreamSchema("s", ("a", "b"))
        assert schema.position("b") == 1
        with pytest.raises(SchemaError):
            schema.position("zzz")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            StreamSchema("s", ("a", "a"))

    def test_key_must_be_attribute(self):
        with pytest.raises(SchemaError):
            StreamSchema("s", ("a",), key="b")

    def test_validate(self):
        schema = StreamSchema("s", ("a", "b"))
        schema.validate({"a": 1, "b": 2})
        with pytest.raises(SchemaError):
            schema.validate({"a": 1})
        with pytest.raises(SchemaError):
            schema.validate({"a": 1, "b": 2, "c": 3})

    def test_project(self):
        schema = StreamSchema("s", ("a", "b", "c"), key="a")
        projected = schema.project(["c", "a"])
        assert projected.attributes == ("a", "c")  # schema order kept
        assert projected.key == "a"
        dropped_key = schema.project(["b"])
        assert dropped_key.key is None

    def test_project_unknown_rejected(self):
        with pytest.raises(SchemaError):
            StreamSchema("s", ("a",)).project(["b"])

    def test_join_prefixes_clashes(self):
        left = StreamSchema("l", ("k", "x"))
        right = StreamSchema("r", ("k", "y"))
        joined = left.join(right, "out")
        assert joined.attributes == ("k", "x", "r.k", "y")


class TestDataTuple:
    def test_field_access(self):
        t = DataTuple("s", 1, {"a": 10, "b": 20}, 5.0)
        assert t["a"] == 10
        assert t.get("missing", -1) == -1
        assert "b" in t
        assert t.attributes() == ("a", "b")

    def test_project_keeps_identity(self):
        t = DataTuple("s", 1, {"a": 10, "b": 20}, 5.0)
        p = t.project(["a"])
        assert p.values == {"a": 10}
        assert (p.sid, p.tid, p.ts) == ("s", 1, 5.0)

    def test_merge_joins_values(self):
        left = DataTuple("l", 1, {"k": 7, "x": 1}, 1.0)
        right = DataTuple("r", 2, {"k": 7, "y": 2}, 3.0)
        merged = left.merge(right, "out")
        assert merged.sid == "out"
        assert merged.tid == (1, 2)
        assert merged.ts == 3.0  # max of inputs
        assert merged.values == {"k": 7, "x": 1, "r.k": 7, "y": 2}

    def test_equality_and_hash(self):
        a = DataTuple("s", 1, {"v": 1}, 1.0)
        b = DataTuple("s", 1, {"v": 1}, 1.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != DataTuple("s", 1, {"v": 2}, 1.0)


class TestStreamContainer:
    def test_schema_enforced(self):
        stream = Stream(StreamSchema("s", ("a",)))
        stream.append(DataTuple("s", 1, {"a": 1}, 1.0))
        with pytest.raises(StreamError):
            stream.append(DataTuple("other", 1, {"a": 1}, 1.0))
        with pytest.raises(SchemaError):
            stream.append(DataTuple("s", 1, {"wrong": 1}, 1.0))

    def test_sps_always_allowed(self):
        stream = Stream(StreamSchema("s", ("a",)))
        stream.append(SecurityPunctuation.grant(["D"], ts=0.0))
        assert stream.sp_count() == 1

    def test_counts_and_access(self):
        stream = Stream(StreamSchema("s", ("a",)), [
            SecurityPunctuation.grant(["D"], ts=0.0),
            DataTuple("s", 1, {"a": 1}, 1.0),
            DataTuple("s", 2, {"a": 2}, 2.0),
        ])
        assert stream.tuple_count() == 2
        assert stream.sp_count() == 1
        assert len(stream) == 3
        assert stream[1].tid == 1
        assert [t.tid for t in stream.tuples()] == [1, 2]

    def test_unvalidated_mode(self):
        stream = Stream(StreamSchema("s", ("a",)), validate=False)
        stream.append(DataTuple("whatever", 1, {"x": 1}, 1.0))
        assert stream.tuple_count() == 1
