"""Tests for ordering utilities, element helpers and sources."""

import pytest

from repro.core.punctuation import SecurityPunctuation
from repro.errors import OutOfOrderError
from repro.stream.element import (count_elements, is_punctuation, is_tuple,
                                  iter_sps, iter_tuples, split_elements)
from repro.stream.ordering import ReorderBuffer, ensure_ordered, reorder
from repro.stream.schema import StreamSchema
from repro.stream.source import CallbackSource, ListSource, merge_sources
from repro.stream.tuples import DataTuple


def tup(tid, ts, sid="s"):
    return DataTuple(sid, tid, {"v": tid}, ts)


def sp(ts):
    return SecurityPunctuation.grant(["D"], ts)


class TestElementHelpers:
    def test_type_predicates(self):
        assert is_punctuation(sp(1.0))
        assert not is_punctuation(tup(1, 1.0))
        assert is_tuple(tup(1, 1.0))
        assert not is_tuple(sp(1.0))

    def test_split_and_count(self):
        elements = [sp(0.0), tup(1, 1.0), tup(2, 2.0), sp(3.0)]
        tuples, sps = split_elements(elements)
        assert [t.tid for t in tuples] == [1, 2]
        assert len(sps) == 2
        assert count_elements(elements) == (2, 2)

    def test_iterators(self):
        elements = [sp(0.0), tup(1, 1.0)]
        assert [t.tid for t in iter_tuples(elements)] == [1]
        assert [s.ts for s in iter_sps(elements)] == [0.0]


class TestEnsureOrdered:
    def test_passes_ordered(self):
        elements = [tup(1, 1.0), tup(2, 1.0), tup(3, 2.0)]
        assert list(ensure_ordered(elements)) == elements

    def test_raises_on_regression(self):
        with pytest.raises(OutOfOrderError):
            list(ensure_ordered([tup(1, 2.0), tup(2, 1.0)]))


class TestReorderBuffer:
    def test_restores_order_within_slack(self):
        elements = [tup(1, 1.0), tup(3, 3.0), tup(2, 2.0), tup(5, 9.0)]
        ordered = list(reorder(elements, slack=2.0))
        assert [e.tid for e in ordered] == [1, 2, 3, 5]

    def test_drops_hopelessly_late(self):
        buffer = ReorderBuffer(slack=1.0)
        out = []
        # ts 20 forces release of everything up to 19; the ts=2 arrival
        # is then older than what was already released and is dropped.
        for element in [tup(1, 1.0), tup(2, 10.0), tup(4, 20.0),
                        tup(3, 2.0)]:
            out.extend(buffer.push(element))
        out.extend(buffer.flush())
        assert [e.tid for e in out] == [1, 2, 4]
        assert buffer.dropped == 1

    def test_ties_keep_arrival_order(self):
        # An sp and its tuple share a timestamp: sp must stay first.
        elements = [sp(5.0), tup(1, 5.0)]
        ordered = list(reorder(elements, slack=3.0))
        assert is_punctuation(ordered[0])
        assert is_tuple(ordered[1])

    def test_negative_slack_rejected(self):
        with pytest.raises(ValueError):
            ReorderBuffer(-1.0)


class TestSources:
    def test_list_source(self):
        schema = StreamSchema("s", ("v",))
        source = ListSource(schema, [tup(1, 1.0)])
        assert len(source) == 1
        assert [e.tid for e in source] == [1]

    def test_callback_source_reiterable(self):
        schema = StreamSchema("s", ("v",))
        source = CallbackSource(schema, lambda: [tup(1, 1.0)])
        assert [e.tid for e in source] == [1]
        assert [e.tid for e in source] == [1]  # second pass works

    def test_merge_orders_by_ts(self):
        s1 = ListSource(StreamSchema("a", ("v",)),
                        [tup(1, 1.0, "a"), tup(3, 3.0, "a")])
        s2 = ListSource(StreamSchema("b", ("v",)),
                        [tup(2, 2.0, "b"), tup(4, 4.0, "b")])
        merged = list(merge_sources([s1, s2]))
        assert [tid for _, e in merged for tid in [e.tid]] == [1, 2, 3, 4]
        assert [sid for sid, _ in merged] == ["a", "b", "a", "b"]

    def test_merge_tie_break_by_registration_order(self):
        s1 = ListSource(StreamSchema("a", ("v",)), [tup(1, 5.0, "a")])
        s2 = ListSource(StreamSchema("b", ("v",)), [tup(2, 5.0, "b")])
        merged = list(merge_sources([s1, s2]))
        assert [e.tid for _, e in merged] == [1, 2]

    def test_merge_preserves_sp_before_tuple(self):
        schema = StreamSchema("a", ("v",))
        source = ListSource(schema, [sp(1.0), tup(1, 1.0, "a")])
        merged = [e for _, e in merge_sources([source])]
        assert is_punctuation(merged[0]) and is_tuple(merged[1])
