"""Tests for the count-based punctuated window."""

import pytest

from repro.core.policy import Policy
from repro.core.punctuation import SecurityPunctuation
from repro.errors import StreamError
from repro.stream.tuples import DataTuple
from repro.stream.window import CountPunctuatedWindow


def grant(roles, ts):
    return SecurityPunctuation.grant(roles, ts)


def tup(tid, ts):
    return DataTuple("s", tid, {"v": tid}, ts)


def open_segment(window, roles, ts):
    sp = grant(roles, ts)
    return window.open_segment(Policy([sp]), [sp])


class TestCountWindow:
    def test_keeps_last_n(self):
        window = CountPunctuatedWindow("s", 3)
        open_segment(window, ["D"], 0.0)
        for i in range(5):
            window.insert(tup(i, float(i + 1)))
        live = [t.tid for t, _ in window.iter_entries()]
        assert live == [2, 3, 4]
        assert window.tuples_expired == 2

    def test_purges_emptied_segments(self):
        window = CountPunctuatedWindow("s", 2)
        open_segment(window, ["D"], 0.0)
        window.insert(tup(1, 1.0))
        open_segment(window, ["C"], 2.0)
        window.insert(tup(2, 3.0))
        purged = window.insert(tup(3, 4.0))  # evicts tid 1, D segment empty
        assert len(purged) == 1
        assert window.segment_count() == 1
        assert window.sp_count() == 1

    def test_policies_preserved_across_eviction(self):
        window = CountPunctuatedWindow("s", 2)
        open_segment(window, ["D"], 0.0)
        window.insert(tup(1, 1.0))
        open_segment(window, ["C"], 2.0)
        window.insert(tup(2, 3.0))
        window.insert(tup(3, 4.0))
        policies = [sorted(p.roles.names())
                    for _, p in window.iter_entries()]
        assert policies == [["C"], ["C"]]

    def test_time_invalidation_is_noop(self):
        window = CountPunctuatedWindow("s", 5)
        open_segment(window, ["D"], 0.0)
        window.insert(tup(1, 1.0))
        assert window.invalidate(1e9) == (0, [])
        assert window.tuple_count() == 1

    def test_invalid_count_rejected(self):
        with pytest.raises(StreamError):
            CountPunctuatedWindow("s", 0)
