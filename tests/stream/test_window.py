"""Tests for punctuated sliding windows and s-punctuated segments."""

import pytest

from repro.core.patterns import literal, numeric_range
from repro.core.policy import Policy
from repro.core.punctuation import SecurityPunctuation
from repro.errors import StreamError
from repro.stream.tuples import DataTuple
from repro.stream.window import PunctuatedWindow, policy_is_uniform


def grant(roles, ts=1.0, **kwargs):
    return SecurityPunctuation.grant(roles, ts, **kwargs)


def tup(tid, ts, sid="s1"):
    return DataTuple(sid, tid, {"v": tid}, ts)


class TestUniformity:
    def test_wildcard_policy_is_uniform(self):
        assert policy_is_uniform(Policy([grant(["D"])]), "s1")

    def test_tuple_scoped_policy_not_uniform(self):
        policy = Policy([grant(["D"], tuple_id=numeric_range(1, 5))])
        assert not policy_is_uniform(policy, "s1")

    def test_attribute_scoped_policy_not_uniform(self):
        policy = Policy([grant(["D"], attribute=literal("temp"))])
        assert not policy_is_uniform(policy, "s1")

    def test_none_policy_uniform(self):
        assert policy_is_uniform(None, "s1")


class TestWindow:
    def test_requires_positive_extent(self):
        with pytest.raises(StreamError):
            PunctuatedWindow("s1", 0)

    def test_segment_policies_resolve(self):
        window = PunctuatedWindow("s1", 100.0)
        sp = grant(["D", "ND"], ts=1.0)
        window.open_segment(Policy([sp]), [sp])
        window.insert(tup(1, 2.0))
        entries = list(window.iter_entries())
        assert len(entries) == 1
        _, policy = entries[0]
        assert policy.roles.names() == frozenset({"D", "ND"})

    def test_tuple_before_any_sp_denied_by_default(self):
        window = PunctuatedWindow("s1", 100.0)
        window.insert(tup(1, 1.0))
        (_, policy), = window.iter_entries()
        assert policy.is_empty()

    def test_tuple_scoped_resolution_per_tuple(self):
        window = PunctuatedWindow("s1", 100.0)
        sp = grant(["GP"], ts=0.0, tuple_id=numeric_range(120, 133))
        window.open_segment(Policy([sp]), [sp])
        window.insert(tup(125, 1.0))
        window.insert(tup(200, 2.0))
        entries = list(window.iter_entries())
        assert entries[0][1].roles.names() == frozenset({"GP"})
        assert entries[1][1].is_empty()

    def test_invalidation_expires_old_tuples(self):
        window = PunctuatedWindow("s1", 10.0)
        sp = grant(["D"], ts=0.0)
        window.open_segment(Policy([sp]), [sp])
        for ts in (1.0, 2.0, 3.0):
            window.insert(tup(int(ts), ts))
        expired, purged = window.invalidate(12.5)
        assert expired == 2  # ts 1.0 and 2.0 are <= 12.5 - 10
        assert purged == []
        assert window.tuple_count() == 1

    def test_sp_purged_with_empty_segment_when_newer_exists(self):
        window = PunctuatedWindow("s1", 10.0)
        sp1 = grant(["D"], ts=0.0)
        window.open_segment(Policy([sp1]), [sp1])
        window.insert(tup(1, 1.0))
        sp2 = grant(["C"], ts=5.0)
        window.open_segment(Policy([sp2]), [sp2])
        window.insert(tup(2, 6.0))
        expired, purged = window.invalidate(20.0)
        assert expired == 2
        # Old segment purged entirely; newest kept as the live policy.
        assert len(purged) == 1
        assert purged[0].sps == [sp1]
        assert window.segment_count() == 1

    def test_latest_segment_survives_even_when_empty(self):
        window = PunctuatedWindow("s1", 10.0)
        sp = grant(["D"], ts=0.0)
        window.open_segment(Policy([sp]), [sp])
        window.insert(tup(1, 1.0))
        expired, purged = window.invalidate(100.0)
        assert expired == 1
        assert purged == []  # only segment: governs upcoming tuples
        assert window.sp_count() == 1

    def test_counters(self):
        window = PunctuatedWindow("s1", 10.0)
        sp = grant(["D"], ts=0.0)
        window.open_segment(Policy([sp]), [sp])
        window.insert(tup(1, 1.0))
        window.insert(tup(2, 2.0))
        window.invalidate(50.0)
        assert window.tuples_inserted == 2
        assert window.tuples_expired == 2
        assert window.sps_inserted == 1

    def test_resolution_uses_tuple_sid(self):
        window = PunctuatedWindow("placeholder", 100.0)
        sp = grant(["C"], ts=0.0, stream=literal("HeartRate"))
        window.open_segment(Policy([sp]), [sp])
        window.insert(tup(1, 1.0, sid="HeartRate"))
        window.insert(tup(2, 2.0, sid="Other"))
        entries = list(window.iter_entries())
        assert entries[0][1].roles.names() == frozenset({"C"})
        assert entries[1][1].is_empty()
