"""Unit tests for TupleBatch and coalesce_feed."""

from repro.core.punctuation import SecurityPunctuation
from repro.stream.batch import TupleBatch, coalesce_feed
from repro.stream.tuples import DataTuple


def dt(sid, tid, ts):
    return DataTuple(sid, tid, {"v": float(tid)}, ts)


def sp(ts):
    return SecurityPunctuation.grant(["D"], ts)


def unroll(feed):
    """Flatten a coalesced feed back to (stream_id, element) pairs."""
    out = []
    for stream_id, element in feed:
        if isinstance(element, TupleBatch):
            out.extend((stream_id, item) for item in element)
        else:
            out.append((stream_id, element))
    return out


class TestTupleBatch:
    def test_len_iter_ts(self):
        tuples = [dt("s", 0, 1.0), dt("s", 1, 2.0), dt("s", 2, 3.0)]
        batch = TupleBatch(tuples)
        assert len(batch) == 3
        assert list(batch) == tuples
        assert batch.ts == 3.0

    def test_repr(self):
        batch = TupleBatch([dt("s", 0, 1.0)])
        assert "1" in repr(batch)


class TestCoalesceFeed:
    def test_runs_between_sps_are_batched(self):
        feed = [("s", sp(0.5))] + [("s", dt("s", i, float(i + 1)))
                                   for i in range(5)] + [("s", sp(6.5))]
        out = list(coalesce_feed(iter(feed)))
        # sp, one batch of 5, sp
        assert len(out) == 3
        assert isinstance(out[1][1], TupleBatch)
        assert len(out[1][1]) == 5

    def test_transparent_unroll(self):
        feed = ([("s", sp(0.5))]
                + [("s", dt("s", i, float(i + 1))) for i in range(4)]
                + [("s", sp(5.5)), ("s", sp(5.6))]
                + [("s", dt("s", 9, 6.0))])
        assert unroll(coalesce_feed(iter(feed))) == feed

    def test_single_tuple_run_not_wrapped(self):
        feed = [("s", sp(0.5)), ("s", dt("s", 0, 1.0)), ("s", sp(1.5))]
        out = list(coalesce_feed(iter(feed)))
        assert isinstance(out[1][1], DataTuple)

    def test_stream_switch_breaks_run(self):
        feed = [("a", dt("a", 0, 1.0)), ("a", dt("a", 1, 2.0)),
                ("b", dt("b", 2, 3.0)),
                ("a", dt("a", 3, 4.0)), ("a", dt("a", 4, 5.0))]
        out = list(coalesce_feed(iter(feed)))
        kinds = [(sid, type(el).__name__) for sid, el in out]
        assert kinds == [("a", "TupleBatch"), ("b", "DataTuple"),
                         ("a", "TupleBatch")]
        assert unroll(coalesce_feed(iter(feed))) == feed

    def test_max_batch_splits_long_runs(self):
        feed = [("s", dt("s", i, float(i))) for i in range(10)]
        out = list(coalesce_feed(iter(feed), max_batch=4))
        sizes = [len(el) if isinstance(el, TupleBatch) else 1
                 for _, el in out]
        assert sizes == [4, 4, 2]
        assert unroll(coalesce_feed(iter(feed), max_batch=4)) == feed

    def test_empty_and_sp_only_feeds(self):
        assert list(coalesce_feed(iter([]))) == []
        feed = [("s", sp(1.0)), ("s", sp(2.0))]
        assert list(coalesce_feed(iter(feed))) == feed
