"""Tests for the JSON-lines wire format."""

import io

import pytest
from hypothesis import given, settings

from repro.core.patterns import literal, numeric_range
from repro.core.punctuation import SecurityPunctuation, Sign
from repro.errors import StreamError
from repro.stream.tuples import DataTuple
from repro.stream.wire import (decode_element, dump_stream, encode_element,
                               load_stream)

from tests.properties.strategies import punctuated_streams


class TestRoundTrips:
    def test_tuple_round_trip(self):
        t = DataTuple("s1", 120, {"x": 1.5, "name": "abc", "n": 7}, 3.25)
        back = decode_element(encode_element(t))
        assert back == t

    def test_tuple_pair_tid(self):
        t = DataTuple("joined", (1, 2), {"v": 0}, 1.0)
        back = decode_element(encode_element(t))
        assert back.tid == (1, 2)

    def test_sp_round_trip(self):
        sp = SecurityPunctuation.deny(
            ["C", "D"], ts=9.5, stream=literal("HeartRate"),
            tuple_id=numeric_range(120, 133), immutable=True,
            provider="patient120")
        back = decode_element(encode_element(sp))
        assert back.roles() == sp.roles()
        assert back.sign is Sign.NEGATIVE
        assert back.immutable
        assert back.ts == 9.5
        assert back.provider == "patient120"
        assert back.describes("HeartRate", 125)
        assert not back.describes("HeartRate", 200)

    def test_stream_dump_load(self):
        elements = [
            SecurityPunctuation.grant(["D"], ts=0.0, provider="p"),
            DataTuple("s", 1, {"v": 1}, 1.0),
            DataTuple("s", 2, {"v": 2}, 2.0),
        ]
        buffer = io.StringIO()
        assert dump_stream(elements, buffer) == 3
        buffer.seek(0)
        loaded = list(load_stream(buffer))
        assert len(loaded) == 3
        assert isinstance(loaded[0], SecurityPunctuation)
        assert [e.tid for e in loaded[1:]] == [1, 2]

    def test_blank_lines_skipped(self):
        lines = ["", "  ", encode_element(DataTuple("s", 1, {"v": 1}, 1.0))]
        assert len(list(load_stream(lines))) == 1


class TestErrors:
    def test_malformed_json(self):
        with pytest.raises(StreamError):
            decode_element("{not json")

    def test_unknown_kind(self):
        with pytest.raises(StreamError):
            decode_element('{"k": "mystery"}')

    def test_non_element_rejected(self):
        with pytest.raises(StreamError):
            encode_element("a plain string")


class TestPropertyRoundTrip:
    @given(punctuated_streams())
    @settings(max_examples=40, deadline=None)
    def test_any_stream_round_trips(self, elements):
        buffer = io.StringIO()
        dump_stream(elements, buffer)
        buffer.seek(0)
        loaded = list(load_stream(buffer))
        assert len(loaded) == len(elements)
        for original, back in zip(elements, loaded):
            assert type(original) is type(back)
            assert original.ts == back.ts
            if isinstance(original, SecurityPunctuation):
                assert original.roles() == back.roles()
            else:
                assert original == back
