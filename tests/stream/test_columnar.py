"""ColumnBatch layout and predicate/pattern compilation.

Property-style checks backing the columnar tier's data layer:
``ColumnBatch ⇄ TupleBatch`` round-trips must be lossless (order,
attribute values — including present-``None`` vs absent —, the policy
column), and every compiled kernel must agree row-for-row with the
element-wise ``Condition`` / ``Pattern`` evaluation it lowers,
including the dirty-row rules (absent attribute, ``None``, mixed-type
``TypeError``) and opaque-conjunct call counting.
"""

import pytest

from repro.core.bitmap import RoleUniverse
from repro.core.patterns import (CompositePattern, LiteralPattern,
                                 RangePattern, SetPattern, WildcardPattern)
from repro.core.policy import TuplePolicy
from repro.operators.compiler import (compile_condition, compile_pattern)
from repro.operators.conditions import (And, Comparison, FuncCondition, Not,
                                        Or, TrueCondition)
from repro.stream.batch import TupleBatch
from repro.stream.columnar import MISSING, ColumnBatch
from repro.stream.tuples import DataTuple


def tup(tid, values, ts=None):
    return DataTuple("s1", tid, values, float(tid) if ts is None else ts)


def mixed_rows():
    """Rows exercising every value-presence case."""
    return [
        tup(0, {"v": 5.0, "w": "a"}),
        tup(1, {"v": None, "w": "b"}),          # present None
        tup(2, {"w": "c"}),                      # v absent
        tup(3, {"v": "text", "w": None}),        # mixed type
        tup(4, {"v": -1.5, "w": "a", "x": 9}),
    ]


# -- round trips -------------------------------------------------------------

class TestRoundTrip:
    def test_batch_to_columns_and_back_is_lossless(self):
        rows = mixed_rows()
        batch = TupleBatch(rows)
        cb = ColumnBatch.from_batch(batch)
        back = cb.to_batch()
        assert back.tuples == rows
        assert [t.values for t in back.tuples] == [t.values for t in rows]
        assert [t.ts for t in back.tuples] == [t.ts for t in rows]

    def test_round_trip_preserves_identity_without_copying(self):
        rows = mixed_rows()
        cb = ColumnBatch.from_batch(TupleBatch(rows))
        assert all(a is b for a, b in zip(cb.to_batch().tuples, rows))

    def test_column_distinguishes_absent_from_none(self):
        cb = ColumnBatch(mixed_rows())
        col = cb.column("v")
        assert col[0] == 5.0
        assert col[1] is None          # present None survives
        assert col[2] is MISSING       # absent is the sentinel
        assert col[3] == "text"

    def test_column_is_cached(self):
        cb = ColumnBatch(mixed_rows())
        assert cb.column("v") is cb.column("v")

    def test_missing_sentinel_is_falsy_and_unique(self):
        assert not MISSING
        assert repr(MISSING) == "MISSING"

    def test_compress_keeps_rows_columns_and_policies(self):
        rows = mixed_rows()
        policies = [TuplePolicy([f"r{i}"]) for i in range(len(rows))]
        cb = ColumnBatch(rows, policies=policies)
        cb.column("v")  # populate the cache
        out = cb.compress([True, False, True, False, True])
        assert [t.tid for t in out.tuples] == [0, 2, 4]
        assert out.column("v") == [5.0, MISSING, -1.5]
        assert [sorted(p.roles.names()) for p in out.policies] == \
            [["r0"], ["r2"], ["r4"]]

    def test_project_keeps_present_none_drops_absent(self):
        cb = ColumnBatch(mixed_rows())
        out = cb.project(["v", "x"])
        assert out.tuples[0].values == {"v": 5.0}
        assert out.tuples[1].values == {"v": None}   # present None kept
        assert out.tuples[2].values == {}            # absent stays absent
        assert out.tuples[4].values == {"v": -1.5, "x": 9}
        # Identity fields survive the rebuild.
        assert [t.tid for t in out.tuples] == [t.tid for t in cb.tuples]
        assert [t.ts for t in out.tuples] == [t.ts for t in cb.tuples]
        assert [t.sid for t in out.tuples] == [t.sid for t in cb.tuples]

    def test_role_masks_requires_policy_column(self):
        cb = ColumnBatch(mixed_rows())
        with pytest.raises(ValueError):
            cb.role_masks(RoleUniverse())

    def test_role_masks_encodes_each_row(self):
        rows = mixed_rows()[:3]
        policies = [TuplePolicy(["a"]), TuplePolicy(["a", "b"]),
                    TuplePolicy(["b"])]
        universe = RoleUniverse(["a", "b"])
        cb = ColumnBatch(rows, policies=policies)
        masks = cb.role_masks(universe)
        assert masks == [universe.encode(frozenset({"a"})),
                         universe.encode(frozenset({"a", "b"})),
                         universe.encode(frozenset({"b"}))]

    def test_basics(self):
        rows = mixed_rows()
        cb = ColumnBatch(rows)
        assert len(cb) == len(rows)
        assert list(cb) == rows
        assert cb.ts == rows[-1].ts
        assert cb.attributes() == frozenset({"v", "w", "x"})


# -- purity classification ---------------------------------------------------

class TestPurity:
    def test_structural_conditions_are_pure(self):
        assert TrueCondition().is_pure()
        assert Comparison("v", ">", 1).is_pure()
        assert And([Comparison("v", ">", 1),
                    Comparison("w", "=", "a")]).is_pure()
        assert Or([Comparison("v", ">", 1),
                   Not(Comparison("w", "=", "a"))]).is_pure()

    def test_unproven_func_condition_is_opaque(self):
        # getattr with a name from a variable defeats the effect
        # analyzer: the verdict is UNKNOWN, which fails closed.
        def opaque(t):
            field = "v"
            return getattr(t, "values")[field] is not None

        fn = FuncCondition(opaque, ["v"])
        assert not fn.is_pure()
        assert not And([Comparison("v", ">", 1), fn]).is_pure()
        assert not Not(fn).is_pure()

    def test_proven_pure_func_condition_is_pure(self):
        # The UDF effect analyzer proves purity + determinism, so the
        # compiler may vectorize (PR 10; docs/ANALYSIS.md UDF effects).
        fn = FuncCondition(lambda t: True, ["v"])
        assert fn.is_pure()
        assert And([Comparison("v", ">", 1), fn]).is_pure()
        assert Not(fn).is_pure()


# -- compiled predicates -----------------------------------------------------

def assert_mask_matches(cond, rows):
    """The compiled mask must agree with element-wise evaluation."""
    compiled = compile_condition(cond)
    cb = ColumnBatch(rows)
    mask = [bool(flag) for flag in compiled.mask(cb)]
    assert mask == [bool(cond(item)) for item in rows]


OPS = ["=", "==", "!=", "<>", "<", "<=", ">", ">="]


class TestCompiledPredicate:
    @pytest.mark.parametrize("op", OPS)
    def test_unary_comparison_on_dirty_rows(self, op):
        # Absent / None / mixed-type rows all obey the element-wise
        # non-match rules (notably "!=" must NOT pass None/absent).
        assert_mask_matches(Comparison("v", op, 1.0), mixed_rows())

    @pytest.mark.parametrize("op", OPS)
    def test_unary_comparison_on_clean_rows(self, op):
        rows = [tup(i, {"v": float(i) - 2.0}) for i in range(5)]
        assert_mask_matches(Comparison("v", op, 0.0), rows)

    @pytest.mark.parametrize("op", OPS)
    def test_binary_comparison(self, op):
        rows = mixed_rows() + [tup(5, {"v": 2.0, "w": 2.0})]
        assert_mask_matches(Comparison("v", op, "w", rhs_attribute=True),
                            rows)

    def test_none_rhs_never_matches(self):
        rows = mixed_rows()
        assert_mask_matches(Comparison("v", "=", None), rows)
        compiled = compile_condition(Comparison("v", "=", None))
        assert compiled.mask(ColumnBatch(rows)) == [False] * len(rows)

    def test_boolean_combinators(self):
        rows = mixed_rows() + [tup(6, {"v": 3.0, "w": "a"})]
        cond = And([Or([Comparison("v", ">", 0.0),
                        Comparison("w", "=", "a")]),
                    Not(Comparison("v", ">=", 5.0))])
        assert_mask_matches(cond, rows)
        assert compile_condition(cond).fully_vectorized

    def test_true_condition(self):
        rows = mixed_rows()
        assert_mask_matches(TrueCondition(), rows)

    def test_opaque_conjunct_call_count_and_order(self):
        # The opaque stage must be invoked exactly once per row that
        # survived the vector stages, in row order — the element-wise
        # And short-circuit contract.
        rows = [tup(i, {"v": float(i)}) for i in range(6)]
        calls = []

        def probe(item):
            calls.append(item.tid)
            return item.tid % 2 == 0

        cond = And([Comparison("v", ">=", 2.0),
                    FuncCondition(probe, ["v"], label="probe")])
        compiled = compile_condition(cond)
        assert not compiled.fully_vectorized
        mask = [bool(f) for f in compiled.mask(ColumnBatch(rows))]
        assert mask == [False, False, True, False, True, False]
        assert calls == [2, 3, 4, 5]  # only survivors, in order

    def test_opaque_only_condition(self):
        rows = [tup(i, {"v": float(i)}) for i in range(4)]
        cond = FuncCondition(lambda t: t.values["v"] > 1.5, ["v"])
        assert_mask_matches(cond, rows)

    def test_fallback_handles_unorderable_rhs(self):
        # Every row raises TypeError against the rhs: per-row fallback.
        rows = [tup(0, {"v": "a"}), tup(1, {"v": "b"})]
        assert_mask_matches(Comparison("v", "<", 1.0), rows)


# -- compiled patterns -------------------------------------------------------

class TestCompiledPattern:
    @pytest.mark.parametrize("pattern", [
        WildcardPattern(),
        LiteralPattern(3),
        SetPattern([1, "2", 3]),
        RangePattern(2, 7),
        CompositePattern([LiteralPattern(1), RangePattern(5, 9)]),
    ], ids=lambda p: type(p).__name__)
    def test_kernel_matches_elementwise(self, pattern):
        column = [1, 2, 3, "3", 5.0, None, "x", 7]
        kernel = compile_pattern(pattern)
        assert [bool(f) for f in kernel(column)] == \
            [bool(pattern.matches(v)) for v in column]
