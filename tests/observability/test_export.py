"""Exposition surfaces: Prometheus text, JSON, scrape endpoint."""

import json
import urllib.error
import urllib.request

import pytest

from repro.observability.export import (parse_prometheus, render_json,
                                        render_prometheus, serve_metrics)
from repro.observability.metrics import MetricsRegistry


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("demo_total", "a counter", labels=("k",)).labels(
        "v1").inc(3)
    registry.gauge("demo_depth", "a gauge").set(7)
    hist = registry.histogram("demo_seconds", "a histogram",
                              buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.7, 20.0):
        hist.observe(value)
    return registry


class TestPrometheusText:
    def test_round_trip_parses(self):
        text = render_prometheus(populated_registry())
        samples = parse_prometheus(text)
        assert samples["demo_total"] == [({"k": "v1"}, 3.0)]
        assert samples["demo_depth"] == [({}, 7.0)]

    def test_help_and_type_headers(self):
        text = render_prometheus(populated_registry())
        assert "# HELP demo_total a counter" in text
        assert "# TYPE demo_total counter" in text
        assert "# TYPE demo_seconds histogram" in text

    def test_histogram_series_shape(self):
        samples = parse_prometheus(
            render_prometheus(populated_registry()))
        buckets = {labels["le"]: value for labels, value
                   in samples["demo_seconds_bucket"]}
        # Cumulative le semantics, ending in +Inf == _count.
        assert buckets["0.1"] == 1.0
        assert buckets["1"] == 3.0
        assert buckets["10"] == 3.0
        assert buckets["+Inf"] == 4.0
        assert samples["demo_seconds_count"] == [({}, 4.0)]
        assert samples["demo_seconds_sum"][0][1] == pytest.approx(21.25)

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        tricky = 'role "D",\nbackslash\\'
        registry.counter("esc_total", labels=("who",)).labels(
            tricky).inc()
        samples = parse_prometheus(render_prometheus(registry))
        assert samples["esc_total"][0][0]["who"] == tricky

    @pytest.mark.parametrize("value", [
        'quote " inside',
        "newline\nsplits the line",
        "backslash \\ and tab\there",
        'all three: "\\\n"',
        "trailing backslash \\",
        "\\n literal-escape lookalike",
        "unicode: ψ-shield über señor 診療",
        "",
    ])
    def test_adversarial_label_values_round_trip(self, value):
        registry = MetricsRegistry()
        registry.counter("esc_total", labels=("who",)).labels(
            value).inc(2)
        samples = parse_prometheus(render_prometheus(registry))
        assert samples["esc_total"] == [({"who": value}, 2.0)]

    def test_adversarial_values_in_multiple_labels(self):
        registry = MetricsRegistry()
        registry.counter("multi_total", labels=("a", "b")).labels(
            'x="1"\n', "\\,}").inc()
        ((labels, value),) = parse_prometheus(
            render_prometheus(registry))["multi_total"]
        assert labels == {"a": 'x="1"\n', "b": "\\,}"}
        assert value == 1.0

    def test_concurrent_updates_never_torn_snapshots(self):
        """Scrapes racing writers always parse and never go backwards."""
        import threading

        registry = MetricsRegistry()
        counter = registry.counter("race_total", labels=("w",))
        hist = registry.histogram("race_seconds",
                                  buckets=(0.1, 1.0))
        stop = threading.Event()

        def writer(name):
            series = counter.labels(name)
            while not stop.is_set():
                series.inc()
                hist.observe(0.5)

        workers = [threading.Thread(target=writer, args=(f"w{i}",))
                   for i in range(4)]
        for worker in workers:
            worker.start()
        try:
            last_count = 0.0
            for _ in range(50):
                samples = parse_prometheus(render_prometheus(registry))
                total = sum(v for _, v in samples.get("race_total", []))
                assert total >= last_count
                last_count = total
                if "race_seconds_bucket" in samples:
                    buckets = {labels["le"]: v for labels, v
                               in samples["race_seconds_bucket"]}
                    # cumulative le semantics hold within one snapshot
                    assert buckets["0.1"] <= buckets["1"] <= buckets["+Inf"]
        finally:
            stop.set()
            for worker in workers:
                worker.join()
        assert last_count > 0

    def test_empty_families_are_omitted(self):
        registry = MetricsRegistry()
        registry.counter("never_used_total", "no series yet")
        assert render_prometheus(registry) == ""

    def test_engine_registry_renders(self):
        """The full engine catalog renders and parses."""
        from repro.observability.instruments import EngineInstruments

        registry = MetricsRegistry()
        instruments = EngineInstruments(registry)
        instruments.tuples_in.inc(5)
        instruments.propagation.labels("shield", "q").observe(1e-4)
        samples = parse_prometheus(render_prometheus(registry))
        assert ({"kind": "tuple"}, 5.0) in samples["repro_elements_total"]
        assert ("repro_policy_propagation_seconds_count" in samples)


class TestParserValidation:
    def test_rejects_sample_without_type(self):
        with pytest.raises(ValueError, match="before its # TYPE"):
            parse_prometheus("lonely_total 1\n")

    def test_rejects_bad_value(self):
        with pytest.raises(ValueError, match="bad sample value"):
            parse_prometheus("# TYPE x counter\nx not-a-number\n")

    def test_rejects_unterminated_label(self):
        with pytest.raises(ValueError):
            parse_prometheus('# TYPE x counter\nx{k="v} 1\n')

    def test_rejects_missing_value(self):
        with pytest.raises(ValueError, match="without a value"):
            parse_prometheus('# TYPE x counter\nx{k="v"}\n')


class TestJson:
    def test_valid_json_with_quantiles(self):
        doc = json.loads(render_json(populated_registry()))
        assert doc["demo_total"]["series"][0]["value"] == 3.0
        hist = doc["demo_seconds"]["series"][0]
        assert hist["count"] == 4
        assert "p95" in hist and "p50" in hist


class TestScrapeEndpoint:
    def test_serves_text_and_json(self):
        registry = populated_registry()
        with serve_metrics(registry) as server:
            with urllib.request.urlopen(server.url, timeout=5) as resp:
                assert resp.status == 200
                assert "version=0.0.4" in resp.headers["Content-Type"]
                text = resp.read().decode()
            with urllib.request.urlopen(server.url + ".json",
                                        timeout=5) as resp:
                doc = json.loads(resp.read().decode())
        samples = parse_prometheus(text)
        assert samples["demo_total"][0][1] == 3.0
        assert doc["demo_depth"]["series"][0]["value"] == 7.0

    def test_scrape_sees_live_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("live_total").labels()
        with serve_metrics(registry) as server:
            counter.inc(41)
            counter.inc()
            with urllib.request.urlopen(server.url, timeout=5) as resp:
                text = resp.read().decode()
        assert parse_prometheus(text)["live_total"][0][1] == 42.0

    def test_unknown_path_is_404(self):
        with serve_metrics(MetricsRegistry()) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    server.url.replace("/metrics", "/nope"), timeout=5)
            assert excinfo.value.code == 404
