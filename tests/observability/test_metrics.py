"""Metric primitives: buckets, quantiles, families, registry."""

import math

import pytest

from repro.observability.metrics import (LATENCY_BUCKETS, SIZE_BUCKETS,
                                         Counter, Gauge, Histogram,
                                         MetricsRegistry, log_buckets)


class TestLogBuckets:
    def test_spans_both_ends(self):
        bounds = log_buckets(1e-6, 10.0, 4)
        assert bounds[0] == pytest.approx(1e-6)
        assert bounds[-1] == pytest.approx(10.0)

    def test_per_decade_density(self):
        bounds = log_buckets(1.0, 1000.0, 2)
        # 3 decades * 2 per decade + the inclusive lower end.
        assert len(bounds) == 7
        ratios = [b / a for a, b in zip(bounds, bounds[1:])]
        for ratio in ratios:
            assert ratio == pytest.approx(math.sqrt(10.0), rel=1e-6)

    def test_strictly_increasing(self):
        for bounds in (LATENCY_BUCKETS, SIZE_BUCKETS):
            assert list(bounds) == sorted(set(bounds))

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(2.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 10.0, per_decade=0)


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.current() == pytest.approx(3.5)

    def test_gauge_set_inc_dec(self):
        g = Gauge()
        g.set(10.0)
        g.inc(5.0)
        g.dec(1.0)
        assert g.current() == pytest.approx(14.0)

    def test_gauge_callback_wins(self):
        state = {"depth": 7}
        g = Gauge()
        g.set(99.0)
        g.set_function(lambda: state["depth"])
        assert g.current() == 7.0
        state["depth"] = 3
        assert g.current() == 3.0


class TestHistogram:
    def test_value_on_bound_lands_in_that_bucket(self):
        h = Histogram(bounds=(1.0, 10.0, 100.0))
        h.observe(10.0)  # le=10 bucket, inclusive upper bound
        assert h.counts == [0, 1, 0, 0]

    def test_overflow_bucket(self):
        h = Histogram(bounds=(1.0, 10.0))
        h.observe(1000.0)
        assert h.counts[-1] == 1
        assert h.cumulative() == [0, 0]
        assert h.count == 1

    def test_cumulative_le_semantics(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.7, 3.0):
            h.observe(value)
        assert h.cumulative() == [1, 3, 4]

    def test_sum_count_max_mean(self):
        h = Histogram(bounds=(10.0,))
        for value in (1.0, 2.0, 3.0):
            h.observe(value)
        assert h.count == 3
        assert h.sum == pytest.approx(6.0)
        assert h.max == pytest.approx(3.0)
        assert h.mean() == pytest.approx(2.0)

    def test_exemplars_tag_buckets_with_trace_ids(self):
        h = Histogram(bounds=(1.0, 2.0))
        assert h.exemplars is None  # lazy: no dict until first tag
        h.observe(0.5)
        h.exemplar(0.5, trace_id=7, wall=10.0)
        h.observe(1.5)
        h.exemplar(1.5, trace_id=8, wall=11.0)
        h.observe(0.6)
        h.exemplar(0.6, trace_id=9, wall=12.0)  # replaces bucket 0's
        assert h.exemplars == {0: (0.6, 9, 12.0), 1: (1.5, 8, 11.0)}

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=())

    def test_quantile_empty_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_quantiles_of_uniform_distribution(self):
        """Estimates stay within one bucket of the true quantile."""
        h = Histogram(bounds=log_buckets(1.0, 1e4, 4))
        n = 10_000
        for i in range(1, n + 1):  # uniform on (0, 10000]
            h.observe(i)
        for q in (0.25, 0.5, 0.9, 0.95, 0.99):
            true = q * n
            estimate = h.quantile(q)
            # Log-scale buckets at 4/decade: adjacent bounds differ by
            # 10^(1/4) ≈ 1.78, so the estimate must be within that
            # relative factor of the true quantile.
            assert true / 1.8 <= estimate <= true * 1.8, (q, estimate)

    def test_quantiles_of_exponential_distribution(self):
        import random

        rng = random.Random(17)
        h = Histogram(bounds=log_buckets(1e-4, 10.0, 4))
        values = [rng.expovariate(1.0) for _ in range(5000)]
        for value in values:
            h.observe(value)
        values.sort()
        for q in (0.5, 0.95):
            true = values[int(q * len(values)) - 1]
            estimate = h.quantile(q)
            assert true / 1.8 <= estimate <= true * 1.8, (q, estimate)

    def test_quantile_above_all_buckets_returns_max(self):
        h = Histogram(bounds=(1.0,))
        h.observe(50.0)
        h.observe(70.0)
        assert h.quantile(0.99) == pytest.approx(70.0)


class TestMetricFamily:
    def test_children_cached_per_label_values(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", "x", labels=("a", "b"))
        child = family.labels("1", "2")
        assert family.labels("1", "2") is child
        assert family.labels(a="1", b="2") is child
        assert len(family) == 1

    def test_label_arity_enforced(self):
        family = MetricsRegistry().counter("y_total", "y", labels=("a",))
        with pytest.raises(ValueError):
            family.labels("1", "2")
        with pytest.raises(ValueError):
            family.labels(b="1")
        with pytest.raises(ValueError):
            family.labels("1", a="1")

    def test_unlabeled_convenience(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(2)
        registry.gauge("g").set(5)
        registry.histogram("h_seconds").observe(0.5)
        assert registry.get("c_total").labels().current() == 2.0
        assert registry.get("g").labels().current() == 5.0
        assert registry.get("h_seconds").labels().count == 1


class TestRegistry:
    def test_idempotent_registration(self):
        registry = MetricsRegistry()
        first = registry.counter("n_total", "n", labels=("k",))
        again = registry.counter("n_total", "n", labels=("k",))
        assert first is again
        assert len(registry) == 1

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("m_total")
        with pytest.raises(ValueError):
            registry.gauge("m_total")
        with pytest.raises(ValueError):
            registry.counter("m_total", labels=("extra",))

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "help a", labels=("k",)).labels(
            "v").inc(3)
        registry.histogram("b_seconds", buckets=(1.0, 2.0)).observe(1.5)
        snap = registry.snapshot()
        assert snap["a_total"]["kind"] == "counter"
        assert snap["a_total"]["series"][0] == {
            "labels": {"k": "v"}, "value": 3.0}
        hist = snap["b_seconds"]["series"][0]
        assert hist["count"] == 1
        assert hist["buckets"] == {"1.0": 0, "2.0": 1}
        assert hist["p50"] > 1.0
