"""Tests for causal tracing, sampling and why-reconstruction."""

import json

import pytest

from repro.algebra.expressions import ScanExpr
from repro.core.punctuation import SecurityPunctuation
from repro.engine.dsms import DSMS
from repro.observability import Observability
from repro.observability.provenance import (DEFAULT_SAMPLE_RATE,
                                            FlightRecorder, TraceContext,
                                            Tracer, _sampled,
                                            reconstruct_why)
from repro.observability.trace import RingBufferTraceSink, SpanEvent
from repro.stream.schema import StreamSchema
from repro.stream.tuples import DataTuple

SCHEMA = StreamSchema("hr", ("patient", "bpm"), key="patient")

#: Execution tiers the acceptance criterion names: element-wise,
#: segment-batched and columnar-fused.
MODES = [
    pytest.param({"batching": False}, id="element-wise"),
    pytest.param({"batching": True, "columnar": False}, id="batched"),
    pytest.param({"batching": True, "columnar": True}, id="columnar"),
]


def segmented_elements(n_per_segment=40):
    """A denied leading tuple, a granted run, then a denied run.

    Segments are larger than ``MIN_FUSED_ROWS`` so the columnar tier
    genuinely engages under ``batching=True, columnar=True``.
    """
    elements = [DataTuple("hr", 999, {"patient": 9, "bpm": 50}, 0.5)]
    elements.append(
        SecurityPunctuation.grant(["D"], 1.0, provider="patient"))
    for i in range(n_per_segment):
        elements.append(
            DataTuple("hr", 100 + i, {"patient": 1, "bpm": 70}, 2.0 + i))
    elements.append(SecurityPunctuation.grant(
        ["C"], 100.0, provider="patient"))
    for i in range(n_per_segment):
        elements.append(
            DataTuple("hr", 500 + i, {"patient": 2, "bpm": 80}, 101.0 + i))
    return elements


def run_traced(sample, **run_kwargs):
    dsms = DSMS(observability=Observability.with_tracing(sample=sample))
    dsms.register_stream(SCHEMA, segmented_elements())
    dsms.register_query("doc", ScanExpr("hr"), roles={"D"})
    results = dsms.run(**run_kwargs)
    return dsms, results


class TestSampling:
    def test_verdict_is_deterministic_per_trace_id(self):
        threshold = int(DEFAULT_SAMPLE_RATE * 2**32)
        for tid in range(1, 500):
            assert _sampled(tid, threshold) == _sampled(tid, threshold)

    def test_rate_is_approximately_honoured(self):
        threshold = int(DEFAULT_SAMPLE_RATE * 2**32)
        hits = sum(_sampled(tid, threshold) for tid in range(1, 100_001))
        assert 100_000 * DEFAULT_SAMPLE_RATE * 0.5 < hits \
            < 100_000 * DEFAULT_SAMPLE_RATE * 2.0

    def test_sample_one_keeps_everything(self):
        threshold = int(1.0 * 2**32)
        assert all(_sampled(tid, threshold) for tid in range(1, 1000))

    def test_sample_zero_keeps_nothing(self):
        assert not any(_sampled(tid, 0) for tid in range(1, 1000))

    def test_begin_matches_pure_function(self):
        tracer = Tracer(sample=DEFAULT_SAMPLE_RATE)
        threshold = tracer._threshold
        for expected_tid in range(1, 300):
            verdict = tracer.begin("tuple")
            assert tracer.trace_id == expected_tid
            assert verdict == _sampled(expected_tid, threshold)
            assert tracer.active == verdict
            if verdict:
                assert tracer.trace_ref() == expected_tid
                assert tracer.context() is not None
            else:
                assert tracer.trace_ref() is None
                assert tracer.context() is None

    def test_rejects_out_of_range_rate(self):
        with pytest.raises(ValueError):
            Tracer(sample=1.5)
        with pytest.raises(ValueError):
            Tracer(sample=-0.1)

    def test_flat_span_is_head_sampled(self):
        kept_all = Tracer(sample=1.0)
        for _ in range(50):
            kept_all.span("analyzer.batch")
        assert len(kept_all.events("analyzer.batch")) == 50
        sparse = Tracer(sample=DEFAULT_SAMPLE_RATE)
        for _ in range(1000):
            sparse.span("analyzer.batch")
        kept = len(sparse.events("analyzer.batch"))
        assert 0 < kept < 1000 // 16


class TestTraceContext:
    def test_child_chains_parent(self):
        root = TraceContext(7, 1)
        child = root.child(2)
        assert child.trace_id == 7
        assert child.span_id == 2
        assert child.parent_id == 1

    def test_equality_and_hash(self):
        assert TraceContext(1, 2, 3) == TraceContext(1, 2, 3)
        assert TraceContext(1, 2, 3) != TraceContext(1, 2, 4)
        assert hash(TraceContext(1, 2)) == hash(TraceContext(1, 2))


class TestKeepSemantics:
    def test_unsampled_record_without_keep_vanishes(self):
        tracer = Tracer(sample=0.0)
        tracer.begin("tuple")
        tracer.record("provenance.shield.pass", {"tid": 1})
        assert tracer.events() == []

    def test_keep_overrides_head_sampling(self):
        tracer = Tracer(sample=0.0)
        tracer.begin("tuple")
        tracer.record("provenance.shield.drop", {"tid": 1}, keep=True)
        (event,) = tracer.events()
        assert event.name == "provenance.shield.drop"
        assert event.span_id is not None

    def test_decision_and_event_keep(self):
        tracer = Tracer(sample=0.0)
        tracer.begin("tuple")
        tracer.decision("shield.drop", operator="psi", verdict="drop",
                        keep=True, tid=4)
        tracer.event("health.alert", keep=True, rule="stall")
        tracer.decision("shield.pass", operator="psi", verdict="pass",
                        tid=5)  # not kept: unsampled, keep=False
        tracer.event("debug", x=1)
        names = [e.name for e in tracer.events()]
        assert names == ["provenance.shield.drop", "health.alert"]

    def test_lazy_run_record_materializes_at_read_time(self):
        tracer = Tracer(sample=0.0)
        tracer.begin("batch")
        run = [DataTuple("hr", tid, {"patient": 1, "bpm": 70}, float(tid))
               for tid in (11, 12, 13)]
        tracer.record("provenance.shield.drop",
                      {"verdict": "drop", "_run": run}, keep=True)
        (event,) = tracer.events()
        # the hot-path dict holds the shared run list, no tid copy
        assert event.attrs["_run"] is run
        rendered = event.to_dict()
        assert rendered["tids"] == [11, 12, 13]
        assert "_run" not in rendered


class TestFlightRecorder:
    def test_window_cuts_by_wall_time(self):
        recorder = FlightRecorder(16)
        for i in range(5):
            recorder.emit(SpanEvent("tick", wall=float(i), attrs={"i": i}))
        window = recorder.window(3.0)
        assert [e.attrs["i"] for e in window] == [3, 4]

    def test_dump_jsonl_materializes_runs(self, tmp_path):
        recorder = FlightRecorder(16)
        run = [DataTuple("hr", 21, {"patient": 1, "bpm": 70}, 1.0)]
        recorder.emit(SpanEvent("provenance.shield.drop", wall=1.0,
                                attrs={"verdict": "drop", "_run": run}))
        path = tmp_path / "flight.jsonl"
        count = recorder.dump_jsonl(str(path))
        assert count == 1
        record = json.loads(path.read_text())
        assert record["tids"] == [21]
        assert "_run" not in record

    def test_always_on_and_bounded(self):
        tracer = Tracer(sample=0.0, recorder_capacity=8)
        for i in range(50):
            tracer.begin("tuple")
            tracer.record("provenance.shield.drop", {"i": i}, keep=True)
        assert len(tracer.recorder) == 8
        assert tracer.recorder.events()[-1].attrs["i"] == 49


class TestMentionsAndWhy:
    @staticmethod
    def prov(attrs, name="provenance.shield.drop", trace_id=None):
        return SpanEvent(name, wall=0.0, attrs=attrs, trace_id=trace_id)

    def test_matches_direct_tid(self):
        report = reconstruct_why(
            7, [self.prov({"tid": 7, "verdict": "drop"})])
        assert report.found()
        assert len(report.denials) == 1

    def test_matches_tids_list_and_lazy_run(self):
        run = [DataTuple("hr", 9, {"patient": 1, "bpm": 70}, 1.0)]
        spans = [self.prov({"tids": [8, 9], "verdict": "drop"}),
                 self.prov({"_run": run, "verdict": "drop"})]
        assert len(reconstruct_why(9, spans).decisions) == 2
        assert len(reconstruct_why(8, spans).decisions) == 1
        assert not reconstruct_why(1, spans).found()

    def test_ignores_non_provenance_events(self):
        spans = [SpanEvent("executor.run.end", wall=0.0,
                           attrs={"tid": 7})]
        assert not reconstruct_why(7, spans).found()

    def test_render_names_sp_policy_and_denial(self):
        spans = [
            self.prov({"tid": 7, "operator": "psi", "verdict": "drop",
                       "sp": "grant D on hr", "policy": ["C", "D"],
                       "predicate": ["ND"]}, trace_id=3),
            self.prov({"tid": 7, "operator": "shield",
                       "verdict": "denied", "denial_by_default": True}),
        ]
        text = reconstruct_why(7, spans).render_text()
        assert "governed by sp: grant D on hr" in text
        assert "policy roles: C, D" in text
        assert "role predicate: ND" in text
        assert "no applicable sp (denial-by-default)" in text
        assert "not delivered (denied)" in text
        assert "trace 3" in text

    def test_delivered_queries_from_delivery_shields(self):
        spans = [
            self.prov({"tid": 7, "operator": "delivery:doc",
                       "verdict": "pass"}, name="provenance.shield.pass"),
            self.prov({"tid": 7, "operator": "delivery:doc",
                       "verdict": "pass"}, name="provenance.shield.pass"),
        ]
        report = reconstruct_why(7, spans)
        assert report.delivered_queries == ["doc"]
        assert "delivered to: doc" in report.render_text()


class TestEndToEndWhy:
    """Acceptance: ``why`` for a delivered AND a denied tuple, all tiers."""

    @pytest.mark.parametrize("run_kwargs", MODES)
    def test_delivered_and_denied_reconstruct(self, run_kwargs):
        dsms, results = run_traced(1.0, **run_kwargs)
        delivered_tids = {t.tid for t in results["doc"].tuples}
        assert 105 in delivered_tids       # granted-D segment
        assert 505 not in delivered_tids   # granted-C segment, D query
        events = dsms.observability.tracer.events()

        delivered = reconstruct_why(105, events, audit=dsms.audit)
        assert delivered.found()
        assert delivered.delivered_queries == ["doc"]
        assert "delivered to: doc" in delivered.render_text()

        denied = reconstruct_why(505, events, audit=dsms.audit)
        assert denied.found()
        assert denied.denials
        assert denied.delivered_queries == []
        text = denied.render_text()
        assert "not delivered (denied)" in text
        assert "governed by sp" in text

    @pytest.mark.parametrize("run_kwargs", MODES)
    def test_denial_by_default_reconstructs(self, run_kwargs):
        dsms, results = run_traced(1.0, **run_kwargs)
        report = reconstruct_why(
            999, dsms.observability.tracer.events(), audit=dsms.audit)
        assert report.found()
        assert "denial-by-default" in report.render_text()
        assert all(t.tid != 999 for t in results["doc"].tuples)

    @pytest.mark.parametrize("run_kwargs", MODES)
    def test_denials_survive_default_sampling(self, run_kwargs):
        """Tail-based keep: drops reconstruct even at 1/64 sampling."""
        dsms, _results = run_traced(DEFAULT_SAMPLE_RATE, **run_kwargs)
        events = dsms.observability.tracer.events()
        for tid in (505, 999):
            report = reconstruct_why(tid, events)
            assert report.found(), f"denied tuple {tid} left no provenance"
            assert report.denials

    @pytest.mark.parametrize("run_kwargs", MODES)
    def test_traced_results_identical_to_untraced(self, run_kwargs):
        def delivered(observability):
            dsms = DSMS(observability=observability)
            dsms.register_stream(SCHEMA, segmented_elements())
            dsms.register_query("doc", ScanExpr("hr"), roles={"D"})
            return [(t.tid, t.ts, t.values)
                    for t in dsms.run(**run_kwargs)["doc"].tuples]

        assert delivered(Observability.disabled()) \
            == delivered(Observability.with_tracing())


class TestCliWhy:
    def test_why_explains_demo_tuple(self, capsys):
        from repro.cli import main
        assert main(["why", "120"]) == 0
        out = capsys.readouterr().out
        assert "tuple 120:" in out
        assert "delivered to: q" in out

    def test_why_unknown_tuple_fails(self, capsys):
        from repro.cli import main
        assert main(["why", "424242"]) == 1
        assert "no trace or audit records" in capsys.readouterr().out
