"""Engine instrumentation: what the metric families record end to end.

The tentpole behaviors, measured on real runs and sessions:

* policy-propagation lag observed between an sp's arrival at a shield
  and the first enforcement decision taken under it (scripted
  sp → tuple pushes through a live session);
* end-to-end tuple latency from ``push()`` to sink emission;
* shield pass/drop/denial counters matching delivered results;
* segment-size and sp-batch-size distributions;
* SPIndex scanned/skipped pull-gauges (the Lemma 5.1 hit rate);
* zero-cost-when-off: a disabled DSMS constructs no instruments.
"""

import pytest

from repro.algebra.expressions import ScanExpr
from repro.core.punctuation import SecurityPunctuation
from repro.engine.dsms import DSMS
from repro.observability import Observability
from repro.stream.schema import StreamSchema
from repro.stream.tuples import DataTuple

SCHEMA = StreamSchema("s1", ("v",))


def reading(tid: int, ts: float) -> DataTuple:
    return DataTuple("s1", tid, {"v": float(tid)}, ts)


def make_dsms(observability: Observability) -> DSMS:
    dsms = DSMS(observability=observability)
    dsms.register_stream(SCHEMA, [])
    dsms.register_query("q", ScanExpr("s1"), roles={"D"})
    return dsms


def get_series(instruments, family_name: str) -> dict:
    family = instruments.registry.get(family_name)
    assert family is not None
    return {values: child for values, child in family.series()}


class TestPropagationLag:
    def test_sp_then_tuple_observes_lag(self):
        """The scripted sp→tuple session: lag measured at the shield."""
        dsms = make_dsms(Observability.with_metrics())
        instruments = dsms.observability.instruments
        with dsms.open_session() as session:
            session.push("s1", SecurityPunctuation.grant(["D"], 1.0))
            session.push("s1", reading(0, 2.0))
            session.push("s1", reading(1, 3.0))
        series = get_series(instruments,
                            "repro_policy_propagation_seconds")
        shield_hist = series[("SecurityShield", "q")]
        # One sp-batch -> exactly one propagation observation, taken
        # at the first decision under the new policy.
        assert shield_hist.count == 1
        assert 0.0 < shield_hist.sum < 1.0

    def test_one_observation_per_sp_batch(self):
        dsms = make_dsms(Observability.with_metrics())
        instruments = dsms.observability.instruments
        with dsms.open_session() as session:
            for segment in range(5):
                ts = segment * 10.0
                session.push("s1", SecurityPunctuation.grant(
                    ["D"], ts + 1.0))
                session.push("s1", reading(segment * 2, ts + 2.0))
                session.push("s1", reading(segment * 2 + 1, ts + 3.0))
        series = get_series(instruments,
                            "repro_policy_propagation_seconds")
        assert series[("SecurityShield", "q")].count == 5

    def test_sp_with_no_following_tuple_is_not_observed(self):
        """Lag is sp -> first decision; with no decision, no sample."""
        dsms = make_dsms(Observability.with_metrics())
        instruments = dsms.observability.instruments
        with dsms.open_session() as session:
            session.push("s1", SecurityPunctuation.grant(["D"], 1.0))
        series = get_series(instruments,
                            "repro_policy_propagation_seconds")
        shield_hist = series.get(("SecurityShield", "q"))
        assert shield_hist is None or shield_hist.count == 0


class TestTupleLatency:
    def test_each_delivered_tuple_observed(self):
        dsms = make_dsms(Observability.with_metrics())
        instruments = dsms.observability.instruments
        with dsms.open_session() as session:
            session.push("s1", SecurityPunctuation.grant(["D"], 1.0))
            for tid in range(4):
                session.push("s1", reading(tid, 2.0 + tid))
            delivered = len(session.results("q"))
        series = get_series(instruments, "repro_tuple_latency_seconds")
        hist = series[("q",)]
        assert delivered == 4
        assert hist.count == 4
        assert hist.max < 1.0  # sub-second in-process delivery

    def test_dropped_tuples_are_not_observed(self):
        dsms = make_dsms(Observability.with_metrics())
        instruments = dsms.observability.instruments
        with dsms.open_session() as session:
            session.push("s1", SecurityPunctuation.grant(["N"], 1.0))
            session.push("s1", reading(0, 2.0))
        series = get_series(instruments, "repro_tuple_latency_seconds")
        assert ("q",) not in series or series[("q",)].count == 0


class TestShieldCounters:
    def test_pass_drop_and_denial_counts(self):
        dsms = make_dsms(Observability.with_metrics())
        instruments = dsms.observability.instruments
        with dsms.open_session() as session:
            # Denial-by-default prefix: no policy yet.
            session.push("s1", reading(0, 1.0))
            session.push("s1", reading(1, 2.0))
            # Granted segment.
            session.push("s1", SecurityPunctuation.grant(["D"], 3.0))
            session.push("s1", reading(2, 4.0))
            # Revoked segment.
            session.push("s1", SecurityPunctuation.grant(["N"], 5.0))
            session.push("s1", reading(3, 6.0))
            delivered = len(session.results("q"))
        assert delivered == 1
        shields = get_series(instruments, "repro_shield_tuples_total")
        by_verdict = {values[-1]: child.current()
                      for values, child in shields.items()
                      if values[0] == "SecurityShield"}
        assert by_verdict == {"drop": 3.0, "pass": 1.0}
        denials = get_series(instruments,
                             "repro_denial_by_default_drops_total")
        assert denials[("SecurityShield", "q")].current() == 2.0

    def test_counters_match_batched_run(self):
        elements = [reading(0, 1.0),
                    SecurityPunctuation.grant(["D"], 2.0),
                    reading(1, 3.0), reading(2, 4.0),
                    SecurityPunctuation.grant(["N"], 5.0),
                    reading(3, 6.0)]
        dsms = DSMS(observability=Observability.with_metrics())
        dsms.register_stream(SCHEMA, elements)
        dsms.register_query("q", ScanExpr("s1"), roles={"D"})
        results = dsms.run(batching=True)
        assert len(results["q"].tuples) == 2
        instruments = dsms.observability.instruments
        shields = get_series(instruments, "repro_shield_tuples_total")
        by_verdict = {values[-1]: child.current()
                      for values, child in shields.items()
                      if values[0] == "SecurityShield"}
        assert by_verdict == {"drop": 2.0, "pass": 2.0}
        denials = get_series(instruments,
                             "repro_denial_by_default_drops_total")
        assert denials[("SecurityShield", "q")].current() == 1.0


class TestDistributions:
    def test_segment_and_batch_sizes(self):
        dsms = make_dsms(Observability.with_metrics())
        instruments = dsms.observability.instruments
        with dsms.open_session() as session:
            for segment in range(3):
                ts = segment * 10.0
                session.push("s1", SecurityPunctuation.grant(
                    ["D"], ts + 1.0))
                for k in range(segment + 1):  # sizes 1, 2, 3
                    session.push("s1", reading(segment * 4 + k,
                                               ts + 2.0 + k))
        segments = get_series(instruments, "repro_segment_size_tuples")
        shield_hist = segments[("SecurityShield",)]
        assert shield_hist.count == 3
        assert shield_hist.sum == pytest.approx(6.0)
        assert shield_hist.max == pytest.approx(3.0)
        batches = get_series(instruments, "repro_sp_batch_size_sps")
        assert batches[()].count == 3
        assert batches[()].max == pytest.approx(1.0)


class TestSPIndexGauges:
    def test_scanned_and_skipped_pull_gauges(self):
        left_schema = StreamSchema("left", ("k", "a"))
        right_schema = StreamSchema("right", ("k", "b"))
        left, right = [], []
        ts = 0.0
        for segment in range(4):
            ts += 1.0
            left.append(SecurityPunctuation.grant(
                ["D"], ts, provider="l"))
            right.append(SecurityPunctuation.grant(
                ["D"] if segment % 2 else ["N"], ts + 0.25,
                provider="r"))
            for k in range(3):
                ts += 1.0
                tid = segment * 3 + k
                left.append(DataTuple("left", tid,
                                      {"k": k, "a": tid}, ts))
                right.append(DataTuple("right", tid,
                                       {"k": k, "b": tid}, ts + 0.25))
        dsms = DSMS(observability=Observability.with_metrics())
        dsms.register_stream(left_schema, left)
        dsms.register_stream(right_schema, right)
        expr = ScanExpr("left").join(ScanExpr("right"), "k", "k", 30.0,
                                     variant="index")
        dsms.register_query("q", expr, roles={"D"})
        dsms.run()
        instruments = dsms.observability.instruments
        series = get_series(instruments, "repro_spindex_entries_total")
        sides = {values[1] for values in series}
        assert sides == {"left", "right"}
        scanned = sum(child.current() for values, child in series.items()
                      if values[2] == "scanned")
        assert scanned > 0


class TestExemplars:
    def test_latency_exemplars_point_at_sampled_traces(self):
        from repro.observability.export import render_json
        import json

        from repro.observability.metrics import MetricsRegistry
        from repro.observability.provenance import Tracer

        tracer = Tracer(sample=1.0)
        dsms = DSMS(observability=Observability(
            tracer=tracer, metrics=MetricsRegistry()))
        dsms.register_stream(SCHEMA, [
            SecurityPunctuation.grant(["D"], 0.0, provider="p"),
            reading(1, 1.0), reading(2, 2.0),
        ])
        dsms.register_query("q", ScanExpr("s1"), roles={"D"})
        dsms.run()
        instruments = dsms.observability.instruments
        latency = get_series(instruments, "repro_operator_latency_seconds")
        tagged = [child for child in latency.values() if child.exemplars]
        assert tagged, "no latency bucket carries an exemplar"
        trace_ids = {trace_id for child in tagged
                     for _, trace_id, _ in child.exemplars.values()}
        assert trace_ids <= set(range(1, tracer.traces + 1))
        # exemplars surface in the JSON exposition
        snapshot = json.loads(render_json(
            dsms.observability.metrics))
        entries = snapshot["repro_operator_latency_seconds"]["series"]
        assert any("exemplars" in entry for entry in entries)

    def test_unsampled_traces_leave_no_exemplars(self):
        from repro.observability.metrics import MetricsRegistry
        from repro.observability.provenance import Tracer

        dsms = DSMS(observability=Observability(
            tracer=Tracer(sample=0.0), metrics=MetricsRegistry()))
        dsms.register_stream(SCHEMA, [
            SecurityPunctuation.grant(["D"], 0.0, provider="p"),
            reading(1, 1.0),
        ])
        dsms.register_query("q", ScanExpr("s1"), roles={"D"})
        dsms.run()
        latency = get_series(dsms.observability.instruments,
                             "repro_operator_latency_seconds")
        assert all(child.exemplars is None
                   for child in latency.values())


class TestZeroCostWhenOff:
    def test_disabled_dsms_has_no_instruments(self):
        dsms = make_dsms(Observability.disabled())
        assert dsms.observability.instruments is None
        plan, _sinks = dsms.build_plan()
        for operator in plan.operators():
            assert operator._m_latency is None  # noqa: SLF001

    def test_run_and_session_work_without_metrics(self):
        dsms = make_dsms(Observability.disabled())
        with dsms.open_session() as session:
            session.push("s1", SecurityPunctuation.grant(["D"], 1.0))
            session.push("s1", reading(0, 2.0))
            assert len(session.results("q")) == 1
