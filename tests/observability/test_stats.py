"""Tests for per-operator stage metrics and report aggregation."""

from repro.algebra.expressions import ScanExpr
from repro.core.punctuation import SecurityPunctuation
from repro.engine.dsms import DSMS
from repro.observability import StageStats, aggregate_stages
from repro.operators.shield import SecurityShield
from repro.stream.schema import StreamSchema
from repro.stream.tuples import DataTuple

SCHEMA = StreamSchema("hr", ("patient", "bpm"), key="patient")


def elements():
    return [
        SecurityPunctuation.grant(["D"], 0.0, provider="p"),
        DataTuple("hr", 1, {"patient": 1, "bpm": 70}, 1.0),
        SecurityPunctuation.grant(["C"], 2.0, provider="p"),
        DataTuple("hr", 2, {"patient": 2, "bpm": 80}, 3.0),
    ]


def run_dsms():
    dsms = DSMS()
    dsms.register_stream(SCHEMA, elements())
    dsms.register_query("doc", ScanExpr("hr"), roles={"D"})
    results = dsms.run()
    return dsms, results


class TestStageStats:
    def test_report_contains_all_stages(self):
        dsms, _ = run_dsms()
        report = dsms.last_report
        assert report is not None
        # Root shield, delivery shield, sink.
        assert len(report.stages) == 3
        assert {s.kind for s in report.stages} == {
            "SecurityShield", "CollectingSink"}

    def test_shield_stage_counts_drops(self):
        dsms, results = run_dsms()
        report = dsms.last_report
        shield = next(s for s in report.stages
                      if s.kind == "SecurityShield"
                      and not s.name.startswith("delivery"))
        assert shield.tuples_in == 2
        assert shield.tuples_out == 1
        assert shield.drops == 1
        assert shield.sps_in == 2
        assert 0.0 < shield.selectivity < 1.0
        assert shield.processing_time > 0.0
        assert shield.ewma_seconds > 0.0
        assert len(results["doc"].tuples) == 1

    def test_report_lookup_and_totals(self):
        dsms, _ = run_dsms()
        report = dsms.last_report
        assert report.stage("sink:doc") is not None
        assert report.stage("no-such-operator") is None
        totals = report.totals()
        assert totals["operators"] == 3
        assert totals["drops"] == report.total_drops == 1
        assert totals["processing_time"] > 0.0

    def test_stage_stats_snapshot_is_immutable_view(self):
        shield = SecurityShield({"D"})
        shield.process(SecurityPunctuation.grant(["D"], 0.0))
        shield.process(DataTuple("s", 1, {"x": 1}, 1.0))
        snap = shield.stage_stats()
        assert isinstance(snap, StageStats)
        assert snap.elements_in == 2
        assert snap.queue_depth == shield.state_size()
        shield.process(DataTuple("s", 2, {"x": 2}, 2.0))
        assert snap.tuples_in == 1  # old snapshot unchanged

    def test_aggregate_of_empty_is_zero(self):
        totals = aggregate_stages([])
        assert totals["operators"] == 0
        assert totals["drops"] == 0


class TestSessionReport:
    def test_mid_session_report(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA, [])
        dsms.register_query("doc", ScanExpr("hr"), roles={"D"})
        session = dsms.open_session()
        session.push("hr", SecurityPunctuation.grant(["D"], 0.0,
                                                     provider="p"))
        session.push("hr", DataTuple("hr", 1, {"patient": 1, "bpm": 70},
                                     1.0))
        report = session.report()
        assert report.elements_in == 2
        shield = next(s for s in report.stages
                      if s.kind == "SecurityShield")
        assert shield.tuples_in == 1
        session.close()
