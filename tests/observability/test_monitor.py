"""The top-style monitor view: panels, frames, live rendering."""

from repro.observability.health import HealthMonitor
from repro.observability.instruments import EngineInstruments
from repro.observability.metrics import MetricsRegistry
from repro.observability.monitor import _CLEAR, MonitorView, run_monitor
from repro.observability.stats import StageStats


def make_instruments() -> EngineInstruments:
    instruments = EngineInstruments(MetricsRegistry())
    instruments.tuples_in.inc(10)
    instruments.sps_in.inc(2)
    instruments.operator_latency.labels("shield", "SecurityShield"
                                        ).observe(1e-5)
    instruments.tuple_latency.labels("q").observe(2e-4)
    instruments.propagation.labels("shield", "q").observe(5e-5)
    instruments.shield_tuples.labels("shield", "q", "D", "pass").inc(7)
    instruments.shield_tuples.labels("shield", "q", "D", "drop").inc(3)
    instruments.denial_drops.labels("shield", "q").inc(2)
    instruments.segment_size.labels("shield").observe(5)
    instruments.sp_batch_size.observe(2)
    instruments.spindex_entries.labels("join", "left",
                                       "scanned").set(100)
    instruments.spindex_entries.labels("join", "left", "skipped").set(40)
    return instruments


def stage_rows():
    return [StageStats(
        name="shield", kind="SecurityShield", tuples_in=10,
        tuples_out=7, sps_in=2, sps_out=2, drops=3, comparisons=0,
        state_ops=0, processing_time=0.001, ewma_seconds=1e-5,
        queue_depth=0)]


class TestPanels:
    def test_frame_contains_every_panel(self):
        view = MonitorView(make_instruments(), stages=stage_rows)
        frame = view.render()
        assert "repro monitor" in frame
        assert "operators" in frame and "shield" in frame
        assert "latency (seconds)" in frame
        assert "propagation" in frame and "e2e tuple" in frame
        assert "security" in frame
        assert "segment tuples" in frame and "sp-batch sps" in frame
        assert "spindex" in frame

    def test_shield_panel_merges_verdicts(self):
        view = MonitorView(make_instruments())
        frame = view.render()
        # pass and drop land on one row, with the denial column.
        rows = [line.split() for line in frame.splitlines()]
        assert ["shield", "q", "D", "7", "3", "2"] in rows

    def test_skip_rate_is_ratio_of_gauges(self):
        view = MonitorView(make_instruments())
        frame = view.render()
        row = next(line for line in frame.splitlines()
                   if line.strip().startswith("join"))
        assert row.split() == ["join", "left", "100", "40", "0.4"]

    def test_totals_line(self):
        view = MonitorView(make_instruments())
        assert "elements: 10 tuples, 2 sps" in view.render()

    def test_empty_instruments_render_minimal_frame(self):
        view = MonitorView(EngineInstruments(MetricsRegistry()))
        frame = view.render()
        assert "repro monitor" in frame
        assert "latency" not in frame

    def test_health_panel_reports_alerts(self):
        instruments = make_instruments()
        instruments.mark_ingest(0.0)
        health = HealthMonitor(instruments, stall_after=0.001,
                               clock=lambda: 100.0)
        view = MonitorView(instruments, health=health)
        frame = view.render()
        assert "[critical] stalled_stream" in frame

    def test_health_panel_when_quiet(self):
        instruments = EngineInstruments(MetricsRegistry())
        health = HealthMonitor(instruments)
        view = MonitorView(instruments, health=health)
        assert "ok - no alerts" in view.render()


class TestRunMonitor:
    def test_renders_requested_frames(self):
        view = MonitorView(make_instruments())
        frames: list[str] = []
        rendered = run_monitor(view, frames=3, interval=0,
                               clear=False, write=frames.append)
        assert rendered == 3
        assert len(frames) == 3
        assert view.frames_rendered == 3
        assert not frames[0].startswith(_CLEAR)

    def test_clear_mode_prefixes_ansi(self):
        view = MonitorView(make_instruments())
        frames: list[str] = []
        run_monitor(view, frames=1, interval=0, clear=True,
                    write=frames.append)
        assert frames[0].startswith(_CLEAR)

    def test_sleeps_between_frames_only(self):
        view = MonitorView(make_instruments())
        naps: list[float] = []
        run_monitor(view, frames=3, interval=0.25, clear=False,
                    write=lambda _: None, sleep=naps.append)
        assert naps == [0.25, 0.25]

    def test_keyboard_interrupt_exits_cleanly(self):
        view = MonitorView(make_instruments())

        def write(_):
            raise KeyboardInterrupt

        rendered = run_monitor(view, frames=5, interval=0,
                               clear=False, write=write)
        assert rendered == 0
