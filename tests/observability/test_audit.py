"""Tests for the security audit trail."""

import io
import json

import pytest

from repro.algebra.expressions import ScanExpr
from repro.core.punctuation import SecurityPunctuation
from repro.engine.dsms import DSMS
from repro.observability import AuditLog, Observability
from repro.operators.join import NestedLoopSAJoin
from repro.stream.schema import StreamSchema
from repro.stream.tuples import DataTuple

SCHEMA = StreamSchema("hr", ("patient", "bpm"), key="patient")


def grant(roles, ts):
    return SecurityPunctuation.grant(roles, ts, provider="p1")


def reading(patient, bpm, ts):
    return DataTuple("hr", patient, {"patient": patient, "bpm": bpm}, ts)


def quickstart_elements():
    return [
        grant(["D", "ND"], 0.0),
        reading(1, 72, 1.0),
        reading(2, 75, 2.0),
        grant(["D", "C"], 3.0),
        reading(3, 148, 4.0),
    ]


def observed_dsms():
    dsms = DSMS(observability=Observability.in_memory())
    dsms.register_stream(SCHEMA, quickstart_elements())
    return dsms


class TestShieldAudit:
    def test_denied_tuple_produces_exactly_one_drop_record(self):
        dsms = observed_dsms()
        dsms.register_query("nurse", ScanExpr("hr"), roles={"ND"})
        dsms.run()
        drops = dsms.audit.events(kind="shield.drop")
        # Tuple 3 is in the {C, D} segment; the nurse shield denies it
        # once (the delivery shield never sees it).
        assert len(drops) == 1
        event = drops[0]
        assert event.tid == 3
        assert event.sid == "hr"
        assert event.operator  # names the deciding shield
        assert event.predicate == ("ND",)
        assert event.sp is not None and "C" in event.sp and "3.0" in event.sp
        assert event.query == "nurse"

    def test_every_drop_attributable_to_an_sp(self):
        dsms = observed_dsms()
        dsms.register_query("nurse", ScanExpr("hr"), roles={"ND"})
        dsms.register_query("cardio", ScanExpr("hr"), roles={"C"})
        dsms.run()
        blocked = sum(s.tuples_blocked
                      for name in ("nurse", "cardio")
                      for s in dsms.shields(name))
        drops = dsms.audit.events(kind="shield.drop")
        assert blocked == len(drops) > 0
        for event in drops:
            assert event.sp is not None
            explained = dsms.audit.explain(event.tid)
            assert event in explained

    def test_explain_names_the_deciding_sp(self):
        dsms = observed_dsms()
        dsms.register_query("nurse", ScanExpr("hr"), roles={"ND"})
        dsms.run()
        events = dsms.audit.explain(3)
        assert events and all(e.tid == 3 for e in events)
        assert any("{C, D}" in (e.sp or "") for e in events)

    def test_segment_verdicts_recorded(self):
        dsms = observed_dsms()
        dsms.register_query("nurse", ScanExpr("hr"), roles={"ND"})
        dsms.run()
        segments = dsms.audit.events(kind="shield.segment")
        verdicts = [e.detail["verdict"] for e in segments
                    if e.operator == "SecurityShield"]
        assert verdicts == ["pass", "drop"]

    def test_disabled_observability_records_nothing(self):
        dsms = DSMS()
        dsms.register_stream(SCHEMA, quickstart_elements())
        dsms.register_query("nurse", ScanExpr("hr"), roles={"ND"})
        dsms.run()
        assert dsms.audit is None
        assert all(s.audit is None for s in dsms.shields("nurse"))


class TestMidSessionRebind:
    def test_role_switch_visible_in_audit(self):
        dsms = DSMS(observability=Observability.in_memory())
        dsms.register_stream(SCHEMA, [])
        dsms.register_query("q", ScanExpr("hr"), roles={"D"})
        session = dsms.open_session()
        session.push("hr", grant(["D"], 0.0))
        out = session.push("hr", reading(1, 70, 1.0))
        assert [t.tid for t in out["q"] if isinstance(t, DataTuple)] == [1]

        dsms.update_query_roles("q", {"C"})
        out = session.push("hr", reading(2, 80, 2.0))
        assert [t for t in out["q"] if isinstance(t, DataTuple)] == []
        session.close()

        rebinds = dsms.audit.events(kind="shield.rebind")
        assert len(rebinds) == len(dsms.shields("q"))
        assert all(e.predicate == ("C",) for e in rebinds)
        assert all(e.detail["previous"] == ["D"] for e in rebinds)

        drops = dsms.audit.events(kind="shield.drop")
        assert [e.tid for e in drops] == [2]
        assert drops[0].predicate == ("C",)
        # The trail shows the order: rebind happened before the drop.
        assert rebinds[0].seq < drops[0].seq


class TestAnalyzerAudit:
    def test_server_refinement_recorded(self):
        dsms = observed_dsms()
        dsms.add_server_policy(SecurityPunctuation.grant(["D"], ts=0.0))
        dsms.register_query("doc", ScanExpr("hr"), roles={"D"})
        dsms.run()
        refines = dsms.audit.events(kind="analyzer.refine")
        assert len(refines) == 2  # both provider sps intersected
        assert refines[0].operator == "SPAnalyzer"
        assert refines[0].detail["result_roles"] == ["D"]
        assert refines[0].policy == ("D", "ND")


class TestJoinAudit:
    def test_policy_reject_recorded(self):
        audit = AuditLog()
        join = NestedLoopSAJoin("k", "k", 100.0,
                                left_sid="l", right_sid="r")
        join.audit = audit
        join.process(SecurityPunctuation.grant(["A"], 0.0), 0)
        join.process(DataTuple("l", 1, {"k": 7}, 1.0), 0)
        join.process(SecurityPunctuation.grant(["B"], 0.0), 1)
        out = join.process(DataTuple("r", 2, {"k": 7}, 1.0), 1)
        assert out == []  # join value matched, policies disjoint
        rejects = audit.events(kind="join.policy_reject")
        assert len(rejects) == 1
        assert rejects[0].detail["other_policy"] == ["A"]
        assert rejects[0].policy == ("B",)


class TestAuditLogMechanics:
    def test_bounded_eviction_keeps_counts_exact(self):
        log = AuditLog(capacity=5)
        for i in range(12):
            log.record("shield.drop", ts=float(i), operator="ss", tid=i)
        assert len(log) == 5
        assert log.evicted == 7
        assert log.counts["shield.drop"] == 12
        assert [e.tid for e in log] == [7, 8, 9, 10, 11]

    def test_filtering_by_query_and_kind(self):
        log = AuditLog()
        log.record("shield.drop", ts=0.0, operator="a", query="q1")
        log.record("shield.drop", ts=0.0, operator="b", query="q2")
        log.record("shield.segment", ts=0.0, operator="a", query="q1")
        assert len(log.events(query="q1")) == 2
        assert len(log.events(query="q1", kind="shield.drop")) == 1
        assert log.last("shield.drop").operator == "b"

    def test_jsonl_export_round_trips(self):
        log = AuditLog()
        log.record("shield.drop", ts=1.0, operator="ss", query="q",
                   sid="hr", tid=3, predicate=("ND",),
                   policy=("C", "D"), sp="<sp>", note="x")
        buffer = io.StringIO()
        assert log.to_jsonl(buffer) == 1
        record = json.loads(buffer.getvalue())
        assert record["kind"] == "shield.drop"
        assert record["predicate"] == ["ND"]
        assert record["detail"] == {"note": "x"}

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            AuditLog(capacity=0)
