"""Tests for the pluggable trace sinks and engine emission sites."""

import io
import json

import pytest

from repro.algebra.expressions import ScanExpr
from repro.core.punctuation import SecurityPunctuation
from repro.engine.dsms import DSMS
from repro.observability import (JsonlTraceSink, NullTraceSink, Observability,
                                 RingBufferTraceSink)
from repro.stream.schema import StreamSchema
from repro.stream.tuples import DataTuple

SCHEMA = StreamSchema("hr", ("patient", "bpm"), key="patient")


def elements():
    return [
        SecurityPunctuation.grant(["D"], 0.0, provider="p"),
        DataTuple("hr", 1, {"patient": 1, "bpm": 70}, 1.0),
    ]


def traced_dsms(sink):
    dsms = DSMS(observability=Observability(tracer=sink))
    dsms.register_stream(SCHEMA, elements())
    dsms.register_query("doc", ScanExpr("hr"), roles={"D"})
    return dsms


class TestEngineSpans:
    def test_run_emits_executor_and_analyzer_spans(self):
        sink = RingBufferTraceSink()
        dsms = traced_dsms(sink)
        dsms.run()
        names = [e.name for e in sink.events()]
        assert names.count("executor.run.start") == 1
        assert names.count("executor.run.end") == 1
        assert names.index("executor.run.start") < names.index(
            "executor.run.end")
        assert "analyzer.batch" in names
        batch = sink.events("analyzer.batch")[0]
        assert batch.attrs["sps_in"] == 1
        end = sink.events("executor.run.end")[0]
        assert end.attrs["elements_in"] == 2

    def test_session_lifecycle_spans(self):
        sink = RingBufferTraceSink()
        dsms = DSMS(observability=Observability(tracer=sink))
        dsms.register_stream(SCHEMA, [])
        dsms.register_query("doc", ScanExpr("hr"), roles={"D"})
        with dsms.open_session() as session:
            for element in elements():
                session.push("hr", element)
        opens = sink.events("session.open")
        assert len(opens) == 1
        assert opens[0].attrs["queries"] == ["doc"]
        pushes = sink.events("session.push")
        assert [e.attrs["kind"] for e in pushes] == ["sp", "tuple"]
        closes = sink.events("session.close")
        assert len(closes) == 1
        assert closes[0].attrs["elements_pushed"] == 2

    def test_default_sink_is_silent_null(self):
        dsms = DSMS()
        assert isinstance(dsms.observability.tracer, NullTraceSink)
        assert not dsms.observability.tracer.enabled
        # span() on a disabled sink must not build or emit anything
        dsms.observability.tracer.span("anything", x=1)


class TestRingBufferTraceSink:
    def test_bounded(self):
        sink = RingBufferTraceSink(capacity=3)
        for i in range(10):
            sink.span("tick", i=i)
        assert len(sink) == 3
        assert [e.attrs["i"] for e in sink.events()] == [7, 8, 9]
        sink.clear()
        assert len(sink) == 0

    def test_filter_by_name(self):
        sink = RingBufferTraceSink()
        sink.span("a")
        sink.span("b")
        sink.span("a")
        assert len(sink.events("a")) == 2
        assert len(sink.events()) == 3

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferTraceSink(capacity=0)


class TestJsonlTraceSink:
    def test_writes_parseable_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(str(path)) as sink:
            dsms = traced_dsms(sink)
            dsms.run()
            assert sink.emitted > 0
        lines = path.read_text().splitlines()
        assert len(lines) == sink.emitted
        records = [json.loads(line) for line in lines]
        assert any(r["name"] == "executor.run.end" for r in records)
        assert all("wall" in r for r in records)

    def test_file_object_target_left_open(self):
        buffer = io.StringIO()
        sink = JsonlTraceSink(buffer)
        sink.span("x", n=1)
        sink.close()
        assert not buffer.closed
        assert json.loads(buffer.getvalue())["n"] == 1

    def test_events_carry_monotonic_stamps(self):
        buffer = io.StringIO()
        sink = JsonlTraceSink(buffer)
        sink.span("a")
        sink.span("b")
        monos = [json.loads(line)["mono"]
                 for line in buffer.getvalue().splitlines()]
        assert all(isinstance(m, int) for m in monos)
        assert monos[0] <= monos[1]

    def test_max_bytes_rotation(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(str(path), max_bytes=400)
        for i in range(100):
            sink.span("tick", i=i)
        sink.close()
        assert sink.rotations >= 1
        rotated = tmp_path / "trace.jsonl.1"
        assert rotated.exists()
        assert rotated.stat().st_size <= 400
        assert path.stat().st_size <= 400
        # the live file continues the stream the rotation cut
        last_rotated = json.loads(
            rotated.read_text().splitlines()[-1])["i"]
        first_current = json.loads(
            path.read_text().splitlines()[0])["i"]
        assert first_current == last_rotated + 1
        assert json.loads(path.read_text().splitlines()[-1])["i"] == 99

    def test_rotation_never_touches_caller_owned_files(self):
        buffer = io.StringIO()
        sink = JsonlTraceSink(buffer, max_bytes=10)
        for i in range(20):
            sink.span("tick", i=i)
        assert sink.rotations == 0
        assert len(buffer.getvalue().splitlines()) == 20

    def test_closed_sink_reads_as_disabled(self, tmp_path):
        from repro.observability.provenance import Tracer

        sink = JsonlTraceSink(str(tmp_path / "trace.jsonl"))
        tracer = Tracer(sink, sample=1.0)
        tracer.begin("tuple")
        sink.close()
        assert not sink.enabled
        # late emitters (e.g. a shutdown health alert) skip the sink
        tracer.event("health.alert", keep=True, rule="stall")
        (span,) = tracer.events("health.alert")
        assert span.attrs["rule"] == "stall"

    def test_rejects_nonpositive_max_bytes(self):
        with pytest.raises(ValueError):
            JsonlTraceSink(io.StringIO(), max_bytes=0)

    def test_context_manager_flushes_on_error_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with pytest.raises(RuntimeError):
            with JsonlTraceSink(str(path)) as sink:
                sink.span("before.crash", n=1)
                raise RuntimeError("traced run crashed")
        # __exit__ closed (hence flushed) the file despite the error
        record = json.loads(path.read_text().splitlines()[0])
        assert record["name"] == "before.crash"
        with pytest.raises(ValueError):
            sink._fp.write("x")  # file is really closed
        sink.close()  # idempotent on a closed sink
