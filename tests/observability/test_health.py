"""Health rules: stalled streams, propagation lag, denial churn."""

import pytest

from repro.observability.health import HealthMonitor
from repro.observability.instruments import EngineInstruments
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import RingBufferTraceSink


@pytest.fixture
def instruments():
    return EngineInstruments(MetricsRegistry())


def make_monitor(instruments, *, now=100.0, **kwargs):
    clock = lambda: now  # noqa: E731 - deterministic test clock
    return HealthMonitor(instruments, clock=clock, **kwargs)


class TestStalledStream:
    def test_idle_engine_is_not_stalled(self, instruments):
        monitor = make_monitor(instruments, stall_after=5.0)
        assert monitor.check() == []

    def test_recent_ingest_is_healthy(self, instruments):
        instruments.mark_ingest(98.0)
        monitor = make_monitor(instruments, stall_after=5.0)
        assert monitor.check() == []

    def test_old_ingest_trips_critical(self, instruments):
        instruments.mark_ingest(90.0)
        monitor = make_monitor(instruments, stall_after=5.0)
        alerts = monitor.check()
        assert [a.rule for a in alerts] == ["stalled_stream"]
        assert alerts[0].severity == "critical"
        assert alerts[0].value == pytest.approx(10.0)

    def test_explicit_now_overrides_clock(self, instruments):
        instruments.mark_ingest(90.0)
        monitor = make_monitor(instruments, stall_after=5.0)
        assert monitor.check(now=92.0) == []


class TestPropagationLag:
    def test_fast_propagation_is_healthy(self, instruments):
        for _ in range(20):
            instruments.propagation.labels("shield", "q").observe(1e-4)
        monitor = make_monitor(instruments, propagation_p95=0.5)
        assert monitor.check() == []

    def test_slow_propagation_warns_per_series(self, instruments):
        for _ in range(20):
            instruments.propagation.labels("slow", "q1").observe(2.0)
            instruments.propagation.labels("fast", "q2").observe(1e-4)
        monitor = make_monitor(instruments, propagation_p95=0.5)
        alerts = monitor.check()
        assert [a.rule for a in alerts] == ["propagation_lag"]
        assert "slow" in alerts[0].message
        assert alerts[0].value > 0.5

    def test_threshold_validation(self, instruments):
        with pytest.raises(ValueError):
            HealthMonitor(instruments, propagation_p95=0.0)
        with pytest.raises(ValueError):
            HealthMonitor(instruments, stall_after=-1.0)


class TestDenialChurn:
    def test_growth_between_checks_warns_once(self, instruments):
        monitor = make_monitor(instruments)
        assert monitor.check() == []
        instruments.denial_drops.labels("shield", "q").inc(4)
        alerts = monitor.check()
        assert [a.rule for a in alerts] == ["denial_by_default"]
        assert alerts[0].value == pytest.approx(4.0)
        # No further growth: no repeat alert.
        assert monitor.check() == []


class TestAlertRouting:
    def test_alerts_reach_the_trace_sink(self, instruments):
        tracer = RingBufferTraceSink()
        instruments.mark_ingest(0.0)
        monitor = make_monitor(instruments, now=50.0, stall_after=5.0,
                               tracer=tracer)
        monitor.check()
        spans = tracer.events("health.alert")
        assert len(spans) == 1
        assert spans[0].attrs["rule"] == "stalled_stream"
        assert spans[0].attrs["severity"] == "critical"

    def test_history_accumulates(self, instruments):
        monitor = make_monitor(instruments, stall_after=5.0)
        instruments.mark_ingest(90.0)
        monitor.check()
        monitor.check()
        assert len(monitor.alerts) == 2

    def test_causal_alert_survives_head_sampling(self, instruments):
        from repro.observability.provenance import Tracer

        tracer = Tracer(sample=0.0)  # no trace is ever head-sampled
        instruments.mark_ingest(0.0)
        monitor = make_monitor(instruments, now=50.0, stall_after=5.0,
                               tracer=tracer)
        monitor.check()
        (span,) = tracer.events("health.alert")
        assert span.attrs["rule"] == "stalled_stream"
        assert span.span_id is not None

    def test_alert_dumps_flight_recorder_window(self, instruments,
                                                tmp_path):
        import json

        from repro.observability.provenance import Tracer

        tracer = Tracer(sample=1.0)
        for i in range(5):
            tracer.begin("tuple")
            tracer.record("provenance.shield.drop",
                          {"tid": i, "verdict": "drop"}, keep=True)
        path = tmp_path / "flight.jsonl"
        instruments.mark_ingest(0.0)
        monitor = make_monitor(instruments, now=50.0, stall_after=5.0,
                               tracer=tracer, flight_path=str(path))
        monitor.check()
        assert monitor.flight_dumps and monitor.flight_dumps[0][0] \
            == str(path)
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert len(records) == monitor.flight_dumps[0][1]
        # spans leading up to the alert AND the alert itself are there
        names = [r["name"] for r in records]
        assert "provenance.shield.drop" in names
        assert "health.alert" in names
        # second check with no new alert: no second dump
        monitor.check()
        assert len(monitor.flight_dumps) == 2  # stall still firing
        instruments.mark_ingest(49.0)
        flights = len(monitor.flight_dumps)
        monitor.check()
        assert len(monitor.flight_dumps) == flights
