"""Tests for the moving-objects workload (network, objects, generator)."""

import networkx as nx
import pytest

from repro.core.punctuation import SecurityPunctuation
from repro.mog.generator import LOCATION_SCHEMA, MovingObjectsGenerator
from repro.mog.network import make_city_network
from repro.mog.objects import MovingObject
from repro.stream.element import count_elements, is_punctuation, is_tuple
from repro.stream.ordering import ensure_ordered
from repro.stream.tuples import DataTuple


class TestNetwork:
    def test_connected(self):
        network = make_city_network(8, 8, seed=1)
        assert nx.is_connected(network.graph)

    def test_some_streets_removed(self):
        full_edges = 2 * 8 * 8 - 8 - 8  # grid edge count
        network = make_city_network(8, 8, removal_fraction=0.1, seed=1)
        assert network.edge_count() < full_edges

    def test_positions_and_lengths(self):
        network = make_city_network(4, 4, seed=2)
        node = network.random_node(__import__("random").Random(0))
        x, y = network.position(node)
        assert isinstance(x, float) and isinstance(y, float)
        u, v = next(iter(network.graph.edges))
        assert network.edge_length(u, v) > 0

    def test_shortest_path_endpoints(self):
        network = make_city_network(5, 5, seed=3)
        path = network.shortest_path((0, 0), (4, 4))
        assert path[0] == (0, 0)
        assert path[-1] == (4, 4)

    def test_deterministic_by_seed(self):
        a = make_city_network(6, 6, seed=42)
        b = make_city_network(6, 6, seed=42)
        assert sorted(a.graph.edges) == sorted(b.graph.edges)


class TestMovingObject:
    def test_moves_over_time(self):
        network = make_city_network(6, 6, seed=0)
        obj = MovingObject(1, network, speed=20.0)
        start = obj.position()
        obj.step(5.0)
        assert obj.position() != start

    def test_keeps_moving_across_trips(self):
        network = make_city_network(4, 4, seed=0)
        obj = MovingObject(2, network, speed=100.0)
        positions = set()
        for _ in range(50):
            obj.step(1.0)
            positions.add(obj.position())
        assert len(positions) > 10

    def test_distance(self):
        network = make_city_network(4, 4, seed=0)
        obj = MovingObject(3, network)
        x, y = obj.position()
        assert obj.distance_to(x, y) == pytest.approx(0.0)


class TestGenerator:
    def test_segment_mode_ratio(self):
        gen = MovingObjectsGenerator(n_objects=10, tuples_per_sp=5, seed=1)
        elements = gen.materialize(n_ticks=10)
        n_tuples, n_sps = count_elements(elements)
        assert n_tuples == 100
        assert n_sps == n_tuples / 5

    def test_elements_are_timestamp_ordered(self):
        gen = MovingObjectsGenerator(n_objects=5, seed=2)
        list(ensure_ordered(gen.elements(5)))  # raises if unordered

    def test_sp_precedes_its_segment(self):
        gen = MovingObjectsGenerator(n_objects=3, tuples_per_sp=4, seed=3)
        elements = gen.materialize(n_ticks=4)
        assert is_punctuation(elements[0])

    def test_tuples_fit_schema(self):
        gen = MovingObjectsGenerator(n_objects=3, seed=4)
        for element in gen.materialize(2):
            if is_tuple(element):
                LOCATION_SCHEMA.validate(element.values)

    def test_policies_drawn_from_configured_roles(self):
        gen = MovingObjectsGenerator(n_objects=4, roles=("ra", "rb"),
                                     roles_per_policy=1, seed=5)
        for element in gen.materialize(3):
            if isinstance(element, SecurityPunctuation):
                assert element.roles() <= {"ra", "rb"}

    def test_per_object_mode_sp_per_tuple(self):
        gen = MovingObjectsGenerator(n_objects=4, policy_mode="per-object",
                                     seed=6)
        elements = gen.materialize(3)
        n_tuples, n_sps = count_elements(elements)
        assert n_tuples == n_sps == 12
        # Each sp is scoped to exactly the object of the next tuple.
        for sp, item in zip(elements[::2], elements[1::2]):
            assert isinstance(sp, SecurityPunctuation)
            assert isinstance(item, DataTuple)
            assert sp.describes("locations", item.tid)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            MovingObjectsGenerator(policy_mode="bogus")

    def test_deterministic_by_seed(self):
        gen_a = MovingObjectsGenerator(n_objects=3, seed=9)
        gen_b = MovingObjectsGenerator(n_objects=3, seed=9)
        tids_a = [e.tid for e in gen_a.materialize(3)
                  if isinstance(e, DataTuple)]
        tids_b = [e.tid for e in gen_b.materialize(3)
                  if isinstance(e, DataTuple)]
        assert tids_a == tids_b
