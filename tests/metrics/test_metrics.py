"""Tests for measurement and reporting utilities."""

import time

from repro.metrics.measurement import (OutputRateMeter, Timer, consume,
                                       deep_sizeof)
from repro.metrics.reporting import format_number, format_table


class TestDeepSizeof:
    def test_grows_with_content(self):
        small = deep_sizeof(["a"])
        large = deep_sizeof(["a" * 1000, "b" * 1000])
        assert large > small

    def test_shared_objects_counted_once(self):
        shared = "x" * 1000
        two_refs = deep_sizeof([shared, shared])
        two_copies = deep_sizeof(["x" * 1000, "y" * 999 + "z"])
        assert two_refs < two_copies

    def test_cycles_terminate(self):
        a = []
        a.append(a)
        assert deep_sizeof(a) > 0

    def test_slots_objects(self):
        from repro.core.punctuation import SecurityPunctuation
        sp = SecurityPunctuation.grant(["D", "ND"], ts=1.0)
        bigger = SecurityPunctuation.grant(
            [f"role_{i}" for i in range(50)], ts=1.0)
        assert deep_sizeof(bigger) > deep_sizeof(sp)

    def test_dicts_walked(self):
        assert deep_sizeof({"k": "v" * 500}) > deep_sizeof({})


class TestTimer:
    def test_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        first = timer.elapsed
        with timer:
            time.sleep(0.01)
        assert timer.elapsed > first
        assert timer.elapsed_ms >= 20.0 * 0.5  # generous lower bound

    def test_per_item(self):
        timer = Timer()
        timer.elapsed = 1.0
        assert timer.per_item_ms(1000) == 1.0
        assert timer.per_item_ms(0) == 0.0


class TestMeters:
    def test_output_rate(self):
        meter = OutputRateMeter()
        meter.tuples = 100
        meter.timer.elapsed = 0.1  # 100ms
        assert meter.rate() == 1.0
        assert OutputRateMeter().rate() == 0.0

    def test_consume(self):
        assert consume(iter(range(5))) == 5


class TestReporting:
    def test_format_number(self):
        assert format_number(0.0) == "0"
        assert format_number(5) == "5"
        assert format_number(1234567.0) == "1,234,567.0"
        assert format_number(True) == "True"

    def test_format_table_alignment(self):
        text = format_table(("name", "value"),
                            [("a", 1.0), ("long_name", 123.456)],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) <= 2  # header/sep/body aligned


class TestCharts:
    def test_bar_chart_scales_to_max(self):
        from repro.metrics.charts import bar_chart
        text = bar_chart([("a", 10.0), ("b", 5.0)], width=10, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        bar_a = lines[1].count("█")
        bar_b = lines[2].count("█")
        assert bar_a == 10
        assert bar_b == 5

    def test_bar_chart_zero_values(self):
        from repro.metrics.charts import bar_chart
        text = bar_chart([("a", 0.0), ("b", 0.0)])
        assert "█" not in text

    def test_bar_chart_empty(self):
        from repro.metrics.charts import bar_chart
        assert bar_chart([], title="empty") == "empty"

    def test_grouped_chart_global_scale(self):
        from repro.metrics.charts import grouped_bar_chart
        text = grouped_bar_chart(
            [("g1", [("x", 4.0)]), ("g2", [("y", 8.0)])], width=8)
        lines = [l for l in text.splitlines() if "█" in l]
        assert lines[0].count("█") == 4
        assert lines[1].count("█") == 8

    def test_unit_suffix(self):
        from repro.metrics.charts import bar_chart
        assert "ms" in bar_chart([("a", 1.0)], unit=" ms")
