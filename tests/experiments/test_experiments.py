"""Shape tests for the Section VII experiment drivers.

These run shrunken versions of the Figure 7-9 experiments and assert
the qualitative claims of the paper — who wins, and where — rather
than absolute numbers.  Timing-based assertions use comfortable
margins so they stay stable on slow CI machines.
"""

import pytest

from repro.experiments import fig7, fig8, fig9


@pytest.fixture(scope="module")
def fig7ab_rows():
    return fig7.experiment_fig7ab(n_tuples=2000, seed=3, repeats=3)


@pytest.fixture(scope="module")
def fig7cd_rows():
    return fig7.experiment_fig7cd(n_tuples=1500, buffer_size=250, seed=3)


class TestFig7ab:
    def test_all_mechanisms_same_output(self, fig7ab_rows):
        """Correctness cross-check: identical result counts per ratio."""
        by_ratio = {}
        for row in fig7ab_rows:
            by_ratio.setdefault(row["ratio"], set()).add(row["tuples_out"])
        for ratio, outputs in by_ratio.items():
            assert len(outputs) == 1, f"mechanisms disagree at {ratio}"

    def test_sp_improves_with_sharing(self, fig7ab_rows):
        sp_rows = [r for r in fig7ab_rows
                   if r["mechanism"] == "security punctuations"]
        per_tuple = {r["ratio"]: r["per_tuple_ms"] for r in sp_rows}
        assert per_tuple["1/100"] < per_tuple["1/1"]

    def test_sp_wins_at_high_sharing(self, fig7ab_rows):
        at_100 = {r["mechanism"]: r["per_tuple_ms"] for r in fig7ab_rows
                  if r["ratio"] == "1/100"}
        sp_cost = at_100["security punctuations"]
        # Strictly beats the central table, and is at worst within
        # timing noise of the cheapest mechanism.
        assert sp_cost < at_100["store-and-probe"]
        assert sp_cost <= 1.4 * min(at_100.values())

    def test_store_and_probe_worst_at_1_1(self, fig7ab_rows):
        """Frequent unique policies penalize the central table most
        among sp-sharing-capable... (paper: worst until ~1/25)."""
        at_1 = {r["mechanism"]: r["per_tuple_ms"] for r in fig7ab_rows
                if r["ratio"] == "1/1"}
        assert at_1["store-and-probe"] > at_1["tuple-embedded"]


class TestFig7cd:
    def test_tuple_embedded_memory_grows_fastest(self, fig7cd_rows):
        te = {r["policy_size"]: r["memory_bytes"] for r in fig7cd_rows
              if r["mechanism"] == "tuple-embedded"}
        sp = {r["policy_size"]: r["memory_bytes"] for r in fig7cd_rows
              if r["mechanism"] == "security punctuations"}
        assert te[100] > sp[100]
        # Absolute growth: every extra role is copied per tuple under
        # tuple-embedding but only per segment under sps.
        assert (te[100] - te[1]) > (sp[100] - sp[1])

    def test_sp_beats_table_at_small_policies(self, fig7cd_rows):
        """Paper Fig 7c: sp model lowest memory for small |R|."""
        at_1 = {r["mechanism"]: r["memory_bytes"] for r in fig7cd_rows
                if r["policy_size"] == 1}
        assert (at_1["security punctuations"]
                < at_1["store-and-probe"])

    def test_table_overtakes_sp_at_large_policies(self, fig7cd_rows):
        """Paper Fig 7c: store-and-probe wins when |R| > 25."""
        at_100 = {r["mechanism"]: r["memory_bytes"] for r in fig7cd_rows
                  if r["policy_size"] == 100}
        assert (at_100["store-and-probe"]
                < at_100["security punctuations"])

    def test_tuple_embedded_processing_penalized(self, fig7cd_rows):
        at_100 = {r["mechanism"]: r["per_100_tuples_ms"]
                  for r in fig7cd_rows if r["policy_size"] == 100}
        assert at_100["tuple-embedded"] == max(at_100.values())


class TestFig8:
    def test_ss_cost_drops_with_sharing(self):
        rows = fig8.experiment_fig8a(n_tuples=2000, seed=5)
        ss = {r["ratio"]: r["ss_ms"] for r in rows}
        assert ss["1/100"] < ss["1/1"] / 2

    def test_ss_approaches_select_at_high_sharing(self):
        rows = fig8.experiment_fig8a(n_tuples=2000, seed=5)
        last = [r for r in rows if r["ratio"] == "1/100"][0]
        assert last["ss_ms"] < 4 * last["select_ms"]

    def test_ss_cost_grows_with_state_size(self):
        rows = fig8.experiment_fig8b(n_tuples=2000,
                                     role_counts=(1, 100, 500), seed=5)
        ss = {r["roles"]: r["ss_ms"] for r in rows}
        assert ss[500] > ss[1]

    def test_predicate_index_flattens_curve(self):
        naive = fig8.experiment_fig8b(n_tuples=1500,
                                      role_counts=(1, 500),
                                      indexed=False, seed=5)
        indexed = fig8.experiment_fig8b(n_tuples=1500,
                                        role_counts=(1, 500),
                                        indexed=True, seed=5)
        naive_growth = naive[1]["ss_ms"] / naive[0]["ss_ms"]
        indexed_growth = indexed[1]["ss_ms"] / indexed[0]["ss_ms"]
        assert indexed_growth < naive_growth


class TestFig9:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig9.experiment_fig9(n_tuples=600, window=200.0, seed=7,
                                    repeats=3)

    def test_index_wins_total_everywhere(self, rows):
        by_sigma = {}
        for row in rows:
            by_sigma.setdefault(row["sigma_sp"], {})[row["variant"]] = row
        for sigma, variants in by_sigma.items():
            index_total = variants["index"]["total_ms"]
            nl_total = variants["nested-loop"]["total_ms"]
            if sigma >= 1.0:
                # The paper's own margin at σ_sp = 1 is only 2%; allow
                # timing noise of the same order on loaded machines.
                assert index_total < nl_total * 1.10, sigma
            else:
                assert index_total < nl_total, sigma

    def test_join_gap_largest_at_sigma_zero(self, rows):
        by = {(r["sigma_sp"], r["variant"]): r for r in rows}
        gap_at_0 = (by[(0.0, "index")]["join_ms"]
                    / max(by[(0.0, "nested-loop")]["join_ms"], 1e-9))
        gap_at_1 = (by[(1.0, "index")]["join_ms"]
                    / max(by[(1.0, "nested-loop")]["join_ms"], 1e-9))
        assert gap_at_0 < gap_at_1  # bigger win (smaller ratio) at σ=0

    def test_same_results_both_variants(self, rows):
        by_sigma = {}
        for row in rows:
            by_sigma.setdefault(row["sigma_sp"], {})[row["variant"]] = row
        for sigma, variants in by_sigma.items():
            assert (variants["index"]["results"]
                    == variants["nested-loop"]["results"]), sigma

    def test_sigma_zero_produces_nothing(self, rows):
        zero = [r for r in rows if r["sigma_sp"] == 0.0]
        assert all(r["results"] == 0 for r in zero)

    def test_sigma_one_produces_results(self, rows):
        one = [r for r in rows if r["sigma_sp"] == 1.0]
        assert all(r["results"] > 0 for r in one)


class TestGranularityExtension:
    @pytest.fixture(scope="class")
    def rows(self):
        from repro.experiments.granularity import experiment_granularity
        return experiment_granularity(n_tuples=2500, seed=53)

    def test_decisions_identical_across_granularities(self, rows):
        assert all(r["same_decisions"] for r in rows)

    def test_cost_ordering(self, rows):
        """stream < tuple < attribute enforcement cost."""
        cost = {r["granularity"]: r["ss_ms"] for r in rows}
        assert cost["stream"] < cost["tuple"] < cost["attribute"]
