"""The engine's canonical instruments on one metrics registry.

:class:`EngineInstruments` is the single place where the engine's
metric names, kinds, labels and bucket layouts are declared — the
catalog ``docs/OBSERVABILITY.md`` documents and the exporters expose.
The hub builds one lazily when a
:class:`~repro.observability.metrics.MetricsRegistry` is attached;
operators pre-bind the children they record into at
:meth:`~repro.operators.base.Operator.bind_metrics` time.

It also carries the *ingest clock*: the executor (or a streaming
session) stamps ``ingest_wall`` when a source element enters the
plan, and sinks read it when results emerge — the end-to-end tuple
latency of the paper's "speed of enforcement" claim, measured rather
than asserted.  ``last_ingest_wall`` survives between elements so the
health checker can detect a stalled stream.
"""

from __future__ import annotations

from repro.observability.metrics import (LATENCY_BUCKETS, SIZE_BUCKETS,
                                         MetricsRegistry)

__all__ = ["EngineInstruments", "CATALOG"]


#: The engine metric catalog: (name, kind, labels, meaning).
CATALOG: tuple[tuple[str, str, tuple[str, ...], str], ...] = (
    ("repro_operator_latency_seconds", "histogram", ("operator", "kind"),
     "Per-element processing latency inside each plan operator"),
    ("repro_tuple_latency_seconds", "histogram", ("query",),
     "End-to-end latency: source ingest / session push to sink emit"),
    ("repro_policy_propagation_seconds", "histogram",
     ("operator", "query"),
     "Policy propagation lag: sp arrival to the first enforcement "
     "decision taken under that policy"),
    ("repro_segment_size_tuples", "histogram", ("operator",),
     "Tuples per s-punctuated segment observed at each shield"),
    ("repro_sp_batch_size_sps", "histogram", (),
     "Security punctuations per sp-batch at the SP Analyzer"),
    ("repro_shield_tuples_total", "counter",
     ("operator", "query", "roles", "verdict"),
     "Shield verdicts per tuple (verdict=pass|drop), per role "
     "predicate"),
    ("repro_denial_by_default_drops_total", "counter",
     ("operator", "query"),
     "Tuples dropped because no policy had arrived yet "
     "(denial-by-default)"),
    ("repro_spindex_entries_total", "gauge",
     ("operator", "side", "outcome"),
     "SPIndex probe accounting (outcome=scanned|skipped); the "
     "skipped/scanned ratio is the Lemma 5.1 skipping-rule hit rate"),
    ("repro_queue_depth", "gauge", ("operator",),
     "Elements currently held in operator state"),
    ("repro_elements_total", "counter", ("kind",),
     "Stream elements entering the plan (kind=tuple|sp)"),
    ("repro_runs_total", "counter", (),
     "Completed executor runs"),
    ("repro_run_seconds", "histogram", (),
     "Wall-clock duration of whole executor runs"),
)


class EngineInstruments:
    """Pre-declared engine metric families plus the ingest clock."""

    __slots__ = ("registry", "operator_latency", "tuple_latency",
                 "propagation", "segment_size", "sp_batch_size",
                 "shield_tuples", "denial_drops", "spindex_entries",
                 "queue_depth", "elements", "runs", "run_seconds",
                 "tuples_in", "sps_in", "ingest_wall",
                 "last_ingest_wall")

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self.operator_latency = registry.histogram(
            "repro_operator_latency_seconds",
            "Per-element processing latency inside each plan operator",
            labels=("operator", "kind"), buckets=LATENCY_BUCKETS)
        self.tuple_latency = registry.histogram(
            "repro_tuple_latency_seconds",
            "End-to-end latency: source ingest / session push to sink "
            "emit", labels=("query",), buckets=LATENCY_BUCKETS)
        self.propagation = registry.histogram(
            "repro_policy_propagation_seconds",
            "Policy propagation lag: sp arrival to first enforcement "
            "decision under that policy",
            labels=("operator", "query"), buckets=LATENCY_BUCKETS)
        self.segment_size = registry.histogram(
            "repro_segment_size_tuples",
            "Tuples per s-punctuated segment observed at each shield",
            labels=("operator",), buckets=SIZE_BUCKETS)
        self.sp_batch_size = registry.histogram(
            "repro_sp_batch_size_sps",
            "Security punctuations per sp-batch at the SP Analyzer",
            buckets=SIZE_BUCKETS)
        self.shield_tuples = registry.counter(
            "repro_shield_tuples_total",
            "Shield verdicts per tuple, per role predicate",
            labels=("operator", "query", "roles", "verdict"))
        self.denial_drops = registry.counter(
            "repro_denial_by_default_drops_total",
            "Tuples dropped before any policy arrived "
            "(denial-by-default)", labels=("operator", "query"))
        self.spindex_entries = registry.gauge(
            "repro_spindex_entries_total",
            "SPIndex probe accounting (Lemma 5.1 skipping rule)",
            labels=("operator", "side", "outcome"))
        self.queue_depth = registry.gauge(
            "repro_queue_depth",
            "Elements currently held in operator state",
            labels=("operator",))
        self.elements = registry.counter(
            "repro_elements_total",
            "Stream elements entering the plan", labels=("kind",))
        self.runs = registry.counter(
            "repro_runs_total", "Completed executor runs")
        self.run_seconds = registry.histogram(
            "repro_run_seconds",
            "Wall-clock duration of whole executor runs",
            buckets=LATENCY_BUCKETS)
        #: Pre-bound element counters (per-element hot path).
        self.tuples_in = self.elements.labels("tuple")
        self.sps_in = self.elements.labels("sp")
        #: Wall clock (``time.perf_counter()``) of the element
        #: currently being pushed; read by sinks at emit time.
        self.ingest_wall: float | None = None
        #: Wall clock of the most recent ingest (health: stall check).
        self.last_ingest_wall: float | None = None

    def mark_ingest(self, wall: float) -> None:
        """Stamp the ingest clock for the element being pushed."""
        self.ingest_wall = wall
        self.last_ingest_wall = wall

    def __repr__(self) -> str:
        return f"EngineInstruments({self.registry!r})"
