"""The Observability hub: one object wiring audit + tracing into a DSMS.

:class:`Observability` bundles the optional :class:`AuditLog` and the
:class:`TraceSink` a DSMS runs with.  The default (built by
:meth:`Observability.disabled`) carries no audit log and a
:class:`NullTraceSink`, so instrumented code paths reduce to cheap
``is None`` / ``enabled`` checks.  :meth:`Observability.in_memory`
turns everything on with bounded in-memory storage.
"""

from __future__ import annotations

from repro.observability.audit import DEFAULT_CAPACITY, AuditLog
from repro.observability.trace import (NullTraceSink, RingBufferTraceSink,
                                       TraceSink)

__all__ = ["Observability"]


class Observability:
    """Audit log + trace sink shared by one DSMS and its plans."""

    def __init__(self, *, audit: AuditLog | None = None,
                 tracer: TraceSink | None = None):
        self.audit = audit
        self.tracer = tracer if tracer is not None else NullTraceSink()

    # -- constructors ------------------------------------------------------
    @classmethod
    def disabled(cls) -> "Observability":
        """No audit, no tracing — the zero-overhead default."""
        return cls()

    @classmethod
    def in_memory(cls, *, audit_capacity: int = DEFAULT_CAPACITY,
                  trace_capacity: int = 4096) -> "Observability":
        """Bounded in-memory audit log + ring-buffer trace sink."""
        return cls(audit=AuditLog(audit_capacity),
                   tracer=RingBufferTraceSink(trace_capacity))

    @property
    def enabled(self) -> bool:
        return self.audit is not None or self.tracer.enabled

    # -- wiring -------------------------------------------------------------
    def bind(self, operator, query: str | None = None) -> None:
        """Point one plan operator at this hub's audit log.

        Operators record through their ``audit`` attribute; ``query``
        attributes events to a specific registered query (shields and
        delivery shields), ``None`` leaves shared operators
        query-anonymous.
        """
        if self.audit is not None:
            operator.audit = self.audit
            operator.audit_query = query

    def span(self, name: str, **attrs) -> None:
        """Emit one trace span event (no-op when tracing is off)."""
        if self.tracer.enabled:
            self.tracer.span(name, **attrs)

    def __repr__(self) -> str:
        return (f"Observability(audit={self.audit!r}, "
                f"tracer={type(self.tracer).__name__})")
