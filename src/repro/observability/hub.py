"""The Observability hub: audit + tracing + metrics for one DSMS.

:class:`Observability` bundles the optional :class:`AuditLog`, the
:class:`TraceSink` and the optional
:class:`~repro.observability.metrics.MetricsRegistry` a DSMS runs
with.  The default (built by :meth:`Observability.disabled`) carries
no audit log, a :class:`NullTraceSink` and no registry, so
instrumented code paths reduce to cheap ``is None`` / ``enabled``
checks.  :meth:`Observability.in_memory` turns everything on with
bounded in-memory storage; :meth:`Observability.with_metrics` enables
only the metrics registry (the cheapest always-on production
configuration).
"""

from __future__ import annotations

from repro.observability.audit import DEFAULT_CAPACITY, AuditLog
from repro.observability.instruments import EngineInstruments
from repro.observability.metrics import MetricsRegistry
from repro.observability.provenance import DEFAULT_SAMPLE_RATE, Tracer
from repro.observability.trace import NullTraceSink, TraceSink

__all__ = ["Observability"]


class Observability:
    """Audit log + trace sink + metrics shared by one DSMS."""

    def __init__(self, *, audit: AuditLog | None = None,
                 tracer: TraceSink | None = None,
                 metrics: MetricsRegistry | None = None):
        self.audit = audit
        self.tracer = tracer if tracer is not None else NullTraceSink()
        self.metrics = metrics
        self._instruments: EngineInstruments | None = None

    # -- constructors ------------------------------------------------------
    @classmethod
    def disabled(cls) -> "Observability":
        """No audit, no tracing, no metrics — the zero-overhead default."""
        return cls()

    @classmethod
    def in_memory(cls, *, audit_capacity: int = DEFAULT_CAPACITY,
                  trace_capacity: int = 4096) -> "Observability":
        """Bounded in-memory audit log + causal tracer + metrics
        registry (everything on, every trace sampled)."""
        return cls(audit=AuditLog(audit_capacity),
                   tracer=Tracer(sample=1.0,
                                 recorder_capacity=trace_capacity),
                   metrics=MetricsRegistry())

    @classmethod
    def with_metrics(cls) -> "Observability":
        """Metrics registry only: no audit trail, no tracing.

        The configuration the overhead benchmark calls "registry on"
        — counters, gauges and histograms are live, but nothing is
        recorded per decision and batched fast paths stay enabled.
        """
        return cls(metrics=MetricsRegistry())

    @classmethod
    def with_tracing(cls, *, sample: float = DEFAULT_SAMPLE_RATE,
                     recorder_capacity: int = 4096,
                     sink: TraceSink | None = None) -> "Observability":
        """Causal tracing only — the leave-it-on production tier.

        Head-samples one trace in ~64 by default, always keeps
        security-drop provenance and feeds the always-on flight
        recorder; no audit log and no metrics registry, so the batched
        and fused fast paths stay fully engaged.
        """
        return cls(tracer=Tracer(sink, sample=sample,
                                 recorder_capacity=recorder_capacity))

    @property
    def enabled(self) -> bool:
        return (self.audit is not None or self.tracer.enabled
                or self.metrics is not None)

    @property
    def instruments(self) -> EngineInstruments | None:
        """The engine's canonical instruments (``None`` without a
        registry); built lazily, once, on first access."""
        if self.metrics is None:
            return None
        if self._instruments is None:
            self._instruments = EngineInstruments(self.metrics)
        return self._instruments

    # -- wiring -------------------------------------------------------------
    def bind(self, operator, query: str | None = None) -> None:
        """Point one plan operator at this hub's audit log.

        Operators record through their ``audit`` attribute; ``query``
        attributes events to a specific registered query (shields and
        delivery shields), ``None`` leaves shared operators
        query-anonymous.  The query attribution is kept even without
        an audit log: metric series label by it too.
        """
        if query is not None:
            operator.audit_query = query
        if self.audit is not None:
            operator.audit = self.audit

    def span(self, name: str, **attrs) -> None:
        """Emit one trace span event (no-op when tracing is off)."""
        if self.tracer.enabled:
            self.tracer.span(name, **attrs)

    def __repr__(self) -> str:
        return (f"Observability(audit={self.audit!r}, "
                f"tracer={type(self.tracer).__name__}, "
                f"metrics={self.metrics!r})")
