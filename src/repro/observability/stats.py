"""Per-operator stage metrics.

Every :class:`~repro.operators.base.Operator` maintains raw counters
(:class:`~repro.operators.base.OperatorStats`) plus an EWMA of its
per-element processing time.  :class:`StageStats` is the immutable
snapshot of one operator's counters at a point in time — the unit the
:class:`~repro.engine.executor.ExecutionReport` aggregates and the
``repro stats`` CLI prints.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StageStats", "aggregate_stages"]


@dataclass(frozen=True)
class StageStats:
    """Snapshot of one plan operator's runtime metrics."""

    #: Operator instance name (unique within a plan in practice).
    name: str
    #: Operator class name (``SecurityShield``, ``IndexSAJoin``, ...).
    kind: str
    tuples_in: int
    tuples_out: int
    sps_in: int
    sps_out: int
    #: Elements this operator discarded for security/semantic reasons
    #: (shield blocks, join policy rejects, suppressed duplicates).
    drops: int
    comparisons: int
    state_ops: int
    #: Accumulated wall-clock seconds inside ``process()``.
    processing_time: float
    #: Exponentially weighted moving average of per-element
    #: processing seconds (alpha=0.05): the "current speed" signal.
    ewma_seconds: float
    #: Elements currently held in operator state.
    queue_depth: int

    @property
    def elements_in(self) -> int:
        return self.tuples_in + self.sps_in

    @property
    def elements_out(self) -> int:
        return self.tuples_out + self.sps_out

    @property
    def selectivity(self) -> float:
        """Tuple pass-through ratio (1.0 when nothing arrived yet)."""
        if self.tuples_in == 0:
            return 1.0
        return self.tuples_out / self.tuples_in

    @property
    def drop_rate(self) -> float:
        """Fraction of arriving tuples this operator discarded.

        Unlike ``1 - selectivity`` this counts only *security/semantic*
        discards (``drops``), not transformations that merely emit
        fewer tuples (failed selections, aggregation).
        """
        if self.tuples_in == 0:
            return 0.0
        return self.drops / self.tuples_in

    def to_row(self) -> list:
        """Table row for the ``repro stats`` report."""
        return [self.name, self.kind, self.tuples_in, self.tuples_out,
                self.sps_in, self.sps_out, self.drops,
                round(self.selectivity, 3), round(self.drop_rate, 3),
                self.processing_time, self.ewma_seconds,
                self.queue_depth]

    HEADERS = ("operator", "kind", "t_in", "t_out", "sp_in", "sp_out",
               "drops", "sel", "drop%", "time_s", "ewma_s", "queue")


def aggregate_stages(stages: "list[StageStats]") -> dict:
    """Whole-plan totals across a list of stage snapshots."""
    return {
        "operators": len(stages),
        "tuples_in": sum(s.tuples_in for s in stages),
        "tuples_out": sum(s.tuples_out for s in stages),
        "sps_in": sum(s.sps_in for s in stages),
        "sps_out": sum(s.sps_out for s in stages),
        "drops": sum(s.drops for s in stages),
        "processing_time": sum(s.processing_time for s in stages),
        "queue_depth": sum(s.queue_depth for s in stages),
    }
