"""Stream-health checks over the live metric registry.

:class:`HealthMonitor` evaluates a small set of rules against an
:class:`~repro.observability.instruments.EngineInstruments` and
reports :class:`HealthAlert` records:

* **stalled stream** — no element has entered the plan for longer
  than ``stall_after`` seconds (measured against the instrument's
  ``last_ingest_wall`` ingest clock);
* **punctuation lag** — the p95 of
  ``repro_policy_propagation_seconds`` for some shield exceeds
  ``propagation_p95`` — policies are arriving but taking too long to
  become enforcement decisions;
* **denial-by-default churn** — tuples are being dropped because no
  policy has arrived at all (``repro_denial_by_default_drops_total``
  grew since the last check), which usually means a source forgot to
  emit sps.

Alerts are returned to the caller *and* raised through the hub's
:class:`~repro.observability.trace.TraceSink` as ``health.alert``
spans, so a JSONL trace of a long run doubles as its incident log.
The monitor is pull-based: call :meth:`check` on whatever cadence
suits (the ``repro monitor`` view does so once per frame).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.observability.instruments import EngineInstruments
from repro.observability.provenance import Tracer
from repro.observability.trace import NullTraceSink, TraceSink

__all__ = ["HealthAlert", "HealthMonitor"]


@dataclass(frozen=True)
class HealthAlert:
    """One triggered health rule."""

    #: Rule identifier: ``stalled_stream`` | ``propagation_lag``
    #: | ``denial_by_default``.
    rule: str
    severity: str  # "warn" | "critical"
    message: str
    #: The measured value that tripped the rule (seconds or count).
    value: float
    #: The configured threshold it exceeded.
    threshold: float

    def to_dict(self) -> dict:
        return {"rule": self.rule, "severity": self.severity,
                "message": self.message, "value": self.value,
                "threshold": self.threshold}


class HealthMonitor:
    """Evaluate stall/lag/denial rules against live instruments."""

    def __init__(self, instruments: EngineInstruments, *,
                 tracer: TraceSink | None = None,
                 stall_after: float = 5.0,
                 propagation_p95: float = 0.5,
                 flight_path: str | None = None,
                 flight_window: float = 60.0,
                 clock=time.perf_counter):
        if stall_after <= 0.0:
            raise ValueError("stall_after must be positive")
        if propagation_p95 <= 0.0:
            raise ValueError("propagation_p95 must be positive")
        if flight_window <= 0.0:
            raise ValueError("flight_window must be positive")
        self.instruments = instruments
        self.tracer = tracer if tracer is not None else NullTraceSink()
        self.stall_after = stall_after
        self.propagation_p95 = propagation_p95
        #: JSONL path the causal tracer's flight recorder is dumped to
        #: when a rule fires (``None`` disables the dump; requires a
        #: :class:`~repro.observability.provenance.Tracer` as tracer).
        self.flight_path = flight_path
        #: Wall-clock window (seconds before the alert) of the dump.
        self.flight_window = flight_window
        #: ``(path, events)`` of each completed flight-recorder dump.
        self.flight_dumps: list[tuple[str, int]] = []
        self._clock = clock
        self._last_denials: float = 0.0
        #: Alert history across checks (most recent last).
        self.alerts: list[HealthAlert] = []

    # -- rules ---------------------------------------------------------------
    def _check_stall(self, now: float) -> HealthAlert | None:
        last = self.instruments.last_ingest_wall
        if last is None:  # nothing ever ingested: idle, not stalled
            return None
        age = now - last
        if age <= self.stall_after:
            return None
        return HealthAlert(
            rule="stalled_stream", severity="critical",
            message=(f"no stream element ingested for {age:.1f}s "
                     f"(threshold {self.stall_after:.1f}s)"),
            value=age, threshold=self.stall_after)

    def _check_propagation(self) -> list[HealthAlert]:
        alerts = []
        for values, child in self.instruments.propagation.series():
            if child.count == 0:
                continue
            p95 = child.quantile(0.95)
            if p95 <= self.propagation_p95:
                continue
            operator, query = values
            alerts.append(HealthAlert(
                rule="propagation_lag", severity="warn",
                message=(f"policy propagation p95 at {operator!r} "
                         f"(query {query!r}) is {p95:.4f}s "
                         f"(threshold {self.propagation_p95:.4f}s)"),
                value=p95, threshold=self.propagation_p95))
        return alerts

    def _check_denials(self) -> HealthAlert | None:
        total = sum(child.current() for _, child
                    in self.instruments.denial_drops.series())
        grown = total - self._last_denials
        self._last_denials = total
        if grown <= 0:
            return None
        return HealthAlert(
            rule="denial_by_default", severity="warn",
            message=(f"{int(grown)} tuple(s) dropped with no policy in "
                     f"effect since last check (denial-by-default)"),
            value=grown, threshold=0.0)

    # -- entry point ---------------------------------------------------------
    def check(self, *, now: float | None = None) -> list[HealthAlert]:
        """Run all rules once; returns (and records) new alerts."""
        if now is None:
            now = self._clock()
        new: list[HealthAlert] = []
        stall = self._check_stall(now)
        if stall is not None:
            new.append(stall)
        new.extend(self._check_propagation())
        denial = self._check_denials()
        if denial is not None:
            new.append(denial)
        causal = self.tracer if isinstance(self.tracer, Tracer) else None
        for alert in new:
            if causal is not None:
                # Tail-based keep: alert spans survive head sampling.
                causal.event("health.alert", keep=True,
                             **alert.to_dict())
            elif self.tracer.enabled:
                self.tracer.span("health.alert", **alert.to_dict())
        if new and causal is not None and self.flight_path is not None:
            # Retroactive context: dump the spans that led up to the
            # alert (everything within flight_window of now).
            count = causal.recorder.dump_jsonl(
                self.flight_path,
                since_wall=time.time() - self.flight_window)
            self.flight_dumps.append((self.flight_path, count))
        self.alerts.extend(new)
        return new

    def __repr__(self) -> str:
        return (f"HealthMonitor(stall_after={self.stall_after}, "
                f"propagation_p95={self.propagation_p95}, "
                f"alerts={len(self.alerts)})")
