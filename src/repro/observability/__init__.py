"""Runtime observability: audit trail, operator metrics, tracing.

The paper's enforcement mechanisms are deliberately *silent*: a
Security Shield drops unauthorized tuples, the SAJoin skips
incompatible probes (Lemma 5.1), the SP Analyzer intersects provider
sps with server policies — and none of it leaves a runtime trace.
Production access-control systems treat the decision log as a
first-class output; this package adds one without touching enforcement
semantics:

* :class:`AuditLog` — a bounded, structured record of every security
  decision (shield segment verdicts and per-tuple drops, analyzer
  server-policy refinements, SAJoin policy rejections and skip-rule
  hits, delivery-shield rejections), queryable per query and
  exportable as JSONL.
* :class:`StageStats` — per-operator metrics (elements in/out, drops,
  processing-time EWMA, queue depth) snapshotted from every plan
  operator and aggregated into the
  :class:`~repro.engine.executor.ExecutionReport`.
* :class:`TraceSink` — a pluggable span-event protocol with a no-op
  default (:class:`NullTraceSink`), an in-memory ring buffer
  (:class:`RingBufferTraceSink`) and a JSONL file sink
  (:class:`JsonlTraceSink`); span events are emitted by the executor,
  streaming sessions and the SP Analyzer.
* :class:`MetricsRegistry` — Prometheus-style counters, gauges and
  log-bucketed latency histograms (:data:`CATALOG` lists the engine's
  canonical families: per-operator latency, end-to-end tuple latency,
  policy-propagation lag, shield verdicts, Lemma 5.1 skip rates, …),
  exported as Prometheus text or JSON (:func:`render_prometheus`,
  :func:`render_json`, :func:`serve_metrics`) and watched live by
  :class:`MonitorView`/:class:`HealthMonitor` (``repro monitor``).

Everything is off by default — a :class:`~repro.engine.dsms.DSMS`
built without an explicit :class:`Observability` pays only a handful
of ``is None`` checks.  Enable with::

    from repro import DSMS, Observability

    dsms = DSMS(observability=Observability.in_memory())
    ...
    dsms.run()
    for event in dsms.audit.explain(tuple_id):
        print(event)
"""

from repro.observability.audit import AuditEvent, AuditLog
from repro.observability.export import (MetricsServer, parse_prometheus,
                                        render_json, render_prometheus,
                                        serve_metrics)
from repro.observability.health import HealthAlert, HealthMonitor
from repro.observability.hub import Observability
from repro.observability.instruments import CATALOG, EngineInstruments
from repro.observability.metrics import (Counter, Gauge, Histogram,
                                         MetricFamily, MetricsRegistry,
                                         log_buckets)
from repro.observability.monitor import MonitorView, run_monitor
from repro.observability.provenance import (DEFAULT_SAMPLE_RATE,
                                            FlightRecorder, TraceContext,
                                            Tracer, WhyReport,
                                            reconstruct_why)
from repro.observability.stats import StageStats, aggregate_stages
from repro.observability.trace import (JsonlTraceSink, NullTraceSink,
                                       RingBufferTraceSink, SpanEvent,
                                       TraceSink)

__all__ = [
    "AuditEvent",
    "AuditLog",
    "CATALOG",
    "Counter",
    "DEFAULT_SAMPLE_RATE",
    "EngineInstruments",
    "FlightRecorder",
    "Gauge",
    "HealthAlert",
    "HealthMonitor",
    "Histogram",
    "JsonlTraceSink",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsServer",
    "MonitorView",
    "NullTraceSink",
    "Observability",
    "RingBufferTraceSink",
    "SpanEvent",
    "StageStats",
    "TraceContext",
    "TraceSink",
    "Tracer",
    "WhyReport",
    "aggregate_stages",
    "log_buckets",
    "parse_prometheus",
    "reconstruct_why",
    "render_json",
    "render_prometheus",
    "run_monitor",
    "serve_metrics",
]
