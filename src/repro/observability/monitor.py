"""The live ``repro monitor`` terminal view.

:class:`MonitorView` renders one *frame* — a plain-text dashboard of
four panels over a running DSMS/session — and :func:`run_monitor`
loops it top-style (ANSI home+clear between frames, plain append when
the terminal is dumb or ``--no-clear`` is given):

* **operators** — per-operator throughput, drops, selectivity and
  EWMA processing speed (the ``repro stats`` table, live);
* **latency** — p50/p95/p99/max for every latency histogram family
  (operator, end-to-end tuple, policy propagation, run duration);
* **security** — shield pass/drop counters per role predicate,
  denial-by-default drops, SPIndex skipping-rule hit rate, sp-batch
  and segment size quantiles;
* **health** — the :class:`~repro.observability.health.HealthMonitor`
  verdict for this frame plus any alerts raised earlier.

Rendering is read-only over the metric registry and operator stats —
a frame never mutates engine state, so the monitor can run beside an
active workload.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.metrics.reporting import format_table
from repro.observability.health import HealthMonitor
from repro.observability.instruments import EngineInstruments
from repro.observability.metrics import Histogram

__all__ = ["MonitorView", "run_monitor"]

#: ANSI: cursor home + clear to end of screen (top-style redraw).
_CLEAR = "\x1b[H\x1b[J"

_LATENCY_FAMILIES = (
    ("repro_operator_latency_seconds", "operator"),
    ("repro_tuple_latency_seconds", "e2e tuple"),
    ("repro_policy_propagation_seconds", "propagation"),
    ("repro_run_seconds", "run"),
)


def _series_name(values: tuple[str, ...]) -> str:
    return "/".join(v for v in values if v) or "(all)"


def _quantile_row(label: str, series: str,
                  hist: Histogram) -> list[object]:
    return [label, series, hist.count,
            hist.quantile(0.5), hist.quantile(0.95),
            hist.quantile(0.99), hist.max]


class MonitorView:
    """Renders dashboard frames from live instruments and stats."""

    def __init__(self, instruments: EngineInstruments, *,
                 stages: Callable[[], list] | None = None,
                 health: HealthMonitor | None = None):
        self.instruments = instruments
        #: Zero-arg callable returning the current
        #: :class:`~repro.observability.stats.StageStats` list
        #: (``None`` renders the metrics-only panels).
        self.stages = stages
        self.health = health
        self.frames_rendered = 0

    # -- panels --------------------------------------------------------------
    def _panel_operators(self) -> str | None:
        if self.stages is None:
            return None
        stages = self.stages()
        if not stages:
            return None
        from repro.observability.stats import StageStats
        return format_table(StageStats.HEADERS,
                            [s.to_row() for s in stages],
                            title="operators")

    def _panel_latency(self) -> str | None:
        rows: list[list[object]] = []
        registry = self.instruments.registry
        for name, label in _LATENCY_FAMILIES:
            family = registry.get(name)
            if family is None:
                continue
            for values, child in family.series():
                if child.count == 0:
                    continue
                rows.append(_quantile_row(label, _series_name(values),
                                          child))
        if not rows:
            return None
        return format_table(
            ("latency", "series", "n", "p50", "p95", "p99", "max"),
            rows, title="latency (seconds)")

    def _panel_security(self) -> str | None:
        lines: list[str] = []
        shield_rows = self._shield_rows()
        if shield_rows:
            lines.append(format_table(
                ("shield", "query", "roles", "pass", "drop", "denial"),
                shield_rows, title="security"))
        size_rows = self._size_rows()
        if size_rows:
            lines.append(format_table(
                ("distribution", "series", "n", "p50", "p95", "max"),
                size_rows))
        skip_rows = self._skip_rows()
        if skip_rows:
            lines.append(format_table(
                ("spindex", "side", "scanned", "skipped", "hit_rate"),
                skip_rows))
        if not lines:
            return None
        return "\n\n".join(lines)

    def _shield_rows(self) -> list[list[object]]:
        # Regroup the 4-label counter into one row per shield/roles
        # with pass/drop columns side by side.
        verdicts: dict[tuple[str, str, str], dict[str, float]] = {}
        for values, child in self.instruments.shield_tuples.series():
            operator, query, roles, verdict = values
            key = (operator, query, roles)
            verdicts.setdefault(key, {})[verdict] = child.current()
        denials = {values: child.current() for values, child
                   in self.instruments.denial_drops.series()}
        rows = []
        for (operator, query, roles), counts in sorted(verdicts.items()):
            rows.append([operator, query or "-", roles or "-",
                         int(counts.get("pass", 0)),
                         int(counts.get("drop", 0)),
                         int(denials.get((operator, query), 0))])
        return rows

    def _size_rows(self) -> list[list[object]]:
        rows = []
        for family, label in (
                (self.instruments.segment_size, "segment tuples"),
                (self.instruments.sp_batch_size, "sp-batch sps")):
            for values, child in family.series():
                if child.count == 0:
                    continue
                rows.append([label, _series_name(values), child.count,
                             child.quantile(0.5), child.quantile(0.95),
                             child.max])
        return rows

    def _skip_rows(self) -> list[list[object]]:
        probes: dict[tuple[str, str], dict[str, float]] = {}
        for values, child in self.instruments.spindex_entries.series():
            operator, side, outcome = values
            probes.setdefault((operator, side), {})[outcome] = (
                child.current())
        rows = []
        for (operator, side), counts in sorted(probes.items()):
            scanned = counts.get("scanned", 0)
            skipped = counts.get("skipped", 0)
            rate = skipped / scanned if scanned else 0.0
            rows.append([operator, side, int(scanned), int(skipped),
                         round(rate, 3)])
        return rows

    def _panel_health(self) -> str | None:
        if self.health is None:
            return None
        new = self.health.check()
        lines = ["health"]
        if not self.health.alerts:
            lines.append("  ok - no alerts")
        else:
            recent = self.health.alerts[-5:]
            for alert in recent:
                marker = "*" if alert in new else " "
                lines.append(f" {marker}[{alert.severity}] "
                             f"{alert.rule}: {alert.message}")
            if len(self.health.alerts) > len(recent):
                lines.append(f"  ... {len(self.health.alerts)} alerts "
                             f"total")
        return "\n".join(lines)

    def _panel_totals(self) -> str:
        tuples = int(self.instruments.tuples_in.current())
        sps = int(self.instruments.sps_in.current())
        runs = int(self.instruments.runs.labels().current())
        return (f"elements: {tuples} tuples, {sps} sps | "
                f"runs: {runs} | frame: {self.frames_rendered}")

    # -- frames --------------------------------------------------------------
    def render(self) -> str:
        """One full dashboard frame as plain text."""
        self.frames_rendered += 1
        panels = ["repro monitor", self._panel_totals(),
                  self._panel_operators(), self._panel_latency(),
                  self._panel_security(), self._panel_health()]
        return "\n\n".join(p for p in panels if p) + "\n"


def run_monitor(view: MonitorView, *, frames: int | None = None,
                interval: float = 1.0, clear: bool = True,
                write: Callable[[str], None] | None = None,
                sleep: Callable[[float], None] = time.sleep) -> int:
    """Render frames until ``frames`` is exhausted (or forever).

    ``write`` defaults to stdout; tests inject a collector and
    ``interval=0``.  Returns the number of frames rendered.  A
    ``KeyboardInterrupt`` exits cleanly — it is the expected way to
    leave an unbounded monitor.
    """
    if write is None:
        import sys
        write = sys.stdout.write
    rendered = 0
    try:
        while frames is None or rendered < frames:
            frame = view.render()
            write(_CLEAR + frame if clear else frame)
            rendered += 1
            if frames is not None and rendered >= frames:
                break
            if interval > 0:
                sleep(interval)
    except KeyboardInterrupt:
        pass
    return rendered
