"""Pluggable tracing: span events from the engine's control points.

A :class:`TraceSink` receives :class:`SpanEvent` records from the
executor (run start/end, flush), streaming sessions (open, push,
close) and the SP Analyzer (per processed sp-batch).  The protocol is
deliberately tiny — ``enabled`` plus ``emit`` — so emission sites can
guard attribute construction behind a single flag check and the
default :class:`NullTraceSink` costs nothing on the hot path.

Every event carries *two* timestamps: ``wall`` (``time.time()``, for
correlation with external logs) and ``mono`` (``time.perf_counter_ns()``,
monotonic — durations derived from it can never go negative under a
wall-clock adjustment).  Causal tracing (trace / span / parent ids,
sampling, provenance records) lives in
:mod:`repro.observability.provenance`; the optional id fields here are
its carrier.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import IO

__all__ = ["SpanEvent", "TraceSink", "NullTraceSink",
           "RingBufferTraceSink", "JsonlTraceSink"]


@dataclass(frozen=True)
class SpanEvent:
    """One trace record: a named point (or span edge) with attributes."""

    name: str
    #: Wall-clock time of emission (``time.time()``).
    wall: float
    attrs: dict = field(default_factory=dict)
    #: Monotonic emission time (``time.perf_counter_ns()``); ``None``
    #: only for events constructed by hand without a clock.
    mono: int | None = None
    #: Causal trace context (see ``repro.observability.provenance``);
    #: ``None`` on flat control-point events.
    trace_id: int | None = None
    span_id: int | None = None
    parent_id: int | None = None

    def to_dict(self) -> dict:
        record = {"name": self.name, "wall": self.wall}
        if self.mono is not None:
            record["mono"] = self.mono
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        if self.span_id is not None:
            record["span_id"] = self.span_id
        if self.parent_id is not None:
            record["parent_id"] = self.parent_id
        record.update(self.attrs)
        run = record.pop("_run", None)
        if run is not None:
            # Lazily-built run record (see SecurityShield._prov_run):
            # the denied run's tuple ids are rendered only when the
            # event is actually serialized, not on the drop hot path.
            record["tids"] = [t.tid for t in run]
        return record

    def __str__(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in self.attrs.items())
        prefix = (f"[{self.trace_id}:{self.span_id}] "
                  if self.trace_id is not None else "")
        return f"{prefix}{self.name} {parts}".rstrip()


class TraceSink:
    """Base protocol: subclasses implement :meth:`emit`.

    ``enabled`` lets emission sites skip building event attributes
    entirely; sinks that record must leave it ``True``.
    """

    enabled = True

    def emit(self, event: SpanEvent) -> None:
        raise NotImplementedError

    def span(self, name: str, **attrs) -> None:
        """Convenience: build and emit one event stamped now."""
        if self.enabled:
            self.emit(SpanEvent(name, time.time(), attrs,
                                mono=time.perf_counter_ns()))

    def close(self) -> None:
        """Release resources (file sinks); default no-op."""


class NullTraceSink(TraceSink):
    """The default sink: records nothing, costs nothing."""

    enabled = False

    def emit(self, event: SpanEvent) -> None:
        pass


class RingBufferTraceSink(TraceSink):
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("trace ring buffer capacity must be positive")
        self._events: deque[SpanEvent] = deque(maxlen=capacity)

    def emit(self, event: SpanEvent) -> None:
        self._events.append(event)

    def events(self, name: str | None = None) -> list[SpanEvent]:
        if name is None:
            return list(self._events)
        return [e for e in self._events if e.name == name]

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)


class JsonlTraceSink(TraceSink):
    """Streams every event to a JSONL file (or open file object).

    ``max_bytes`` bounds the trace file of a long (or crashing) run:
    when the current file would exceed the cap, it is rotated to
    ``<path>.1`` (replacing any previous rotation) and a fresh file is
    started — at most ``2 * max_bytes`` ever sit on disk.  Rotation
    applies only to path-owned sinks; caller-owned file objects are
    never rotated (or closed), only flushed.
    """

    def __init__(self, target: "str | IO[str]", *,
                 max_bytes: int | None = None):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if isinstance(target, str):
            self._path: str | None = target
            self._fp: IO[str] = open(target, "w", encoding="utf-8")
            self._owned = True
        else:
            self._path = None
            self._fp = target
            self._owned = False
        self.max_bytes = max_bytes
        self._written = 0
        self.emitted = 0
        #: Completed rotations (0 until ``max_bytes`` first overflows).
        self.rotations = 0

    def emit(self, event: SpanEvent) -> None:
        line = json.dumps(event.to_dict(), default=str,
                          separators=(",", ":"))
        if (self.max_bytes is not None and self._owned
                and self._written
                and self._written + len(line) + 1 > self.max_bytes):
            self._rotate()
        self._fp.write(line)
        self._fp.write("\n")
        self._written += len(line) + 1
        self.emitted += 1

    def _rotate(self) -> None:
        assert self._path is not None
        self._fp.close()
        os.replace(self._path, self._path + ".1")
        self._fp = open(self._path, "w", encoding="utf-8")
        self._written = 0
        self.rotations += 1

    def close(self) -> None:
        """Flush (and, for path-owned sinks, close) the trace file.

        Called from ``__exit__`` on both the clean and the error path,
        so a crashing traced run never loses buffered events.  A
        closed sink reports ``enabled = False``, so late emitters — a
        health alert firing during shutdown, a tracer outliving its
        sink — skip it instead of hitting a closed file.
        """
        self.enabled = False
        if self._fp.closed:
            return
        self._fp.flush()
        if self._owned:
            self._fp.close()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
