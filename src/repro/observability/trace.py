"""Pluggable tracing: span events from the engine's control points.

A :class:`TraceSink` receives :class:`SpanEvent` records from the
executor (run start/end, flush), streaming sessions (open, push,
close) and the SP Analyzer (per processed sp-batch).  The protocol is
deliberately tiny — ``enabled`` plus ``emit`` — so emission sites can
guard attribute construction behind a single flag check and the
default :class:`NullTraceSink` costs nothing on the hot path.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import IO

__all__ = ["SpanEvent", "TraceSink", "NullTraceSink",
           "RingBufferTraceSink", "JsonlTraceSink"]


@dataclass(frozen=True)
class SpanEvent:
    """One trace record: a named point (or span edge) with attributes."""

    name: str
    #: Wall-clock time of emission (``time.time()``).
    wall: float
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"name": self.name, "wall": self.wall, **self.attrs}

    def __str__(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in self.attrs.items())
        return f"{self.name} {parts}".rstrip()


class TraceSink:
    """Base protocol: subclasses implement :meth:`emit`.

    ``enabled`` lets emission sites skip building event attributes
    entirely; sinks that record must leave it ``True``.
    """

    enabled = True

    def emit(self, event: SpanEvent) -> None:
        raise NotImplementedError

    def span(self, name: str, **attrs) -> None:
        """Convenience: build and emit one event stamped now."""
        if self.enabled:
            self.emit(SpanEvent(name, time.time(), attrs))

    def close(self) -> None:
        """Release resources (file sinks); default no-op."""


class NullTraceSink(TraceSink):
    """The default sink: records nothing, costs nothing."""

    enabled = False

    def emit(self, event: SpanEvent) -> None:
        pass


class RingBufferTraceSink(TraceSink):
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("trace ring buffer capacity must be positive")
        self._events: deque[SpanEvent] = deque(maxlen=capacity)

    def emit(self, event: SpanEvent) -> None:
        self._events.append(event)

    def events(self, name: str | None = None) -> list[SpanEvent]:
        if name is None:
            return list(self._events)
        return [e for e in self._events if e.name == name]

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)


class JsonlTraceSink(TraceSink):
    """Streams every event to a JSONL file (or open file object)."""

    def __init__(self, target: "str | IO[str]"):
        if isinstance(target, str):
            self._fp: IO[str] = open(target, "w", encoding="utf-8")
            self._owned = True
        else:
            self._fp = target
            self._owned = False
        self.emitted = 0

    def emit(self, event: SpanEvent) -> None:
        self._fp.write(json.dumps(event.to_dict(), default=str,
                                  separators=(",", ":")))
        self._fp.write("\n")
        self.emitted += 1

    def close(self) -> None:
        if self._owned and not self._fp.closed:
            self._fp.close()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
