"""Causal tracing with security provenance.

This module turns the flat :class:`~repro.observability.trace.SpanEvent`
stream into *causal* traces:

* Every element the engine ingests opens a **trace** — a root span with
  a fresh ``trace_id`` — and each operator that touches it opens a
  child span (``parent_id`` chains back to the root), with durations
  measured on the monotonic clock.
* Security decisions (shield pass/drop, denial-by-default, access
  filter drops, optimizer Table II rewrites) attach a **provenance
  record**: a ``provenance.*`` span naming the governing security
  punctuation, the policy it resolved to and the role match, so
  :func:`reconstruct_why` can rebuild "why was tuple *t* dropped /
  delivered?" from the trace alone — no stream replay.
* **Head-based sampling** keeps the cost low enough to leave on: the
  sampling verdict is a pure function of the trace id (a multiplicative
  hash against a threshold), so identical runs sample identical traces.
  **Tail-based keep** overrides the head verdict for the records you
  never want to lose: drops, denial-by-default and ``health.alert``
  events are emitted even on unsampled traces.
* Everything emitted also lands in an always-on bounded
  :class:`FlightRecorder`; the :class:`~repro.observability.health.HealthMonitor`
  dumps a window of it to JSONL when an alert fires, giving a
  retroactive look at the spans *leading up to* the problem.

The :class:`Tracer` is itself a :class:`TraceSink` (``enabled`` is
True), so the engine's existing flat control points — ``executor.run``,
``session.push``, ``analyzer.batch`` — flow through it unchanged.
"""

from __future__ import annotations

import json
import time

from .trace import NullTraceSink, RingBufferTraceSink, SpanEvent, TraceSink

__all__ = ["DEFAULT_SAMPLE_RATE", "TraceContext", "FlightRecorder",
           "Tracer", "WhyReport", "reconstruct_why"]

#: Default head-sampling rate for the ``with_tracing`` tier: roughly
#: one trace in 64 carries full operator spans; security drops are
#: kept regardless (tail-based keep).
DEFAULT_SAMPLE_RATE = 1.0 / 64.0

# Knuth's multiplicative hash constant (2^32 / phi). Sampling uses
# hash(trace_id) < threshold so the verdict is deterministic per id
# and uniformly distributed across ids.
_HASH = 2654435761
_MASK = 0xFFFFFFFF


def _sampled(trace_id: int, threshold: int) -> bool:
    return (trace_id * _HASH) & _MASK < threshold


class TraceContext:
    """Immutable causal coordinates of one span: who am I, who made me."""

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(self, trace_id: int, span_id: int,
                 parent_id: int | None = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id

    def child(self, span_id: int) -> "TraceContext":
        return TraceContext(self.trace_id, span_id, self.span_id)

    def __repr__(self) -> str:
        return (f"TraceContext(trace_id={self.trace_id}, "
                f"span_id={self.span_id}, parent_id={self.parent_id})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceContext):
            return NotImplemented
        return (self.trace_id == other.trace_id
                and self.span_id == other.span_id
                and self.parent_id == other.parent_id)

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id, self.parent_id))


class FlightRecorder(RingBufferTraceSink):
    """Always-on bounded ring of recent spans, dumpable after the fact.

    Unlike a plain ring sink it knows how to cut a *window*: the
    health monitor asks for "everything since N seconds before the
    alert" and writes it to JSONL for post-mortem inspection.
    """

    def window(self, since_wall: float) -> list[SpanEvent]:
        return [e for e in self.events() if e.wall >= since_wall]

    def dump_jsonl(self, path: str, *,
                   since_wall: float | None = None) -> int:
        events = (self.events() if since_wall is None
                  else self.window(since_wall))
        with open(path, "w", encoding="utf-8") as fp:
            for event in events:
                fp.write(json.dumps(event.to_dict(), default=str,
                                    separators=(",", ":")))
                fp.write("\n")
        return len(events)


class Tracer(TraceSink):
    """Causal tracer: samples traces, keeps security decisions.

    Drop-in anywhere a :class:`TraceSink` is expected (``enabled`` is
    True so flat control spans keep flowing), but the engine gives it
    extra calls:

    * :meth:`begin` — on each ingested element: allocate a trace id,
      take the sampling decision, open the root span if sampled.
    * :meth:`op_span` — child span per operator invocation (only on
      sampled traces — callers check :attr:`active`).
    * :meth:`decision` — security-provenance record; ``keep=True``
      (drops, denials) bypasses sampling.
    * :meth:`event` — ad-hoc event with the same keep override, used
      for ``health.alert``.

    Every emission lands in the always-on :attr:`recorder` ring and,
    when one is configured, the external :attr:`sink`.
    """

    enabled = True

    def __init__(self, sink: TraceSink | None = None, *,
                 sample: float = DEFAULT_SAMPLE_RATE,
                 recorder_capacity: int = 4096):
        if not 0.0 <= sample <= 1.0:
            raise ValueError("sample rate must be within [0, 1]")
        self.sink = sink if sink is not None else NullTraceSink()
        self.sample = sample
        self._threshold = int(sample * 2**32)
        self.recorder = FlightRecorder(recorder_capacity)
        # Bound method of the recorder's ring deque — the inlined
        # emission path in :meth:`record` appends through this to skip
        # two method hops per kept record (same package, stable ref:
        # the recorder and its deque live as long as the tracer).
        self._ring_append = self.recorder._events.append  # noqa: SLF001
        self._trace_seq = 0
        self._span_seq = 0
        self._flat_seq = 0
        self._trace_id = 0
        self._root_id = 0
        #: True while the current trace is head-sampled: operator
        #: spans and pass-records are only worth building then.
        self.active = False
        self.traces = 0
        self.sampled_traces = 0

    # ------------------------------------------------------------------
    # emission plumbing

    def _emit(self, event: SpanEvent) -> None:
        self.recorder.emit(event)
        if self.sink.enabled:
            self.sink.emit(event)

    def _emit_new(self, name: str, attrs: dict,
                  trace_id: "int | None" = None,
                  span_id: "int | None" = None,
                  parent_id: "int | None" = None) -> None:
        """Build and emit a stamped event, bypassing the frozen
        dataclass ``__init__`` (7 ``object.__setattr__`` calls) on the
        hot path — kept drop records are emitted on every trace, so
        construction cost is part of the tracing overhead budget."""
        event = SpanEvent.__new__(SpanEvent)
        event.__dict__.update(
            name=name, wall=time.time(), attrs=attrs,
            mono=time.perf_counter_ns(), trace_id=trace_id,
            span_id=span_id, parent_id=parent_id)
        self.recorder.emit(event)
        if self.sink.enabled:
            self.sink.emit(event)

    def emit(self, event: SpanEvent) -> None:
        """TraceSink protocol: forward externally-built events."""
        self._emit(event)

    def span(self, name: str, **attrs) -> None:
        """Flat control span (no causal ids) — head-sampled.

        High-frequency control points (``analyzer.batch``, one per
        sp-batch) flow through here; sampling them like everything
        else keeps the always-on tier within its overhead budget and
        stops them crowding security records out of the flight
        recorder.  At ``sample=1.0`` (the ``in_memory`` tier) every
        span is kept, so plain-sink consumers see no change.
        """
        self._flat_seq = seq = self._flat_seq + 1
        if (seq * _HASH) & _MASK < self._threshold:
            self._emit_new(name, attrs)

    def close(self) -> None:
        self.sink.close()

    # ------------------------------------------------------------------
    # causal API

    def begin(self, kind: str, *, stream: str | None = None,
              ts: int | None = None, size: int = 1,
              name: str = "ingest") -> bool:
        """Open a trace for one ingested element; returns sampled?"""
        self._trace_seq = tid = self._trace_seq + 1
        self.traces += 1
        self._trace_id = tid
        # _sampled(), inlined: begin() runs once per pushed element,
        # and at the default rate 63/64 calls end right here.
        if (tid * _HASH) & _MASK >= self._threshold:
            self.active = False
            self._root_id = 0
            return False
        self.sampled_traces += 1
        self.active = True
        self._span_seq = sid = self._span_seq + 1
        self._root_id = sid
        attrs: dict = {"kind": kind, "size": size}
        if stream is not None:
            attrs["stream"] = stream
        if ts is not None:
            attrs["ts"] = ts
        self._emit_new(name, attrs, trace_id=tid, span_id=sid)
        return True

    @property
    def trace_id(self) -> int:
        """Id of the current (most recently begun) trace."""
        return self._trace_id

    def trace_ref(self) -> int | None:
        """Current trace id if the trace is sampled, else None."""
        return self._trace_id if self.active else None

    def context(self) -> TraceContext | None:
        """Root context of the current trace when sampled."""
        if not self.active:
            return None
        return TraceContext(self._trace_id, self._root_id)

    def op_span(self, name: str, parent_id: int, dur_ns: int,
                **attrs) -> int:
        """Emit a completed child span; returns its span id.

        Callers only invoke this on sampled traces (:attr:`active`),
        passing the duration they measured on the monotonic clock.
        """
        self._span_seq = sid = self._span_seq + 1
        attrs["dur_ns"] = dur_ns
        self._emit_new(name, attrs, trace_id=self._trace_id,
                       span_id=sid, parent_id=parent_id or None)
        return sid

    def decision(self, kind: str, *, operator: str,
                 verdict: str, query: str | None = None,
                 keep: bool = False, **attrs) -> None:
        """Attach a security-provenance record to the current trace.

        ``kind`` names the decision site ("shield.drop",
        "filter.pass", "optimizer.rewrite", ...); the event is named
        ``provenance.<kind>``. ``keep=True`` marks records that must
        survive head sampling (drops, denial-by-default, rewrites).
        """
        if not (self.active or keep):
            return
        attrs["operator"] = operator
        attrs["verdict"] = verdict
        if query is not None:
            attrs["query"] = query
        self._span_seq = sid = self._span_seq + 1
        self._emit_new("provenance." + kind, attrs,
                       trace_id=self._trace_id or None, span_id=sid,
                       parent_id=self._root_id or None)

    def record(self, name: str, attrs: dict, *, keep: bool = False) -> None:
        """:meth:`decision` with a pre-built attrs dict and full name.

        The operators' hot path: shields build the whole attrs mapping
        in one dict display and pass the complete event name
        (``"provenance.shield.drop"``) as an interned constant — no
        prefix concatenation, no keyword-argument repacking.  The dict
        is owned by the emitted event — never reuse it.  Emission is
        fully inlined (no :meth:`_emit_new` hop): kept drop records
        run on every trace, sampled or not.
        """
        if not (self.active or keep):
            return
        self._span_seq = sid = self._span_seq + 1
        event = SpanEvent.__new__(SpanEvent)
        d = event.__dict__
        d["name"] = name
        d["wall"] = time.time()
        d["attrs"] = attrs
        d["mono"] = time.perf_counter_ns()
        d["trace_id"] = self._trace_id or None
        d["span_id"] = sid
        d["parent_id"] = self._root_id or None
        self._ring_append(event)
        if self.sink.enabled:
            self.sink.emit(event)

    def event(self, name: str, *, keep: bool = False, **attrs) -> None:
        """Ad-hoc causal event (health alerts use ``keep=True``)."""
        if not (self.active or keep):
            return
        self._span_seq = sid = self._span_seq + 1
        self._emit_new(name, attrs, trace_id=self._trace_id or None,
                       span_id=sid, parent_id=self._root_id or None)

    # ------------------------------------------------------------------
    # recorder views (keeps in-memory consumers working unchanged)

    def events(self, name: str | None = None) -> list[SpanEvent]:
        return self.recorder.events(name)

    def clear(self) -> None:
        self.recorder.clear()

    def __len__(self) -> int:
        return len(self.recorder)


# ----------------------------------------------------------------------
# why-reconstruction


def _mentions(event: SpanEvent, tid: object) -> bool:
    attrs = event.attrs
    if attrs.get("tid") == tid:
        return True
    tids = attrs.get("tids")
    if tids and tid in tids:
        return True
    run = attrs.get("_run")
    return run is not None and any(t.tid == tid for t in run)


class WhyReport:
    """Reconstructed decision chain for one tuple id."""

    def __init__(self, tid: object, decisions: list[SpanEvent],
                 audit_events: list | None = None):
        self.tid = tid
        self.decisions = decisions
        self.audit_events = audit_events or []

    @property
    def delivered_queries(self) -> list[str]:
        """Queries whose delivery shield passed the tuple."""
        out = []
        for event in self.decisions:
            operator = event.attrs.get("operator", "")
            if (operator.startswith("delivery:")
                    and event.attrs.get("verdict") == "pass"):
                query = operator.split(":", 1)[1]
                if query not in out:
                    out.append(query)
        return out

    @property
    def denials(self) -> list[SpanEvent]:
        return [e for e in self.decisions
                if e.attrs.get("verdict") in ("drop", "denied")]

    def found(self) -> bool:
        return bool(self.decisions or self.audit_events)

    def render_text(self) -> str:
        lines = [f"tuple {self.tid}:"]
        for event in self.decisions:
            a = event.attrs
            where = a.get("operator", "?")
            verdict = a.get("verdict", "?")
            ref = (f"  trace {event.trace_id}"
                   if event.trace_id is not None else "")
            lines.append(f"  {event.name} at {where}: {verdict}{ref}")
            sp = a.get("sp")
            if sp:
                lines.append(f"    governed by sp: {sp}")
            elif a.get("denial_by_default"):
                lines.append("    no applicable sp (denial-by-default)")
            policy = a.get("policy")
            if policy:
                lines.append(f"    policy roles: {', '.join(policy)}")
            predicate = a.get("predicate")
            if predicate:
                lines.append(f"    role predicate: "
                             f"{', '.join(predicate)}")
        delivered = self.delivered_queries
        if delivered:
            lines.append(f"  delivered to: {', '.join(delivered)}")
        elif self.denials:
            lines.append("  not delivered (denied)")
        for record in self.audit_events:
            lines.append(f"  audit: {record}")
        if not self.found():
            lines.append("  no trace or audit records found")
        return "\n".join(lines)


def reconstruct_why(tid: object, spans: list[SpanEvent],
                    audit=None) -> WhyReport:
    """Rebuild the decision chain for tuple ``tid`` from spans + audit.

    ``spans`` is any iterable of :class:`SpanEvent` (typically
    ``tracer.events()`` or a parsed flight-recorder dump); provenance
    records matching the tuple — directly via ``tid`` or through a
    run-level ``tids`` list — are collected in emission order.
    ``audit``, when given, is an ``AuditLog`` whose ``explain(tid)``
    records are merged in for the full paper-level audit trail.
    """
    decisions = [e for e in spans
                 if e.name.startswith("provenance.") and _mentions(e, tid)]
    audit_events = list(audit.explain(tid)) if audit is not None else []
    return WhyReport(tid, decisions, audit_events)
