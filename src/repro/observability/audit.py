"""The security audit trail: who was denied what, and why.

Every enforcement decision the engine takes is describable as "this
operator, under this role predicate, applied this sp to this element".
:class:`AuditEvent` captures exactly that tuple of facts;
:class:`AuditLog` keeps a bounded history of them.

Event kinds currently recorded:

``shield.segment``
    A Security Shield evaluated a newly finalized sp-batch against its
    predicate; the verdict governs every tuple of the segment.
``shield.drop``
    A shield (including the per-query delivery shield) discarded one
    tuple.  Exactly one event per denied tuple per shield.
``shield.rebind``
    A shield's predicate was rewritten at runtime
    (:meth:`~repro.operators.shield.SecurityShield.rebind`).
``analyzer.refine``
    The SP Analyzer intersected a provider sp with server policies.
``join.policy_reject``
    An SAJoin pair matched on the join value but had incompatible
    policies (Table I: empty policy intersection).
``join.deny``
    A probing tuple fell under denial-by-default (empty own policy)
    and joined with nothing.
``join.skip``
    The SPIndex skipping rule (Lemma 5.1) suppressed duplicate segment
    visits during one probe.
``dupelim.suppress``
    Duplicate elimination suppressed a value all authorized roles had
    already seen (Section IV.B case 2).
``groupby.merge``
    Group-by merged attribute subgroups bridged by a tuple's policy.

The log is bounded: once ``capacity`` events are held, recording a new
one evicts the oldest (``evicted`` counts how many were lost).  Counts
per kind are kept unbounded, so rates stay exact even after eviction.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from dataclasses import asdict, dataclass, field
from typing import IO, Iterator

__all__ = ["AuditEvent", "AuditLog"]

DEFAULT_CAPACITY = 10_000


@dataclass(frozen=True)
class AuditEvent:
    """One recorded security decision."""

    #: Monotonic sequence number (order of recording).
    seq: int
    #: Event kind (``shield.drop``, ``analyzer.refine``, ...).
    kind: str
    #: Stream timestamp of the element that triggered the decision.
    ts: float
    #: Name of the deciding operator (or ``SPAnalyzer``).
    operator: str
    #: Query the operator enforces for, when attributable.
    query: str | None = None
    #: Stream id of the affected tuple, if the decision concerns one.
    sid: str | None = None
    #: Tuple id of the affected tuple.
    tid: object | None = None
    #: The security predicate in force (sorted role names).
    predicate: tuple[str, ...] = ()
    #: The resolved policy roles the predicate was checked against.
    policy: tuple[str, ...] = ()
    #: Text rendering of the sp(s) that decided the outcome.
    sp: str | None = None
    #: Kind-specific extras (counts, before/after role sets, ...).
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        record = asdict(self)
        record["predicate"] = list(self.predicate)
        record["policy"] = list(self.policy)
        return record

    def __str__(self) -> str:
        core = f"#{self.seq} {self.kind} op={self.operator}"
        if self.query is not None:
            core += f" query={self.query}"
        if self.tid is not None:
            core += f" tuple={self.sid}:{self.tid}@{self.ts}"
        if self.predicate:
            core += f" predicate={list(self.predicate)}"
        if self.sp:
            core += f" sp=<{self.sp}>"
        return core


class AuditLog:
    """Bounded, queryable history of :class:`AuditEvent` records."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("audit log capacity must be positive")
        self.capacity = capacity
        self._events: deque[AuditEvent] = deque(maxlen=capacity)
        self._seq = 0
        #: Events recorded but no longer held (bounded-log eviction).
        self.evicted = 0
        #: Exact per-kind totals, unaffected by eviction.
        self.counts: Counter[str] = Counter()

    # -- recording ---------------------------------------------------------
    def record(self, kind: str, *, ts: float, operator: str,
               query: str | None = None, sid: str | None = None,
               tid: object | None = None,
               predicate: tuple[str, ...] = (),
               policy: tuple[str, ...] = (),
               sp: str | None = None,
               **detail) -> AuditEvent:
        """Append one event; returns it (mainly for tests)."""
        event = AuditEvent(seq=self._seq, kind=kind, ts=ts,
                           operator=operator, query=query, sid=sid,
                           tid=tid, predicate=predicate, policy=policy,
                           sp=sp, detail=detail)
        self._seq += 1
        if len(self._events) == self.capacity:
            self.evicted += 1
        self._events.append(event)
        self.counts[kind] += 1
        return event

    # -- querying ----------------------------------------------------------
    def events(self, *, query: str | None = None,
               kind: str | None = None) -> list[AuditEvent]:
        """Held events, optionally filtered by query and/or kind."""
        out = []
        for event in self._events:
            if query is not None and event.query != query:
                continue
            if kind is not None and event.kind != kind:
                continue
            out.append(event)
        return out

    def explain(self, tuple_id: object, *,
                sid: str | None = None) -> list[AuditEvent]:
        """Every held decision that touched the tuple ``tuple_id``.

        This is the "why was my tuple dropped?" query: the returned
        events name the operator, the predicate and the sp that decided
        each outcome.  ``sid`` narrows to one stream when tuple ids are
        reused across streams.
        """
        out = []
        for event in self._events:
            if event.tid != tuple_id:
                continue
            if sid is not None and event.sid != sid:
                continue
            out.append(event)
        return out

    def last(self, kind: str | None = None) -> AuditEvent | None:
        """Most recent held event (of ``kind``, if given)."""
        for event in reversed(self._events):
            if kind is None or event.kind == kind:
                return event
        return None

    # -- export -------------------------------------------------------------
    def to_jsonl(self, fp: IO[str]) -> int:
        """Write held events as JSON lines; returns the line count."""
        count = 0
        for event in self._events:
            fp.write(json.dumps(event.to_dict(), default=str,
                                separators=(",", ":")))
            fp.write("\n")
            count += 1
        return count

    def dump_jsonl(self, path: str) -> int:
        with open(path, "w", encoding="utf-8") as fp:
            return self.to_jsonl(fp)

    # -- bookkeeping ---------------------------------------------------------
    def clear(self) -> None:
        self._events.clear()
        self.counts.clear()
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[AuditEvent]:
        return iter(self._events)

    def __repr__(self) -> str:
        return (f"AuditLog(held={len(self._events)}, "
                f"recorded={self._seq}, evicted={self.evicted})")
