"""Metric exposition: Prometheus text format, JSON, scrape endpoint.

Three surfaces over one :class:`~repro.observability.metrics.
MetricsRegistry`:

* :func:`render_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``_bucket``/``_sum``/``_count``
  histogram series with cumulative ``le`` labels), suitable for any
  Prometheus-compatible scraper.
* :func:`render_json` — the registry snapshot as one JSON document,
  including the quantile estimates (which the text format leaves to
  the scraper).
* :func:`serve_metrics` — an optional stdlib ``http.server`` scrape
  endpoint serving ``/metrics`` (text) and ``/metrics.json`` from a
  daemon thread.  No third-party dependency: this is the
  "just point Prometheus at it" deployment story.

:func:`parse_prometheus` is the matching minimal parser — used by the
test suite and the CI smoke step to validate that what we emit parses
back — not a general-purpose client.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.observability.metrics import MetricsRegistry

__all__ = ["render_prometheus", "render_json", "parse_prometheus",
           "serve_metrics", "MetricsServer"]


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_labels(names: tuple[str, ...], values: tuple[str, ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [f'{n}="{_escape_label(v)}"'
             for n, v in zip(names, values)] + [
        f'{n}="{_escape_label(v)}"' for n, v in extra]
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (v0.0.4)."""
    lines: list[str] = []
    for family in registry.collect():
        if not len(family):
            continue
        help_text = family.help.replace("\\", r"\\").replace("\n", r"\n")
        lines.append(f"# HELP {family.name} {help_text}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for values, child in family.series():
            labels = _format_labels(family.label_names, values)
            if family.kind == "histogram":
                cumulative = child.cumulative()
                for bound, count in zip(family.buckets, cumulative):
                    bucket_labels = _format_labels(
                        family.label_names, values,
                        extra=(("le", _format_value(bound)),))
                    lines.append(
                        f"{family.name}_bucket{bucket_labels} {count}")
                inf_labels = _format_labels(family.label_names, values,
                                            extra=(("le", "+Inf"),))
                lines.append(
                    f"{family.name}_bucket{inf_labels} {child.count}")
                lines.append(f"{family.name}_sum{labels} "
                             f"{_format_value(child.sum)}")
                lines.append(f"{family.name}_count{labels} {child.count}")
            else:
                lines.append(f"{family.name}{labels} "
                             f"{_format_value(child.current())}")
    return "\n".join(lines) + "\n" if lines else ""


def render_json(registry: MetricsRegistry, *, indent: int = 2) -> str:
    """The registry snapshot (with quantile estimates) as JSON."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=False)


def parse_prometheus(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Parse text exposition back into ``{name: [(labels, value)]}``.

    A strict-enough validator for round-trip tests and the CI smoke
    check: raises :class:`ValueError` on malformed sample lines,
    unparsable values, or a sample appearing before its ``# TYPE``.
    """
    samples: dict[str, list[tuple[dict, float]]] = {}
    typed: set[str] = set()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                if parts[1] == "TYPE":
                    typed.add(parts[2])
                continue
            raise ValueError(f"line {lineno}: malformed comment {raw!r}")
        name, labels, value = _parse_sample(raw, lineno)
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in typed:
                base = name[:-len(suffix)]
        if base not in typed:
            raise ValueError(
                f"line {lineno}: sample {name!r} before its # TYPE")
        samples.setdefault(name, []).append((labels, value))
    return samples


def _parse_sample(line: str, lineno: int) -> tuple[str, dict, float]:
    label_start = line.find("{")
    labels: dict[str, str] = {}
    if label_start != -1:
        label_end = line.rfind("}")
        if label_end < label_start:
            raise ValueError(f"line {lineno}: unbalanced braces")
        name = line[:label_start]
        body = line[label_start + 1:label_end]
        rest = line[label_end + 1:].strip()
        for pair in _split_label_pairs(body, lineno):
            key, _, value = pair.partition("=")
            if not (value.startswith('"') and value.endswith('"')):
                raise ValueError(
                    f"line {lineno}: unquoted label value in {pair!r}")
            labels[key.strip()] = _unescape_label(value[1:-1])
    else:
        name, _, rest = line.partition(" ")
    parts = rest.split()
    if not parts:
        raise ValueError(f"line {lineno}: sample without a value")
    try:
        value = float(parts[0])
    except ValueError as exc:
        raise ValueError(
            f"line {lineno}: bad sample value {parts[0]!r}") from exc
    if not name.replace("_", "").replace(":", "").isalnum():
        raise ValueError(f"line {lineno}: bad metric name {name!r}")
    return name, labels, value


def _unescape_label(value: str) -> str:
    """Invert :func:`_escape_label` with one left-to-right scan.

    Sequential ``str.replace`` passes are NOT a correct inverse: in
    ``\\\\n`` (an escaped backslash followed by a literal ``n``) an
    early ``\\n``-pass would consume the second backslash and the
    ``n`` as a newline escape.
    """
    if "\\" not in value:
        return value
    out: list[str] = []
    i = 0
    end = len(value)
    while i < end:
        char = value[i]
        if char == "\\" and i + 1 < end:
            nxt = value[i + 1]
            out.append("\n" if nxt == "n"
                       else nxt if nxt in ('"', "\\")
                       else char + nxt)
            i += 2
        else:
            out.append(char)
            i += 1
    return "".join(out)


def _split_label_pairs(body: str, lineno: int) -> list[str]:
    """Split ``k="v",k2="v2"`` respecting escaped quotes."""
    pairs: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            pairs.append("".join(current).strip())
            current = []
            continue
        current.append(char)
    if in_quotes:
        raise ValueError(f"line {lineno}: unterminated label value")
    if current:
        pairs.append("".join(current).strip())
    return [p for p in pairs if p]


class MetricsServer:
    """A minimal scrape endpoint over one registry.

    Serves ``/metrics`` (Prometheus text) and ``/metrics.json`` from a
    daemon thread; anything else is 404.  Usable as a context
    manager; ``port`` 0 picks a free port (read it back from
    ``server.port``).
    """

    def __init__(self, registry: MetricsRegistry,
                 host: str = "127.0.0.1", port: int = 0):
        self.registry = registry
        handler = self._make_handler(registry)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    @staticmethod
    def _make_handler(registry: MetricsRegistry):
        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                if self.path.split("?")[0] == "/metrics":
                    body = render_prometheus(registry).encode()
                    content_type = ("text/plain; version=0.0.4; "
                                    "charset=utf-8")
                elif self.path.split("?")[0] == "/metrics.json":
                    body = render_json(registry).encode()
                    content_type = "application/json"
                else:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:
                pass  # scrapes shouldn't spam stderr

        return Handler

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True,
            name="repro-metrics-server")
        self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_metrics(registry: MetricsRegistry, *, host: str = "127.0.0.1",
                  port: int = 0) -> MetricsServer:
    """Start a scrape endpoint for ``registry``; returns the server.

    The server runs in a daemon thread; call ``.close()`` (or use the
    returned object as a context manager) to stop it.
    """
    return MetricsServer(registry, host=host, port=port).start()
