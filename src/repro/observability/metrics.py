"""Metric primitives: counters, gauges, log-scale histograms.

PR 1's :class:`~repro.observability.stats.StageStats` snapshots can
*count* what the engine did; they cannot describe *distributions* —
and the paper's headline claim ("a policy carried by an sp takes
effect for the very next tuple") is a latency distribution, not a
count.  This module adds the three Prometheus-style primitives and a
:class:`MetricsRegistry` that names them:

* :class:`Counter` — monotonically increasing totals (tuples passed,
  tuples dropped, denial-by-default drops).
* :class:`Gauge` — point-in-time values, either set explicitly or read
  through a callback at collection time (queue depths, SPIndex scan
  counters) so the hot path pays nothing.
* :class:`Histogram` — fixed log-scale buckets with a quantile
  estimator (operator latency, end-to-end tuple latency, policy
  propagation lag, segment sizes).

Instruments are grouped into *families* carrying a name, a help
string and declared label names; children are one instrument per
label-value combination.  Hot paths pre-bind children once (at
:meth:`~repro.operators.base.Operator.bind_metrics` time), so a
recording site is a single attribute check plus an increment.

Everything here is dependency-free and — like the rest of the
observability package — entirely absent from an unobserved DSMS: a
:class:`~repro.engine.dsms.DSMS` without a registry never constructs
any of these objects.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Callable, Iterator, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "log_buckets",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
]


def log_buckets(low: float, high: float,
                per_decade: int = 4) -> tuple[float, ...]:
    """Log-spaced histogram bucket upper bounds covering [low, high].

    ``per_decade`` bounds per factor of 10, inclusive of both ends:
    ``log_buckets(1e-6, 10.0, 4)`` spans seven decades in 29 buckets.
    The fixed grid keeps histograms mergeable across operators and
    runs (identical ``le`` labels in the Prometheus exposition).
    """
    if low <= 0 or high <= low:
        raise ValueError("need 0 < low < high for log-scale buckets")
    if per_decade <= 0:
        raise ValueError("per_decade must be positive")
    from math import ceil, log10

    lo_exp = log10(low)
    steps = ceil(round((log10(high) - lo_exp) * per_decade, 9))
    return tuple(round(10 ** (lo_exp + i / per_decade), 12)
                 for i in range(steps + 1))


#: Default latency buckets: 1 µs .. 10 s, four per decade.
LATENCY_BUCKETS = log_buckets(1e-6, 10.0, 4)

#: Default size buckets (segment sizes, batch sizes): 1 .. 10⁶.
SIZE_BUCKETS = log_buckets(1.0, 1e6, 3)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def current(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """A point-in-time value: set directly, or read via callback.

    ``set_function`` turns the gauge into a pull-mode instrument: the
    callback is invoked at *collection* time (export, monitor frame),
    so instrumented state (operator queue depths, index counters) is
    observed with zero hot-path cost.
    """

    __slots__ = ("value", "_fn")
    kind = "gauge"

    def __init__(self):
        self.value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Read the gauge through ``fn`` at collection time."""
        self._fn = fn

    def current(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.current()})"


class Histogram:
    """Fixed-bucket histogram with sum, count and quantile estimates.

    ``bounds`` are the bucket *upper* bounds (inclusive, log-spaced by
    default); one overflow bucket catches everything above the last
    bound.  Quantiles are estimated by locating the target rank's
    bucket and interpolating linearly inside it — exact enough for
    monitoring with log-scale buckets (relative error bounded by the
    bucket width).
    """

    __slots__ = ("bounds", "counts", "sum", "count", "max", "exemplars")
    kind = "histogram"

    def __init__(self, bounds: Sequence[float] = LATENCY_BUCKETS):
        self.bounds = tuple(bounds)
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        #: Per-bucket counts; the final slot is the overflow bucket.
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.max = 0.0
        #: Lazily created ``{bucket_index: (value, trace_id, wall)}`` —
        #: the most recent traced observation per bucket, linking the
        #: distribution back to concrete causal traces.
        self.exemplars: dict[int, tuple[float, int, float]] | None = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        if value > self.max:
            self.max = value

    def exemplar(self, value: float, trace_id: int, *,
                 wall: float | None = None) -> None:
        """Tag ``value``'s bucket with the sampled trace that saw it.

        Called *in addition to* :meth:`observe`, and only for values
        observed on a sampled trace — so the cost is bounded by the
        sampling rate, and every exemplar points at a trace whose
        spans were actually recorded.
        """
        if self.exemplars is None:
            self.exemplars = {}
        index = bisect_left(self.bounds, value)
        self.exemplars[index] = (value, trace_id,
                                 wall if wall is not None else time.time())

    def cumulative(self) -> list[int]:
        """Cumulative bucket counts (Prometheus ``le`` semantics)."""
        out: list[int] = []
        running = 0
        for n in self.counts[:-1]:
            running += n
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 ≤ q ≤ 1) of observed values."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0.0
        for index, upper in enumerate(self.bounds):
            in_bucket = self.counts[index]
            if running + in_bucket >= target and in_bucket:
                lower = self.bounds[index - 1] if index else 0.0
                fraction = (target - running) / in_bucket
                return lower + fraction * (upper - lower)
            running += in_bucket
        # Overflow bucket: the best point estimate is the observed max.
        return self.max

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def current(self) -> float:
        """Scalar rendering (the mean) for uniform snapshot APIs."""
        return self.mean()

    def __repr__(self) -> str:
        return (f"Histogram(count={self.count}, sum={self.sum:.6g}, "
                f"buckets={len(self.bounds)})")


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """A named metric with declared labels and one child per series."""

    __slots__ = ("name", "help", "kind", "label_names", "buckets",
                 "_children")

    def __init__(self, name: str, help: str, kind: str,
                 label_names: Sequence[str] = (),
                 buckets: Sequence[float] | None = None):
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        if kind != "histogram" and buckets is not None:
            raise ValueError("buckets apply to histograms only")
        self.name = name
        self.help = help
        self.kind = kind
        self.label_names = tuple(label_names)
        self.buckets = (tuple(buckets) if buckets is not None
                        else LATENCY_BUCKETS)
        self._children: dict[tuple[str, ...], object] = {}

    def labels(self, *values, **kwargs):
        """The child instrument for one label-value combination.

        Accepts positional values (in declared order) or keyword
        values; children are created on first use and cached, so hot
        paths should pre-bind the returned instrument.
        """
        if kwargs:
            if values:
                raise ValueError("pass labels positionally or by "
                                 "keyword, not both")
            try:
                values = tuple(str(kwargs.pop(name))
                               for name in self.label_names)
            except KeyError as exc:
                raise ValueError(
                    f"{self.name}: missing label {exc.args[0]!r}"
                ) from None
            if kwargs:
                raise ValueError(
                    f"{self.name}: unknown labels {sorted(kwargs)}")
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {len(values)} value(s)")
        child = self._children.get(values)
        if child is None:
            if self.kind == "histogram":
                child = Histogram(self.buckets)
            else:
                child = _KINDS[self.kind]()
            self._children[values] = child
        return child

    def series(self) -> Iterator[tuple[tuple[str, ...], object]]:
        """All (label values, child) pairs, insertion-ordered.

        Iterates over a point-in-time copy, so a concurrent recording
        thread creating a new child mid-collection cannot blow up the
        exporter with ``dictionary changed size during iteration``.
        """
        return iter(tuple(self._children.items()))

    def __len__(self) -> int:
        return len(self._children)

    # -- unlabeled convenience -------------------------------------------
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self.labels().set_function(fn)

    def __repr__(self) -> str:
        return (f"MetricFamily({self.name!r}, {self.kind}, "
                f"series={len(self._children)})")


class MetricsRegistry:
    """Named metric families, created idempotently, collected in order.

    The registry is the unit the
    :class:`~repro.observability.hub.Observability` hub carries and
    the export/monitor surfaces read.  Re-registering an existing name
    returns the existing family (so shared operators across queries
    land in one series set) but raises if the kind or labels differ.
    """

    def __init__(self):
        self._families: dict[str, MetricFamily] = {}

    def _register(self, name: str, help: str, kind: str,
                  label_names: Sequence[str],
                  buckets: Sequence[float] | None = None) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.label_names != tuple(
                    label_names):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.kind}{family.label_names}")
            return family
        family = MetricFamily(name, help, kind, label_names,
                              buckets=buckets)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, help, "counter", labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, help, "gauge", labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] | None = None) -> MetricFamily:
        return self._register(name, help, "histogram", labels,
                              buckets=buckets)

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    def collect(self) -> Iterator[MetricFamily]:
        """All registered families, registration-ordered (snapshot
        copy — safe against concurrent registration)."""
        return iter(tuple(self._families.values()))

    def snapshot(self) -> dict:
        """Plain-data rendering of every series (JSON-friendly)."""
        out: dict = {}
        for family in self.collect():
            series = []
            for values, child in family.series():
                labels = dict(zip(family.label_names, values))
                if family.kind == "histogram":
                    entry = {
                        "labels": labels,
                        "count": child.count,
                        "sum": child.sum,
                        "max": child.max,
                        "buckets": dict(zip(
                            (str(b) for b in family.buckets),
                            child.cumulative())),
                        "p50": child.quantile(0.5),
                        "p95": child.quantile(0.95),
                        "p99": child.quantile(0.99),
                    }
                    if child.exemplars:
                        entry["exemplars"] = [
                            {"value": value, "trace_id": trace_id,
                             "wall": wall}
                            for _, (value, trace_id, wall)
                            in sorted(tuple(child.exemplars.items()))]
                    series.append(entry)
                else:
                    series.append({"labels": labels,
                                   "value": child.current()})
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "labels": list(family.label_names),
                "series": series,
            }
        return out

    def __len__(self) -> int:
        return len(self._families)

    def __repr__(self) -> str:
        return f"MetricsRegistry(families={len(self._families)})"
