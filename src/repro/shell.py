"""An interactive shell for the security-punctuation DSMS.

``python -m repro shell`` starts a small line-oriented console over a
live :class:`~repro.engine.session.StreamingSession`, so the whole
stack — CQL, the SP Analyzer, shields, joins — can be driven by hand:

.. code-block:: text

    sp> STREAM hr patient_id beats_per_min
    sp> QUERY doc ROLES D SELECT * FROM hr
    sp> INSERT SP INTO STREAM hr LET DDP = '*', SRP = 'D', TIMESTAMP = 0
    sp> PUSH hr 120 {"patient_id": 120, "beats_per_min": 72} 1.0
    doc <- {'patient_id': 120, 'beats_per_min': 72}
    sp> RESULTS doc
    1 tuple(s)

Commands (case-insensitive keywords):

``STREAM <id> <attr> [<attr> ...]``
    Register a stream.
``QUERY <name> ROLES <r1,r2,..> <SELECT ...>``
    Register a continuous query for the given roles.
``INSERT SP ...``
    The paper's CQL sp declaration; injected into the named stream.
``PUSH <stream> <tid> <json-values> <ts>``
    Push one data tuple.
``RESULTS <query>``
    Show a query's delivered tuples so far.
``EXPLAIN <query>``
    Print the query's (shielded) logical plan.
``HELP`` / ``QUIT``

The session starts lazily on the first PUSH/INSERT after at least one
query exists; STREAM and QUERY commands are rejected afterwards (plans
are compiled once per session, like a real DSMS deployment).
"""

from __future__ import annotations

import json
import shlex
from typing import Callable, IO

from repro.algebra.explain import explain
from repro.cql.translator import compile_statement
from repro.core.punctuation import SecurityPunctuation
from repro.engine.dsms import DSMS
from repro.errors import ReproError
from repro.stream.schema import StreamSchema
from repro.stream.tuples import DataTuple

__all__ = ["Shell", "run_shell"]


class Shell:
    """State machine behind the interactive console (testable core)."""

    def __init__(self, out: Callable[[str], None] = print):
        self.dsms = DSMS()
        self.session = None
        self.out = out
        self.done = False

    # -- command dispatch ----------------------------------------------------
    def handle(self, line: str) -> None:
        """Process one input line; errors are printed, never raised."""
        line = line.strip()
        if not line or line.startswith("--"):
            return
        try:
            self._dispatch(line)
        except ReproError as exc:
            self.out(f"error: {exc}")
        except (ValueError, json.JSONDecodeError) as exc:
            self.out(f"error: {exc}")

    def _dispatch(self, line: str) -> None:
        head = line.split(None, 1)[0].upper()
        if head == "QUIT" or head == "EXIT":
            self._close()
            self.done = True
            return
        if head == "HELP":
            self.out(__doc__.split("Commands", 1)[1])
            return
        if head == "STREAM":
            self._cmd_stream(line)
            return
        if head == "QUERY":
            self._cmd_query(line)
            return
        if head == "INSERT":
            self._cmd_insert_sp(line)
            return
        if head == "PUSH":
            self._cmd_push(line)
            return
        if head == "RESULTS":
            self._cmd_results(line)
            return
        if head == "EXPLAIN":
            self._cmd_explain(line)
            return
        self.out(f"error: unknown command {head!r} (try HELP)")

    # -- commands ----------------------------------------------------------
    def _require_not_live(self) -> None:
        if self.session is not None:
            raise ReproError(
                "the session is already live; streams and queries must "
                "be declared before the first PUSH/INSERT")

    def _cmd_stream(self, line: str) -> None:
        self._require_not_live()
        parts = shlex.split(line)
        if len(parts) < 3:
            raise ReproError("usage: STREAM <id> <attr> [<attr> ...]")
        _, stream_id, *attributes = parts
        self.dsms.register_stream(StreamSchema(stream_id, attributes))
        self.out(f"stream {stream_id!r} registered "
                 f"({', '.join(attributes)})")

    def _cmd_query(self, line: str) -> None:
        self._require_not_live()
        parts = line.split(None, 3)
        if len(parts) < 4 or parts[2].upper() != "ROLES":
            raise ReproError(
                "usage: QUERY <name> ROLES <r1,r2> <SELECT ...>")
        _, name, _, rest = parts
        roles_text, _, statement = rest.partition(" ")
        roles = {r.strip() for r in roles_text.split(",") if r.strip()}
        expr = compile_statement(statement)
        if isinstance(expr, SecurityPunctuation):
            raise ReproError("QUERY takes a SELECT statement")
        self.dsms.register_query(name, expr, roles=roles)
        self.out(f"query {name!r} registered for roles "
                 f"{sorted(roles)}")

    def _ensure_session(self):
        if self.session is None:
            self.session = self.dsms.open_session()
            for name in self.dsms.queries:
                self.session.subscribe(name, self._make_callback(name))
        return self.session

    def _make_callback(self, name: str):
        def deliver(element) -> None:
            if isinstance(element, DataTuple):
                self.out(f"{name} <- {element.values}")
        return deliver

    def _cmd_insert_sp(self, line: str) -> None:
        sp = compile_statement(line, provider="shell")
        if not isinstance(sp, SecurityPunctuation):
            raise ReproError("INSERT must be an INSERT SP statement")
        stream_id = self._sp_target(line)
        self._ensure_session().push(stream_id, sp)
        self.out(f"sp -> {stream_id}: {sp.to_text()}")

    @staticmethod
    def _sp_target(line: str) -> str:
        tokens = line.split()
        for index, token in enumerate(tokens):
            if token.upper() == "STREAM" and index + 1 < len(tokens):
                return tokens[index + 1]
        raise ReproError("INSERT SP requires INTO STREAM <id>")

    def _cmd_push(self, line: str) -> None:
        parts = line.split(None, 3)
        if len(parts) < 4:
            raise ReproError("usage: PUSH <stream> <tid> <json> <ts>")
        _, stream_id, tid_text, rest = parts
        payload, _, ts_text = rest.rpartition(" ")
        if not payload:
            raise ReproError("usage: PUSH <stream> <tid> <json> <ts>")
        values = json.loads(payload)
        tid: object = int(tid_text) if tid_text.isdigit() else tid_text
        item = DataTuple(stream_id, tid, values, float(ts_text))
        self._ensure_session().push(stream_id, item)

    def _cmd_results(self, line: str) -> None:
        parts = line.split()
        if len(parts) != 2:
            raise ReproError("usage: RESULTS <query>")
        session = self._ensure_session()
        tuples = session.results(parts[1])
        self.out(f"{len(tuples)} tuple(s)")
        for item in tuples:
            self.out(f"  {item.values} @ {item.ts}")

    def _cmd_explain(self, line: str) -> None:
        parts = line.split()
        if len(parts) != 2:
            raise ReproError("usage: EXPLAIN <query>")
        query = self.dsms.queries.get(parts[1])
        if query is None:
            raise ReproError(f"unknown query: {parts[1]!r}")
        self.out(explain(query.expr))

    def _close(self) -> None:
        if self.session is not None:
            self.session.close()
            self.session = None


def run_shell(stdin: IO[str] | None = None,
              out: Callable[[str], None] = print,
              prompt: str = "sp> ") -> int:
    """Run the console loop over ``stdin`` (default: interactive)."""
    import sys

    shell = Shell(out=out)
    interactive = stdin is None
    source = stdin if stdin is not None else sys.stdin
    if interactive:
        out("security-punctuation shell — HELP for commands, "
            "QUIT to leave")
    while not shell.done:
        if interactive:
            try:
                line = input(prompt)
            except EOFError:
                break
        else:
            line = source.readline()
            if not line:
                break
        shell.handle(line)
    shell._close()  # noqa: SLF001 - own class
    return 0
