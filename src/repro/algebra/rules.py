"""The security-aware equivalence rules (Table II).

Rule 1   ψ_{p1∧p2∧..∧pn}(T) ≡ ψ_p1(ψ_p2(..(ψ_pn(T))))          (split / merge)
Rule 2   commute SS with SS, π, σ, δ, G
Rule 3   ψ_p(T Θ E) ≡ ψ_p(T) Θ E            if only T streams policies
         ψ_p(T Θ E) ≡ ψ_p(T) Θ ψ_p(E)       if both stream policies
Rule 4   binary operators commute under a shield
Rule 5   binary operators associate under a shield

Each rule is a :class:`Rule` with ``matches(expr, ctx)`` and
``apply(expr, ctx)``; ``apply`` returns the rewritten expression (the
input expression object is never mutated).  :func:`apply_at` rewrites
one node addressed by path, and :func:`equivalent_forms` enumerates the
one-step rewrite neighbourhood — the search space of the optimizer.

A note on the project/SS commute guard: the paper allows commuting
π and ψ outright when the tuple identifier is retained by the
projection (its formulation ``attr' = attr ∪ attr''`` with
``attr'' = tid``).  In this engine ``DataTuple.project`` always
preserves ``sid``/``tid`` (they are tuple metadata, not attributes),
so the guard is only violated by *attribute-granularity* policies
whose attribute patterns the projection could prune differently
before vs. after the shield; :class:`CommuteProjectShield` therefore
carries an ``attribute_policies_possible`` flag in the context.  All
guard flags are three-valued and default to *unknown*, which fails
closed: a precondition that cannot be proven absent (via
:mod:`repro.analysis.rewrites`) refuses the rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.expressions import (DupElimExpr, GroupByExpr,
                                       IntersectExpr, JoinExpr, LogicalExpr,
                                       ProjectExpr, ScanExpr, SelectExpr,
                                       ShieldExpr, UnionExpr, walk)
from repro.analysis.rewrites import Proof, hazard_absent
from repro.analysis.udf import condition_verified
from repro.errors import OptimizerError

__all__ = [
    "RewriteContext",
    "Rule",
    "SplitShield",
    "MergeShields",
    "CommuteShields",
    "CommuteSelectShield",
    "CommuteProjectShield",
    "CommuteDupElimShield",
    "CommuteGroupByShield",
    "PushShieldIntoBinary",
    "PullShieldOutOfBinary",
    "CommuteJoinInputs",
    "AssociateJoin",
    "SplitSelect",
    "MergeSelects",
    "PushSelectIntoJoin",
    "ALL_RULES",
    "apply_at",
    "equivalent_forms",
]

_BINARY = (JoinExpr, UnionExpr, IntersectExpr)


@dataclass
class RewriteContext:
    """Facts about the environment the rules may rely on.

    The three hazard flags are **three-valued**: ``False`` means the
    hazard is *proven absent* (the guarded rewrite is admitted),
    ``True`` means it is proven present, and ``None`` — the default —
    means nothing is known.  Guarded rules consult
    :mod:`repro.analysis.rewrites` and refuse the rewrite unless the
    hazard is proven absent: an unknown precondition fails closed
    instead of assuming safety.
    """

    #: Stream ids that carry security punctuations.  Rule 3's one-sided
    #: push is only valid when the other side streams no policies.
    policy_streams: frozenset[str] = frozenset()
    #: Whether attribute-granularity sps may occur (guards the π/ψ
    #: commute; see module docstring).  ``None`` = unknown (refuse).
    attribute_policies_possible: bool | None = None
    #: Whether segments with differing policies may occur at runtime.
    #: Guards the δ/ψ and G/ψ commutes: both operators keep *stateful*
    #: output policies (dup-elim suppression state, ASG partitions)
    #: built from every visible input tuple, so filtering before vs.
    #: after the operator changes which duplicates are suppressed and
    #: how subgroups merge whenever the stream interleaves disjoint
    #: policies.  With a single uniform policy the commute is exact.
    #: ``None`` = unknown (refuse).
    heterogeneous_policies_possible: bool | None = None
    #: Whether join windows carry real time-based semantics.  Guards
    #: Rule 5 (join associativity): re-association re-anchors window
    #: checks on different intermediate timestamps, so
    #: ``(T ⋈ E) ⋈ K`` and ``T ⋈ (E ⋈ K)`` can pair different tuples
    #: unless windows are effectively unbounded.  Pure-algebra
    #: exploration may opt in by proving the hazard absent (``False``);
    #: the executing engine sets ``True``.  ``None`` = unknown
    #: (refuse).
    strict_join_windows: bool | None = None
    #: Stream schemas (stream id → attribute names), used by the
    #: classical selection-pushdown rule to decide which join side
    #: produces a condition's attributes.  Empty = unknown (pushdown
    #: of plain selections stays disabled).
    schemas: dict = field(default_factory=dict)

    def streams_policies(self, expr: LogicalExpr) -> bool:
        """Whether any scan under ``expr`` carries sps."""
        return any(isinstance(node, ScanExpr)
                   and node.stream_id in self.policy_streams
                   for node in walk(expr))

    def attributes_of(self, expr: LogicalExpr) -> frozenset[str] | None:
        """Attributes produced by ``expr``, or ``None`` if unknown.

        Join outputs are excluded (clashing attributes get renamed at
        runtime), keeping the pushdown guard conservative.
        """
        if isinstance(expr, ScanExpr):
            attrs = self.schemas.get(expr.stream_id)
            return frozenset(attrs) if attrs is not None else None
        if isinstance(expr, ProjectExpr):
            return frozenset(expr.attributes)
        if isinstance(expr, (ShieldExpr, SelectExpr, DupElimExpr)):
            return self.attributes_of(expr.children()[0])
        return None


class Rule:
    """One equivalence rule: a guarded local rewrite."""

    name = "rule"

    def matches(self, expr: LogicalExpr, ctx: RewriteContext) -> bool:
        raise NotImplementedError

    def apply(self, expr: LogicalExpr, ctx: RewriteContext) -> LogicalExpr:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Rule {self.name}>"


class SplitShield(Rule):
    """Rule 1 →: peel the first conjunct off a multi-conjunct shield."""

    name = "split-shield"

    def matches(self, expr: LogicalExpr, ctx: RewriteContext) -> bool:
        return isinstance(expr, ShieldExpr) and len(expr.predicates) > 1

    def apply(self, expr: LogicalExpr, ctx: RewriteContext) -> LogicalExpr:
        assert isinstance(expr, ShieldExpr)
        inner = ShieldExpr(expr.input, expr.predicates[1:])
        return ShieldExpr(inner, expr.predicates[:1])


class MergeShields(Rule):
    """Rule 1 ←: fuse directly stacked shields into one conjunction."""

    name = "merge-shields"

    def matches(self, expr: LogicalExpr, ctx: RewriteContext) -> bool:
        return (isinstance(expr, ShieldExpr)
                and isinstance(expr.input, ShieldExpr))

    def apply(self, expr: LogicalExpr, ctx: RewriteContext) -> LogicalExpr:
        assert isinstance(expr, ShieldExpr)
        inner = expr.input
        assert isinstance(inner, ShieldExpr)
        return ShieldExpr(inner.input, expr.predicates + inner.predicates)


class CommuteShields(Rule):
    """Rule 2: ψ_p1(ψ_p2(T)) ≡ ψ_p2(ψ_p1(T))."""

    name = "commute-shields"

    def matches(self, expr: LogicalExpr, ctx: RewriteContext) -> bool:
        return (isinstance(expr, ShieldExpr)
                and isinstance(expr.input, ShieldExpr))

    def apply(self, expr: LogicalExpr, ctx: RewriteContext) -> LogicalExpr:
        assert isinstance(expr, ShieldExpr)
        inner = expr.input
        assert isinstance(inner, ShieldExpr)
        return ShieldExpr(ShieldExpr(inner.input, expr.predicates),
                          inner.predicates)


class _CommuteUnaryShield(Rule):
    """Shared shape: ψ_p(Op(T)) ≡ Op(ψ_p(T)) both directions."""

    unary_type: type = SelectExpr

    def matches(self, expr: LogicalExpr, ctx: RewriteContext) -> bool:
        if isinstance(expr, ShieldExpr) and isinstance(expr.input,
                                                       self.unary_type):
            return True
        return (isinstance(expr, self.unary_type)
                and isinstance(expr.children()[0], ShieldExpr))

    def apply(self, expr: LogicalExpr, ctx: RewriteContext) -> LogicalExpr:
        if isinstance(expr, ShieldExpr):
            # ψ(Op(T)) → Op(ψ(T)): push the shield down.
            op = expr.input
            (inner,) = op.children()
            return op.with_children(ShieldExpr(inner, expr.predicates))
        # Op(ψ(T)) → ψ(Op(T)): pull the shield up.
        (shield,) = expr.children()
        assert isinstance(shield, ShieldExpr)
        return ShieldExpr(expr.with_children(shield.input),
                          shield.predicates)


class CommuteSelectShield(_CommuteUnaryShield):
    """Rule 2: σ_c(ψ_p(T)) ≡ ψ_p(σ_c(T)), guarded on UDF proofs.

    For algebraic conditions the commute is exact.  A ``FuncCondition``
    moves across the shield only on the effect analyzer's proof
    (:func:`repro.analysis.udf.condition_verified`): pushing σ below ψ
    makes the UDF observe tuples the shield would have dropped, which
    an impure or nondeterministic callable can tell apart, and an
    undeclared read voids every attribute-based argument.  UNKNOWN
    refuses fail-closed, exactly like the flag-guarded commutes.
    """

    name = "commute-select-shield"
    unary_type = SelectExpr

    def matches(self, expr: LogicalExpr, ctx: RewriteContext) -> bool:
        if not super().matches(expr, ctx):
            return False
        select = expr.input if isinstance(expr, ShieldExpr) else expr
        assert isinstance(select, SelectExpr)
        return condition_verified(select.condition) is Proof.PROVEN


class CommuteProjectShield(_CommuteUnaryShield):
    """Rule 2: π(ψ_p(T)) ≡ ψ_p(π(T)), guarded (see module docstring)."""

    name = "commute-project-shield"
    unary_type = ProjectExpr

    def matches(self, expr: LogicalExpr, ctx: RewriteContext) -> bool:
        if not hazard_absent(ctx.attribute_policies_possible):
            return False  # fail closed: unproven precondition
        return super().matches(expr, ctx)


class CommuteDupElimShield(_CommuteUnaryShield):
    """Rule 2: δ(ψ_p(T)) ≡ ψ_p(δ(T)), guarded.

    δ's suppression state depends on every visible input tuple, so the
    commute is only exact when segments cannot carry differing
    policies (see :class:`RewriteContext`).
    """

    name = "commute-dupelim-shield"
    unary_type = DupElimExpr

    def matches(self, expr: LogicalExpr, ctx: RewriteContext) -> bool:
        if not hazard_absent(ctx.heterogeneous_policies_possible):
            return False  # fail closed: unproven precondition
        return super().matches(expr, ctx)


class CommuteGroupByShield(_CommuteUnaryShield):
    """Rule 2: G(ψ_p(T)) ≡ ψ_p(G(T)), guarded.

    G's ASG partitions (and their union policies) depend on every
    visible input tuple, so the commute is only exact when segments
    cannot carry differing policies (see :class:`RewriteContext`).
    """

    name = "commute-groupby-shield"
    unary_type = GroupByExpr

    def matches(self, expr: LogicalExpr, ctx: RewriteContext) -> bool:
        if not hazard_absent(ctx.heterogeneous_policies_possible):
            return False  # fail closed: unproven precondition
        return super().matches(expr, ctx)


class PushShieldIntoBinary(Rule):
    """Rule 3: push ψ below a binary operator.

    One-sided when only one input subtree streams policies, two-sided
    when both do.
    """

    name = "push-shield-binary"

    def matches(self, expr: LogicalExpr, ctx: RewriteContext) -> bool:
        return (isinstance(expr, ShieldExpr)
                and isinstance(expr.input, _BINARY))

    def apply(self, expr: LogicalExpr, ctx: RewriteContext) -> LogicalExpr:
        assert isinstance(expr, ShieldExpr)
        binary = expr.input
        left, right = binary.children()
        left_sps = ctx.streams_policies(left)
        right_sps = ctx.streams_policies(right)
        if left_sps and right_sps:
            return binary.with_children(
                ShieldExpr(left, expr.predicates),
                ShieldExpr(right, expr.predicates),
            )
        if left_sps:
            return binary.with_children(
                ShieldExpr(left, expr.predicates), right)
        if right_sps:
            return binary.with_children(
                left, ShieldExpr(right, expr.predicates))
        # Neither side streams policies: denial-by-default means the
        # shield (and the whole subtree) produces nothing; pushing to
        # either side preserves that.
        return binary.with_children(
            ShieldExpr(left, expr.predicates), right)


class PullShieldOutOfBinary(Rule):
    """Rule 3 ←: hoist shield(s) above a binary operator."""

    name = "pull-shield-binary"

    def matches(self, expr: LogicalExpr, ctx: RewriteContext) -> bool:
        if not isinstance(expr, _BINARY):
            return False
        left, right = expr.children()
        if isinstance(left, ShieldExpr) and isinstance(right, ShieldExpr):
            return left.predicates == right.predicates
        if isinstance(left, ShieldExpr):
            return not ctx.streams_policies(right)
        if isinstance(right, ShieldExpr):
            return not ctx.streams_policies(left)
        return False

    def apply(self, expr: LogicalExpr, ctx: RewriteContext) -> LogicalExpr:
        left, right = expr.children()
        if isinstance(left, ShieldExpr) and isinstance(right, ShieldExpr):
            return ShieldExpr(
                expr.with_children(left.input, right.input),
                left.predicates,
            )
        if isinstance(left, ShieldExpr):
            return ShieldExpr(expr.with_children(left.input, right),
                              left.predicates)
        assert isinstance(right, ShieldExpr)
        return ShieldExpr(expr.with_children(left, right.input),
                          right.predicates)


class CommuteJoinInputs(Rule):
    """Rule 4: swap the inputs of a join/union/intersect under a shield."""

    name = "commute-binary-inputs"

    def matches(self, expr: LogicalExpr, ctx: RewriteContext) -> bool:
        return isinstance(expr, _BINARY)

    def apply(self, expr: LogicalExpr, ctx: RewriteContext) -> LogicalExpr:
        left, right = expr.children()
        if isinstance(expr, JoinExpr):
            return JoinExpr(right, left, expr.right_on, expr.left_on,
                            expr.window, variant=expr.variant,
                            method=expr.method)
        return expr.with_children(right, left)


class AssociateJoin(Rule):
    """Rule 5: (T ⋈ E) ⋈ K ≡ T ⋈ (E ⋈ K) when join keys permit.

    Applicable when the outer join's left key is produced by the inner
    join's *left* input (so re-association keeps each key on its
    stream).  Window sizes carry over unchanged.
    """

    name = "associate-join"

    def matches(self, expr: LogicalExpr, ctx: RewriteContext) -> bool:
        if not hazard_absent(ctx.strict_join_windows):
            return False  # fail closed: unproven precondition
        return (isinstance(expr, JoinExpr)
                and isinstance(expr.left, JoinExpr))

    def apply(self, expr: LogicalExpr, ctx: RewriteContext) -> LogicalExpr:
        assert isinstance(expr, JoinExpr)
        inner = expr.left
        assert isinstance(inner, JoinExpr)
        new_inner = JoinExpr(inner.right, expr.right, expr.left_on,
                             expr.right_on, expr.window,
                             variant=expr.variant, method=expr.method)
        return JoinExpr(inner.left, new_inner, inner.left_on,
                        inner.right_on, inner.window,
                        variant=inner.variant, method=inner.method)


class SplitSelect(Rule):
    """Classical rule: σ_{c1 ∧ c2}(T) ≡ σ_c1(σ_c2(T)).

    Splitting (and merging) reorders conjunct evaluation and changes
    short-circuit call counts, so any UDF conjunct must carry the
    effect analyzer's proof before the rule applies.
    """

    name = "split-select"

    def matches(self, expr: LogicalExpr, ctx: RewriteContext) -> bool:
        return (isinstance(expr, SelectExpr)
                and len(expr.condition.conjuncts()) > 1
                and condition_verified(expr.condition) is Proof.PROVEN)

    def apply(self, expr: LogicalExpr, ctx: RewriteContext) -> LogicalExpr:
        assert isinstance(expr, SelectExpr)
        first, *rest = expr.condition.conjuncts()
        from repro.operators.conditions import And
        inner_condition = rest[0] if len(rest) == 1 else And(rest)
        return SelectExpr(SelectExpr(expr.input, inner_condition), first)


class MergeSelects(Rule):
    """Classical rule (reverse): σ_c1(σ_c2(T)) ≡ σ_{c1 ∧ c2}(T)."""

    name = "merge-selects"

    def matches(self, expr: LogicalExpr, ctx: RewriteContext) -> bool:
        return (isinstance(expr, SelectExpr)
                and isinstance(expr.input, SelectExpr)
                and condition_verified(expr.condition) is Proof.PROVEN
                and condition_verified(
                    expr.input.condition) is Proof.PROVEN)

    def apply(self, expr: LogicalExpr, ctx: RewriteContext) -> LogicalExpr:
        assert isinstance(expr, SelectExpr)
        inner = expr.input
        assert isinstance(inner, SelectExpr)
        from repro.operators.conditions import And
        return SelectExpr(inner.input,
                          And((expr.condition, inner.condition)))


class PushSelectIntoJoin(Rule):
    """Classical selection pushdown: σ_c(T ⋈ E) ≡ σ_c(T) ⋈ E when all
    attributes of ``c`` are produced by ``T`` and by ``T`` only.

    Requires schemas in the context — without them the rule stays
    inapplicable (conservative).
    """

    name = "push-select-join"

    def matches(self, expr: LogicalExpr, ctx: RewriteContext) -> bool:
        if not (isinstance(expr, SelectExpr)
                and isinstance(expr.input, JoinExpr)):
            return False
        return self._target_side(expr, ctx) is not None

    @staticmethod
    def _target_side(expr: "SelectExpr",
                     ctx: RewriteContext) -> int | None:
        join = expr.input
        if condition_verified(expr.condition) is not Proof.PROVEN:
            # The side decision trusts Condition.attributes(); a UDF's
            # declaration only counts once the effect analyzer proves
            # it covers the inferred read-set (and the callable is
            # pure — pushdown changes what the UDF observes).
            return None
        attrs = expr.condition.attributes()
        if not attrs:
            return None
        left_attrs = ctx.attributes_of(join.left)
        right_attrs = ctx.attributes_of(join.right)
        if left_attrs is None or right_attrs is None:
            return None
        if attrs <= left_attrs and not (attrs & right_attrs):
            return 0
        if attrs <= right_attrs and not (attrs & left_attrs):
            return 1
        return None

    def apply(self, expr: LogicalExpr, ctx: RewriteContext) -> LogicalExpr:
        assert isinstance(expr, SelectExpr)
        join = expr.input
        assert isinstance(join, JoinExpr)
        side = self._target_side(expr, ctx)
        left, right = join.children()
        if side == 0:
            return join.with_children(SelectExpr(left, expr.condition),
                                      right)
        return join.with_children(left,
                                  SelectExpr(right, expr.condition))


ALL_RULES: tuple[Rule, ...] = (
    SplitShield(),
    MergeShields(),
    CommuteShields(),
    CommuteSelectShield(),
    CommuteProjectShield(),
    CommuteDupElimShield(),
    CommuteGroupByShield(),
    PushShieldIntoBinary(),
    PullShieldOutOfBinary(),
    CommuteJoinInputs(),
    AssociateJoin(),
    SplitSelect(),
    MergeSelects(),
    PushSelectIntoJoin(),
)


def apply_at(root: LogicalExpr, path: tuple[int, ...], rule: Rule,
             ctx: RewriteContext) -> LogicalExpr:
    """Apply ``rule`` at the node addressed by ``path`` (child indexes)."""
    if not path:
        if not rule.matches(root, ctx):
            raise OptimizerError(f"{rule.name} does not match {root!r}")
        return rule.apply(root, ctx)
    children = list(root.children())
    index = path[0]
    if not 0 <= index < len(children):
        raise OptimizerError(f"invalid path {path} at {root!r}")
    children[index] = apply_at(children[index], path[1:], rule, ctx)
    return root.with_children(*children)


def equivalent_forms(root: LogicalExpr,
                     ctx: RewriteContext) -> list[LogicalExpr]:
    """All single-rule-application rewrites of ``root`` (deduplicated)."""
    results: list[LogicalExpr] = []
    seen: set[LogicalExpr] = {root}

    def visit(expr: LogicalExpr, path: tuple[int, ...]) -> None:
        for rule in ALL_RULES:
            if rule.matches(expr, ctx):
                rewritten = apply_at(root, path, rule, ctx)
                if rewritten not in seen:
                    seen.add(rewritten)
                    results.append(rewritten)
        for index, child in enumerate(expr.children()):
            visit(child, path + (index,))

    visit(root, ())
    return results
