"""Stream statistics feeding the security-aware cost model.

The cost model of Section VI.A prices operators per unit time from
input tuple rates (λ), sp rates (λsp), window sizes (N = W·λ) and
selectivities.  :class:`StreamStatistics` describes one input stream;
:class:`StatisticsCatalog` maps stream ids to statistics and supplies
defaults; :class:`DerivedStats` is the (λ, λsp, per-tuple policy-size)
triple propagated bottom-up through a logical plan.

Selectivities:

* ``condition_selectivity`` — fraction of tuples passing a selection
  (per-condition overrides, default 0.5);
* ``role_selectivity(roles)`` — the *security selectivity*: fraction of
  tuples whose policy intersects the given role set.  The default
  model assumes policies draw roles uniformly from the universe, so a
  predicate covering k of R roles sees roughly
  ``1 - (1 - k/R)^policy_size``;
* ``sp_compatibility`` — σsp of the index SAJoin: fraction of segment
  pairs with compatible policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import OptimizerError

__all__ = ["StreamStatistics", "DerivedStats", "StatisticsCatalog"]


@dataclass
class StreamStatistics:
    """Observed/assumed statistics of one input stream."""

    #: Tuple arrival rate λ (tuples per time unit).
    tuple_rate: float = 100.0
    #: Sp arrival rate λsp (sps per time unit).
    sp_rate: float = 10.0
    #: Average number of roles per sp (NRsp).
    roles_per_sp: float = 2.0
    #: Total distinct roles appearing in this stream's policies.
    role_universe_size: int = 10
    #: Number of distinct values of the join/group attribute (for join
    #: and duplicate-elimination selectivity).
    distinct_values: int = 100

    def role_selectivity(self, roles: frozenset[str] | int) -> float:
        """Fraction of tuples whose policy intersects ``roles``."""
        k = roles if isinstance(roles, int) else len(roles)
        total = max(self.role_universe_size, 1)
        k = min(k, total)
        if k <= 0:
            return 0.0
        miss_one = 1.0 - k / total
        return 1.0 - miss_one ** max(self.roles_per_sp, 1.0)


@dataclass
class DerivedStats:
    """Rates flowing through one edge of a logical plan."""

    tuple_rate: float
    sp_rate: float
    roles_per_sp: float
    role_universe_size: int
    distinct_values: int

    def scaled(self, tuple_factor: float,
               sp_factor: float | None = None) -> "DerivedStats":
        if sp_factor is None:
            sp_factor = tuple_factor
        return DerivedStats(
            tuple_rate=self.tuple_rate * tuple_factor,
            sp_rate=self.sp_rate * sp_factor,
            roles_per_sp=self.roles_per_sp,
            role_universe_size=self.role_universe_size,
            distinct_values=self.distinct_values,
        )


@dataclass
class StatisticsCatalog:
    """Statistics for every registered stream, plus global knobs."""

    streams: dict[str, StreamStatistics] = field(default_factory=dict)
    default: StreamStatistics = field(default_factory=StreamStatistics)
    #: Default selectivity of a selection condition.
    condition_selectivity: float = 0.5
    #: Join-value match probability for a random pair.
    join_selectivity: float | None = None
    #: σsp — fraction of opposite-window segments policy-compatible
    #: with a probing tuple (index SAJoin).
    sp_compatibility: float = 0.5
    #: Group-by aggregate recomputation cost C.
    aggregate_cost: float = 1.0

    def for_stream(self, stream_id: str) -> StreamStatistics:
        return self.streams.get(stream_id, self.default)

    def set_stream(self, stream_id: str, stats: StreamStatistics) -> None:
        if stats.tuple_rate < 0 or stats.sp_rate < 0:
            raise OptimizerError("rates must be non-negative")
        self.streams[stream_id] = stats

    def base_stats(self, stream_id: str) -> DerivedStats:
        stats = self.for_stream(stream_id)
        return DerivedStats(
            tuple_rate=stats.tuple_rate,
            sp_rate=stats.sp_rate,
            roles_per_sp=stats.roles_per_sp,
            role_universe_size=stats.role_universe_size,
            distinct_values=stats.distinct_values,
        )

    def effective_join_selectivity(self, distinct_values: int) -> float:
        if self.join_selectivity is not None:
            return self.join_selectivity
        return 1.0 / max(distinct_values, 1)

    def observe(self, stream_id: str, elements,
                value_attribute: str | None = None) -> StreamStatistics:
        """Derive statistics from an observed stream sample.

        Computes λ, λsp, roles-per-sp, role-universe size and distinct
        values over a finite element sample and registers the result
        for ``stream_id`` — this is how the optimizer's estimates stay
        anchored to the actual workload rather than to defaults.
        """
        from repro.core.punctuation import SecurityPunctuation
        from repro.stream.tuples import DataTuple

        n_tuples = n_sps = 0
        role_count = 0
        roles: set[str] = set()
        values: set = set()
        first_ts = last_ts = None
        for element in elements:
            ts = element.ts
            first_ts = ts if first_ts is None else first_ts
            last_ts = ts
            if isinstance(element, SecurityPunctuation):
                n_sps += 1
                concrete = element.srp.concrete_roles()
                if concrete:
                    role_count += len(concrete)
                    roles |= concrete
            elif isinstance(element, DataTuple):
                n_tuples += 1
                if value_attribute is not None:
                    values.add(element.values.get(value_attribute))
                else:
                    values.add(element.tid)
        span = (last_ts - first_ts) if (first_ts is not None
                                        and last_ts is not None
                                        and last_ts > first_ts) else 1.0
        stats = StreamStatistics(
            tuple_rate=n_tuples / span,
            sp_rate=n_sps / span,
            roles_per_sp=(role_count / n_sps) if n_sps else 1.0,
            role_universe_size=max(len(roles), 1),
            distinct_values=max(len(values), 1),
        )
        self.set_stream(stream_id, stats)
        return stats
