"""The security-aware logical algebra (Table I).

Logical expressions form the tree the optimizer rewrites (Rules 1-5 in
:mod:`repro.algebra.rules`) and the engine compiles into physical
operators.  The algebra is the classic windowed stream algebra —
select σ, project π, join ⋈, duplicate elimination δ, group-by G —
extended with the Security Shield ψ.

Expressions are immutable value objects: equality is structural, which
gives the engine common-subexpression sharing (shared subplans across
queries, Figure 5) for free, and lets the property tests assert that
rewritten plans are structurally different but semantically equal.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import PlanError
from repro.operators.conditions import Condition

__all__ = [
    "LogicalExpr",
    "ScanExpr",
    "ShieldExpr",
    "SelectExpr",
    "ProjectExpr",
    "JoinExpr",
    "DupElimExpr",
    "GroupByExpr",
    "UnionExpr",
    "IntersectExpr",
    "walk",
]


class LogicalExpr:
    """Base class of logical plan expressions."""

    __slots__ = ()

    def children(self) -> tuple["LogicalExpr", ...]:
        raise NotImplementedError

    def with_children(self, *children: "LogicalExpr") -> "LogicalExpr":
        """Copy of this node with replaced children."""
        raise NotImplementedError

    def _key(self) -> tuple:
        """Structural identity (type + parameters + children keys)."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LogicalExpr):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    # -- fluent construction helpers -----------------------------------
    def shield(self, roles) -> "ShieldExpr":
        return ShieldExpr(self, frozenset(roles))

    def select(self, condition: Condition) -> "SelectExpr":
        return SelectExpr(self, condition)

    def project(self, attributes) -> "ProjectExpr":
        return ProjectExpr(self, tuple(attributes))

    def join(self, other: "LogicalExpr", left_on: str, right_on: str,
             window: float, variant: str = "index") -> "JoinExpr":
        return JoinExpr(self, other, left_on, right_on, window,
                        variant=variant)

    def distinct(self, window: float, attributes=None) -> "DupElimExpr":
        return DupElimExpr(self, window,
                           tuple(attributes) if attributes else None)

    def group_by(self, key: str | None, agg: str, attribute: str,
                 window: float) -> "GroupByExpr":
        return GroupByExpr(self, key, agg, attribute, window)


class ScanExpr(LogicalExpr):
    """Leaf: read one registered input stream."""

    __slots__ = ("stream_id",)

    def __init__(self, stream_id: str):
        if not stream_id:
            raise PlanError("scan requires a stream id")
        self.stream_id = stream_id

    def children(self) -> tuple[LogicalExpr, ...]:
        return ()

    def with_children(self, *children: LogicalExpr) -> "ScanExpr":
        if children:
            raise PlanError("scan has no children")
        return self

    def _key(self) -> tuple:
        return ("scan", self.stream_id)

    def __repr__(self) -> str:
        return f"Scan({self.stream_id})"


class ShieldExpr(LogicalExpr):
    """ψ_{p1∧..∧pn} — the Security Shield.

    The security predicate is a *conjunction* of role sets: a tuple
    passes iff its policy intersects every conjunct.  A single conjunct
    is the common case (the roles of the query's specifier); splitting
    and merging conjuncts is Rule 1 of Table II.
    """

    __slots__ = ("input", "predicates")

    def __init__(self, input_expr: LogicalExpr,
                 predicates: frozenset[str] | tuple):
        self.input = input_expr
        if isinstance(predicates, (frozenset, set)):
            predicates = (frozenset(predicates),)
        normalized = tuple(sorted((frozenset(p) for p in predicates),
                                  key=lambda s: tuple(sorted(s))))
        if not normalized:
            raise PlanError("shield requires at least one predicate")
        self.predicates = normalized

    @property
    def roles(self) -> frozenset[str]:
        """All roles mentioned by any conjunct (the merged SS state)."""
        out: frozenset[str] = frozenset()
        for predicate in self.predicates:
            out |= predicate
        return out

    def children(self) -> tuple[LogicalExpr, ...]:
        return (self.input,)

    def with_children(self, *children: LogicalExpr) -> "ShieldExpr":
        (child,) = children
        return ShieldExpr(child, self.predicates)

    def _key(self) -> tuple:
        return ("shield",
                tuple(tuple(sorted(p)) for p in self.predicates),
                self.input._key())

    def __repr__(self) -> str:
        preds = "∧".join("{" + ",".join(sorted(p)) + "}"
                         for p in self.predicates)
        return f"ψ[{preds}]({self.input!r})"


class SelectExpr(LogicalExpr):
    """σ_c."""

    __slots__ = ("input", "condition")

    def __init__(self, input_expr: LogicalExpr, condition: Condition):
        self.input = input_expr
        self.condition = condition

    def children(self) -> tuple[LogicalExpr, ...]:
        return (self.input,)

    def with_children(self, *children: LogicalExpr) -> "SelectExpr":
        (child,) = children
        return SelectExpr(child, self.condition)

    def _key(self) -> tuple:
        return ("select", repr(self.condition), self.input._key())

    def __repr__(self) -> str:
        return f"σ[{self.condition!r}]({self.input!r})"


class ProjectExpr(LogicalExpr):
    """π_{a1..an}."""

    __slots__ = ("input", "attributes")

    def __init__(self, input_expr: LogicalExpr, attributes: tuple[str, ...]):
        if not attributes:
            raise PlanError("projection requires attributes")
        self.input = input_expr
        self.attributes = tuple(attributes)

    def children(self) -> tuple[LogicalExpr, ...]:
        return (self.input,)

    def with_children(self, *children: LogicalExpr) -> "ProjectExpr":
        (child,) = children
        return ProjectExpr(child, self.attributes)

    def _key(self) -> tuple:
        return ("project", self.attributes, self.input._key())

    def __repr__(self) -> str:
        return f"π[{','.join(self.attributes)}]({self.input!r})"


class JoinExpr(LogicalExpr):
    """⋈ over sliding windows; ``variant`` picks the physical algorithm."""

    __slots__ = ("left", "right", "left_on", "right_on", "window",
                 "variant", "method")

    def __init__(self, left: LogicalExpr, right: LogicalExpr, left_on: str,
                 right_on: str, window: float, *, variant: str = "index",
                 method: str = "PF"):
        if variant not in ("index", "nl"):
            raise PlanError(f"join variant must be 'index' or 'nl': {variant!r}")
        self.left = left
        self.right = right
        self.left_on = left_on
        self.right_on = right_on
        self.window = window
        self.variant = variant
        self.method = method

    def children(self) -> tuple[LogicalExpr, ...]:
        return (self.left, self.right)

    def with_children(self, *children: LogicalExpr) -> "JoinExpr":
        left, right = children
        return JoinExpr(left, right, self.left_on, self.right_on,
                        self.window, variant=self.variant,
                        method=self.method)

    def _key(self) -> tuple:
        return ("join", self.left_on, self.right_on, self.window,
                self.variant, self.method, self.left._key(),
                self.right._key())

    def __repr__(self) -> str:
        return (f"({self.left!r} ⋈[{self.left_on}={self.right_on},"
                f"W={self.window}] {self.right!r})")


class DupElimExpr(LogicalExpr):
    """δ over a sliding window."""

    __slots__ = ("input", "window", "attributes")

    def __init__(self, input_expr: LogicalExpr, window: float,
                 attributes: tuple[str, ...] | None = None):
        self.input = input_expr
        self.window = window
        self.attributes = attributes

    def children(self) -> tuple[LogicalExpr, ...]:
        return (self.input,)

    def with_children(self, *children: LogicalExpr) -> "DupElimExpr":
        (child,) = children
        return DupElimExpr(child, self.window, self.attributes)

    def _key(self) -> tuple:
        return ("distinct", self.window, self.attributes, self.input._key())

    def __repr__(self) -> str:
        return f"δ[W={self.window}]({self.input!r})"


class GroupByExpr(LogicalExpr):
    """G^agg_A over a sliding window."""

    __slots__ = ("input", "key", "agg", "attribute", "window")

    def __init__(self, input_expr: LogicalExpr, key: str | None, agg: str,
                 attribute: str, window: float):
        self.input = input_expr
        self.key = key
        self.agg = agg
        self.attribute = attribute
        self.window = window

    def children(self) -> tuple[LogicalExpr, ...]:
        return (self.input,)

    def with_children(self, *children: LogicalExpr) -> "GroupByExpr":
        (child,) = children
        return GroupByExpr(child, self.key, self.agg, self.attribute,
                           self.window)

    def _key(self) -> tuple:
        return ("groupby", self.key, self.agg, self.attribute, self.window,
                self.input._key())

    def __repr__(self) -> str:
        return (f"G[{self.key}; {self.agg}({self.attribute}); "
                f"W={self.window}]({self.input!r})")


class UnionExpr(LogicalExpr):
    """∪ (bag union, re-punctuated)."""

    __slots__ = ("left", "right")

    def __init__(self, left: LogicalExpr, right: LogicalExpr):
        self.left = left
        self.right = right

    def children(self) -> tuple[LogicalExpr, ...]:
        return (self.left, self.right)

    def with_children(self, *children: LogicalExpr) -> "UnionExpr":
        left, right = children
        return UnionExpr(left, right)

    def _key(self) -> tuple:
        return ("union", self.left._key(), self.right._key())

    def __repr__(self) -> str:
        return f"({self.left!r} ∪ {self.right!r})"


class IntersectExpr(LogicalExpr):
    """∩ over sliding windows on a set of attributes."""

    __slots__ = ("left", "right", "attributes", "window")

    def __init__(self, left: LogicalExpr, right: LogicalExpr,
                 attributes: tuple[str, ...], window: float):
        self.left = left
        self.right = right
        self.attributes = tuple(attributes)
        self.window = window

    def children(self) -> tuple[LogicalExpr, ...]:
        return (self.left, self.right)

    def with_children(self, *children: LogicalExpr) -> "IntersectExpr":
        left, right = children
        return IntersectExpr(left, right, self.attributes, self.window)

    def _key(self) -> tuple:
        return ("intersect", self.attributes, self.window,
                self.left._key(), self.right._key())

    def __repr__(self) -> str:
        return f"({self.left!r} ∩ {self.right!r})"


def walk(expr: LogicalExpr) -> Iterator[LogicalExpr]:
    """Pre-order traversal of an expression tree."""
    yield expr
    for child in expr.children():
        yield from walk(child)
