"""EXPLAIN for security-aware plans.

Renders a logical plan as an indented operator tree, optionally
annotated with the Section VI.A cost model's per-node estimates —
per-unit-time cost, and the tuple/sp rates flowing out of each node.
Useful for inspecting what the optimizer did and for teaching the
cost model::

    >>> print(explain(plan, cost_model))        # doctest: +SKIP
    π[object_id]                        cost=110.0  out=50.0t/s 5.0sp/s
      ψ[{retail}]                       cost=135.0  out=50.0t/s 5.0sp/s
        σ[(x > 10)]                     cost=110.0  out=50.0t/s 7.1sp/s
          Scan(locations)                           out=100.0t/s 10.0sp/s
"""

from __future__ import annotations

from repro.algebra.cost import CostModel
from repro.algebra.expressions import (DupElimExpr, GroupByExpr,
                                       IntersectExpr, JoinExpr, LogicalExpr,
                                       ProjectExpr, ScanExpr, SelectExpr,
                                       ShieldExpr, UnionExpr)

__all__ = ["explain", "node_label"]


def node_label(expr: LogicalExpr) -> str:
    """One-line label for a plan node (no children)."""
    if isinstance(expr, ScanExpr):
        return f"Scan({expr.stream_id})"
    if isinstance(expr, ShieldExpr):
        predicates = "∧".join(
            "{" + ",".join(sorted(p)) + "}" for p in expr.predicates)
        return f"ψ[{predicates}]"
    if isinstance(expr, SelectExpr):
        return f"σ[{expr.condition!r}]"
    if isinstance(expr, ProjectExpr):
        return f"π[{','.join(expr.attributes)}]"
    if isinstance(expr, JoinExpr):
        return (f"⋈[{expr.left_on}={expr.right_on}, W={expr.window}, "
                f"{expr.variant}]")
    if isinstance(expr, DupElimExpr):
        attrs = ",".join(expr.attributes) if expr.attributes else "*"
        return f"δ[{attrs}, W={expr.window}]"
    if isinstance(expr, GroupByExpr):
        return (f"G[{expr.key or '*'}; {expr.agg}({expr.attribute}); "
                f"W={expr.window}]")
    if isinstance(expr, UnionExpr):
        return "∪"
    if isinstance(expr, IntersectExpr):
        return f"∩[{','.join(expr.attributes)}, W={expr.window}]"
    return type(expr).__name__


def explain(expr: LogicalExpr, cost_model: CostModel | None = None,
            *, indent: int = 2) -> str:
    """Indented tree rendering, cost-annotated when a model is given."""
    annotations: dict[int, str] = {}
    if cost_model is not None:
        annotations = _annotate(expr, cost_model)

    lines: list[str] = []

    def visit(node: LogicalExpr, depth: int) -> None:
        label = " " * (indent * depth) + node_label(node)
        note = annotations.get(id(node), "")
        if note:
            lines.append(f"{label:<48}{note}")
        else:
            lines.append(label)
        for child in node.children():
            visit(child, depth + 1)

    visit(expr, 0)
    return "\n".join(lines)


def _annotate(expr: LogicalExpr, cost_model: CostModel) -> dict[int, str]:
    """Per-node cost/rate annotations keyed by node identity."""
    notes: dict[int, str] = {}

    def visit(node: LogicalExpr) -> tuple[float, object]:
        child_results = [visit(child) for child in node.children()]
        breakdown: dict[str, float] = {}
        total, stats = cost_model._visit(node, breakdown, "x")  # noqa: SLF001
        own = total - sum(cost for cost, _ in child_results)
        rate = (f"out={stats.tuple_rate:.1f}t/s "
                f"{stats.sp_rate:.1f}sp/s")
        if isinstance(node, ScanExpr):
            notes[id(node)] = rate
        else:
            notes[id(node)] = f"cost={own:.1f}  {rate}"
        return total, stats

    visit(expr)
    return notes
