"""The security-aware per-unit-time cost model (Section VI.A).

Every candidate plan gets a per-unit-time cost.  With λ (tuple rate),
λsp (sp rate), W (window), N = W·λ, Nsp = W·λsp, NR (SS state size in
roles) and NRsp (roles per sp), the paper prices the operators:

=====================  ====================================================
Security Shield        Σ_i (λ_i + λsp_i · (NRsp + NR))
Selection/Projection   Σ_i (λ_i + λsp_i)
Nested-loop SAJoin     λ1·(N2+Nsp2) + λ2·(N1+Nsp1)
Index SAJoin           λ1·σsp·(N2+Nsp2) + λ2·σsp·(N1+Nsp1)
                         + NRsp·(λsp1+λsp2)                (sp maintenance)
Duplicate elimination  λ1 · (No + Nspo)
Group-by               2·C·(λ1 + λsp1)
=====================  ====================================================

The model walks a logical expression bottom-up, deriving output rates
from selectivities as it goes, and returns both the total plan cost and
a per-node breakdown, which the optimizer uses for plan choice and the
cost tests compare against hand-computed values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expressions import (DupElimExpr, GroupByExpr,
                                       IntersectExpr, JoinExpr, LogicalExpr,
                                       ProjectExpr, ScanExpr, SelectExpr,
                                       ShieldExpr, UnionExpr)
from repro.algebra.statistics import DerivedStats, StatisticsCatalog
from repro.errors import OptimizerError

__all__ = ["CostModel", "PlanCost"]


@dataclass
class PlanCost:
    """Cost estimate for one (sub)plan."""

    total: float
    output: DerivedStats
    breakdown: dict[str, float]

    def __repr__(self) -> str:
        return f"PlanCost(total={self.total:.3f})"


class CostModel:
    """Security-aware per-unit-time plan costing."""

    def __init__(self, catalog: StatisticsCatalog | None = None):
        self.catalog = catalog if catalog is not None else StatisticsCatalog()

    def cost(self, expr: LogicalExpr) -> PlanCost:
        breakdown: dict[str, float] = {}
        total, output = self._visit(expr, breakdown, path="root")
        return PlanCost(total=total, output=output, breakdown=breakdown)

    def workload_cost(self, exprs) -> float:
        """Total per-unit-time cost of a multi-query workload.

        Structurally equal subexpressions are costed **once** — the
        engine compiles them to one shared operator (Figure 5), so the
        workload pays their processing a single time.  This is the
        objective the Section VI.C multi-query optimization minimizes.
        """
        seen: set = set()
        total = 0.0

        def visit(node: LogicalExpr) -> None:
            nonlocal total
            if node in seen:
                return
            seen.add(node)
            for child in node.children():
                visit(child)
            breakdown: dict[str, float] = {}
            node_total, _ = self._visit(node, breakdown, "n")
            child_total = 0.0
            for child in node.children():
                child_breakdown: dict[str, float] = {}
                child_cost, _ = self._visit(child, child_breakdown, "c")
                child_total += child_cost
            total += node_total - child_total  # own cost only

        for expr in exprs:
            visit(expr)
        return total

    # -- recursive walk -----------------------------------------------------
    def _visit(self, expr: LogicalExpr, breakdown: dict[str, float],
               path: str) -> tuple[float, DerivedStats]:
        if isinstance(expr, ScanExpr):
            return 0.0, self.catalog.base_stats(expr.stream_id)
        if isinstance(expr, ShieldExpr):
            return self._shield(expr, breakdown, path)
        if isinstance(expr, SelectExpr):
            return self._select(expr, breakdown, path)
        if isinstance(expr, ProjectExpr):
            return self._project(expr, breakdown, path)
        if isinstance(expr, JoinExpr):
            return self._join(expr, breakdown, path)
        if isinstance(expr, DupElimExpr):
            return self._dupelim(expr, breakdown, path)
        if isinstance(expr, GroupByExpr):
            return self._groupby(expr, breakdown, path)
        if isinstance(expr, UnionExpr):
            return self._union(expr, breakdown, path)
        if isinstance(expr, IntersectExpr):
            return self._intersect(expr, breakdown, path)
        raise OptimizerError(f"cost model cannot price {type(expr).__name__}")

    def _child(self, expr: LogicalExpr, index: int,
               breakdown: dict[str, float],
               path: str) -> tuple[float, DerivedStats]:
        child = expr.children()[index]
        return self._visit(child, breakdown, f"{path}.{index}")

    # -- per-operator formulas --------------------------------------------------
    def _shield(self, expr: ShieldExpr, breakdown: dict[str, float],
                path: str) -> tuple[float, DerivedStats]:
        sub_cost, stats = self._child(expr, 0, breakdown, path)
        state_size = len(expr.roles)  # NR
        own = stats.tuple_rate + stats.sp_rate * (stats.roles_per_sp
                                                  + state_size)
        breakdown[f"{path}:shield"] = own
        # Security selectivity: conjuncts filter independently.
        selectivity = 1.0
        for predicate in expr.predicates:
            stream_sel = self._role_selectivity(stats, predicate)
            selectivity *= stream_sel
        out = stats.scaled(selectivity)
        return sub_cost + own, out

    @staticmethod
    def _role_selectivity(stats: DerivedStats,
                          roles: frozenset[str]) -> float:
        total = max(stats.role_universe_size, 1)
        k = min(len(roles), total)
        if k <= 0:
            return 0.0
        return 1.0 - (1.0 - k / total) ** max(stats.roles_per_sp, 1.0)

    def _select(self, expr: SelectExpr, breakdown: dict[str, float],
                path: str) -> tuple[float, DerivedStats]:
        sub_cost, stats = self._child(expr, 0, breakdown, path)
        own = stats.tuple_rate + stats.sp_rate
        breakdown[f"{path}:select"] = own
        selectivity = self.catalog.condition_selectivity
        # Sps survive selection only if some covered tuple passes;
        # with s tuples per sp the survival odds are high unless the
        # condition is very selective — approximate with sqrt decay.
        out = stats.scaled(selectivity, selectivity ** 0.5)
        return sub_cost + own, out

    def _project(self, expr: ProjectExpr, breakdown: dict[str, float],
                 path: str) -> tuple[float, DerivedStats]:
        sub_cost, stats = self._child(expr, 0, breakdown, path)
        own = stats.tuple_rate + stats.sp_rate
        breakdown[f"{path}:project"] = own
        return sub_cost + own, stats

    def _join(self, expr: JoinExpr, breakdown: dict[str, float],
              path: str) -> tuple[float, DerivedStats]:
        left_cost, left = self._child(expr, 0, breakdown, path)
        right_cost, right = self._child(expr, 1, breakdown, path)
        window = expr.window
        n1 = window * left.tuple_rate
        nsp1 = window * left.sp_rate
        n2 = window * right.tuple_rate
        nsp2 = window * right.sp_rate
        if expr.variant == "nl":
            own = left.tuple_rate * (n2 + nsp2) + right.tuple_rate * (n1 + nsp1)
        else:
            sigma_sp = self.catalog.sp_compatibility
            own = (left.tuple_rate * sigma_sp * (n2 + nsp2)
                   + right.tuple_rate * sigma_sp * (n1 + nsp1)
                   + left.roles_per_sp * (left.sp_rate + right.sp_rate))
        breakdown[f"{path}:join[{expr.variant}]"] = own
        distinct = max(left.distinct_values, right.distinct_values, 1)
        sigma_join = self.catalog.effective_join_selectivity(distinct)
        out_rate = (left.tuple_rate * n2 + right.tuple_rate * n1) * sigma_join
        out = DerivedStats(
            tuple_rate=out_rate,
            sp_rate=min(left.sp_rate + right.sp_rate, out_rate),
            roles_per_sp=min(left.roles_per_sp, right.roles_per_sp),
            role_universe_size=max(left.role_universe_size,
                                   right.role_universe_size),
            distinct_values=distinct,
        )
        return left_cost + right_cost + own, out

    def _dupelim(self, expr: DupElimExpr, breakdown: dict[str, float],
                 path: str) -> tuple[float, DerivedStats]:
        sub_cost, stats = self._child(expr, 0, breakdown, path)
        distinct = max(stats.distinct_values, 1)
        # Output state holds at most one tuple per distinct value.
        n_out = min(expr.window * stats.tuple_rate, distinct)
        nsp_out = min(expr.window * stats.sp_rate, n_out)
        own = stats.tuple_rate * (n_out + nsp_out)
        breakdown[f"{path}:dupelim"] = own
        out_rate = min(stats.tuple_rate,
                       distinct / max(expr.window, 1e-9))
        out = stats.scaled(out_rate / max(stats.tuple_rate, 1e-9))
        return sub_cost + own, out

    def _groupby(self, expr: GroupByExpr, breakdown: dict[str, float],
                 path: str) -> tuple[float, DerivedStats]:
        sub_cost, stats = self._child(expr, 0, breakdown, path)
        own = 2.0 * self.catalog.aggregate_cost * (stats.tuple_rate
                                                   + stats.sp_rate)
        breakdown[f"{path}:groupby"] = own
        # One refreshed result per input tuple (replacement semantics).
        return sub_cost + own, stats

    def _union(self, expr: UnionExpr, breakdown: dict[str, float],
               path: str) -> tuple[float, DerivedStats]:
        left_cost, left = self._child(expr, 0, breakdown, path)
        right_cost, right = self._child(expr, 1, breakdown, path)
        own = (left.tuple_rate + left.sp_rate
               + right.tuple_rate + right.sp_rate)
        breakdown[f"{path}:union"] = own
        out = DerivedStats(
            tuple_rate=left.tuple_rate + right.tuple_rate,
            sp_rate=left.sp_rate + right.sp_rate,
            roles_per_sp=max(left.roles_per_sp, right.roles_per_sp),
            role_universe_size=max(left.role_universe_size,
                                   right.role_universe_size),
            distinct_values=max(left.distinct_values, right.distinct_values),
        )
        return left_cost + right_cost + own, out

    def _intersect(self, expr: IntersectExpr, breakdown: dict[str, float],
                   path: str) -> tuple[float, DerivedStats]:
        left_cost, left = self._child(expr, 0, breakdown, path)
        right_cost, right = self._child(expr, 1, breakdown, path)
        window = expr.window
        own = (left.tuple_rate * window * right.tuple_rate
               + right.tuple_rate * window * left.tuple_rate)
        breakdown[f"{path}:intersect"] = own
        out = left.scaled(0.5)
        return left_cost + right_cost + own, out
