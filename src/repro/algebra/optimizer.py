"""Security-aware query optimization (Section VI).

The optimizer rewrites logical plans with the Table II equivalence
rules, guided by the Section VI.A cost model:

* **SS interleaving** — ψ operators are pushed down (or up) to minimize
  intermediate state sizes and the number of streaming sps reaching
  expensive stateful operators (join, δ, G), exactly like predicate
  push-down.
* **SS splitting/merging** — conjunctive SS predicates are split so the
  more selective conjunct filters early, or merged when one state is
  cheaper than stacked operators; splitting/merging also brackets
  shared subplans in multi-query optimization (merge at the beginning
  of the shared fragment, split at the end).

Two search strategies are provided: :meth:`Optimizer.optimize` runs a
greedy hill-climb over the one-step rewrite neighbourhood (fast, the
default), and :meth:`Optimizer.optimize_exhaustive` explores the full
rewrite closure up to a node budget (used by the tests to validate the
greedy result on small plans).
"""

from __future__ import annotations

from repro.algebra.cost import CostModel
from repro.algebra.expressions import LogicalExpr, ShieldExpr, walk
from repro.algebra.rules import RewriteContext, equivalent_forms

__all__ = ["Optimizer", "OptimizationResult", "WorkloadResult"]


class WorkloadResult:
    """Outcome of a multi-query (workload) optimization."""

    __slots__ = ("plans", "cost", "independent_cost", "unshared_cost")

    def __init__(self, plans: list, cost: float, independent_cost: float,
                 unshared_cost: float):
        #: Chosen plan per query, same order as the input.
        self.plans = plans
        #: Workload cost of the chosen combination (sharing counted).
        self.cost = cost
        #: Workload cost had every query been optimized in isolation.
        self.independent_cost = independent_cost
        #: Sum of isolated plan costs ignoring sharing entirely.
        self.unshared_cost = unshared_cost

    def __repr__(self) -> str:
        return (f"WorkloadResult(cost={self.cost:.2f}, "
                f"independent={self.independent_cost:.2f})")


class OptimizationResult:
    """Outcome of one optimization run."""

    __slots__ = ("plan", "cost", "initial_cost", "steps", "explored",
                 "refusals")

    def __init__(self, plan: LogicalExpr, cost: float, initial_cost: float,
                 steps: int, explored: int, refusals: tuple = ()):
        self.plan = plan
        self.cost = cost
        self.initial_cost = initial_cost
        self.steps = steps
        self.explored = explored
        #: SEC004 diagnostics for structurally applicable rewrites the
        #: fail-closed precondition prover refused (see
        #: :func:`repro.analysis.rewrites.refused_rewrites`).
        self.refusals = tuple(refusals)

    @property
    def improvement(self) -> float:
        """Relative cost reduction achieved (0.0-1.0)."""
        if self.initial_cost <= 0:
            return 0.0
        return 1.0 - self.cost / self.initial_cost

    def __repr__(self) -> str:
        return (f"OptimizationResult(cost={self.cost:.2f}, "
                f"initial={self.initial_cost:.2f}, steps={self.steps})")


class Optimizer:
    """Rule- and cost-based security-aware plan optimizer."""

    def __init__(self, cost_model: CostModel | None = None,
                 context: RewriteContext | None = None):
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.context = context if context is not None else RewriteContext()

    # -- greedy hill-climb ----------------------------------------------------
    def optimize(self, plan: LogicalExpr,
                 max_steps: int = 32) -> OptimizationResult:
        """Greedy descent: repeatedly take the cheapest one-step rewrite."""
        current = plan
        current_cost = self.cost_model.cost(current).total
        initial_cost = current_cost
        steps = 0
        explored = 0
        for _ in range(max_steps):
            candidates = equivalent_forms(current, self.context)
            explored += len(candidates)
            best = None
            best_cost = current_cost
            for candidate in candidates:
                cost = self.cost_model.cost(candidate).total
                if cost < best_cost - 1e-12:
                    best, best_cost = candidate, cost
            if best is None:
                break
            current, current_cost = best, best_cost
            steps += 1
        return OptimizationResult(current, current_cost, initial_cost,
                                  steps, explored,
                                  refusals=self.refused_rewrites(current))

    def refused_rewrites(self, plan: LogicalExpr) -> tuple:
        """SEC004 diagnostics for rewrites the context cannot prove.

        The optimizer consults the static analyzer for every guarded
        Table II rule: sites where the rule's shape matches but its
        precondition is unknown or refuted stay un-rewritten
        (fail-closed), and this reports each such refusal.
        """
        from repro.analysis.rewrites import refused_rewrites

        return tuple(refused_rewrites(plan, self.context))

    # -- exhaustive closure -------------------------------------------------------
    def optimize_exhaustive(self, plan: LogicalExpr,
                            budget: int = 2000) -> OptimizationResult:
        """Explore the rewrite closure (BFS) up to ``budget`` plans."""
        initial_cost = self.cost_model.cost(plan).total
        seen: set[LogicalExpr] = {plan}
        frontier = [plan]
        best, best_cost = plan, initial_cost
        explored = 0
        while frontier and explored < budget:
            expr = frontier.pop()
            for candidate in equivalent_forms(expr, self.context):
                if candidate in seen:
                    continue
                seen.add(candidate)
                explored += 1
                cost = self.cost_model.cost(candidate).total
                if cost < best_cost - 1e-12:
                    best, best_cost = candidate, cost
                frontier.append(candidate)
                if explored >= budget:
                    break
        return OptimizationResult(best, best_cost, initial_cost,
                                  steps=-1, explored=explored)

    # -- multi-query optimization (Section VI.C) ----------------------------
    def optimize_workload(
        self, plans: list[LogicalExpr],
    ) -> "WorkloadResult":
        """Jointly optimize a workload of queries.

        SS splitting/merging enables multi-query optimization: keeping
        per-query shields *above* a shared fragment lets all queries
        share one copy of the fragment's operators, while pushing the
        shields down duplicates the fragment but filters earlier.  For
        each query this method considers both its original (sharing-
        friendly) form and its individually optimized form, and picks
        the combination minimizing the *workload* cost — in which
        structurally shared subplans are paid for once.
        """
        individual = [self.optimize(plan).plan for plan in plans]
        # Sharing benefits only materialize when *several* queries keep
        # the shared form, so single swaps cannot climb out of either
        # extreme; evaluate both extremes and descend from the better.
        all_original_cost = self.cost_model.workload_cost(plans)
        all_individual_cost = self.cost_model.workload_cost(individual)
        if all_original_cost < all_individual_cost:
            chosen = list(plans)
            best_cost = all_original_cost
        else:
            chosen = list(individual)
            best_cost = all_individual_cost
        improved = True
        while improved:
            improved = False
            for index, original in enumerate(plans):
                for candidate in (original, individual[index]):
                    if candidate == chosen[index]:
                        continue
                    trial = list(chosen)
                    trial[index] = candidate
                    trial_cost = self.cost_model.workload_cost(trial)
                    if trial_cost < best_cost - 1e-12:
                        chosen, best_cost = trial, trial_cost
                        improved = True
        return WorkloadResult(
            plans=chosen,
            cost=best_cost,
            independent_cost=self.cost_model.workload_cost(individual),
            unshared_cost=sum(self.cost_model.cost(p).total
                              for p in individual),
        )

    # -- diagnostics ----------------------------------------------------------
    @staticmethod
    def shield_depths(plan: LogicalExpr) -> list[int]:
        """Depth of every shield in the plan (0 = root); for tests."""
        depths: list[int] = []

        def visit(expr: LogicalExpr, depth: int) -> None:
            if isinstance(expr, ShieldExpr):
                depths.append(depth)
            for child in expr.children():
                visit(child, depth + 1)

        visit(plan, 0)
        return depths

    @staticmethod
    def operator_count(plan: LogicalExpr) -> int:
        return sum(1 for _ in walk(plan))
