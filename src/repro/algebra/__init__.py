"""Security-aware algebra: logical expressions, rules, cost model, optimizer."""

from repro.algebra.cost import CostModel, PlanCost
from repro.algebra.explain import explain, node_label
from repro.algebra.expressions import (DupElimExpr, GroupByExpr,
                                       IntersectExpr, JoinExpr, LogicalExpr,
                                       ProjectExpr, ScanExpr, SelectExpr,
                                       ShieldExpr, UnionExpr, walk)
from repro.algebra.optimizer import OptimizationResult, Optimizer
from repro.algebra.rules import (ALL_RULES, RewriteContext, Rule, apply_at,
                                 equivalent_forms)
from repro.algebra.statistics import (DerivedStats, StatisticsCatalog,
                                      StreamStatistics)

__all__ = [
    "ALL_RULES",
    "CostModel",
    "DerivedStats",
    "DupElimExpr",
    "GroupByExpr",
    "IntersectExpr",
    "JoinExpr",
    "LogicalExpr",
    "OptimizationResult",
    "Optimizer",
    "PlanCost",
    "ProjectExpr",
    "RewriteContext",
    "Rule",
    "ScanExpr",
    "SelectExpr",
    "ShieldExpr",
    "StatisticsCatalog",
    "StreamStatistics",
    "UnionExpr",
    "apply_at",
    "equivalent_forms",
    "explain",
    "node_label",
    "walk",
]
