"""ASCII bar charts for terminal experiment output.

The experiment runner prints the paper's figures as tables; these
helpers add a horizontal-bar rendering so the *shape* — who wins,
where the crossover falls — is visible at a glance in a terminal::

    1/1    store-and-probe        ██████████████████████████ 0.0060
    1/1    security punctuations  ███████████████████████████████ 0.0080
    ...
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["bar_chart", "grouped_bar_chart"]

_FULL = "█"
_PARTIAL = " ▏▎▍▌▋▊▉"


def _bar(value: float, maximum: float, width: int) -> str:
    if maximum <= 0 or value <= 0:
        return ""
    fraction = min(value / maximum, 1.0)
    cells = fraction * width
    full = int(cells)
    remainder = cells - full
    partial_index = int(remainder * len(_PARTIAL))
    partial = (_PARTIAL[partial_index].strip()
               if 0 < partial_index < len(_PARTIAL) else "")
    return _FULL * full + partial


def bar_chart(rows: Sequence[tuple[str, float]], *, width: int = 40,
              title: str | None = None, unit: str = "") -> str:
    """Render ``(label, value)`` rows as horizontal bars."""
    if not rows:
        return title or ""
    label_width = max(len(label) for label, _ in rows)
    maximum = max(value for _, value in rows)
    lines = [title] if title else []
    for label, value in rows:
        bar = _bar(value, maximum, width)
        lines.append(f"{label:<{label_width}}  {bar} {value:.4g}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(groups: Sequence[tuple[str,
                                             Sequence[tuple[str, float]]]],
                      *, width: int = 36, title: str | None = None,
                      unit: str = "") -> str:
    """Bars grouped under headings, scaled to the global maximum."""
    values = [value for _, rows in groups for _, value in rows]
    if not values:
        return title or ""
    maximum = max(values)
    label_width = max((len(label) for _, rows in groups
                       for label, _ in rows), default=0)
    lines = [title] if title else []
    for heading, rows in groups:
        lines.append(f"{heading}:")
        for label, value in rows:
            bar = _bar(value, maximum, width)
            lines.append(
                f"  {label:<{label_width}}  {bar} {value:.4g}{unit}")
    return "\n".join(lines)
