"""Measurement and reporting utilities for the experiment harness."""

from repro.metrics.measurement import (OutputRateMeter, Timer, consume,
                                       deep_sizeof)
from repro.metrics.reporting import format_number, format_table, print_table

__all__ = [
    "OutputRateMeter",
    "Timer",
    "consume",
    "deep_sizeof",
    "format_number",
    "format_table",
    "print_table",
]
