"""Measurement utilities: deep memory sizing, timing, throughput.

The Figure 7c memory comparison needs an honest byte count of each
mechanism's state.  :func:`deep_sizeof` walks an object graph
(containers, ``__dict__``, ``__slots__``) with cycle protection and
sums ``sys.getsizeof`` over every reachable object — the Python
analogue of the JVM heap accounting the paper would have used.
"""

from __future__ import annotations

import sys
import time
from typing import Iterable

__all__ = ["deep_sizeof", "Timer", "OutputRateMeter"]

_ATOMIC = (int, float, bool, complex, type(None))


def deep_sizeof(obj: object, *, _seen: set[int] | None = None) -> int:
    """Total bytes reachable from ``obj`` (shared objects counted once)."""
    seen = _seen if _seen is not None else set()
    stack = [obj]
    total = 0
    while stack:
        current = stack.pop()
        oid = id(current)
        if oid in seen:
            continue
        seen.add(oid)
        total += sys.getsizeof(current)
        if isinstance(current, _ATOMIC) or isinstance(current, (str, bytes)):
            continue
        if isinstance(current, dict):
            stack.extend(current.keys())
            stack.extend(current.values())
            continue
        if isinstance(current, (list, tuple, set, frozenset)):
            stack.extend(current)
            continue
        attrs = getattr(current, "__dict__", None)
        if attrs is not None:
            stack.append(attrs)
        slots = getattr(type(current), "__slots__", None)
        if slots is not None:
            if isinstance(slots, str):
                slots = (slots,)
            for slot in slots:
                value = getattr(current, slot, None)
                if value is not None:
                    stack.append(value)
    return total


class Timer:
    """Context-manager wall-clock timer accumulating seconds."""

    def __init__(self):
        self.elapsed = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self.elapsed += time.perf_counter() - self._start
        self._start = None

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed * 1e3

    def per_item_ms(self, items: int) -> float:
        """Milliseconds per item (0 if nothing processed)."""
        if items <= 0:
            return 0.0
        return self.elapsed_ms / items


class OutputRateMeter:
    """Output rate in tuples per millisecond of processing time."""

    def __init__(self):
        self.tuples = 0
        self.timer = Timer()

    def rate(self) -> float:
        if self.timer.elapsed <= 0:
            return 0.0
        return self.tuples / self.timer.elapsed_ms


def consume(iterable: Iterable) -> int:
    """Drain an iterator, returning the element count."""
    count = 0
    for _ in iterable:
        count += 1
    return count
