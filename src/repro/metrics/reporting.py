"""Plain-text result tables for the experiment harness.

The benchmark drivers print the same rows/series the paper's figures
plot; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "print_table", "format_number"]


def format_number(value: object, precision: int = 4) -> str:
    """Compact human-readable rendering of one table cell."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 *, title: str | None = None) -> str:
    """Render an aligned text table."""
    cells = [[format_number(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append("  ".join(cell.rjust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                *, title: str | None = None) -> None:
    """Print an aligned text table followed by a blank line."""
    print(format_table(headers, rows, title=title))
    print()
