"""Synthetic road networks for the moving-objects workload.

The paper's evaluation uses the Brinkhoff network-based moving-objects
generator over the road map of Worcester, MA.  The map itself is not
redistributable, so we build a synthetic city: a jittered grid of
intersections with a few arterial diagonals removed/added, weighted by
Euclidean length.  What the experiments need from the network is only
that objects move continuously along shared paths and emit plausible
location updates — all preserved here.
"""

from __future__ import annotations

import math
import random

import networkx as nx

__all__ = ["RoadNetwork", "make_city_network"]


class RoadNetwork:
    """A road network: a weighted undirected graph with coordinates."""

    def __init__(self, graph: nx.Graph):
        if graph.number_of_nodes() == 0:
            raise ValueError("road network must be non-empty")
        self.graph = graph
        self._nodes = list(graph.nodes)

    def random_node(self, rng: random.Random):
        return rng.choice(self._nodes)

    def position(self, node) -> tuple[float, float]:
        data = self.graph.nodes[node]
        return data["x"], data["y"]

    def shortest_path(self, source, target) -> list:
        return nx.shortest_path(self.graph, source, target, weight="length")

    def edge_length(self, u, v) -> float:
        return self.graph.edges[u, v]["length"]

    def node_count(self) -> int:
        return self.graph.number_of_nodes()

    def edge_count(self) -> int:
        return self.graph.number_of_edges()


def make_city_network(width: int = 12, height: int = 12, *,
                      jitter: float = 0.25, block: float = 100.0,
                      removal_fraction: float = 0.08,
                      seed: int = 0) -> RoadNetwork:
    """Build a jittered-grid city network.

    ``width`` × ``height`` intersections spaced ``block`` meters apart,
    each perturbed by up to ``jitter`` blocks; a ``removal_fraction``
    of non-bridge streets is removed to break the regularity.
    """
    rng = random.Random(seed)
    graph = nx.Graph()
    for row in range(height):
        for col in range(width):
            x = col * block + rng.uniform(-jitter, jitter) * block
            y = row * block + rng.uniform(-jitter, jitter) * block
            graph.add_node((row, col), x=x, y=y)

    def add_street(a, b) -> None:
        ax, ay = graph.nodes[a]["x"], graph.nodes[a]["y"]
        bx, by = graph.nodes[b]["x"], graph.nodes[b]["y"]
        graph.add_edge(a, b, length=math.hypot(ax - bx, ay - by))

    for row in range(height):
        for col in range(width):
            if col + 1 < width:
                add_street((row, col), (row, col + 1))
            if row + 1 < height:
                add_street((row, col), (row + 1, col))

    # Remove a fraction of streets without disconnecting the city.
    edges = list(graph.edges)
    rng.shuffle(edges)
    to_remove = int(len(edges) * removal_fraction)
    removed = 0
    for u, v in edges:
        if removed >= to_remove:
            break
        data = graph.edges[u, v]
        graph.remove_edge(u, v)
        if nx.is_connected(graph):
            removed += 1
        else:
            graph.add_edge(u, v, **data)
    return RoadNetwork(graph)
