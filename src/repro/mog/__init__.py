"""Moving-objects workload (Brinkhoff-generator substitute)."""

from repro.mog.generator import LOCATION_SCHEMA, MovingObjectsGenerator
from repro.mog.network import RoadNetwork, make_city_network
from repro.mog.objects import MovingObject

__all__ = [
    "LOCATION_SCHEMA",
    "MovingObject",
    "MovingObjectsGenerator",
    "RoadNetwork",
    "make_city_network",
]
