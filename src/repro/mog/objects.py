"""Moving objects travelling on a road network.

Each object (a car, a pedestrian with a GPS device) drives shortest
paths between random intersections at an individual speed, reporting
its interpolated position every tick.  Objects also carry *security
preferences* — the set of roles currently allowed to see their
location — which they may change over time (a person entering a casino
blocking others from knowing their whereabouts, in the paper's
opening example).
"""

from __future__ import annotations

import math
import random

from repro.mog.network import RoadNetwork

__all__ = ["MovingObject"]


class MovingObject:
    """One object on the network, with a security preference."""

    __slots__ = ("object_id", "network", "speed", "_rng", "_path",
                 "_edge_index", "_edge_progress", "allowed_roles")

    def __init__(self, object_id: int, network: RoadNetwork, *,
                 speed: float = 10.0, rng: random.Random | None = None,
                 allowed_roles: frozenset[str] = frozenset()):
        self.object_id = object_id
        self.network = network
        self.speed = speed
        self._rng = rng if rng is not None else random.Random(object_id)
        self.allowed_roles = allowed_roles
        self._path: list = []
        self._edge_index = 0
        self._edge_progress = 0.0
        self._new_trip()

    def _new_trip(self) -> None:
        source = (self._path[-1] if self._path
                  else self.network.random_node(self._rng))
        target = self.network.random_node(self._rng)
        tries = 0
        while target == source and tries < 8:
            target = self.network.random_node(self._rng)
            tries += 1
        if target == source:
            self._path = [source, source]
        else:
            self._path = self.network.shortest_path(source, target)
        self._edge_index = 0
        self._edge_progress = 0.0

    def position(self) -> tuple[float, float]:
        """Current interpolated (x, y)."""
        if self._edge_index >= len(self._path) - 1:
            return self.network.position(self._path[-1])
        u = self._path[self._edge_index]
        v = self._path[self._edge_index + 1]
        ux, uy = self.network.position(u)
        vx, vy = self.network.position(v)
        length = max(self.network.edge_length(u, v), 1e-9)
        f = min(self._edge_progress / length, 1.0)
        return ux + (vx - ux) * f, uy + (vy - uy) * f

    def step(self, dt: float) -> None:
        """Advance ``dt`` time units along the current trip."""
        remaining = self.speed * dt
        while remaining > 0:
            if self._edge_index >= len(self._path) - 1:
                self._new_trip()
                if len(self._path) < 2:
                    return
            u = self._path[self._edge_index]
            v = self._path[self._edge_index + 1]
            length = max(self.network.edge_length(u, v), 1e-9)
            left_on_edge = length - self._edge_progress
            if remaining < left_on_edge:
                self._edge_progress += remaining
                remaining = 0.0
            else:
                remaining -= left_on_edge
                self._edge_index += 1
                self._edge_progress = 0.0

    def distance_to(self, x: float, y: float) -> float:
        px, py = self.position()
        return math.hypot(px - x, py - y)

    def __repr__(self) -> str:
        x, y = self.position()
        return (f"MovingObject({self.object_id}, pos=({x:.1f},{y:.1f}), "
                f"roles={sorted(self.allowed_roles)})")
