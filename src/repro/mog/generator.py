"""Location-update stream generation with security punctuations.

The generator drives a fleet of moving objects over a road network and
emits their location updates as a punctuated stream, the workload of
the paper's Section VII experiments: tuple-granularity access-control
policies on the location updates, with a controllable sp:tuple ratio
(how many consecutive tuples share one sp) and policy size (roles per
sp).

Two policy modes:

* ``segment`` (default; matches the paper's setup) — one sp precedes
  each run of ``tuples_per_sp`` location updates and carries the policy
  of that whole s-punctuated segment;
* ``per-object`` — each object emits its own tuple-scoped sp whenever
  its preference changes (the realistic fine-grained mode used by the
  examples).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.patterns import literal
from repro.core.punctuation import SecurityPunctuation
from repro.mog.network import RoadNetwork, make_city_network
from repro.mog.objects import MovingObject
from repro.stream.element import StreamElement
from repro.stream.schema import StreamSchema
from repro.stream.tuples import DataTuple

__all__ = ["LOCATION_SCHEMA", "MovingObjectsGenerator"]

LOCATION_SCHEMA = StreamSchema(
    "locations", ("object_id", "x", "y", "speed"), key="object_id")


class MovingObjectsGenerator:
    """Punctuated location-update streams from simulated movement."""

    def __init__(self, *, n_objects: int = 100,
                 network: RoadNetwork | None = None,
                 roles: tuple[str, ...] = ("r1", "r2", "r3", "r4", "r5"),
                 roles_per_policy: int = 2,
                 tuples_per_sp: int = 10,
                 policy_mode: str = "segment",
                 preference_change_prob: float = 0.02,
                 tick: float = 1.0, seed: int = 0):
        if policy_mode not in ("segment", "per-object"):
            raise ValueError(f"unknown policy mode: {policy_mode!r}")
        self.rng = random.Random(seed)
        self.network = (network if network is not None
                        else make_city_network(seed=seed))
        self.roles = tuple(roles)
        self.roles_per_policy = max(1, min(roles_per_policy, len(roles)))
        self.tuples_per_sp = max(1, tuples_per_sp)
        self.policy_mode = policy_mode
        self.preference_change_prob = preference_change_prob
        self.tick = tick
        self.schema = LOCATION_SCHEMA
        self.objects = [
            MovingObject(
                object_id,
                self.network,
                speed=self.rng.uniform(5.0, 20.0),
                rng=random.Random(seed * 100003 + object_id),
                allowed_roles=self._random_policy(),
            )
            for object_id in range(n_objects)
        ]

    def _random_policy(self) -> frozenset[str]:
        return frozenset(self.rng.sample(self.roles, self.roles_per_policy))

    # -- stream generation -----------------------------------------------------
    def elements(self, n_ticks: int) -> Iterator[StreamElement]:
        """The punctuated location stream over ``n_ticks`` rounds."""
        if self.policy_mode == "segment":
            yield from self._segment_mode(n_ticks)
        else:
            yield from self._per_object_mode(n_ticks)

    def _location_tuple(self, obj: MovingObject, ts: float) -> DataTuple:
        x, y = obj.position()
        return DataTuple(
            self.schema.stream_id, obj.object_id,
            {"object_id": obj.object_id, "x": x, "y": y,
             "speed": obj.speed},
            ts,
        )

    def _segment_mode(self, n_ticks: int) -> Iterator[StreamElement]:
        countdown = 0
        ts = 0.0
        for _ in range(n_ticks):
            ts += self.tick
            for obj in self.objects:
                obj.step(self.tick)
                if countdown == 0:
                    yield SecurityPunctuation.grant(
                        sorted(self._random_policy()), ts,
                        provider="mog")
                    countdown = self.tuples_per_sp
                yield self._location_tuple(obj, ts)
                countdown -= 1

    def _per_object_mode(self, n_ticks: int) -> Iterator[StreamElement]:
        # Sps are segment-scoped (Figure 2): an sp governs exactly the
        # tuples up to the next sp.  With objects interleaved per tick,
        # each object's update is therefore preceded by its own
        # tuple-scoped sp — the 1/1 worst case of Figure 7, arising
        # naturally from fine-grained per-device preferences.
        ts = 0.0
        for _ in range(n_ticks):
            ts += self.tick
            for obj in self.objects:
                obj.step(self.tick)
                if self.rng.random() < self.preference_change_prob:
                    obj.allowed_roles = self._random_policy()
                yield SecurityPunctuation.grant(
                    sorted(obj.allowed_roles), ts,
                    stream=literal(self.schema.stream_id),
                    tuple_id=literal(obj.object_id),
                    provider=f"obj{obj.object_id}")
                yield self._location_tuple(obj, ts)

    def materialize(self, n_ticks: int) -> list[StreamElement]:
        return list(self.elements(n_ticks))
