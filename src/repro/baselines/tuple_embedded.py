"""The tuple-embedded baseline (Section I.C, "Streaming: tuple-embedded").

Security restrictions are embedded *inside* every data tuple as extra
metadata fields (like tuple lineage in Eddies).  Tuples that share a
policy each carry their own redundant copy, and the query processor
checks every tuple individually — the storage and processing redundancy
the sp model eliminates.  A bitmap encoding of the embedded policy is
supported (the improvement the paper concedes to this baseline); it
compresses the per-tuple copy but does not remove the redundancy.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.bitmap import (AbstractRoleSet, RoleBitmap, RoleSet,
                               RoleUniverse)
from repro.core.punctuation import SecurityPunctuation
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple

__all__ = ["PolicyTuple", "embed_policies", "TupleEmbeddedEnforcer"]


class PolicyTuple:
    """A data tuple with its embedded access-control policy."""

    __slots__ = ("tuple", "policy")

    def __init__(self, item: DataTuple, policy: AbstractRoleSet):
        self.tuple = item
        self.policy = policy

    def __repr__(self) -> str:
        return f"PolicyTuple({self.tuple!r}, roles={sorted(self.policy.names())})"


def embed_policies(elements: Iterable[StreamElement], *,
                   universe: RoleUniverse | None = None,
                   bitmap: bool = False) -> Iterator[PolicyTuple]:
    """Convert a punctuated stream into a tuple-embedded stream.

    This models what the data sources would emit under this
    architecture: the punctuations disappear and every tuple carries a
    private copy of the governing policy.  With ``bitmap=True`` the
    embedded copy is a role bitmap over ``universe``.
    """
    if bitmap and universe is None:
        universe = RoleUniverse()
    current_roles: frozenset[str] = frozenset()
    batch: list[SecurityPunctuation] = []
    batch_ts: float | None = None
    for element in elements:
        if isinstance(element, SecurityPunctuation):
            if batch_ts is not None and element.ts == batch_ts:
                batch.append(element)  # same batch: one policy
            else:
                batch = [element]  # new policy: override
                batch_ts = element.ts
            continue
        if batch:
            # Resolve the batch once per segment: positive sps grant
            # the union of their roles, negative sps subtract the
            # roles they authorize (denial-by-default otherwise).
            granted: set[str] = set()
            for sp in batch:
                if sp.is_positive:
                    granted |= sp.roles()
            if granted:
                for sp in batch:
                    if not sp.is_positive:
                        granted = {r for r in granted
                                   if not sp.srp.authorizes(r)}
            current_roles = frozenset(granted)
            batch = []
            batch_ts = None
        if bitmap:
            policy: AbstractRoleSet = RoleBitmap(universe, current_roles)
        else:
            # A fresh private copy per tuple — the redundancy under test.
            policy = RoleSet(set(current_roles))
        yield PolicyTuple(element, policy)


class TupleEmbeddedEnforcer:
    """Per-tuple access control on an embedded-policy stream."""

    def __init__(self, roles: Iterable[str] | AbstractRoleSet):
        if not isinstance(roles, AbstractRoleSet):
            roles = RoleSet(roles)
        self.roles = roles
        self.tuples_in = 0
        self.tuples_out = 0
        self.checks = 0

    def ingest(self, stream: Iterable[PolicyTuple]) -> Iterator[DataTuple]:
        for policy_tuple in stream:
            self.tuples_in += 1
            self.checks += 1
            if policy_tuple.policy.intersects(self.roles):
                self.tuples_out += 1
                yield policy_tuple.tuple
