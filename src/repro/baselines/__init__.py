"""Baseline access-control enforcement mechanisms (Section I.C)."""

from repro.baselines.store_and_probe import PolicyTable, StoreAndProbeEnforcer
from repro.baselines.tuple_embedded import (PolicyTuple, TupleEmbeddedEnforcer,
                                            embed_policies)

__all__ = [
    "PolicyTable",
    "PolicyTuple",
    "StoreAndProbeEnforcer",
    "TupleEmbeddedEnforcer",
    "embed_policies",
]
