"""The store-and-probe baseline (Section I.C, "Non-streaming").

Policies on the streaming data are collected in one place — a
persistent policy table on the server.  Every policy change is an
update to the table; every data access probes the table to decide
whether access is granted.  Simple, but policy churn and per-access
lookups make the central table a bottleneck, which is exactly what
Figure 7 measures.

The implementation keeps the baseline honest rather than strawman:
tuple-granularity policies with literal tuple ids get a hash-indexed
fast path; only pattern-scoped policies (wildcards, ranges, regexes)
require scanning.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.bitmap import AbstractRoleSet, RoleSet
from repro.core.patterns import LiteralPattern, SetPattern
from repro.core.policy import TuplePolicy
from repro.core.punctuation import SecurityPunctuation
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple

__all__ = ["PolicyTable", "StoreAndProbeEnforcer"]


class _StoredPolicy:
    __slots__ = ("sp", "roles")

    def __init__(self, sp: SecurityPunctuation):
        self.sp = sp
        #: Granted roles for positive sps; ``None`` for negative sps
        #: (denials are pattern-matched via the SRP, which also covers
        #: wildcard-denial markers with non-enumerable role patterns).
        self.roles = RoleSet(sp.roles()) if sp.is_positive else None


class PolicyTable:
    """The central persistent policy store."""

    def __init__(self):
        #: (stream key, tid) -> same-timestamp policies, for
        #: literal-tid sps.  A list because one sp-batch (same ts) is
        #: a single policy whose sps combine by union.
        self._exact: dict[tuple[str, object], list[_StoredPolicy]] = {}
        #: Pattern-scoped policies, scanned on probe.
        self._patterns: list[_StoredPolicy] = []
        self.updates = 0
        self.probes = 0
        self.scan_steps = 0

    # -- updates ------------------------------------------------------------
    def store(self, sp: SecurityPunctuation) -> None:
        """Insert or override a policy (newer timestamps win).

        Sps sharing a timestamp are one sp-batch — one policy — so an
        equal-timestamp store *extends* the stored policy instead of
        replacing it; a strictly newer one overrides.  Negative sps are
        stored as denials, never as grants.
        """
        self.updates += 1
        stored = _StoredPolicy(sp)
        exact_keys = self._exact_keys(sp)
        if exact_keys is not None:
            for key in exact_keys:
                bucket = self._exact.get(key)
                if bucket is None or sp.ts > bucket[0].sp.ts:
                    self._exact[key] = [stored]
                elif sp.ts == bucket[0].sp.ts:
                    bucket.append(stored)
            return
        same_ddp = [index for index, existing in enumerate(self._patterns)
                    if existing.sp.ddp == sp.ddp]
        if same_ddp:
            # All same-DDP entries share one timestamp (older batches
            # are wiped on override), so the first one is the batch ts.
            current_ts = self._patterns[same_ddp[0]].sp.ts
            if sp.ts > current_ts:
                for index in reversed(same_ddp):
                    del self._patterns[index]
                self._patterns.append(stored)
            elif sp.ts == current_ts:
                self._patterns.append(stored)
            return
        self._patterns.append(stored)

    @staticmethod
    def _exact_keys(
        sp: SecurityPunctuation,
    ) -> list[tuple[str, object]] | None:
        """Hashable (stream, tid) keys when the DDP is fully literal."""
        if not sp.ddp.attribute.is_wildcard():
            return None
        stream = sp.ddp.stream
        tid = sp.ddp.tuple_id
        if not isinstance(stream, LiteralPattern):
            return None
        if isinstance(tid, LiteralPattern):
            return [(stream.spec(), str(tid.value))]
        if isinstance(tid, SetPattern):
            return [(stream.spec(), str(v)) for v in tid.values]
        return None

    # -- probes ------------------------------------------------------------
    def probe(self, item: DataTuple) -> TuplePolicy:
        """Effective policy of one tuple (denial-by-default).

        The governing policy is the newest-timestamp set of applicable
        sps (one sp-batch): its positive sps grant the union of their
        roles, its negative sps subtract the roles they authorize.
        """
        self.probes += 1
        governing: list[_StoredPolicy] = []
        best_ts = float("-inf")
        bucket = self._exact.get((item.sid, str(item.tid)))
        if bucket:
            governing = list(bucket)
            best_ts = bucket[0].sp.ts
        for stored in self._patterns:
            self.scan_steps += 1
            if not stored.sp.describes(item.sid, item.tid):
                continue
            if stored.sp.ts > best_ts:
                governing, best_ts = [stored], stored.sp.ts
            elif stored.sp.ts == best_ts:
                governing.append(stored)
        granted: set[str] = set()
        for stored in governing:
            if stored.roles is not None:
                granted |= stored.roles.names()
        if granted:
            for stored in governing:
                if stored.roles is None:
                    granted = {r for r in granted
                               if not stored.sp.srp.authorizes(r)}
        return TuplePolicy(RoleSet(granted), ts=best_ts)

    # -- accounting --------------------------------------------------------
    def policy_count(self) -> int:
        return (sum(len(bucket) for bucket in self._exact.values())
                + len(self._patterns))

    def stored_policies(self) -> Iterator[SecurityPunctuation]:
        for bucket in self._exact.values():
            for stored in bucket:
                yield stored.sp
        for stored in self._patterns:
            yield stored.sp


class StoreAndProbeEnforcer:
    """Access-control enforcement via the central policy table.

    ``ingest`` consumes a punctuated element stream the way this
    architecture would receive it: sps are diverted into the policy
    table (they never flow through the query path); data tuples are
    authorized by probing the table.
    """

    def __init__(self, roles: Iterable[str] | AbstractRoleSet,
                 table: PolicyTable | None = None):
        if not isinstance(roles, AbstractRoleSet):
            roles = RoleSet(roles)
        self.roles = roles
        self.table = table if table is not None else PolicyTable()
        self.tuples_in = 0
        self.tuples_out = 0

    def ingest(self, elements: Iterable[StreamElement]) -> Iterator[DataTuple]:
        for element in elements:
            if isinstance(element, SecurityPunctuation):
                self.table.store(element)
                continue
            self.tuples_in += 1
            policy = self.table.probe(element)
            if policy.permits_any(self.roles):
                self.tuples_out += 1
                yield element

    def state_objects(self) -> list:
        """Objects to include in memory accounting."""
        return [self.table._exact, self.table._patterns]  # noqa: SLF001


#: Page size of the persistent store backing the policy table.
PAGE_SIZE = 8192
#: Fixed page overhead of a persistent table: system-catalog entries,
#: heap file header, index root/internal pages, free-space map.  A
#: stream-resident mechanism pays none of this, which is why the sp
#: model wins at small policy sizes in Figure 7c despite keeping
#: several concurrent sp copies.
BASE_PAGES = 12
#: Per-row storage overhead (slot directory entry + row header).
ROW_OVERHEAD = 32


def persistent_table_bytes(table: PolicyTable) -> int:
    """Page-granular memory footprint of the persistent policy table."""
    from repro.metrics.measurement import deep_sizeof

    row_bytes = sum(
        deep_sizeof(sp) + ROW_OVERHEAD for sp in table.stored_policies()
    )
    data_pages = -(-row_bytes // PAGE_SIZE) if row_bytes else 0
    return (BASE_PAGES + data_pages) * PAGE_SIZE
