"""The store-and-probe baseline (Section I.C, "Non-streaming").

Policies on the streaming data are collected in one place — a
persistent policy table on the server.  Every policy change is an
update to the table; every data access probes the table to decide
whether access is granted.  Simple, but policy churn and per-access
lookups make the central table a bottleneck, which is exactly what
Figure 7 measures.

The implementation keeps the baseline honest rather than strawman:
tuple-granularity policies with literal tuple ids get a hash-indexed
fast path; only pattern-scoped policies (wildcards, ranges, regexes)
require scanning.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.bitmap import AbstractRoleSet, RoleSet
from repro.core.patterns import LiteralPattern, SetPattern
from repro.core.policy import TuplePolicy
from repro.core.punctuation import SecurityPunctuation
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple

__all__ = ["PolicyTable", "StoreAndProbeEnforcer"]


class _StoredPolicy:
    __slots__ = ("sp", "roles")

    def __init__(self, sp: SecurityPunctuation):
        self.sp = sp
        self.roles = RoleSet(sp.roles())


class PolicyTable:
    """The central persistent policy store."""

    def __init__(self):
        #: (stream key, tid) -> policy, for literal-tid policies.
        self._exact: dict[tuple[str, object], _StoredPolicy] = {}
        #: Pattern-scoped policies, scanned on probe.
        self._patterns: list[_StoredPolicy] = []
        self.updates = 0
        self.probes = 0
        self.scan_steps = 0

    # -- updates ------------------------------------------------------------
    def store(self, sp: SecurityPunctuation) -> None:
        """Insert or override a policy (newer timestamps win)."""
        self.updates += 1
        stored = _StoredPolicy(sp)
        exact_keys = self._exact_keys(sp)
        if exact_keys is not None:
            for key in exact_keys:
                existing = self._exact.get(key)
                if existing is None or sp.ts >= existing.sp.ts:
                    self._exact[key] = stored
            return
        for index, existing in enumerate(self._patterns):
            if existing.sp.ddp == sp.ddp:
                if sp.ts >= existing.sp.ts:
                    self._patterns[index] = stored
                return
        self._patterns.append(stored)

    @staticmethod
    def _exact_keys(
        sp: SecurityPunctuation,
    ) -> list[tuple[str, object]] | None:
        """Hashable (stream, tid) keys when the DDP is fully literal."""
        if not sp.ddp.attribute.is_wildcard():
            return None
        stream = sp.ddp.stream
        tid = sp.ddp.tuple_id
        if not isinstance(stream, LiteralPattern):
            return None
        if isinstance(tid, LiteralPattern):
            return [(stream.spec(), str(tid.value))]
        if isinstance(tid, SetPattern):
            return [(stream.spec(), str(v)) for v in tid.values]
        return None

    # -- probes ------------------------------------------------------------
    def probe(self, item: DataTuple) -> TuplePolicy:
        """Effective policy of one tuple (denial-by-default)."""
        self.probes += 1
        granted: AbstractRoleSet = RoleSet()
        best_ts = float("-inf")
        exact = self._exact.get((item.sid, str(item.tid)))
        if exact is not None:
            granted = exact.roles
            best_ts = exact.sp.ts
        for stored in self._patterns:
            self.scan_steps += 1
            if not stored.sp.describes(item.sid, item.tid):
                continue
            if stored.sp.ts > best_ts:
                granted, best_ts = stored.roles, stored.sp.ts
            elif stored.sp.ts == best_ts:
                granted = granted.union(stored.roles)
        return TuplePolicy(granted, ts=best_ts)

    # -- accounting --------------------------------------------------------
    def policy_count(self) -> int:
        return len(self._exact) + len(self._patterns)

    def stored_policies(self) -> Iterator[SecurityPunctuation]:
        for stored in self._exact.values():
            yield stored.sp
        for stored in self._patterns:
            yield stored.sp


class StoreAndProbeEnforcer:
    """Access-control enforcement via the central policy table.

    ``ingest`` consumes a punctuated element stream the way this
    architecture would receive it: sps are diverted into the policy
    table (they never flow through the query path); data tuples are
    authorized by probing the table.
    """

    def __init__(self, roles: Iterable[str] | AbstractRoleSet,
                 table: PolicyTable | None = None):
        if not isinstance(roles, AbstractRoleSet):
            roles = RoleSet(roles)
        self.roles = roles
        self.table = table if table is not None else PolicyTable()
        self.tuples_in = 0
        self.tuples_out = 0

    def ingest(self, elements: Iterable[StreamElement]) -> Iterator[DataTuple]:
        for element in elements:
            if isinstance(element, SecurityPunctuation):
                self.table.store(element)
                continue
            self.tuples_in += 1
            policy = self.table.probe(element)
            if policy.permits_any(self.roles):
                self.tuples_out += 1
                yield element

    def state_objects(self) -> list:
        """Objects to include in memory accounting."""
        return [self.table._exact, self.table._patterns]  # noqa: SLF001


#: Page size of the persistent store backing the policy table.
PAGE_SIZE = 8192
#: Fixed page overhead of a persistent table: system-catalog entries,
#: heap file header, index root/internal pages, free-space map.  A
#: stream-resident mechanism pays none of this, which is why the sp
#: model wins at small policy sizes in Figure 7c despite keeping
#: several concurrent sp copies.
BASE_PAGES = 12
#: Per-row storage overhead (slot directory entry + row header).
ROW_OVERHEAD = 32


def persistent_table_bytes(table: PolicyTable) -> int:
    """Page-granular memory footprint of the persistent policy table."""
    from repro.metrics.measurement import deep_sizeof

    row_bytes = sum(
        deep_sizeof(sp) + ROW_OVERHEAD for sp in table.stored_policies()
    )
    data_pages = -(-row_bytes // PAGE_SIZE) if row_bytes else 0
    return (BASE_PAGES + data_pages) * PAGE_SIZE
