"""Sp-aware group-by with aggregation (G^agg_A, Section IV.B).

The operator incrementally maintains a windowed aggregate per group.
In the sp-aware version each attribute group (AG — all tuples sharing a
value of the grouping attribute) is partitioned into *attribute
subgroups* (ASGs): tuples with the same grouping value whose policies
do **not** intersect land in different subgroups, so no query ever sees
an aggregate that mixes in tuples it has no right to observe.  A result
is computed per ASG and emitted preceded by the subgroup's policy.

A tuple whose policy intersects an existing ASG's policy joins that
subgroup (the subgroup policy becomes the union); a tuple bridging
several previously disjoint ASGs merges them.  Expiring tuples update
their subgroup's aggregate, and the refreshed result is emitted —
every tuple changes the aggregate twice, on arrival and on expiry.

Aggregation without grouping is group-by with a single group (the
paper follows the same convention); pass ``key=None``.
"""

from __future__ import annotations

from collections import deque

from repro.core.policy import TuplePolicy
from repro.core.punctuation import SecurityPunctuation
from repro.errors import PlanError
from repro.operators.aggregates import make_aggregate
from repro.operators.base import PolicyTracker, SPEmitter, UnaryOperator
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple

__all__ = ["GroupBy"]

_SINGLE_GROUP = object()


class _Subgroup:
    """One ASG: live values, union policy, incremental aggregate."""

    __slots__ = ("policy", "values", "aggregate", "serial")

    def __init__(self, policy: TuplePolicy, agg_name: str, serial: int):
        self.policy = policy
        self.values: deque[tuple[float, object]] = deque()
        self.aggregate = make_aggregate(agg_name)
        #: Creation-order id, used in result tids; deterministic across
        #: runs (unlike ``id()``), so repeated executions of the same
        #: workload produce identical result tuples.
        self.serial = serial

    def add(self, ts: float, value: object) -> None:
        self.values.append((ts, value))
        self.aggregate.add(value)

    def expire(self, horizon: float) -> bool:
        """Drop expired values; True if anything changed."""
        changed = False
        while self.values and self.values[0][0] <= horizon:
            _, value = self.values.popleft()
            self.aggregate.remove(value, (v for _, v in self.values))
            changed = True
        return changed

    def merge_from(self, other: "_Subgroup") -> None:
        self.policy = self.policy.union(other.policy)
        merged = sorted(list(self.values) + list(other.values),
                        key=lambda pair: pair[0])
        self.values = deque(merged)
        # Rebuild the aggregate from scratch after a merge.
        agg = type(self.aggregate)()
        for _, value in self.values:
            agg.add(value)
        self.aggregate = agg


class GroupBy(UnaryOperator):
    """Windowed sp-aware group-by/aggregate."""

    #: ``groupby.merge`` events interleave with emitted results, so
    #: with an audit log attached the executor delivers element-wise.
    audit_batch_safe = False

    def __init__(self, key: str | None, agg: str, attribute: str, *,
                 window: float, stream_id: str = "*",
                 output_sid: str = "grouped", name: str | None = None):
        super().__init__(name)
        if window <= 0:
            raise PlanError("group-by window must be positive")
        self.key = key
        self.agg_name = agg.lower()
        make_aggregate(self.agg_name)  # validate eagerly
        self.attribute = attribute
        self.window = window
        self.output_sid = output_sid
        self.tracker = PolicyTracker(stream_id)
        self.emitter = SPEmitter()
        self._groups: dict[object, list[_Subgroup]] = {}
        self.merges = 0
        self._next_serial = 0

    def _group_key(self, item: DataTuple) -> object:
        if self.key is None:
            return _SINGLE_GROUP
        return item.values.get(self.key)

    # -- expiry ----------------------------------------------------------
    def _expire(self, now: float, out: list[StreamElement]) -> None:
        horizon = now - self.window
        dead_groups = []
        for group_value, subgroups in self._groups.items():
            dead = []
            for subgroup in subgroups:
                if subgroup.expire(horizon):
                    self.stats.state_ops += 1
                    if subgroup.values:
                        self._emit_result(group_value, subgroup, now, out)
                    else:
                        dead.append(subgroup)
            for subgroup in dead:
                subgroups.remove(subgroup)
            if not subgroups:
                dead_groups.append(group_value)
        for group_value in dead_groups:
            del self._groups[group_value]

    # -- processing -------------------------------------------------------
    def _process(self, element: StreamElement,
                 port: int) -> list[StreamElement]:
        if isinstance(element, SecurityPunctuation):
            self.tracker.observe_sp(element)
            return []
        assert isinstance(element, DataTuple)
        return self._process_tuple(element)

    def _process_batch(self, batch, port: int) -> list[StreamElement]:
        """Batch path: one tight tuple loop (aggregation stays
        per-tuple — every arrival updates its subgroup's window)."""
        out: list[StreamElement] = []
        extend = out.extend
        process_tuple = self._process_tuple
        for item in batch.tuples:
            extend(process_tuple(item))
        return out

    def _process_tuple(self, element: DataTuple) -> list[StreamElement]:
        out: list[StreamElement] = []
        self._expire(element.ts, out)
        policy = self.tracker.policy_for(element)
        if policy.is_empty():
            return out
        group_value = self._group_key(element)
        subgroups = self._groups.setdefault(group_value, [])
        matching = [sg for sg in subgroups
                    if sg.policy.roles.intersects(policy.roles)]
        self.stats.comparisons += len(subgroups)
        if not matching:
            target = _Subgroup(policy, self.agg_name, self._next_serial)
            self._next_serial += 1
            subgroups.append(target)
        else:
            target = matching[0]
            for other in matching[1:]:
                target.merge_from(other)
                subgroups.remove(other)
                self.merges += 1
            if len(matching) > 1 and self.audit is not None:
                # A tuple's policy bridged previously disjoint ASGs —
                # visibility of the aggregate just widened.
                self.audit.record(
                    "groupby.merge", ts=element.ts, operator=self.name,
                    query=self.audit_query, sid=element.sid,
                    tid=element.tid,
                    policy=tuple(sorted(policy.roles.names())),
                    merged=len(matching) - 1,
                    group=(group_value if self.key is not None else "*"),
                )
            target.policy = target.policy.union(policy)
        target.add(element.ts, element.values.get(self.attribute))
        self._emit_result(group_value, target, element.ts, out)
        return out

    def _emit_result(self, group_value: object, subgroup: _Subgroup,
                     ts: float, out: list[StreamElement]) -> None:
        values: dict[str, object] = {}
        if self.key is not None:
            values[self.key] = group_value
        values[f"{self.agg_name}({self.attribute})"] = (
            subgroup.aggregate.result())
        tid = (group_value if self.key is not None else "*",
               subgroup.serial)
        self.emitter.emit(subgroup.policy, ts, out)
        out.append(DataTuple(self.output_sid, tid, values, ts))

    def state_size(self) -> int:
        return sum(len(sg.values)
                   for subgroups in self._groups.values()
                   for sg in subgroups)
