"""The index SAJoin (Section V.B.2): SAJoin optimized with SPIndexes.

The index SAJoin keeps one :class:`~repro.operators.spindex.SPIndex`
per input window.  When a new sp-batch opens a segment, an index entry
is created and linked into the r-nodes of the batch's roles; when a
segment's tuples are all invalidated, the entry leaves from the
r-heads.  A new tuple probes the *opposite* stream's SPIndex with the
roles of its own policy, visiting only policy-wise compatible segments
and — thanks to the skipping rule — visiting each at most once no
matter how many roles the policies share.

Policy collection and invalidation are identical to the nested-loop
SAJoin and inherited from :class:`~repro.operators.join.SAJoinBase`.
"""

from __future__ import annotations

from repro.core.bitmap import RoleUniverse
from repro.core.policy import TuplePolicy
from repro.operators.join import SAJoinBase, segment_index_roles
from repro.operators.spindex import SPIndex
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple
from repro.stream.window import Segment

__all__ = ["IndexSAJoin"]


class IndexSAJoin(SAJoinBase):
    """SAJoin with per-window SPIndexes for compatible-policy lookup."""

    def __init__(self, left_on: str, right_on: str, window: float, *,
                 universe: RoleUniverse | None = None,
                 skipping: bool = True, **kwargs):
        super().__init__(left_on, right_on, window, **kwargs)
        self.universe = universe if universe is not None else RoleUniverse()
        self.indexes = (SPIndex(self.universe, skipping=skipping),
                        SPIndex(self.universe, skipping=skipping))
        self.skipping = skipping

    # -- SPIndex maintenance hooks ------------------------------------------
    def _segment_opened(self, segment: Segment, port: int) -> None:
        roles = segment_index_roles(segment)
        if roles:
            self.indexes[port].insert(segment, roles)
        self.stats.state_ops += len(roles)

    def _segment_purged(self, segment: Segment, port: int) -> None:
        self.indexes[port].remove_segment(segment)

    # -- metrics wiring ------------------------------------------------------
    def bind_metrics(self, instruments) -> None:
        """Expose SPIndex probe accounting as pull-mode gauges.

        The skipped/scanned ratio per side is the Lemma 5.1
        skipping-rule hit rate; callbacks read the index counters at
        collection time, so probing pays nothing extra.
        """
        super().bind_metrics(instruments)
        for side, index in zip(("left", "right"), self.indexes):
            instruments.spindex_entries.labels(
                self.name, side, "scanned").set_function(
                    lambda idx=index: idx.entries_scanned)
            instruments.spindex_entries.labels(
                self.name, side, "skipped").set_function(
                    lambda idx=index: idx.entries_skipped)

    # -- probing --------------------------------------------------------------
    def _probe(self, item: DataTuple, policy: TuplePolicy,
               port: int) -> list[StreamElement]:
        out: list[StreamElement] = []
        index = self.indexes[1 - port]
        skipped_before = index.entries_skipped
        seen: set[int] | None = None if self.skipping else set()
        for segment in index.probe(policy.roles.names()):
            if seen is not None:
                # Ablation mode (skipping rule off): the index yields a
                # segment once per common role; suppress duplicate
                # *output* while still paying the duplicate scan cost.
                if id(segment) in seen:
                    for other in segment.tuples:
                        self.stats.comparisons += 1  # wasted re-scan
                    continue
                seen.add(id(segment))
            if segment.uniform:
                if not segment.tuples:
                    continue
                seg_policy = segment.policy_for(segment.tuples[0])
                if not seg_policy.roles.intersects(policy.roles):
                    continue  # superset index roles: false positive
                for other in segment.tuples:
                    self.pairs_checked += 1
                    self.stats.comparisons += 1
                    if self._match(item, other, port):
                        self._emit(item, other, policy, seg_policy, port, out)
            else:
                for other in segment.tuples:
                    other_policy = segment.policy_for(other)
                    self.stats.comparisons += 1
                    if not other_policy.roles.intersects(policy.roles):
                        continue
                    self.pairs_checked += 1
                    self.stats.comparisons += 1
                    if self._match(item, other, port):
                        self._emit(item, other, policy, other_policy,
                                   port, out)
        skipped = index.entries_skipped - skipped_before
        if skipped and self.audit is not None:
            # Lemma 5.1 in action: this probe reached segments through
            # several common roles and processed each only once.
            self.audit.record(
                "join.skip", ts=item.ts, operator=self.name,
                query=self.audit_query, sid=item.sid, tid=item.tid,
                policy=tuple(sorted(policy.roles.names())),
                skipped=skipped,
            )
        return out

    def _match(self, item: DataTuple, other: DataTuple, port: int) -> bool:
        if port == 0:
            return self._values_match(item, other)
        return self._values_match(other, item)
