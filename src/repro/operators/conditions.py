"""Selection and join conditions.

Conditions are introspectable predicate objects rather than bare
lambdas so the optimizer can reason about them (selectivity estimates,
attribute footprints for commuting rules) and the CQL layer can build
them from parsed expressions.  They are all callable on a
:class:`~repro.stream.tuples.DataTuple`.
"""

from __future__ import annotations

import operator
import warnings
from typing import TYPE_CHECKING, Callable, Iterable

from repro.errors import PlanError, UdfDeclarationWarning
from repro.stream.tuples import DataTuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.udf import EffectReport

__all__ = ["Condition", "Comparison", "And", "Or", "Not", "FuncCondition",
           "TrueCondition"]

_OPS: dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Condition:
    """Abstract predicate over data tuples."""

    def __call__(self, item: DataTuple) -> bool:
        raise NotImplementedError

    def attributes(self) -> frozenset[str]:
        """Attributes the condition reads (for commuting with project)."""
        raise NotImplementedError

    def conjuncts(self) -> list["Condition"]:
        """Top-level AND factors (selection splitting)."""
        return [self]

    def is_pure(self) -> bool:
        """Whether evaluation is side-effect free and value-determined.

        Pure conditions may be vectorized over whole columns (extra
        evaluations are unobservable); impure ones — arbitrary
        callables — must keep element-wise call order and counts, so
        the predicate compiler evaluates them per surviving row only.
        Unknown subclasses default to impure, the conservative choice.
        """
        return False

    def __and__(self, other: "Condition") -> "Condition":
        return And((self, other))

    def __or__(self, other: "Condition") -> "Condition":
        return Or((self, other))

    def __invert__(self) -> "Condition":
        return Not(self)


class TrueCondition(Condition):
    """Always true (the WHERE-less query)."""

    def __call__(self, item: DataTuple) -> bool:
        return True

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def is_pure(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "TRUE"


class Comparison(Condition):
    """``attribute <op> value`` or ``attribute <op> attribute2``."""

    def __init__(self, attribute: str, op: str, value: object, *,
                 rhs_attribute: bool = False) -> None:
        if op not in _OPS:
            raise PlanError(f"unknown comparison operator: {op!r}")
        self.attribute = attribute
        self.op = op
        self.value = value
        self.rhs_attribute = rhs_attribute
        self._fn = _OPS[op]

    def __call__(self, item: DataTuple) -> bool:
        left = item.get(self.attribute)
        right = item.get(self.value) if self.rhs_attribute else self.value
        if left is None or right is None:
            return False
        try:
            return self._fn(left, right)
        except TypeError:
            return False

    def attributes(self) -> frozenset[str]:
        if self.rhs_attribute:
            return frozenset({self.attribute, str(self.value)})
        return frozenset({self.attribute})

    def is_pure(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"({self.attribute} {self.op} {self.value!r})"


class And(Condition):
    def __init__(self, parts: Iterable[Condition]) -> None:
        flat: list[Condition] = []
        for part in parts:
            if isinstance(part, And):
                flat.extend(part.parts)
            else:
                flat.append(part)
        self.parts = tuple(flat)

    def __call__(self, item: DataTuple) -> bool:
        return all(part(item) for part in self.parts)

    def attributes(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for part in self.parts:
            out |= part.attributes()
        return out

    def conjuncts(self) -> list[Condition]:
        out: list[Condition] = []
        for part in self.parts:
            out.extend(part.conjuncts())
        return out

    def is_pure(self) -> bool:
        return all(part.is_pure() for part in self.parts)

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self.parts)) + ")"


class Or(Condition):
    def __init__(self, parts: Iterable[Condition]) -> None:
        self.parts = tuple(parts)

    def __call__(self, item: DataTuple) -> bool:
        return any(part(item) for part in self.parts)

    def attributes(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for part in self.parts:
            out |= part.attributes()
        return out

    def is_pure(self) -> bool:
        return all(part.is_pure() for part in self.parts)

    def __repr__(self) -> str:
        return "(" + " OR ".join(map(repr, self.parts)) + ")"


class Not(Condition):
    def __init__(self, inner: Condition) -> None:
        self.inner = inner

    def __call__(self, item: DataTuple) -> bool:
        return not self.inner(item)

    def attributes(self) -> frozenset[str]:
        return self.inner.attributes()

    def is_pure(self) -> bool:
        return self.inner.is_pure()

    def __repr__(self) -> str:
        return f"(NOT {self.inner!r})"


class FuncCondition(Condition):
    """Escape hatch: wrap an arbitrary callable.

    ``attributes`` must be declared so the optimizer stays correct;
    the UDF effect analyzer (:mod:`repro.analysis.udf`) verifies the
    declaration against the callable's inferred read-set at analysis
    time (SEC006) and proves purity/determinism so proven UDFs can
    vectorize, commute with shields, and run inside shard workers.

    Constructing one with an *empty* declaration and a non-trivial
    callable emits :class:`~repro.errors.UdfDeclarationWarning`
    immediately — an empty ``attributes()`` makes every downstream
    proof reason as if the predicate read nothing.  Use
    :meth:`wrap` to declare the analyzer's inferred read-set
    automatically.
    """

    def __init__(self, fn: Callable[[DataTuple], bool],
                 attributes: Iterable[str] = (),
                 label: str = "fn") -> None:
        self._fn = fn
        self._attributes = frozenset(attributes)
        self.label = label
        self._effects: "EffectReport | None" = None
        if not self._attributes:
            effects = self.effects
            if effects.reads is None or effects.reads:
                read = ("an unverifiable set of attributes"
                        if effects.reads is None
                        else f"attributes {sorted(effects.reads)}")
                warnings.warn(
                    f"FuncCondition {label!r} declares no attributes "
                    f"but its callable reads {read}; the optimizer, "
                    "compiler and SEC002 pruning all reason from the "
                    "declaration — pass attributes=(...) (or use "
                    "FuncCondition.wrap) to keep them sound",
                    UdfDeclarationWarning, stacklevel=2)

    @classmethod
    def wrap(cls, fn: Callable[[DataTuple], bool],
             label: str = "fn") -> "FuncCondition":
        """Wrap ``fn`` declaring its statically inferred read-set.

        Falls back to an empty declaration (with the construction-time
        warning) when the read-set is not statically determinable.
        """
        from repro.analysis.udf import analyze_callable

        effects = analyze_callable(fn)
        return cls(fn, effects.reads or (), label=label)

    @property
    def effects(self) -> "EffectReport":
        """Lazily computed effect analysis of the wrapped callable."""
        if self._effects is None:
            from repro.analysis.udf import analyze_callable

            self._effects = analyze_callable(self._fn)
        return self._effects

    @property
    def fn(self) -> Callable[[DataTuple], bool]:
        """The wrapped callable (read-only; identity matters to proofs)."""
        return self._fn

    def __call__(self, item: DataTuple) -> bool:
        return bool(self._fn(item))

    def attributes(self) -> frozenset[str]:
        return self._attributes

    def is_pure(self) -> bool:
        """Pure iff the effect analyzer *proved* purity + determinism.

        UNKNOWN stays impure (fail closed): the compiler then keeps
        element-wise call order and counts exactly as today.
        """
        return self.effects.proven_pure

    def __repr__(self) -> str:
        return f"<{self.label}>"
