"""Selection and join conditions.

Conditions are introspectable predicate objects rather than bare
lambdas so the optimizer can reason about them (selectivity estimates,
attribute footprints for commuting rules) and the CQL layer can build
them from parsed expressions.  They are all callable on a
:class:`~repro.stream.tuples.DataTuple`.
"""

from __future__ import annotations

import operator
from typing import Callable, Iterable

from repro.errors import PlanError
from repro.stream.tuples import DataTuple

__all__ = ["Condition", "Comparison", "And", "Or", "Not", "FuncCondition",
           "TrueCondition"]

_OPS: dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Condition:
    """Abstract predicate over data tuples."""

    def __call__(self, item: DataTuple) -> bool:
        raise NotImplementedError

    def attributes(self) -> frozenset[str]:
        """Attributes the condition reads (for commuting with project)."""
        raise NotImplementedError

    def conjuncts(self) -> list["Condition"]:
        """Top-level AND factors (selection splitting)."""
        return [self]

    def is_pure(self) -> bool:
        """Whether evaluation is side-effect free and value-determined.

        Pure conditions may be vectorized over whole columns (extra
        evaluations are unobservable); impure ones — arbitrary
        callables — must keep element-wise call order and counts, so
        the predicate compiler evaluates them per surviving row only.
        Unknown subclasses default to impure, the conservative choice.
        """
        return False

    def __and__(self, other: "Condition") -> "Condition":
        return And((self, other))

    def __or__(self, other: "Condition") -> "Condition":
        return Or((self, other))

    def __invert__(self) -> "Condition":
        return Not(self)


class TrueCondition(Condition):
    """Always true (the WHERE-less query)."""

    def __call__(self, item: DataTuple) -> bool:
        return True

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def is_pure(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "TRUE"


class Comparison(Condition):
    """``attribute <op> value`` or ``attribute <op> attribute2``."""

    def __init__(self, attribute: str, op: str, value: object, *,
                 rhs_attribute: bool = False):
        if op not in _OPS:
            raise PlanError(f"unknown comparison operator: {op!r}")
        self.attribute = attribute
        self.op = op
        self.value = value
        self.rhs_attribute = rhs_attribute
        self._fn = _OPS[op]

    def __call__(self, item: DataTuple) -> bool:
        left = item.get(self.attribute)
        right = item.get(self.value) if self.rhs_attribute else self.value
        if left is None or right is None:
            return False
        try:
            return self._fn(left, right)
        except TypeError:
            return False

    def attributes(self) -> frozenset[str]:
        if self.rhs_attribute:
            return frozenset({self.attribute, str(self.value)})
        return frozenset({self.attribute})

    def is_pure(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"({self.attribute} {self.op} {self.value!r})"


class And(Condition):
    def __init__(self, parts: Iterable[Condition]):
        flat: list[Condition] = []
        for part in parts:
            if isinstance(part, And):
                flat.extend(part.parts)
            else:
                flat.append(part)
        self.parts = tuple(flat)

    def __call__(self, item: DataTuple) -> bool:
        return all(part(item) for part in self.parts)

    def attributes(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for part in self.parts:
            out |= part.attributes()
        return out

    def conjuncts(self) -> list[Condition]:
        out: list[Condition] = []
        for part in self.parts:
            out.extend(part.conjuncts())
        return out

    def is_pure(self) -> bool:
        return all(part.is_pure() for part in self.parts)

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self.parts)) + ")"


class Or(Condition):
    def __init__(self, parts: Iterable[Condition]):
        self.parts = tuple(parts)

    def __call__(self, item: DataTuple) -> bool:
        return any(part(item) for part in self.parts)

    def attributes(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for part in self.parts:
            out |= part.attributes()
        return out

    def is_pure(self) -> bool:
        return all(part.is_pure() for part in self.parts)

    def __repr__(self) -> str:
        return "(" + " OR ".join(map(repr, self.parts)) + ")"


class Not(Condition):
    def __init__(self, inner: Condition):
        self.inner = inner

    def __call__(self, item: DataTuple) -> bool:
        return not self.inner(item)

    def attributes(self) -> frozenset[str]:
        return self.inner.attributes()

    def is_pure(self) -> bool:
        return self.inner.is_pure()

    def __repr__(self) -> str:
        return f"(NOT {self.inner!r})"


class FuncCondition(Condition):
    """Escape hatch: wrap an arbitrary callable.

    ``attributes`` must be declared so the optimizer stays correct.
    """

    def __init__(self, fn: Callable[[DataTuple], bool],
                 attributes: Iterable[str] = (), label: str = "fn"):
        self._fn = fn
        self._attributes = frozenset(attributes)
        self.label = label

    def __call__(self, item: DataTuple) -> bool:
        return bool(self._fn(item))

    def attributes(self) -> frozenset[str]:
        return self._attributes

    def __repr__(self) -> str:
        return f"<{self.label}>"
