"""Sp-aware projection (π).

Table I: ``(t, Pt) ∈ πa1..an(T) iff t consists of ai and Pt ≠ ∅``.

Projection discards unwanted attributes on the fly and propagates the
streaming sps ahead of the projected tuples.  An sp whose DDP describes
a policy *only* for projected-away attributes protects nothing that
survives, so it is discarded from the stream as well.

When *every* sp of an sp-batch is pruned this way, the batch boundary
must not vanish silently: downstream operators would keep resolving
tuples against the *previous* segment's policy, widening access.  The
projection instead emits an explicit wildcard-denial marker
(:func:`~repro.core.policy.deny_all_sp`) at the batch's timestamp, so
the pruned segment correctly resolves to denial-by-default — exactly
what resolving the original batch against the retained attributes
yields (no surviving sp describes any of them).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.policy import deny_all_sp
from repro.core.punctuation import SecurityPunctuation
from repro.errors import PlanError
from repro.operators.base import UnaryOperator
from repro.stream.batch import TupleBatch
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple

__all__ = ["Project"]


class Project(UnaryOperator):
    """Keep only the named attributes; prune attribute-only sps."""

    def __init__(self, attributes: Iterable[str], *,
                 keep_tid: bool = True, name: str | None = None):
        super().__init__(name)
        self.attributes = tuple(attributes)
        if not self.attributes:
            raise PlanError("projection requires at least one attribute")
        #: Whether the tuple identifier is among the retained columns
        #: conceptually — Rule 2's project/SS commuting cares about it.
        self.keep_tid = keep_tid
        self.sps_discarded = 0
        self.deny_markers = 0
        #: Open sp-batch accounting: (ts, seen, survived) or None.
        self._open_batch: tuple[float, int, int] | None = None

    def _close_batch(self) -> list[StreamElement]:
        """Emit a denial marker if the closing batch was fully pruned."""
        open_batch = self._open_batch
        self._open_batch = None
        if open_batch is None:
            return []
        ts, seen, survived = open_batch
        if seen and not survived:
            self.deny_markers += 1
            return [deny_all_sp(ts)]
        return []

    def _process(self, element: StreamElement,
                 port: int) -> list[StreamElement]:
        if isinstance(element, SecurityPunctuation):
            out: list[StreamElement] = []
            if (self._open_batch is not None
                    and element.ts != self._open_batch[0]):
                out = self._close_batch()
            if self._open_batch is None:
                self._open_batch = (element.ts, 0, 0)
            ts, seen, survived = self._open_batch
            if self._sp_survives(element):
                self._open_batch = (ts, seen + 1, survived + 1)
                out.append(element)
            else:
                self._open_batch = (ts, seen + 1, survived)
                self.sps_discarded += 1
            return out
        assert isinstance(element, DataTuple)
        out = self._close_batch()
        out.append(element.project(self.attributes))
        return out

    def _process_batch(self, batch: TupleBatch,
                       port: int) -> list[StreamElement]:
        """Batch fast path: project the whole run in one comprehension."""
        attributes = self.attributes
        marker = self._close_batch()
        projected: StreamElement = TupleBatch(
            [item.project(attributes) for item in batch.tuples])
        if marker:
            return marker + [projected]
        return [projected]

    def _sp_survives(self, sp: SecurityPunctuation) -> bool:
        """False iff the sp describes only projected-away attributes."""
        pattern = sp.ddp.attribute
        if pattern.is_wildcard():
            return True
        return any(pattern.matches(attr) for attr in self.attributes)
