"""Sp-aware projection (π).

Table I: ``(t, Pt) ∈ πa1..an(T) iff t consists of ai and Pt ≠ ∅``.

Projection discards unwanted attributes on the fly and propagates the
streaming sps ahead of the projected tuples.  An sp whose DDP describes
a policy *only* for projected-away attributes protects nothing that
survives, so it is discarded from the stream as well.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.punctuation import SecurityPunctuation
from repro.errors import PlanError
from repro.operators.base import UnaryOperator
from repro.stream.batch import TupleBatch
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple

__all__ = ["Project"]


class Project(UnaryOperator):
    """Keep only the named attributes; prune attribute-only sps."""

    def __init__(self, attributes: Iterable[str], *,
                 keep_tid: bool = True, name: str | None = None):
        super().__init__(name)
        self.attributes = tuple(attributes)
        if not self.attributes:
            raise PlanError("projection requires at least one attribute")
        #: Whether the tuple identifier is among the retained columns
        #: conceptually — Rule 2's project/SS commuting cares about it.
        self.keep_tid = keep_tid
        self.sps_discarded = 0

    def _process(self, element: StreamElement,
                 port: int) -> list[StreamElement]:
        if isinstance(element, SecurityPunctuation):
            if self._sp_survives(element):
                return [element]
            self.sps_discarded += 1
            return []
        assert isinstance(element, DataTuple)
        return [element.project(self.attributes)]

    def _process_batch(self, batch: TupleBatch,
                       port: int) -> list[StreamElement]:
        """Batch fast path: project the whole run in one comprehension."""
        attributes = self.attributes
        return [TupleBatch([item.project(attributes)
                            for item in batch.tuples])]

    def _sp_survives(self, sp: SecurityPunctuation) -> bool:
        """False iff the sp describes only projected-away attributes."""
        pattern = sp.ddp.attribute
        if pattern.is_wildcard():
            return True
        return any(pattern.matches(attr) for attr in self.attributes)
