"""The Security Shield (SS, ψ) operator.

Table I: ``(t, Pt) ∈ ψp(T) iff Pt ∩ p ≠ ∅`` — a tuple passes the
shield iff its access-control policy (carried by the streaming sps)
shares at least one role with the security predicate ``p`` (the roles
of the queries downstream).  Tuples whose policy does not satisfy the
predicate are discarded together with their sps, preventing
unauthorized access; sps of passing segments are propagated unchanged.

Physically (Section V.A) the SS is a *stateful filter*: its state holds
the security predicates of the upstream operators/queries, plus the
currently buffered policy.  A newly arriving sp either extends the
buffered policy (same timestamp — sp-batch) or replaces it (newer
timestamp).  Once an sp-batch has been evaluated against the predicate,
the pass/discard decision applies to every following tuple of the
segment — the reason SS overhead shrinks as more tuples share an sp
(Figure 8a).

The ``indexed`` flag selects between a hash-set predicate membership
test (the "predicate index on the roles in the SS state", cf. the
grouped filter of CACQ/PSoup) and a deliberately naive linear scan of
the role list, used as the unindexed baseline in the Figure 8b
benchmark.
"""

from __future__ import annotations

import time
from typing import Iterable

from repro.core.bitmap import AbstractRoleSet, RoleSet
from repro.core.policy import TuplePolicy
from repro.core.punctuation import SecurityPunctuation
from repro.operators.base import PolicyTracker, UnaryOperator
from repro.stream.batch import TupleBatch
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple

__all__ = ["SecurityShield"]

#: Sentinel for the not-yet-computed sp-description cache.
_UNSET = object()

#: Interned provenance event names (record() takes the full name so
#: the per-verdict hot path never concatenates).
_REC_PASS = "provenance.shield.pass"
_REC_DROP = "provenance.shield.drop"


class SecurityShield(UnaryOperator):
    """Access-control filter driven by streaming security punctuations."""

    #: Per-tuple ``shield.drop`` events interleave with passed tuples
    #: in non-uniform segments; with an audit log attached the
    #: executor therefore unbatches (the per-element path already
    #: amortizes the segment decision, so nothing is lost).
    audit_batch_safe = False

    def __init__(self, roles: Iterable[str] | AbstractRoleSet,
                 stream_id: str = "*", *, indexed: bool = True,
                 conjuncts: Iterable[AbstractRoleSet] | None = None,
                 name: str | None = None):
        super().__init__(name)
        if not isinstance(roles, AbstractRoleSet):
            roles = RoleSet(roles)
        if conjuncts is None:
            conjuncts = (roles,)
        else:
            conjuncts = tuple(
                c if isinstance(c, AbstractRoleSet) else RoleSet(c)
                for c in conjuncts
            ) or (roles,)
        #: The security predicate: a conjunction of role sets
        #: (ψ_{p1∧..∧pn}); a tuple passes iff its policy intersects
        #: every conjunct.  A single conjunct is the common case.
        self.conjuncts: tuple[AbstractRoleSet, ...] = tuple(conjuncts)
        #: Union of all conjunct roles — the SS *state* whose size the
        #: Figure 8b experiment varies.
        self.predicate = self.conjuncts[0]
        for extra in self.conjuncts[1:]:
            self.predicate = self.predicate.union(extra)
        self._predicate_list = sorted(self.predicate.names())
        #: Per-conjunct sorted role lists for the unindexed scan,
        #: precomputed so the per-tuple path never re-sorts.
        self._conjunct_scans = tuple(
            sorted(c.names()) for c in self.conjuncts)
        self.indexed = indexed
        self.tracker = PolicyTracker(stream_id)
        #: Memoized per-role-set verdicts for non-uniform segments:
        #: ``roles -> (verdict, comparisons_delta)``.  ``_permits`` is
        #: deterministic given (roles, conjuncts, indexed), so replaying
        #: the recorded comparison delta keeps the scan-cost accounting
        #: bit-identical to an uncached evaluation.  Cleared on rebind.
        self._permits_memo: dict[AbstractRoleSet, tuple[bool, int]] = {}
        #: Decision for the current uniform segment (None = per-tuple).
        self._segment_decision: bool | None = None
        self._decision_stale = True
        #: Sps held back until the first passing tuple of their segment.
        self._held_sps: list[SecurityPunctuation] = []
        #: Tuples discarded by the shield (the security selectivity).
        self.tuples_blocked = 0
        self.sps_blocked = 0
        # -- metrics children (None until bind_metrics; every hot-path
        # recording site is guarded by one attribute check) ------------
        self._instruments = None
        self._m_pass = None
        self._m_drop = None
        self._m_prop = None
        self._m_seg = None
        self._m_denial = None
        #: Wall clock of the first sp of the pending batch (policy
        #: propagation lag start point).
        self._sp_wall: float | None = None
        #: Tuples seen since the last segment boundary (segment size).
        self._segment_tuples = 0
        #: Whether the current segment runs under denial-by-default.
        self._segment_denial = False
        #: Cached sp-batch description for provenance/audit records,
        #: invalidated on sp arrival (one ``to_text`` render per
        #: segment instead of per dropped tuple).
        self._sp_text: object = _UNSET
        #: Cached segment-constant provenance attrs (policy, sp,
        #: predicate) — valid only while the tracker is uniform, and
        #: invalidated with :attr:`_sp_text`.  Kept drop records are
        #: emitted on *every* trace, so their cost must not include
        #: re-sorting role names per record.
        self._prov_base: dict | None = None

    # -- metrics wiring -----------------------------------------------------
    def bind_metrics(self, instruments) -> None:
        """Bind shield telemetry: verdict counters keyed by the role
        predicate, propagation-lag and segment-size histograms."""
        super().bind_metrics(instruments)
        self._instruments = instruments
        query = self.audit_query or ""
        roles = ",".join(self._predicate_list)
        self._m_pass = instruments.shield_tuples.labels(
            self.name, query, roles, "pass")
        self._m_drop = instruments.shield_tuples.labels(
            self.name, query, roles, "drop")
        self._m_prop = instruments.propagation.labels(self.name, query)
        self._m_seg = instruments.segment_size.labels(self.name)
        self._m_denial = instruments.denial_drops.labels(self.name, query)

    # -- predicate management (used by SS split/merge rewrites) -------------
    def rebind(self, roles: Iterable[str] | AbstractRoleSet) -> None:
        """Rewrite the security predicate at runtime (role re-binding).

        The paper's future-work item of runtime role changes:
        :meth:`~repro.engine.dsms.DSMS.update_query_roles` calls this
        on every live shield of a query.  The whole conjunction is
        replaced by the single new role set; the change takes effect
        for the very next processed element (the buffered segment
        decision is invalidated).  When an audit log is attached, the
        switch is recorded as a ``shield.rebind`` event.
        """
        old_predicate = tuple(self._predicate_list)
        if not isinstance(roles, AbstractRoleSet):
            roles = RoleSet(roles)
        self.predicate = roles
        self.conjuncts = (roles,)
        self._predicate_list = sorted(roles.names())
        self._conjunct_scans = (self._predicate_list,)
        self._decision_stale = True
        self._prov_base = None
        self._permits_memo.clear()
        if self._instruments is not None:
            # The roles label changed: re-point the verdict counters at
            # the new predicate's series.
            self.bind_metrics(self._instruments)
        if self.audit is not None:
            sps = self.tracker.current_sps()
            self.audit.record(
                "shield.rebind",
                ts=sps[-1].ts if sps else 0.0,
                operator=self.name, query=self.audit_query,
                predicate=tuple(self._predicate_list),
                previous=list(old_predicate),
            )

    def split(self, n_first: int = 1) -> tuple["SecurityShield",
                                               "SecurityShield"]:
        """Rule 1: split the conjunction into two stacked shields.

        ``ψ_{p1∧..∧pn}(T) ≡ ψ_{p1..pk}(ψ_{pk+1..pn}(T))`` — the first
        returned shield carries the first ``n_first`` conjuncts, the
        second the rest.  Requires at least two conjuncts.
        """
        if not 0 < n_first < len(self.conjuncts):
            raise ValueError(
                f"cannot split {len(self.conjuncts)} conjunct(s) at "
                f"{n_first}"
            )
        first = SecurityShield(self.conjuncts[0], self.tracker.stream_id,
                               indexed=self.indexed,
                               conjuncts=self.conjuncts[:n_first],
                               name=f"{self.name}[0:{n_first}]")
        second = SecurityShield(self.conjuncts[n_first],
                                self.tracker.stream_id,
                                indexed=self.indexed,
                                conjuncts=self.conjuncts[n_first:],
                                name=f"{self.name}[{n_first}:]")
        return first, second

    @classmethod
    def merged(cls, shields: Iterable["SecurityShield"],
               name: str | None = None) -> "SecurityShield":
        """Rule 1 (reverse): one SS carrying all conjuncts of the inputs."""
        shields = list(shields)
        conjuncts: list[AbstractRoleSet] = []
        stream_id = "*"
        indexed = True
        for shield in shields:
            conjuncts.extend(shield.conjuncts)
            stream_id = shield.tracker.stream_id
            indexed = indexed and shield.indexed
        return cls(conjuncts[0], stream_id, indexed=indexed,
                   conjuncts=conjuncts, name=name)

    # -- the predicate check ---------------------------------------------------
    def _permits(self, policy: TuplePolicy) -> bool:
        """``∀i: Pt ∩ pi ≠ ∅``, with or without the predicate index.

        Cost model (Section VI.A): each sp must scan the SS state, so
        the unindexed check walks the full role list; the indexed check
        probes hash sets per policy role.
        """
        stats = self.stats
        if self.indexed:
            for conjunct in self.conjuncts:
                # One hash probe per policy role, per conjunct probed
                # (short-circuit: a failed conjunct ends the check).
                stats.comparisons += len(policy.roles)
                if not policy.permits_any(conjunct):
                    return False
            return True
        passing = True
        roles = policy.roles
        for scan_list in self._conjunct_scans:
            hit = False
            for role in scan_list:
                stats.comparisons += 1
                if role in roles:
                    hit = True
                    # No break: the naive variant models a full scan.
            passing = passing and hit
        return passing

    def _permits_cached(self, policy: TuplePolicy) -> bool:
        """Memoized :meth:`_permits` keyed by the policy's role set.

        Non-uniform segments repeat a handful of distinct role sets
        across many tuples; the verdict *and* its comparison count are
        replayed from the memo so stats stay identical to evaluating
        every tuple from scratch.
        """
        memo = self._permits_memo
        cached = memo.get(policy.roles)
        if cached is not None:
            verdict, delta = cached
            self.stats.comparisons += delta
            return verdict
        before = self.stats.comparisons
        verdict = self._permits(policy)
        memo[policy.roles] = (verdict, self.stats.comparisons - before)
        return verdict

    # -- element processing -------------------------------------------------
    def _process(self, element: StreamElement,
                 port: int) -> list[StreamElement]:
        if isinstance(element, SecurityPunctuation):
            self.tracker.observe_sp(element)
            self._decision_stale = True
            self._sp_text = _UNSET
            self._prov_base = None
            if self._m_prop is not None:
                self._observe_segment_boundary()
            return []
        if self._m_seg is not None:
            self._segment_tuples += 1
        return self._process_tuple(element)

    def _observe_segment_boundary(self) -> None:
        """Metrics at an sp arrival: close the previous segment's size
        observation and start the propagation-lag clock."""
        if self._sp_wall is None:
            # First sp of the pending batch: lag runs from here to the
            # first enforcement decision taken under the new policy.
            self._sp_wall = time.perf_counter()
        if self._segment_tuples:
            self._m_seg.observe(self._segment_tuples)
            self._segment_tuples = 0

    def _process_tuple(self, item: DataTuple) -> list[StreamElement]:
        if self._decision_stale:
            self._refresh_decision(item)
        if self._segment_decision is None:
            # Non-uniform policy: decide per tuple.
            policy = self.tracker.policy_for(item)
            passing = self._permits(policy)
        else:
            passing = self._segment_decision
        tracer = self._tracer
        if not passing:
            self.tuples_blocked += 1
            if self._m_drop is not None:
                self._m_drop.inc()
                if self._segment_denial:
                    self._m_denial.inc()
            if tracer is not None:
                self._prov_tuple(item, False)
            if self.audit is not None:
                self._audit_drop(item)
            return []
        if self._m_pass is not None:
            self._m_pass.inc()
        if tracer is not None and tracer.active:
            self._prov_tuple(item, True)
        out: list[StreamElement] = []
        if self._held_sps:
            out.extend(self._held_sps)
            self._held_sps = []
        out.append(item)
        return out

    def _process_batch(self, batch: TupleBatch,
                       port: int) -> list[StreamElement]:
        """Segment fast path: one pass/drop decision for the whole run.

        A :class:`TupleBatch` never crosses an sp, so all its tuples
        fall under one policy state; for a uniform segment the cached
        sp-batch verdict covers the entire run in O(1) — the paper's
        Figure 8a amortization, vectorized.  Non-uniform segments keep
        the per-tuple decision loop.
        """
        tuples = batch.tuples
        if self._m_seg is not None:
            self._segment_tuples += len(tuples)
        if self._decision_stale:
            self._refresh_decision(tuples[0])
        decision = self._segment_decision
        if decision is None:
            # Non-uniform policy: decide per tuple — but with the
            # staleness check, policy lookup plumbing and verdict
            # memoization hoisted out of the loop (an sp can never
            # arrive mid-batch, so the segment state is fixed here).
            out: list[StreamElement] = []
            policy_for = self.tracker.policy_for
            permits = self._permits_cached
            m_pass, m_drop = self._m_pass, self._m_drop
            audit = self.audit
            tracer = self._tracer
            traced = tracer is not None and tracer.active
            blocked = 0
            for item in tuples:
                if permits(policy_for(item)):
                    if m_pass is not None:
                        m_pass.inc()
                    if traced:
                        self._prov_tuple(item, True)
                    if self._held_sps:
                        out.extend(self._held_sps)
                        self._held_sps = []
                    out.append(item)
                else:
                    blocked += 1
                    if m_drop is not None:
                        m_drop.inc()
                        if self._segment_denial:
                            self._m_denial.inc()
                    if tracer is not None:
                        self._prov_tuple(item, False)
                    if audit is not None:
                        self._audit_drop(item)
            self.tuples_blocked += blocked
            return out
        tracer = self._tracer
        if not decision:
            self.tuples_blocked += len(tuples)
            if self._m_drop is not None:
                self._m_drop.inc(len(tuples))
                if self._segment_denial:
                    self._m_denial.inc(len(tuples))
            if tracer is not None:
                self._prov_run(tuples, False)
            if self.audit is not None:
                for item in tuples:
                    self._audit_drop(item)
            return []
        if self._m_pass is not None:
            self._m_pass.inc(len(tuples))
        if tracer is not None and tracer.active:
            self._prov_run(tuples, True)
        out = []
        if self._held_sps:
            out.extend(self._held_sps)
            self._held_sps = []
        out.append(batch)
        return out

    def _refresh_decision(self, item: DataTuple) -> None:
        """Evaluate a newly finalized sp-batch against the predicate."""
        # Sps of the previous segment still held (no passing tuple ever
        # arrived) are now definitively discarded with their segment.
        self.sps_blocked += len(self._held_sps)
        self._held_sps = []
        pending = self.tracker.take_pending_sps()
        policy = self.tracker.policy_for(item)
        if self.tracker.is_uniform:
            self._segment_decision = self._permits(policy)
            if self._segment_decision:
                self._held_sps = pending
            else:
                self.sps_blocked += len(pending)
        else:
            # Non-uniform policy: decide per tuple; the segment's sps
            # are released with the first tuple that passes.
            self._segment_decision = None
            self._held_sps = pending
        self._decision_stale = False
        tracer = self._tracer
        if self._m_prop is not None:
            self._segment_denial = not self.tracker.current_sps()
            if self._sp_wall is not None:
                # First enforcement decision under the new policy: the
                # paper's "speed of enforcement", measured.
                lag = time.perf_counter() - self._sp_wall
                self._m_prop.observe(lag)
                if tracer is not None and tracer.active:
                    self._m_prop.exemplar(lag, tracer.trace_id)
                self._sp_wall = None
        if tracer is not None and tracer.active:
            self._prov_segment(item, policy)
        if self.audit is not None:
            self._audit_segment(item, policy)

    # -- provenance recording -----------------------------------------------
    def _sp_description(self) -> str | None:
        """Cached :meth:`_describe_sps` (recomputed once per segment)."""
        text = self._sp_text
        if text is _UNSET:
            text = self._sp_text = self._describe_sps()
        return text  # type: ignore[return-value]

    def _prov_attrs(self, item: DataTuple) -> dict:
        """Prototype attrs for a verdict record (callers copy + patch).

        Holds everything constant across a segment's verdicts:
        operator, query, predicate, resolved policy roles and the
        governing-sp text.  Under a uniform policy it is cached until
        the next sp (one sorted role-name render and one sp
        ``to_text`` per segment, shared by every record); non-uniform
        trackers resolve the policy per tuple.  Uniformity is read off
        the buffered segment decision (``None`` means per-tuple) —
        cheaper than the tracker property, and always current here
        since every caller runs after :meth:`_refresh_decision`.
        """
        if self._segment_decision is not None:
            base = self._prov_base
            if base is not None:
                return base
        sp = self._sp_description()
        base = {
            "operator": self.name,
            "predicate": self._predicate_list,
            "policy": self.tracker.policy_for(item).roles.names_sorted(),
            "sp": sp, "denial_by_default": sp is None,
        }
        if self.audit_query is not None:
            base["query"] = self.audit_query
        if self._segment_decision is not None:
            self._prov_base = base
        return base

    def _prov_tuple(self, item: DataTuple, passing: bool) -> None:
        """Provenance record for one per-tuple verdict.

        Drops are emitted with the tail-based keep override (they
        survive head sampling); passes only while the trace is
        sampled — call sites gate on ``tracer.active`` for those.
        """
        attrs = self._prov_attrs(item).copy()
        attrs["verdict"] = "pass" if passing else "drop"
        attrs["sid"] = item.sid
        attrs["tid"] = item.tid
        attrs["ts"] = item.ts
        self._tracer.record(_REC_PASS if passing else _REC_DROP, attrs,
                            keep=not passing)

    def _prov_run(self, tuples: list, passing: bool) -> None:
        """Provenance record for a whole-run uniform verdict.

        One record names every tuple of the run (``tids``) — the
        batched counterpart of :meth:`_prov_tuple`, same governing
        sp/policy for the entire segment run by construction.  Built
        as one dict display: in batched mode a segment usually emits
        exactly one run record, so the prototype cache of
        :meth:`_prov_attrs` never amortizes here.  The run itself is
        stored under the lazy ``_run`` key — drop records run on every
        trace, so the per-tuple id list is only rendered when the
        record is read (``SpanEvent.to_dict``, ``reconstruct_why``),
        not on the enforcement path.
        """
        first = tuples[0]
        sp = self._sp_description()
        attrs = {
            "operator": self.name,
            "predicate": self._predicate_list,
            "policy": self.tracker.policy_for(first).roles.names_sorted(),
            "sp": sp,
            "denial_by_default": sp is None,
            "verdict": "pass" if passing else "drop",
            "sid": first.sid,
            "ts": first.ts,
            "_run": tuples,
        }
        if self.audit_query is not None:
            attrs["query"] = self.audit_query
        self._tracer.record(_REC_PASS if passing else _REC_DROP, attrs,
                            keep=not passing)

    def _prov_segment(self, item: DataTuple, policy) -> None:
        """Segment-boundary provenance (sampled traces only)."""
        if self._segment_decision is None:
            verdict = "per-tuple"
        else:
            verdict = "pass" if self._segment_decision else "drop"
        self._tracer.decision(
            "shield.segment", operator=self.name, verdict=verdict,
            query=self.audit_query,
            predicate=list(self._predicate_list),
            policy=policy.roles.names_sorted(),
            sp=self._sp_description(),
        )

    # -- audit recording ----------------------------------------------------
    def _describe_sps(self) -> str | None:
        sps = self.tracker.current_sps()
        if not sps:
            return None
        return " | ".join(sp.to_text() for sp in sps)

    def _audit_segment(self, item: DataTuple, policy: TuplePolicy) -> None:
        """One ``shield.segment`` event per evaluated sp-batch."""
        if self._segment_decision is None:
            verdict = "per-tuple"
        else:
            verdict = "pass" if self._segment_decision else "drop"
        self.audit.record(
            "shield.segment", ts=item.ts, operator=self.name,
            query=self.audit_query,
            predicate=tuple(self._predicate_list),
            policy=tuple(sorted(policy.roles.names())),
            sp=self._sp_description(), verdict=verdict,
        )

    def _audit_drop(self, item: DataTuple) -> None:
        """Exactly one ``shield.drop`` event per denied tuple."""
        policy = self.tracker.policy_for(item)
        self.audit.record(
            "shield.drop", ts=item.ts, operator=self.name,
            query=self.audit_query, sid=item.sid, tid=item.tid,
            predicate=tuple(self._predicate_list),
            policy=tuple(sorted(policy.roles.names())),
            sp=self._sp_description(),
        )

    def flush(self) -> list[StreamElement]:
        """End of stream: the trailing segment's size is now known."""
        if self._m_seg is not None and self._segment_tuples:
            self._m_seg.observe(self._segment_tuples)
            self._segment_tuples = 0
        return []

    def state_size(self) -> int:
        return len(self.predicate)

    def drops(self) -> int:
        return self.tuples_blocked

    def __repr__(self) -> str:
        return (f"SecurityShield({sorted(self.predicate.names())}, "
                f"indexed={self.indexed})")
