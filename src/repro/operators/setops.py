"""Sp-aware set operations (union, intersection).

The paper omits security-aware set operations "to keep the presentation
concise"; they are included here for completeness of the algebra
(Rules 3-5 quantify over ∪ and ∩ as well).

**Union** merges two punctuated streams.  The subtlety is that each
input's sps only govern that input's tuples, while output sps govern
all following output tuples regardless of origin; the operator
therefore resolves policies per input and re-punctuates the output
whenever the effective policy changes.

**Intersection** is windowed and value-based: a value is emitted when
present in both windows, under the *intersection* of the base tuples'
policies (empty intersections are suppressed), mirroring the join
semantics of Table I.  Pair it with duplicate elimination for set
(rather than bag) semantics.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.policy import Policy, TuplePolicy
from repro.core.punctuation import SecurityPunctuation
from repro.errors import PlanError
from repro.operators.base import (BinaryOperator, PolicyTracker, SPEmitter)
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple
from repro.stream.window import PunctuatedWindow

__all__ = ["Union", "Intersect"]


class Union(BinaryOperator):
    """Bag union of two punctuated streams, re-punctuated on output."""

    def __init__(self, *, left_sid: str = "left", right_sid: str = "right",
                 name: str | None = None):
        super().__init__(name)
        self.trackers = (PolicyTracker(left_sid), PolicyTracker(right_sid))
        self.emitter = SPEmitter()

    def _process(self, element: StreamElement,
                 port: int) -> list[StreamElement]:
        tracker = self.trackers[port]
        if isinstance(element, SecurityPunctuation):
            tracker.observe_sp(element)
            return []
        assert isinstance(element, DataTuple)
        policy = tracker.policy_for(element)
        if policy.is_empty():
            return []
        out: list[StreamElement] = []
        self.emitter.emit(policy, element.ts, out)
        out.append(element)
        return out

    def _process_batch(self, batch, port: int) -> list[StreamElement]:
        """Batch path: resolve and re-punctuate the run in one loop."""
        tracker = self.trackers[port]
        emitter = self.emitter
        out: list[StreamElement] = []
        for item in batch.tuples:
            policy = tracker.policy_for(item)
            if policy.is_empty():
                continue
            emitter.emit(policy, item.ts, out)
            out.append(item)
        return out


class Intersect(BinaryOperator):
    """Windowed value intersection under policy intersection."""

    def __init__(self, attributes: Iterable[str], window: float, *,
                 left_sid: str = "left", right_sid: str = "right",
                 name: str | None = None):
        super().__init__(name)
        self.attributes = tuple(attributes)
        if not self.attributes:
            raise PlanError("Intersect requires at least one attribute")
        if window <= 0:
            raise PlanError("Intersect window must be positive")
        self.windows = (PunctuatedWindow(left_sid, window),
                        PunctuatedWindow(right_sid, window))
        self._batches: list[list[SecurityPunctuation]] = [[], []]
        self.emitter = SPEmitter()
        self.policy_rejects = 0

    def _key(self, item: DataTuple) -> tuple:
        return tuple(item.values.get(a) for a in self.attributes)

    def _open_segment(self, port: int) -> None:
        batch = self._batches[port]
        if batch:
            self.windows[port].open_segment(Policy(tuple(batch)), batch)
            self._batches[port] = []

    def _process(self, element: StreamElement,
                 port: int) -> list[StreamElement]:
        if isinstance(element, SecurityPunctuation):
            batch = self._batches[port]
            if batch and element.ts != batch[0].ts:
                self._open_segment(port)
            self._batches[port].append(element)
            return []
        assert isinstance(element, DataTuple)
        self._open_segment(port)
        opposite = 1 - port
        self.windows[opposite].invalidate(element.ts)
        window = self.windows[port]
        window.insert(element)
        segment = window.current_segment()
        policy = (segment.policy_for(element) if segment is not None
                  else None)
        if policy is None or policy.is_empty():
            return []
        key = self._key(element)
        out: list[StreamElement] = []
        for other, other_policy in self.windows[opposite].iter_entries():
            self.stats.comparisons += 1
            if self._key(other) != key:
                continue
            joined = policy.intersect(other_policy)
            if joined.is_empty():
                self.policy_rejects += 1
                continue
            self.emitter.emit(joined, element.ts, out)
            out.append(element.project(self.attributes))
        return out

    def state_size(self) -> int:
        return (self.windows[0].tuple_count()
                + self.windows[1].tuple_count())
