"""One-time predicate compilation for the columnar hot path.

The element-wise engine evaluates a :class:`~repro.operators.conditions.Condition`
by method dispatch per tuple (``Comparison.__call__`` → dict lookup →
operator call).  For a fused columnar chain that dispatch dominates; this
module lowers a condition **once per query** into a small pipeline of
*mask kernels*, each mapping a :class:`~repro.stream.columnar.ColumnBatch`
(plus the running row mask) to a new mask with one bulk list
comprehension — no per-tuple ``Condition`` dispatch.

Semantics are bit-for-bit those of the element-wise path:

* ``Comparison`` treats an absent attribute, a present ``None`` and a
  ``TypeError`` during comparison all as non-matches;
* impure conjuncts (``FuncCondition`` and anything else whose
  :meth:`~repro.operators.conditions.Condition.is_pure` is false) are
  kept as row-at-a-time calls evaluated **only on rows still alive in
  the mask**, preserving the call count and call order an element-wise
  ``And`` short-circuit would produce;
* pure kernels may evaluate a conjunct on rows a short-circuit would
  have skipped — unobservable by definition of purity.

:func:`compile_pattern` is the analogous lowering for punctuation
patterns — the paper's ``eval(N, e)`` vectorized over a whole column —
used by the fused shield's non-uniform policy resolver.
"""

from __future__ import annotations

import operator as _operator
from itertools import repeat as _repeat
from typing import Callable, cast

from repro.analysis.rewrites import Proof
from repro.core.patterns import (CompositePattern, LiteralPattern, Pattern,
                                 RangePattern, SetPattern, WildcardPattern)
from repro.operators.conditions import (And, Comparison, Condition,
                                        FuncCondition, Not, Or,
                                        TrueCondition)
from repro.stream.columnar import MISSING, ColumnBatch

__all__ = ["CompiledPredicate", "compile_condition", "compile_pattern",
           "VectorKernel", "PatternKernel"]

#: A compiled pure conjunct: one bulk pass over a batch's columns.
VectorKernel = Callable[[ColumnBatch], "list[object]"]

#: A compiled pattern: per-row match flags for one value column.
PatternKernel = Callable[["list[object]"], "list[bool]"]


def _comparison_kernel(cond: Comparison) -> VectorKernel:
    """Bulk form of ``Comparison.__call__`` over one or two columns."""
    fn = cond._fn
    attribute = cond.attribute
    if cond.rhs_attribute:
        rhs_key = cast(str, cond.value)

        def binary(cb: ColumnBatch) -> list[object]:
            left = cb.column(attribute)
            right = cb.column(rhs_key)
            try:
                # Optimistic bulk pass; ``and`` keeps raw fn results so
                # truthiness matches the element-wise evaluation.
                return [
                    lv is not MISSING and lv is not None
                    and rv is not MISSING and rv is not None and fn(lv, rv)
                    for lv, rv in zip(left, right)
                ]
            except TypeError:
                # Mixed-type rows: redo row-at-a-time with the
                # per-row TypeError→False rule.  Pure comparisons are
                # side-effect free, so re-evaluating rows is safe.
                out: list[object] = []
                for lv, rv in zip(left, right):
                    if (lv is MISSING or lv is None
                            or rv is MISSING or rv is None):
                        out.append(False)
                        continue
                    try:
                        out.append(fn(lv, rv))
                    except TypeError:
                        out.append(False)
                return out

        return binary

    rhs = cond.value
    if rhs is None:
        # ``x <op> None`` never matches (the element-wise None rule).
        return lambda cb: [False] * len(cb)

    # C-level bulk evaluation is only sound for operators where a
    # MISSING/None row either raises TypeError (the orderings) or
    # already yields False (``==``); ``!=`` would wrongly return True
    # for such rows, so it stays on the guarded comprehension.
    bulk_safe = fn is not _operator.ne

    def unary(cb: ColumnBatch) -> list[object]:
        left = cb.column(attribute)
        if bulk_safe:
            try:
                # Fastest path: a clean column (no MISSING/None rows)
                # evaluates entirely inside C — one ``map`` over the
                # operator function, no per-row bytecode.  A dirty row
                # raises TypeError against a concrete rhs and falls
                # through to the guarded comprehension.
                return list(map(fn, left, _repeat(rhs)))
            except TypeError:
                pass
        try:
            return [lv is not MISSING and lv is not None and fn(lv, rhs)
                    for lv in left]
        except TypeError:
            out: list[object] = []
            for lv in left:
                if lv is MISSING or lv is None:
                    out.append(False)
                    continue
                try:
                    out.append(fn(lv, rhs))
                except TypeError:
                    out.append(False)
            return out

    return unary


def _vector(cond: Condition) -> VectorKernel | None:
    """Lower a *pure* condition to a bulk kernel (None if unsupported)."""
    if isinstance(cond, TrueCondition):
        return lambda cb: [True] * len(cb)
    if isinstance(cond, Comparison):
        return _comparison_kernel(cond)
    if isinstance(cond, (And, Or)):
        kernels = [_vector(part) for part in cond.parts]
        if any(k is None for k in kernels):
            return None
        parts = cast("list[VectorKernel]", kernels)
        if isinstance(cond, And):

            def conj(cb: ColumnBatch) -> list[object]:
                mask = parts[0](cb)
                for kernel in parts[1:]:
                    other = kernel(cb)
                    mask = [m and v for m, v in zip(mask, other)]
                return mask

            return conj

        def disj(cb: ColumnBatch) -> list[object]:
            mask = parts[0](cb)
            for kernel in parts[1:]:
                other = kernel(cb)
                mask = [m or v for m, v in zip(mask, other)]
            return mask

        return disj
    if isinstance(cond, Not):
        inner = _vector(cond.inner)
        if inner is None:
            return None
        inner_kernel = inner
        return lambda cb: [not v for v in inner_kernel(cb)]
    if isinstance(cond, FuncCondition):
        # A UDF may join the bulk tier only on the effect analyzer's
        # proofs: purity + determinism (extra evaluations are
        # unobservable) *and* totality (bulk evaluation reaches rows
        # an element-wise short-circuit would skip, so the callable
        # must be provably non-raising on arbitrary rows).  UNKNOWN
        # fails closed to a row stage.
        if cond.is_pure() and cond.effects.totality is Proof.PROVEN:
            return _udf_kernel(cond)
        return None
    return None


def _udf_kernel(cond: FuncCondition) -> VectorKernel:
    """One fused pass of a proven UDF over a batch (no ``Condition``
    dispatch, no mask bookkeeping between conjuncts)."""
    fn = cond.fn
    return lambda cb: [bool(fn(item)) for item in cb.tuples]


class CompiledPredicate:
    """A condition lowered to a pipeline of mask stages.

    Stages correspond one-to-one to the condition's top-level
    conjuncts, in order.  Each stage is either a :data:`VectorKernel`
    (pure — evaluated in bulk and ANDed into the mask) or the original
    ``Condition`` (opaque — called per row still alive in the mask,
    mirroring the element-wise ``And`` short-circuit exactly).
    """

    __slots__ = ("condition", "_vector_stages", "_row_stages")

    def __init__(self, condition: Condition):
        self.condition = condition
        vector_stages: list[VectorKernel] = []
        row_stages: list[Condition] = []
        conjuncts = condition.conjuncts()
        for conjunct in conjuncts:
            kernel = _vector(conjunct) if conjunct.is_pure() else None
            if (kernel is None and len(conjuncts) == 1
                    and isinstance(conjunct, FuncCondition)
                    and conjunct.is_pure()):
                # Sole-conjunct escape: with no other conjunct there is
                # no short-circuit, so bulk evaluation touches exactly
                # the rows element-wise evaluation would — in the same
                # order — and an exception surfaces from the same row.
                # Proven purity + determinism alone suffice; no
                # totality proof needed.
                kernel = _udf_kernel(conjunct)
            if kernel is not None:
                vector_stages.append(kernel)
            else:
                row_stages.append(conjunct)
        self._vector_stages = tuple(vector_stages)
        self._row_stages = tuple(row_stages)

    @property
    def fully_vectorized(self) -> bool:
        """Whether no opaque per-row stage remains."""
        return not self._row_stages

    def mask(self, cb: ColumnBatch) -> list[object]:
        """Per-row pass flags for the whole batch (truthy = keep)."""
        mask: list[object] | None = None
        for kernel in self._vector_stages:
            stage = kernel(cb)
            mask = stage if mask is None else (
                [m and v for m, v in zip(mask, stage)])
        for cond in self._row_stages:
            # Opaque conjuncts run only on surviving rows, in row
            # order — identical call counts/order to element-wise.
            if mask is None:
                mask = [cond(item) for item in cb.tuples]
            else:
                mask = [m and cond(item)
                        for m, item in zip(mask, cb.tuples)]
        if mask is None:
            return [True] * len(cb)
        return mask

    def __repr__(self) -> str:
        return (f"CompiledPredicate({self.condition!r}, "
                f"vector={len(self._vector_stages)}, "
                f"row={len(self._row_stages)})")


def compile_condition(condition: Condition) -> CompiledPredicate:
    """Lower ``condition`` into a :class:`CompiledPredicate` (once per
    query — the result is reusable across every batch)."""
    return CompiledPredicate(condition)


def compile_pattern(pattern: Pattern) -> PatternKernel:
    """Lower a punctuation pattern to a bulk column matcher.

    The vectorized ``eval(N, e)``: given a value column, return per-row
    match flags.  Literal and set patterns inline their
    string-insensitive membership test; other shapes bind
    ``pattern.matches`` once and map it, which still removes the
    per-row attribute lookup and method dispatch.
    """
    if isinstance(pattern, WildcardPattern):
        return lambda column: [True] * len(column)
    if isinstance(pattern, LiteralPattern):
        value = pattern.value
        text = pattern.spec()
        return lambda column: [v == value or str(v) == text
                               for v in column]
    if isinstance(pattern, SetPattern):
        values = pattern.values
        texts = frozenset(str(v) for v in values)
        return lambda column: [v in values or str(v) in texts
                               for v in column]
    if isinstance(pattern, (RangePattern, CompositePattern)):
        matches = pattern.matches
        return lambda column: [matches(v) for v in column]
    matches = pattern.matches
    return lambda column: [matches(v) for v in column]
