"""Sp-aware selection (σ).

Table I: ``(t, Pt) ∈ σc(T) iff t satisfies c and Pt ≠ ∅``.

A select operator drops tuples that fail the condition and *delays* sp
propagation until at least one tuple covered by the sp's policy
satisfies the condition; if every tuple of a policy is filtered out,
the policy's sps are discarded as well (there is nothing downstream for
them to protect).
"""

from __future__ import annotations

from repro.core.punctuation import SecurityPunctuation
from repro.operators.base import UnaryOperator
from repro.operators.conditions import Condition, FuncCondition
from repro.stream.batch import TupleBatch
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple

__all__ = ["Select"]


class Select(UnaryOperator):
    """Filter tuples by a condition, delaying sp propagation."""

    def __init__(self, condition: Condition, *, name: str | None = None):
        super().__init__(name)
        if callable(condition) and not isinstance(condition, Condition):
            # Bare callables get their read-set inferred by the UDF
            # effect analyzer; unverifiable ones warn at construction.
            condition = FuncCondition.wrap(condition)
        self.condition: Condition = condition
        #: Sps of the current segment not yet propagated.
        self._held_sps: list[SecurityPunctuation] = []
        #: Whether the previous element was a tuple (marks sp-batch /
        #: segment boundaries).
        self._after_tuple = False
        self.sps_discarded = 0
        self.tuples_dropped = 0

    def _process(self, element: StreamElement,
                 port: int) -> list[StreamElement]:
        if isinstance(element, SecurityPunctuation):
            if self._after_tuple and self._held_sps:
                # The previous segment ended without any passing tuple:
                # its sps are dropped.
                self.sps_discarded += len(self._held_sps)
                self._held_sps = []
            self._after_tuple = False
            self._held_sps.append(element)
            return []
        return self._process_tuple(element)

    def _process_tuple(self, item: DataTuple) -> list[StreamElement]:
        self._after_tuple = True
        self.stats.comparisons += 1
        if not self.condition(item):
            self.tuples_dropped += 1
            return []
        out: list[StreamElement] = []
        if self._held_sps:
            out.extend(self._held_sps)
            self._held_sps = []
        out.append(item)
        return out

    def _process_batch(self, batch: TupleBatch,
                       port: int) -> list[StreamElement]:
        """Batch fast path: filter the whole run in one comprehension."""
        self._after_tuple = True
        tuples = batch.tuples
        condition = self.condition
        self.stats.comparisons += len(tuples)
        passing = [item for item in tuples if condition(item)]
        self.tuples_dropped += len(tuples) - len(passing)
        if not passing:
            return []
        out: list[StreamElement] = []
        if self._held_sps:
            out.extend(self._held_sps)
            self._held_sps = []
        out.append(passing[0] if len(passing) == 1
                   else TupleBatch(passing))
        return out

    def flush(self) -> list[StreamElement]:
        self.sps_discarded += len(self._held_sps)
        self._held_sps = []
        return []
