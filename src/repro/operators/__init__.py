"""Security-aware physical operators (Tables I and the Section V algorithms)."""

from repro.operators.accessfilter import AccessFilter
from repro.operators.aggregates import (Aggregate, Avg, Count, Max, Min, Sum,
                                        make_aggregate)
from repro.operators.base import (BinaryOperator, Operator, OperatorStats,
                                  PolicyTracker, SPEmitter, UnaryOperator)
from repro.operators.conditions import (And, Comparison, Condition,
                                        FuncCondition, Not, Or, TrueCondition)
from repro.operators.dupelim import DuplicateElimination
from repro.operators.groupby import GroupBy
from repro.operators.index_join import IndexSAJoin
from repro.operators.join import NestedLoopSAJoin, SAJoinBase
from repro.operators.project import Project
from repro.operators.select import Select
from repro.operators.setops import Intersect, Union
from repro.operators.shield import SecurityShield
from repro.operators.sink import CollectingSink, CountingSink
from repro.operators.spindex import IndexEntry, SPIndex

__all__ = [
    "AccessFilter",
    "Aggregate",
    "And",
    "Avg",
    "BinaryOperator",
    "CollectingSink",
    "Comparison",
    "Condition",
    "Count",
    "CountingSink",
    "DuplicateElimination",
    "FuncCondition",
    "GroupBy",
    "IndexEntry",
    "IndexSAJoin",
    "Intersect",
    "Max",
    "Min",
    "NestedLoopSAJoin",
    "Not",
    "Operator",
    "OperatorStats",
    "Or",
    "PolicyTracker",
    "Project",
    "SAJoinBase",
    "SecurityShield",
    "Select",
    "SPEmitter",
    "SPIndex",
    "Sum",
    "TrueCondition",
    "UnaryOperator",
    "Union",
]
