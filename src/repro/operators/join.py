"""The Security-Aware Join (SAJoin), nested-loop variants (Section V.B).

SAJoin is a sliding-window equijoin over two punctuated streams.  Per
Table I, a join result is produced iff the join condition holds *and*
the base tuples' policies are compatible — their intersection is
non-empty; the result is emitted preceded by sp(s) depicting that
intersection.

The algorithm has three steps per arriving tuple (Section V.B.1):

1. **Policy collection** — arriving sps are stored in the sliding
   window, opening a new s-punctuated segment for the upcoming tuples.
2. **Invalidation** — the new tuple's timestamp expires tuples from the
   head of the *opposite* window; once every tuple of a segment is
   invalidated, its sps are purged too.
3. **Join** — the new tuple probes the opposite window.  Two orders:

   * *probe-and-filter (PF)*: test the join value first, then check
     policy compatibility of matching pairs;
   * *filter-and-probe (FP)*: use the tuple's policy to find the
     policy-wise compatible segments first, then probe only those
     tuples with the join value.

Cost accounting splits processing into join time, sp maintenance and
tuple maintenance, which is exactly the decomposition of Figure 9.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.core.policy import (Policy, TuplePolicy, apply_incremental_batch,
                               wildcard_policy_roles)
from repro.core.punctuation import SecurityPunctuation
from repro.errors import PlanError, PolicyError
from repro.operators.base import BinaryOperator, SPEmitter
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple
from repro.stream.window import PunctuatedWindow, Segment

__all__ = ["SAJoinBase", "NestedLoopSAJoin", "segment_index_roles"]


def segment_index_roles(segment: Segment) -> frozenset[str]:
    """Roles under which some tuple of the segment may be accessible.

    The union of roles of the segment's positive sps — a (tight for
    uniform segments, conservative otherwise) superset of what any
    tuple resolves to, so index probes may yield false positives that
    the per-pair policy check then rejects; correctness is never at
    risk and no join partner can be missed.
    """
    if segment.access is None:
        return frozenset()
    roles: set[str] = set()
    for sp in segment.sps:
        if sp.is_positive:
            concrete = sp.srp.concrete_roles()
            if concrete:
                roles |= concrete
    return frozenset(roles)


class SAJoinBase(BinaryOperator):
    """Shared machinery of the nested-loop and index SAJoins."""

    #: ``join.deny`` / ``join.policy_reject`` / ``join.skip`` events
    #: interleave with emitted results, so with an audit log attached
    #: the executor delivers element-wise.
    audit_batch_safe = False

    def __init__(self, left_on: str, right_on: str, window: float, *,
                 left_sid: str = "left", right_sid: str = "right",
                 output_sid: str = "joined",
                 predicate: Callable[[DataTuple, DataTuple], bool] | None = None,
                 name: str | None = None):
        super().__init__(name)
        self.on = (left_on, right_on)
        self.output_sid = output_sid
        self.predicate = predicate
        self.windows = (PunctuatedWindow(left_sid, window),
                        PunctuatedWindow(right_sid, window))
        self._batches: list[list[SecurityPunctuation]] = [[], []]
        self.emitter = SPEmitter()
        #: Figure 9 cost decomposition, in seconds.
        self.join_time = 0.0
        self.sp_maintenance_time = 0.0
        self.tuple_maintenance_time = 0.0
        self.results = 0
        self.pairs_checked = 0
        self.policy_rejects = 0

    # -- policy collection ---------------------------------------------------
    def _process(self, element: StreamElement,
                 port: int) -> list[StreamElement]:
        if isinstance(element, SecurityPunctuation):
            start = time.perf_counter()
            batch = self._batches[port]
            if batch and element.ts != batch[0].ts:
                self._open_segment(port)
            self._batches[port].append(element)
            self.sp_maintenance_time += time.perf_counter() - start
            return []
        return self._process_tuple(element, port)

    def _open_segment(self, port: int) -> Segment | None:
        batch = self._batches[port]
        if not batch:
            return None
        if any(sp.incremental for sp in batch):
            if not all(sp.incremental for sp in batch):
                raise PolicyError(
                    "an sp-batch must not mix incremental and "
                    "absolute sps")
            previous = self.windows[port].current_segment()
            current = wildcard_policy_roles(
                previous.access if previous is not None else None)
            if current is None:
                raise PolicyError(
                    "incremental sps require a segment-scoped "
                    "(wildcard-DDP) current policy")
            batch = apply_incremental_batch(current, batch)
        policy = Policy(tuple(batch))
        segment = self.windows[port].open_segment(policy, batch)
        self._batches[port] = []
        self.stats.state_ops += len(batch)
        self._segment_opened(segment, port)
        return segment

    def _segment_opened(self, segment: Segment, port: int) -> None:
        """Hook for the index variant (SPIndex insertion)."""

    def _segment_purged(self, segment: Segment, port: int) -> None:
        """Hook for the index variant (SPIndex entry removal)."""

    def _process_batch(self, batch, port: int) -> list[StreamElement]:
        """Batch path: open the run's segment once, then probe per tuple.

        A batch never contains sps, so the pending sp-batch (if any)
        is finalized exactly once up front; the per-tuple loop then
        skips dispatch overhead and probes the opposite window
        directly.  Window invalidation stays per tuple — expiry depends
        on each probing tuple's own timestamp.
        """
        start = time.perf_counter()
        self._open_segment(port)
        self.sp_maintenance_time += time.perf_counter() - start
        out: list[StreamElement] = []
        extend = out.extend
        process_tuple = self._process_tuple
        for item in batch.tuples:
            extend(process_tuple(item, port))
        return out

    # -- tuple arrival -----------------------------------------------------
    def _process_tuple(self, item: DataTuple, port: int) -> list[StreamElement]:
        opposite = 1 - port

        start = time.perf_counter()
        self._open_segment(port)
        self.sp_maintenance_time += time.perf_counter() - start

        # Invalidation of the opposite window.
        start = time.perf_counter()
        expired, purged = self.windows[opposite].invalidate(item.ts)
        self.stats.state_ops += expired
        self.tuple_maintenance_time += time.perf_counter() - start
        if purged:
            start = time.perf_counter()
            for segment in purged:
                self._segment_purged(segment, opposite)
            self.sp_maintenance_time += time.perf_counter() - start

        # Insertion into the own window.
        start = time.perf_counter()
        window = self.windows[port]
        segment = window.current_segment()
        window.insert(item)
        if segment is None:
            segment = window.current_segment()
        policy = segment.policy_for(item) if segment is not None else None
        self.tuple_maintenance_time += time.perf_counter() - start
        if policy is None or policy.is_empty():
            # Denial-by-default: a tuple nobody may access joins with
            # nothing (any intersection would be empty).
            if self.audit is not None:
                self.audit.record(
                    "join.deny", ts=item.ts, operator=self.name,
                    query=self.audit_query, sid=item.sid, tid=item.tid,
                )
            return []

        # Probe.
        start = time.perf_counter()
        out = self._probe(item, policy, port)
        self.join_time += time.perf_counter() - start
        return out

    def _probe(self, item: DataTuple, policy: TuplePolicy,
               port: int) -> list[StreamElement]:
        raise NotImplementedError

    # -- result emission ------------------------------------------------------
    def _values_match(self, left: DataTuple, right: DataTuple) -> bool:
        if left.values.get(self.on[0]) != right.values.get(self.on[1]):
            return False
        if self.predicate is not None and not self.predicate(left, right):
            return False
        return True

    def _emit(self, item: DataTuple, other: DataTuple,
              policy: TuplePolicy, other_policy: TuplePolicy, port: int,
              out: list[StreamElement]) -> None:
        joined_policy = policy.intersect(other_policy)
        if joined_policy.is_empty():
            self.policy_rejects += 1
            if self.audit is not None:
                # Lemma-level evidence: the pair matched on the join
                # value but the base policies share no role (Table I).
                self.audit.record(
                    "join.policy_reject", ts=item.ts, operator=self.name,
                    query=self.audit_query, sid=item.sid, tid=item.tid,
                    policy=tuple(sorted(policy.roles.names())),
                    other_sid=other.sid, other_tid=other.tid,
                    other_policy=sorted(other_policy.roles.names()),
                )
            return
        if port == 0:
            merged = item.merge(other, self.output_sid)
        else:
            merged = other.merge(item, self.output_sid)
        self.emitter.emit(joined_policy, merged.ts, out)
        out.append(merged)
        self.results += 1

    def state_size(self) -> int:
        return (self.windows[0].tuple_count() + self.windows[0].sp_count()
                + self.windows[1].tuple_count() + self.windows[1].sp_count())

    def drops(self) -> int:
        return self.policy_rejects

    def cost_breakdown(self) -> dict[str, float]:
        """Figure 9 decomposition (seconds)."""
        return {
            "join": self.join_time,
            "sp_maintenance": self.sp_maintenance_time,
            "tuple_maintenance": self.tuple_maintenance_time,
            "total": (self.join_time + self.sp_maintenance_time
                      + self.tuple_maintenance_time),
        }


class NestedLoopSAJoin(SAJoinBase):
    """Nested-loop SAJoin: scans the whole opposite window per tuple.

    ``method`` selects probe-and-filter (``"PF"``) or filter-and-probe
    (``"FP"``).
    """

    def __init__(self, left_on: str, right_on: str, window: float, *,
                 method: str = "PF", **kwargs):
        super().__init__(left_on, right_on, window, **kwargs)
        method = method.upper()
        if method not in ("PF", "FP"):
            raise PlanError(f"SAJoin method must be 'PF' or 'FP': {method!r}")
        self.method = method

    def _probe(self, item: DataTuple, policy: TuplePolicy,
               port: int) -> list[StreamElement]:
        out: list[StreamElement] = []
        opposite = self.windows[1 - port]
        if self.method == "PF":
            for other, other_policy in opposite.iter_entries():
                self.pairs_checked += 1
                self.stats.comparisons += 1
                if self._match(item, other, port):
                    self._emit(item, other, policy, other_policy, port, out)
        else:  # FP: policy first, join value second
            probe_roles = policy.roles
            for segment in opposite.iter_segments():
                if segment.uniform:
                    self.stats.comparisons += 1
                    seg_policy = (segment.policy_for(segment.tuples[0])
                                  if segment.tuples else None)
                    if seg_policy is None or \
                            not seg_policy.roles.intersects(probe_roles):
                        continue
                    for other in segment.tuples:
                        self.pairs_checked += 1
                        self.stats.comparisons += 1
                        if self._match(item, other, port):
                            self._emit(item, other, policy, seg_policy,
                                       port, out)
                else:
                    for other in segment.tuples:
                        other_policy = segment.policy_for(other)
                        self.stats.comparisons += 1
                        if not other_policy.roles.intersects(probe_roles):
                            continue
                        self.pairs_checked += 1
                        self.stats.comparisons += 1
                        if self._match(item, other, port):
                            self._emit(item, other, policy, other_policy,
                                       port, out)
        return out

    def _match(self, item: DataTuple, other: DataTuple, port: int) -> bool:
        if port == 0:
            return self._values_match(item, other)
        return self._values_match(other, item)
