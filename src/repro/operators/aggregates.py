"""Aggregate functions for the sp-aware group-by.

Aggregates maintain incremental state over a sliding window: values are
added on arrival and removed on expiry ("every tuple changes the value
of an aggregate twice, once when it arrives and once when it expires" —
Section VI.A).  SUM/COUNT/AVG are O(1) both ways; MIN/MAX fall back to
recomputation over the live values on removal, the standard approach
for non-invertible aggregates.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import PlanError

__all__ = ["Aggregate", "Count", "Sum", "Avg", "Min", "Max", "make_aggregate"]


class Aggregate:
    """Incremental aggregate over a multiset of numeric values."""

    name = "agg"

    def add(self, value: object) -> None:
        raise NotImplementedError

    def remove(self, value: object, live: Iterable[object]) -> None:
        """Remove one value; ``live`` iterates the remaining values."""
        raise NotImplementedError

    def result(self) -> object:
        raise NotImplementedError


class Count(Aggregate):
    name = "count"

    def __init__(self):
        self._count = 0

    def add(self, value: object) -> None:
        self._count += 1

    def remove(self, value: object, live: Iterable[object]) -> None:
        self._count -= 1

    def result(self) -> int:
        return self._count


class Sum(Aggregate):
    name = "sum"

    def __init__(self):
        self._sum = 0

    def add(self, value: object) -> None:
        self._sum += value  # type: ignore[operator]

    def remove(self, value: object, live: Iterable[object]) -> None:
        self._sum -= value  # type: ignore[operator]

    def result(self) -> object:
        return self._sum


class Avg(Aggregate):
    name = "avg"

    def __init__(self):
        self._sum = 0.0
        self._count = 0

    def add(self, value: object) -> None:
        self._sum += value  # type: ignore[operator]
        self._count += 1

    def remove(self, value: object, live: Iterable[object]) -> None:
        self._sum -= value  # type: ignore[operator]
        self._count -= 1

    def result(self) -> float | None:
        if self._count == 0:
            return None
        return self._sum / self._count


class _Extremum(Aggregate):
    """Shared MIN/MAX machinery: recompute on evicting the extremum."""

    _pick = staticmethod(min)

    def __init__(self):
        self._value: object | None = None

    def add(self, value: object) -> None:
        if self._value is None:
            self._value = value
        else:
            self._value = self._pick(self._value, value)

    def remove(self, value: object, live: Iterable[object]) -> None:
        if value == self._value:
            live = list(live)
            self._value = self._pick(live) if live else None

    def result(self) -> object | None:
        return self._value


class Min(_Extremum):
    name = "min"
    _pick = staticmethod(min)


class Max(_Extremum):
    name = "max"
    _pick = staticmethod(max)


_FACTORIES = {
    "count": Count,
    "sum": Sum,
    "avg": Avg,
    "min": Min,
    "max": Max,
}


def make_aggregate(name: str) -> Aggregate:
    """Instantiate an aggregate by name (count/sum/avg/min/max)."""
    try:
        return _FACTORIES[name.lower()]()
    except KeyError:
        raise PlanError(f"unknown aggregate: {name!r}") from None
