"""Operator protocol and shared sp-tracking machinery.

Execution model (paper Section IV): queries are plans of pipelined
operators.  Each operator consumes stream elements — data tuples and
security punctuations — one at a time per input port and returns the
list of elements it emits.  Operators are synchronous, deterministic
and single-output, which the executor and the plan-equivalence tests
rely on.

Two reusable pieces live here:

* :class:`OperatorStats` — per-operator counters and accumulated
  processing time, feeding both the experiment harness and the
  statistics module of the optimizer.
* :class:`PolicyTracker` — the state machine every sp-aware operator
  uses to interpret arriving sps: it groups consecutive same-timestamp
  sps into sp-batches, applies ``override()`` semantics between
  batches, and resolves per-tuple policies with segment-level caching.
* :class:`SPEmitter` — deduplicating sp emission: an sp is written to
  the output only when the effective output policy actually changes,
  which is how sps stay shared across tuples downstream.
"""

from __future__ import annotations

import time

from repro.core.bitmap import RoleSet
from repro.core.policy import (EMPTY_POLICY, AccessPolicy, Policy,
                               TuplePolicy, apply_incremental_batch,
                               has_attribute_scope, wildcard_policy_roles)
from repro.core.punctuation import SecurityPunctuation, Sign
from repro.errors import PlanError, PolicyError
from repro.stream.batch import TupleBatch
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple
from repro.stream.window import policy_is_uniform

__all__ = ["OperatorStats", "Operator", "UnaryOperator", "BinaryOperator",
           "PolicyTracker", "SPEmitter"]

_POSITIVE = Sign.POSITIVE


#: Default smoothing factor for the per-element processing-time EWMA.
EWMA_ALPHA = 0.05


class OperatorStats:
    """Counters and timing for one operator instance.

    ``alpha`` is the smoothing factor of the per-element
    processing-time EWMA: smaller values average over a longer
    history, larger values track the current rate more nervously.
    """

    __slots__ = ("alpha", "tuples_in", "tuples_out", "sps_in", "sps_out",
                 "comparisons", "state_ops", "processing_time",
                 "ewma_seconds")

    def __init__(self, alpha: float = EWMA_ALPHA):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("EWMA alpha must be within (0, 1]")
        self.alpha = alpha
        self.tuples_in = 0
        self.tuples_out = 0
        self.sps_in = 0
        self.sps_out = 0
        #: Join-condition / policy-compatibility checks performed.
        self.comparisons = 0
        #: State maintenance operations (window inserts/expirations,
        #: index entry insertions/deletions).
        self.state_ops = 0
        #: Accumulated wall-clock seconds inside ``process()``.
        self.processing_time = 0.0
        #: EWMA of per-element processing seconds (current speed).
        self.ewma_seconds = 0.0

    def snapshot(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def reset(self) -> None:
        self.__init__(self.alpha)

    def __repr__(self) -> str:
        return (f"OperatorStats(in={self.tuples_in}t/{self.sps_in}sp, "
                f"out={self.tuples_out}t/{self.sps_out}sp, "
                f"time={self.processing_time:.6f}s)")


class Operator:
    """Base class of all physical operators."""

    #: Number of input ports (1 for unary, 2 for binary operators).
    arity = 1

    #: Whether this operator's batch path keeps the *global* audit
    #: event order identical to element-wise execution.  Operators
    #: that record per-tuple audit events interleaved with emitted
    #: tuples (dup-elim suppressions, group-by merges, join rejects,
    #: per-tuple shield drops) set this ``False``; while an audit log
    #: is attached the executor then unbatches their input, so audit
    #: streams stay byte-identical across execution modes.
    audit_batch_safe = True

    def __init__(self, name: str | None = None, *,
                 ewma_alpha: float = EWMA_ALPHA):
        self.name = name or type(self).__name__
        self.stats = OperatorStats(ewma_alpha)
        #: Audit log to record security decisions into (set by the
        #: observability hub; ``None`` keeps the fast path silent).
        self.audit = None
        #: Query name audit events are attributed to, when known.
        self.audit_query: str | None = None
        #: Latency histogram child (bound by :meth:`bind_metrics`;
        #: ``None`` keeps the fast path to a single attribute check).
        self._m_latency = None
        #: Causal tracer security decisions attach provenance to (set
        #: by :meth:`bind_tracer`; ``None`` keeps decisions silent).
        self._tracer = None

    def process(self, element: StreamElement,
                port: int = 0) -> list[StreamElement]:
        """Consume one element on ``port``; return emitted elements.

        Wraps :meth:`_process` with stats accounting; subclasses
        implement :meth:`_process`.
        """
        if not 0 <= port < self.arity:
            raise PlanError(f"{self.name}: invalid port {port}")
        stats = self.stats
        start = time.perf_counter()
        out = self._process(element, port)
        elapsed = time.perf_counter() - start
        stats.processing_time += elapsed
        stats.ewma_seconds += stats.alpha * (elapsed - stats.ewma_seconds)
        if self._m_latency is not None:
            self._m_latency.observe(elapsed)
        if isinstance(element, SecurityPunctuation):
            stats.sps_in += 1
        else:
            stats.tuples_in += 1
        for item in out:
            if isinstance(item, SecurityPunctuation):
                stats.sps_out += 1
            else:
                stats.tuples_out += 1
        return out

    def _process(self, element: StreamElement,
                 port: int) -> list[StreamElement]:
        raise NotImplementedError

    # -- batched execution ------------------------------------------------
    def accepts_batches(self) -> bool:
        """Whether the executor may hand this operator a TupleBatch.

        ``False`` only while an audit log is attached to an operator
        whose batch path would reorder the global audit stream
        (:attr:`audit_batch_safe`); the executor falls back to
        element-wise delivery for exactly those operators.
        """
        return self.audit is None or self.audit_batch_safe

    def process_batch(self, batch: TupleBatch,
                      port: int = 0) -> list[StreamElement]:
        """Consume one segment run on ``port``; return emitted elements.

        The batched counterpart of :meth:`process`: stats counters are
        updated in amortized per-batch increments (one wrapper, one
        pair of clock reads per run instead of per element).  Emitted
        elements may include :class:`TupleBatch` envelopes, which count
        as their length.  Subclasses override :meth:`_process_batch`
        for a native batch path; the default falls back to the
        element-wise loop, so plans stay correct by construction.
        """
        if not 0 <= port < self.arity:
            raise PlanError(f"{self.name}: invalid port {port}")
        stats = self.stats
        start = time.perf_counter()
        out = self._process_batch(batch, port)
        elapsed = time.perf_counter() - start
        stats.processing_time += elapsed
        n = len(batch)
        if n:
            # Per-element EWMA, updated once with the run's mean cost.
            stats.ewma_seconds += stats.alpha * (elapsed / n
                                                 - stats.ewma_seconds)
            if self._m_latency is not None:
                # One observation per run, at the run's mean
                # per-element cost (histogram counts therefore differ
                # between execution modes; values don't skew).
                self._m_latency.observe(elapsed / n)
        stats.tuples_in += n
        for item in out:
            if isinstance(item, TupleBatch):
                stats.tuples_out += len(item)
            elif isinstance(item, SecurityPunctuation):
                stats.sps_out += 1
            else:
                stats.tuples_out += 1
        return out

    def _process_batch(self, batch: TupleBatch,
                       port: int) -> list[StreamElement]:
        """Per-element fallback: every operator batches correctly."""
        out: list[StreamElement] = []
        extend = out.extend
        process = self._process
        for item in batch.tuples:
            extend(process(item, port))
        return out

    def flush(self) -> list[StreamElement]:
        """Emit anything held back at end-of-stream (default: nothing)."""
        return []

    def state_size(self) -> int:
        """Number of elements held in operator state (for memory plots)."""
        return 0

    def drops(self) -> int:
        """Elements discarded for security/semantic reasons.

        Subclasses with a discard path (shields, joins, dup-elim)
        override this; transformations that merely don't emit (e.g. a
        failed selection) don't count as drops.
        """
        return 0

    def bind_metrics(self, instruments) -> None:
        """Pre-bind this operator's metric children (hub wiring).

        The base binding covers every operator: a per-operator latency
        histogram series (observed in :meth:`process` /
        :meth:`process_batch`) and a pull-mode queue-depth gauge read
        from :meth:`state_size` at collection time.  Subclasses with
        security telemetry (shields, index joins, sinks) extend this —
        always calling ``super().bind_metrics(instruments)``.
        """
        self._m_latency = instruments.operator_latency.labels(
            self.name, type(self).__name__)
        instruments.queue_depth.labels(self.name).set_function(
            self.state_size)

    def bind_tracer(self, tracer) -> None:
        """Point security-decision sites at a causal tracer.

        ``tracer`` is a :class:`~repro.observability.provenance.Tracer`;
        operators with decision sites (shields, access filters) emit
        provenance records through it.  The base binding just stores
        it — a single attribute check gates every decision site.
        """
        self._tracer = tracer

    def stage_stats(self) -> "StageStats":
        """Immutable snapshot of this operator's runtime metrics."""
        from repro.observability.stats import StageStats

        stats = self.stats
        return StageStats(
            name=self.name,
            kind=type(self).__name__,
            tuples_in=stats.tuples_in,
            tuples_out=stats.tuples_out,
            sps_in=stats.sps_in,
            sps_out=stats.sps_out,
            drops=self.drops(),
            comparisons=stats.comparisons,
            state_ops=stats.state_ops,
            processing_time=stats.processing_time,
            ewma_seconds=stats.ewma_seconds,
            queue_depth=self.state_size(),
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class UnaryOperator(Operator):
    arity = 1


class BinaryOperator(Operator):
    arity = 2


class PolicyTracker:
    """Interprets the sp sub-stream of one input.

    Maintains the *current* access policy as sps arrive:

    * consecutive sps with equal timestamps and no intervening tuple
      form an sp-batch and are interpreted as a single policy
      (union semantics);
    * a batch with a newer timestamp overrides the previous policy;
    * tuples arriving before any sp fall under denial-by-default.

    ``policy_for(t)`` resolves the current policy for a concrete tuple,
    sharing one resolved :class:`TuplePolicy` across a whole segment
    when the policy is uniform (wildcard tuple/attribute DDPs).
    """

    __slots__ = ("stream_id", "_current", "_current_raw", "_current_ts",
                 "_batch", "_pending", "_uniform", "_shared",
                 "_shared_any", "_cache", "attribute")

    def __init__(self, stream_id: str, attribute: str | None = None):
        #: Nominal input stream (informational; resolution always uses
        #: each tuple's own ``sid``, so shields placed above derived
        #: operators still match stream-scoped sps correctly).
        self.stream_id = stream_id
        #: Resolve policies for this attribute (None = whole tuple).
        self.attribute = attribute
        self._current: AccessPolicy | None = None
        #: Raw sp batch of the current policy, materialized into a
        #: :class:`Policy` lazily (fast path skips construction).
        self._current_raw: tuple[SecurityPunctuation, ...] | None = None
        self._current_ts: float | None = None
        self._batch: list[SecurityPunctuation] = []
        self._pending: list[SecurityPunctuation] = []
        self._uniform = True
        #: Per-sid shared resolution for uniform policies.
        self._shared: dict[str, TuplePolicy] = {}
        #: Sid-independent resolution (uniform + wildcard streams) —
        #: the hot path for segment-shared policies.
        self._shared_any: TuplePolicy | None = None
        self._cache: dict[tuple[str, object], TuplePolicy] = {}

    # -- sp arrival -------------------------------------------------------
    def observe_sp(self, sp: SecurityPunctuation) -> None:
        if self._batch and sp.ts != self._batch[0].ts:
            self._finalize_batch()
        self._batch.append(sp)

    def _finalize_batch(self) -> None:
        batch = self._batch
        if not batch:
            return
        if any(sp.incremental for sp in batch):
            if not all(sp.incremental for sp in batch):
                raise PolicyError(
                    "an sp-batch must not mix incremental and "
                    "absolute sps")
            current = wildcard_policy_roles(self.current_policy_if_simple())
            if current is None:
                raise PolicyError(
                    "incremental sps require a segment-scoped "
                    "(wildcard-DDP) current policy")
            batch = apply_incremental_batch(current, batch)
            self._batch = batch
        ts = batch[0].ts
        if self._current_ts is not None and ts < self._current_ts:
            # A policy older than the current one never takes over
            # (override() semantics); in an ordered stream this only
            # happens with reordering slack at play.
            self._batch = []
            return
        self._pending = batch
        self._batch = []
        self._current_raw = tuple(batch)
        self._current_ts = ts
        self._current = None
        self._shared = {}
        self._shared_any = None
        self._cache = {}
        # Sid-independent fast path: a batch of positive sps with fully
        # wildcard DDPs resolves identically for every tuple.
        fast = True
        for sp in batch:
            ddp = sp.ddp
            if not (sp.sign is _POSITIVE and ddp.stream.is_wildcard()
                    and ddp.tuple_id.is_wildcard()
                    and ddp.attribute.is_wildcard()):
                fast = False
                break
        if fast:
            self._uniform = True
            if len(batch) == 1:
                roles: frozenset[str] | set[str] = batch[0].roles()
            else:
                roles = set()
                for sp in batch:
                    roles |= sp.roles()
            self._shared_any = TuplePolicy(RoleSet(roles), ts=ts)
        else:
            self._materialize()

    def _materialize(self) -> None:
        """Build the full :class:`Policy` for the current batch."""
        assert self._current_raw is not None
        self._current = Policy(self._current_raw)
        self._uniform = policy_is_uniform(self._current, self.stream_id)

    def current_policy_if_simple(self) -> AccessPolicy | None:
        """Current policy without finalizing a pending batch."""
        if self._current is None and self._current_raw is not None:
            self._materialize()
        return self._current

    def _resolve_shared(self, sid: str) -> TuplePolicy:
        """Uniform-policy resolution for one stream id (cached).

        Fast path: an all-positive leaf policy reduces to the union of
        the roles of its sps whose stream pattern matches ``sid`` —
        no per-object pattern evaluation needed on the hot path.
        """
        current = self._current
        assert current is not None
        if isinstance(current, Policy) and all(
                sp.is_positive for sp in current.sps):
            roles: set[str] = set()
            for sp in current.sps:
                if sp.ddp.stream.matches(sid):
                    roles |= sp.roles()
            resolved = TuplePolicy(RoleSet(roles), ts=current.ts)
        else:
            resolved = current.resolve_for_tuple(
                sid, attribute=self.attribute)
        self._shared[sid] = resolved
        return resolved

    # -- tuple arrival -----------------------------------------------------
    def policy_for(self, item: DataTuple) -> TuplePolicy:
        """Resolved policy of ``item`` under the current policy state."""
        if self._batch:
            self._finalize_batch()
        if self._shared_any is not None:
            return self._shared_any
        if self._current is None:
            if self._current_raw is None:
                return EMPTY_POLICY
            self._materialize()
        if self._uniform:
            shared = self._shared.get(item.sid)
            if shared is None:
                shared = self._resolve_shared(item.sid)
            return shared
        current = self._current
        assert current is not None
        if self.attribute is not None:
            key = (item.sid, item.tid)
            cached = self._cache.get(key)
            if cached is None:
                cached = current.resolve_for_tuple(
                    item.sid, item.tid, self.attribute)
                self._cache[key] = cached
            return cached
        if has_attribute_scope(current):
            key = (item.sid, item.tid, tuple(item.values))
            cached = self._cache.get(key)
            if cached is None:
                cached = current.resolve_for_attributes(
                    item.sid, item.tid, item.values.keys())
                self._cache[key] = cached
            return cached
        key = (item.sid, item.tid)
        cached = self._cache.get(key)
        if cached is None:
            cached = current.resolve_for_tuple(item.sid, item.tid)
            self._cache[key] = cached
        return cached

    @property
    def current_policy(self) -> AccessPolicy | None:
        self._finalize_batch()
        if self._current is None and self._current_raw is not None:
            self._materialize()
        return self._current

    @property
    def is_uniform(self) -> bool:
        """Whether the current policy resolves identically for all tuples."""
        self._finalize_batch()
        return self._uniform

    def take_pending_sps(self) -> list[SecurityPunctuation]:
        """Sps of the current policy not yet propagated downstream.

        Operators that *delay* sp propagation (select — emit sps only
        once a covered tuple passes) call this at emission time; the
        pending list is cleared so each sp is propagated at most once.
        """
        self._finalize_batch()
        pending, self._pending = self._pending, []
        return pending

    def has_pending_sps(self) -> bool:
        return bool(self._pending) or bool(self._batch)

    def current_sps(self) -> tuple[SecurityPunctuation, ...]:
        """Raw sp-batch of the policy currently in force.

        Public accessor for the audit layer: these are the sps that
        decide the fate of tuples in the current segment.  Empty before
        the first sp arrives (denial-by-default).
        """
        if self._batch:
            self._finalize_batch()
        return self._current_raw if self._current_raw is not None else ()


class SPEmitter:
    """Writes sps to an output stream only on policy change.

    Join, duplicate elimination and group-by emit results "preceded by
    the sp(s) depicting" the result policy.  Emitting one sp per result
    tuple would defeat sp sharing, so this helper tracks the policy of
    the last emitted sp and stays silent while it is unchanged.
    """

    __slots__ = ("_last",)

    def __init__(self):
        self._last: TuplePolicy | None = None

    def emit(self, policy: TuplePolicy, ts: float,
             out: list[StreamElement]) -> None:
        """Append sp(s) for ``policy`` to ``out`` if it changed."""
        if self._last is not None and policy == self._last:
            return
        out.append(policy.to_sp(ts))
        self._last = policy

    def reset(self) -> None:
        self._last = None

