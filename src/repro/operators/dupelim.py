"""Sp-aware duplicate elimination (δ) over a sliding window.

Table I / Section IV.B: the operator stores its input and current
output over a sliding window; at all times the output contains exactly
one tuple per distinct value present in the input.  Policies (from sps)
are stored with the tuples in the output state.  When a new tuple with
a duplicate value arrives, its policy ``Pnew`` is compared with the
stored output policy ``Pold``:

1. ``Pold ∩ Pnew = ∅`` — the earlier output was not visible to any
   query that may access the new tuple: re-emit the value preceded by
   sp(s) for ``Pnew``, and store ``Pnew``.
2. ``Pold ∩ Pnew = Pnew`` — everyone who may see the new tuple already
   saw the value: emit nothing.
3. otherwise — emit the value with policy ``Pnew − (Pold ∩ Pnew)``
   (exactly the roles for which the value is news).  The output state
   is updated to ``Pold ∪ Pnew``: the roles that have now seen the
   value.  (The paper leaves the stored policy of case 3 implicit; the
   union is the choice under which case-2 suppression stays exact.)

Note a consequence of case 1 the paper accepts: because the stored
policy is *replaced* by ``Pnew``, the memory of who saw the value
under the previous policy is lost — after a disjoint-policy switch and
back, a role can be re-delivered a value it already saw.  Suppression
is exact only along chains of overlapping policies.

When every input tuple carrying a value has expired from the window,
the value's output entry is dropped, so a later re-arrival is re-output.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.core.policy import TuplePolicy
from repro.core.punctuation import SecurityPunctuation
from repro.errors import PlanError
from repro.operators.base import PolicyTracker, SPEmitter, UnaryOperator
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple

__all__ = ["DuplicateElimination"]


class _OutputEntry:
    __slots__ = ("policy", "live_count")

    def __init__(self, policy: TuplePolicy):
        self.policy = policy
        self.live_count = 0


class DuplicateElimination(UnaryOperator):
    """δ over a time-based sliding window, sp-aware per Section IV.B."""

    #: ``dupelim.suppress`` events interleave with emitted values, so
    #: with an audit log attached the executor delivers element-wise.
    audit_batch_safe = False

    def __init__(self, window: float, attributes: Iterable[str] | None = None,
                 *, stream_id: str = "*", name: str | None = None):
        super().__init__(name)
        if window <= 0:
            raise PlanError("dup-elim window must be positive")
        self.window = window
        #: Attributes defining distinctness (None = all attributes).
        self.attributes = tuple(attributes) if attributes is not None else None
        self.tracker = PolicyTracker(stream_id)
        self.emitter = SPEmitter()
        self._output: dict[object, _OutputEntry] = {}
        #: Arrival log for expiry: (ts, key).
        self._log: deque[tuple[float, object]] = deque()
        self.duplicates_suppressed = 0

    def _key(self, item: DataTuple) -> object:
        if self.attributes is None:
            return tuple(sorted(item.values.items(), key=lambda kv: kv[0]))
        return tuple(item.values.get(a) for a in self.attributes)

    def _expire(self, now: float) -> None:
        horizon = now - self.window
        while self._log and self._log[0][0] <= horizon:
            _, key = self._log.popleft()
            entry = self._output.get(key)
            if entry is not None:
                entry.live_count -= 1
                self.stats.state_ops += 1
                if entry.live_count <= 0:
                    del self._output[key]

    def _process(self, element: StreamElement,
                 port: int) -> list[StreamElement]:
        if isinstance(element, SecurityPunctuation):
            self.tracker.observe_sp(element)
            return []
        assert isinstance(element, DataTuple)
        return self._process_tuple(element)

    def _process_batch(self, batch, port: int) -> list[StreamElement]:
        """Batch path: one tight tuple loop, no per-element dispatch.

        Dup-elim decisions are inherently per tuple (each arrival can
        flip the stored output policy), so the win here is amortizing
        the wrapper and the sp/tuple dispatch, not the decision.
        """
        out: list[StreamElement] = []
        extend = out.extend
        process_tuple = self._process_tuple
        for item in batch.tuples:
            extend(process_tuple(item))
        return out

    def _process_tuple(self, element: DataTuple) -> list[StreamElement]:
        self._expire(element.ts)
        policy = self.tracker.policy_for(element)
        if policy.is_empty():
            # Denial-by-default: invisible tuples produce no output and
            # must not suppress later visible duplicates.
            return []
        key = self._key(element)
        self._log.append((element.ts, key))
        out: list[StreamElement] = []
        entry = self._output.get(key)
        if entry is None:
            entry = _OutputEntry(policy)
            entry.live_count = 1
            self._output[key] = entry
            self.emitter.emit(policy, element.ts, out)
            out.append(element)
            return out
        entry.live_count += 1
        old, new = entry.policy, policy
        common = old.intersect(new)
        self.stats.comparisons += 1
        if common.is_empty():  # case 1
            entry.policy = new
            self.emitter.emit(new, element.ts, out)
            out.append(element)
        elif common == new:  # case 2
            self.duplicates_suppressed += 1
            if self.audit is not None:
                self.audit.record(
                    "dupelim.suppress", ts=element.ts, operator=self.name,
                    query=self.audit_query, sid=element.sid,
                    tid=element.tid,
                    policy=tuple(sorted(new.roles.names())),
                    seen_by=sorted(old.roles.names()),
                )
        else:  # case 3
            fresh = new.difference(common)
            entry.policy = old.union(new)
            self.emitter.emit(fresh, element.ts, out)
            out.append(element)
        return out

    def state_size(self) -> int:
        return len(self._output)

    def drops(self) -> int:
        return self.duplicates_suppressed
