"""Named UDF registry for spec-based plans.

Plan specs (``examples/plans/*.json``, the verify harness, ``repro
lint``) are pure data, but selections sometimes need predicates the
``{"attribute", "op", "value"}`` comparison form cannot express.  The
registry gives those a *named* escape hatch:

.. code-block:: json

    {"op": "select", "condition": {"udf": "in_region"},
     "input": {"op": "scan", "stream": "cars"}}

Each :class:`RegisteredUdf` pairs a callable with its declared
attribute read-set; :func:`named_udf` materializes it as a
:class:`~repro.operators.conditions.FuncCondition` so the full effect
analysis (SEC006-SEC008), the predicate compiler and the shard-safety
proof all apply unchanged.  The reference oracle evaluates the *same*
registered callable — by construction the callable is the semantics,
so registered UDFs must stay pure and deterministic or the
differential harness (and SEC007) will flag them.

The built-ins below are written in the analyzer's provable fragment
(``.get`` reads, ``None`` guards, arithmetic and constant
comparisons) on purpose: they double as end-to-end fixtures proving
that a declared-correct pure UDF vectorizes, commutes and shards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import PlanError
from repro.operators.conditions import FuncCondition
from repro.stream.tuples import DataTuple

__all__ = [
    "RegisteredUdf",
    "call_udf",
    "named_udf",
    "register_udf",
    "registered_udfs",
    "udf_entry",
]


@dataclass(frozen=True)
class RegisteredUdf:
    """One named UDF: the callable plus its declared read-set."""

    name: str
    fn: Callable[[DataTuple], bool]
    attributes: frozenset[str]

    def condition(self) -> FuncCondition:
        return FuncCondition(self.fn, self.attributes, label=self.name)


_REGISTRY: "dict[str, RegisteredUdf]" = {}


def register_udf(name: str, fn: Callable[[DataTuple], bool],
                 attributes: "tuple[str, ...] | frozenset[str]"
                 ) -> RegisteredUdf:
    """Register ``name`` (idempotent for the identical callable)."""
    existing = _REGISTRY.get(name)
    if existing is not None and existing.fn is not fn:
        raise PlanError(f"UDF {name!r} is already registered with a "
                        "different callable")
    entry = RegisteredUdf(name, fn, frozenset(attributes))
    _REGISTRY[name] = entry
    return entry


def udf_entry(name: str) -> RegisteredUdf:
    """The registry entry for ``name`` (:class:`PlanError` if absent)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise PlanError(
            f"unknown UDF {name!r}; registered: "
            f"{sorted(_REGISTRY)}") from None


def named_udf(name: str) -> FuncCondition:
    """The registered UDF as an analyzable ``FuncCondition``."""
    return udf_entry(name).condition()


def call_udf(name: str, item: DataTuple) -> bool:
    """Evaluate the registered callable directly (the oracle's path)."""
    return bool(udf_entry(name).fn(item))


def registered_udfs() -> "Mapping[str, RegisteredUdf]":
    """A snapshot of every registered UDF, keyed by name."""
    return dict(_REGISTRY)


# -- built-ins ----------------------------------------------------------------

def _in_region(item: DataTuple) -> bool:
    """Inside the 350-unit disc centred on (500, 500)."""
    x = item.get("x")
    y = item.get("y")
    if x is None or y is None:
        return False
    dx = x - 500.0
    dy = y - 500.0
    return dx * dx + dy * dy <= 122500.0


def _fast_mover(item: DataTuple) -> bool:
    """Speed above the columnar-tier benchmark threshold."""
    speed = item.get("speed")
    return speed is not None and speed > 60.0


def _bpm_critical(item: DataTuple) -> bool:
    """Heart-rate monitor trip-wire (health-feed workloads)."""
    bpm = item.get("beats_per_min")
    return bpm is not None and bpm > 140.0


register_udf("in_region", _in_region, ("x", "y"))
register_udf("fast_mover", _fast_mover, ("speed",))
register_udf("bpm_critical", _bpm_critical, ("beats_per_min",))
