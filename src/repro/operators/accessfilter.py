"""Pre-/post-filtering enforcement (Section IV.A alternatives).

Besides the freely placeable Security Shield, the paper sketches two
fixed-placement alternatives for producing policy-compliant results:

* **Pre-filtering** — each query pre-filters arriving tuples against
  its own access rights *before* the query plan, discarding the sps;
  downstream the plan consists of ordinary operators, but plans cannot
  be shared across queries with different rights.
* **Post-filtering** — the query executes first and the results are
  filtered postmortem against the query's rights.

Both are the same physical operator — an access filter that resolves
each tuple's policy from the streaming sps, passes tuples whose policy
intersects the query's roles, and (for pre-filtering) strips the sps
from its output.  The placement, not the operator, differs; the
``bench_ablation_ss_placement`` benchmark compares the three layouts.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.bitmap import AbstractRoleSet, RoleSet
from repro.core.punctuation import SecurityPunctuation
from repro.operators.base import PolicyTracker, UnaryOperator
from repro.stream.batch import TupleBatch
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple

__all__ = ["AccessFilter"]


class AccessFilter(UnaryOperator):
    """Fixed access-control filter for pre-/post-filtering layouts."""

    #: Like the shield, per-tuple ``filter.drop`` events interleave
    #: with passed tuples; with an audit log attached the executor
    #: unbatches so every denial is individually recorded.
    audit_batch_safe = False

    def __init__(self, roles: Iterable[str] | AbstractRoleSet, *,
                 stream_id: str = "*", strip_sps: bool = True,
                 name: str | None = None):
        super().__init__(name)
        if not isinstance(roles, AbstractRoleSet):
            roles = RoleSet(roles)
        self.predicate = roles
        #: Pre-filtering discards sps (the downstream plan is
        #: security-unaware); post-filtering may keep them for the
        #: result consumer.
        self.strip_sps = strip_sps
        self.tracker = PolicyTracker(stream_id)
        self._held_sps: list[SecurityPunctuation] = []
        self.tuples_blocked = 0
        self._predicate_list = sorted(self.predicate.names())

    def _process(self, element: StreamElement,
                 port: int) -> list[StreamElement]:
        if isinstance(element, SecurityPunctuation):
            self.tracker.observe_sp(element)
            if not self.strip_sps:
                self._held_sps.append(element)
            return []
        assert isinstance(element, DataTuple)
        policy = self.tracker.policy_for(element)
        self.stats.comparisons += 1
        tracer = self._tracer
        if not policy.permits_any(self.predicate):
            self.tuples_blocked += 1
            if tracer is not None:
                self._prov_item(element, policy, False)
            if self.audit is not None:
                self._audit_drop(element, policy)
            return []
        if tracer is not None and tracer.active:
            self._prov_item(element, policy, True)
        out: list[StreamElement] = []
        if self._held_sps:
            out.extend(self._held_sps)
            self._held_sps = []
        out.append(element)
        return out

    def _process_batch(self, batch: TupleBatch,
                       port: int) -> list[StreamElement]:
        """Batch fast path: resolve and check the run in one loop."""
        tracker = self.tracker
        predicate = self.predicate
        tuples = batch.tuples
        self.stats.comparisons += len(tuples)
        tracer = self._tracer
        if self.audit is None and tracer is None:
            passing = [item for item in tuples
                       if tracker.policy_for(item).permits_any(predicate)]
        else:
            traced = tracer is not None and tracer.active
            passing = []
            for item in tuples:
                policy = tracker.policy_for(item)
                if policy.permits_any(predicate):
                    if traced:
                        self._prov_item(item, policy, True)
                    passing.append(item)
                else:
                    if tracer is not None:
                        self._prov_item(item, policy, False)
                    if self.audit is not None:
                        self._audit_drop(item, policy)
        self.tuples_blocked += len(tuples) - len(passing)
        if not passing:
            return []
        out: list[StreamElement] = []
        if self._held_sps:
            out.extend(self._held_sps)
            self._held_sps = []
        out.append(passing[0] if len(passing) == 1
                   else TupleBatch(passing))
        return out

    def _prov_item(self, item: DataTuple, policy, passing: bool) -> None:
        """Provenance record for one filter verdict.

        Drops carry the tail-based keep override; passes are only
        emitted while the trace is sampled (call sites gate on
        ``tracer.active``).
        """
        sps = self.tracker.current_sps()
        self._tracer.decision(
            "filter.pass" if passing else "filter.drop",
            operator=self.name,
            verdict="pass" if passing else "drop",
            query=self.audit_query, keep=not passing,
            sid=item.sid, tid=item.tid, ts=item.ts,
            predicate=list(self._predicate_list),
            policy=policy.roles.names_sorted(),
            sp=" | ".join(sp.to_text() for sp in sps) if sps else None,
            denial_by_default=not sps,
        )

    def _audit_drop(self, item: DataTuple, policy) -> None:
        """Exactly one ``filter.drop`` event per denied tuple."""
        self.audit.record(
            "filter.drop", ts=item.ts, operator=self.name,
            query=self.audit_query, sid=item.sid, tid=item.tid,
            predicate=tuple(sorted(self.predicate.names())),
            policy=tuple(sorted(policy.roles.names())),
        )
