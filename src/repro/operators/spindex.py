"""The Security Punctuation Index (SPIndex, paper Section V.B.2).

The index SAJoin keeps, per input window, an SPIndex for efficient
lookup of policy-wise compatible tuples in the *opposite* stream.  The
structure (Figure 6) consists of:

* the **r-node array** — one node per role in the system, ordered by
  role id; each r-node heads a linked list of index entries whose sp
  contains that role (``r-head``/``r-tail`` pointers: new entries are
  appended at the tail, expired entries leave from the head);
* one **index entry per sp(-batch)** — an entry with a vertex for every
  role of the sp, pointing at the physical sp / segment in the sliding
  window.

Probing walks, for each role of the probing tuple's policy in role-id
order, the entry list of the matching r-node.  The **skipping rule**
(Lemma 5.1) prevents an entry reachable through several common roles
from being processed more than once: an entry is processed only at the
r-node of the *smallest-id role common to the entry and the probing
policy*, and skipped everywhere else.  (The lemma in the paper is
stated in terms of the entry's first role; restricting to *common*
roles is the general form — an entry whose first role is not in the
probing policy was never reached through that role at all.)

Because window segments expire strictly FIFO, expired entries are
always at the r-heads; removal is lazy (entries carry an ``alive``
flag and dead entries are popped from list heads during maintenance),
matching the paper's r-head removal discipline.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.core.bitmap import RoleUniverse
from repro.stream.window import Segment

__all__ = ["IndexEntry", "SPIndex"]


class IndexEntry:
    """One index entry: the roles of an sp-batch plus its segment."""

    __slots__ = ("segment", "roles_ordered", "role_set", "alive")

    def __init__(self, segment: Segment, roles_ordered: tuple[str, ...]):
        self.segment = segment
        self.roles_ordered = roles_ordered
        self.role_set = frozenset(roles_ordered)
        self.alive = True

    def __repr__(self) -> str:
        state = "live" if self.alive else "dead"
        return f"IndexEntry({list(self.roles_ordered)}, {state})"


class SPIndex:
    """Role-indexed lookup of s-punctuated segments."""

    def __init__(self, universe: RoleUniverse, *, skipping: bool = True):
        self.universe = universe
        #: Lemma 5.1 on/off switch (off only for the ablation bench).
        self.skipping = skipping
        self._rnodes: dict[str, deque[IndexEntry]] = {}
        self._by_segment: dict[int, IndexEntry] = {}
        #: Maintenance counters (the sp-maintenance cost of Fig. 9).
        self.insertions = 0
        self.deletions = 0
        #: Entries visited during probes, including skipped ones.
        self.entries_scanned = 0
        self.entries_skipped = 0

    # -- maintenance ---------------------------------------------------------
    def insert(self, segment: Segment, roles: frozenset[str]) -> IndexEntry:
        """Add an index entry for a newly opened segment."""
        ordered = tuple(sorted(roles, key=self.universe.sort_key))
        entry = IndexEntry(segment, ordered)
        for role in ordered:
            node = self._rnodes.get(role)
            if node is None:
                node = deque()
                self._rnodes[role] = node
            node.append(entry)  # new entries always join at the r-tail
        self._by_segment[id(segment)] = entry
        self.insertions += 1
        return entry

    def remove_segment(self, segment: Segment) -> None:
        """Mark the entry of an expired segment dead (lazy removal)."""
        entry = self._by_segment.pop(id(segment), None)
        if entry is not None and entry.alive:
            entry.alive = False
            self.deletions += 1
            # Eager head cleanup: expired entries sit at r-heads.
            for role in entry.roles_ordered:
                node = self._rnodes.get(role)
                while node and not node[0].alive:
                    node.popleft()

    # -- probing ------------------------------------------------------------
    def probe(self, policy_roles: frozenset[str]) -> Iterator[Segment]:
        """Segments policy-compatible with ``policy_roles``, each once.

        Roles are visited in role-id order; the skipping rule
        suppresses duplicate processing of entries sharing several
        roles with the probing policy.
        """
        if not policy_roles:
            return
        ordered = sorted(policy_roles, key=self.universe.sort_key)
        probe_set = frozenset(ordered)
        for role in ordered:
            node = self._rnodes.get(role)
            if not node:
                continue
            for entry in node:
                if not entry.alive:
                    continue
                self.entries_scanned += 1
                if self.skipping:
                    if self._first_common_role(entry, probe_set) != role:
                        self.entries_skipped += 1
                        continue
                    yield entry.segment
                else:
                    # Ablation mode: no dedup here — the caller sees
                    # the segment once per common role.
                    yield entry.segment

    @staticmethod
    def _first_common_role(entry: IndexEntry,
                           probe_set: frozenset[str]) -> str | None:
        for role in entry.roles_ordered:
            if role in probe_set:
                return role
        return None

    # -- accounting --------------------------------------------------------
    @property
    def skip_rate(self) -> float:
        """Fraction of probe visits the skipping rule suppressed.

        The Lemma 5.1 hit rate: ``entries_skipped / entries_scanned``
        (0.0 before any probe).  High values mean policies share many
        roles and the rule is saving the redundant probe work the
        ablation benchmark quantifies.
        """
        if not self.entries_scanned:
            return 0.0
        return self.entries_skipped / self.entries_scanned

    def entry_count(self) -> int:
        return sum(1 for e in self._by_segment.values() if e.alive)

    def rnode_count(self) -> int:
        return len(self._rnodes)

    def __repr__(self) -> str:
        return (f"SPIndex(entries={self.entry_count()}, "
                f"rnodes={self.rnode_count()}, skipping={self.skipping})")
