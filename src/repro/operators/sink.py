"""Output sinks: plan leaves collecting or counting results."""

from __future__ import annotations

from repro.core.punctuation import SecurityPunctuation
from repro.operators.base import UnaryOperator
from repro.stream.batch import TupleBatch
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple

__all__ = ["CollectingSink", "CountingSink"]


class CollectingSink(UnaryOperator):
    """Stores everything it receives; used by tests and examples."""

    def __init__(self, name: str | None = None):
        super().__init__(name)
        self.elements: list[StreamElement] = []

    def _process(self, element: StreamElement,
                 port: int) -> list[StreamElement]:
        self.elements.append(element)
        return []

    def _process_batch(self, batch: TupleBatch,
                       port: int) -> list[StreamElement]:
        # Batches are unwrapped at the sink: collected results are
        # identical with and without batched execution.
        self.elements.extend(batch.tuples)
        return []

    def tuples(self) -> list[DataTuple]:
        return [e for e in self.elements if isinstance(e, DataTuple)]

    def sps(self) -> list[SecurityPunctuation]:
        return [e for e in self.elements
                if isinstance(e, SecurityPunctuation)]

    def clear(self) -> None:
        self.elements.clear()

    def state_size(self) -> int:
        return len(self.elements)


class CountingSink(UnaryOperator):
    """Counts results without retaining them; used by benchmarks."""

    def __init__(self, name: str | None = None):
        super().__init__(name)
        self.tuple_count = 0
        self.sp_count = 0
        self.first_ts: float | None = None
        self.last_ts: float | None = None

    def _process(self, element: StreamElement,
                 port: int) -> list[StreamElement]:
        if isinstance(element, SecurityPunctuation):
            self.sp_count += 1
        else:
            self.tuple_count += 1
            if self.first_ts is None:
                self.first_ts = element.ts
            self.last_ts = element.ts
        return []

    def _process_batch(self, batch: TupleBatch,
                       port: int) -> list[StreamElement]:
        tuples = batch.tuples
        self.tuple_count += len(tuples)
        if self.first_ts is None:
            self.first_ts = tuples[0].ts
        self.last_ts = tuples[-1].ts
        return []
