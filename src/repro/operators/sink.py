"""Output sinks: plan leaves collecting or counting results.

Sinks are where results *emerge*, so they are also where end-to-end
tuple latency is measured: with metrics bound, each delivered tuple
closes the span the executor (or streaming session) opened when the
source element entered the plan — the
``repro_tuple_latency_seconds`` histogram.
"""

from __future__ import annotations

import time

from repro.core.punctuation import SecurityPunctuation
from repro.operators.base import UnaryOperator
from repro.stream.batch import TupleBatch
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple

__all__ = ["CollectingSink", "CountingSink"]


class _LatencySinkMixin:
    """End-to-end latency recording shared by the sink types."""

    def bind_metrics(self, instruments) -> None:
        super().bind_metrics(instruments)
        self._instruments = instruments
        query = self.name.removeprefix("sink:")
        self._m_e2e = instruments.tuple_latency.labels(query)

    def _observe_emit(self) -> None:
        """One latency observation for the element(s) just emitted."""
        wall = self._instruments.ingest_wall
        if wall is not None:
            self._m_e2e.observe(time.perf_counter() - wall)


class CollectingSink(_LatencySinkMixin, UnaryOperator):
    """Stores everything it receives; used by tests and examples."""

    def __init__(self, name: str | None = None):
        super().__init__(name)
        self.elements: list[StreamElement] = []
        self._m_e2e = None

    def _process(self, element: StreamElement,
                 port: int) -> list[StreamElement]:
        self.elements.append(element)
        if (self._m_e2e is not None
                and not isinstance(element, SecurityPunctuation)):
            self._observe_emit()
        return []

    def _process_batch(self, batch: TupleBatch,
                       port: int) -> list[StreamElement]:
        # Batches are unwrapped at the sink: collected results are
        # identical with and without batched execution.
        self.elements.extend(batch.tuples)
        if self._m_e2e is not None:
            # One observation per run (its tuples share one ingest).
            self._observe_emit()
        return []

    def tuples(self) -> list[DataTuple]:
        return [e for e in self.elements if isinstance(e, DataTuple)]

    def sps(self) -> list[SecurityPunctuation]:
        return [e for e in self.elements
                if isinstance(e, SecurityPunctuation)]

    def clear(self) -> None:
        self.elements.clear()

    def state_size(self) -> int:
        return len(self.elements)


class CountingSink(_LatencySinkMixin, UnaryOperator):
    """Counts results without retaining them; used by benchmarks."""

    def __init__(self, name: str | None = None):
        super().__init__(name)
        self.tuple_count = 0
        self.sp_count = 0
        self.first_ts: float | None = None
        self.last_ts: float | None = None
        self._m_e2e = None

    def _process(self, element: StreamElement,
                 port: int) -> list[StreamElement]:
        if isinstance(element, SecurityPunctuation):
            self.sp_count += 1
        else:
            self.tuple_count += 1
            if self.first_ts is None:
                self.first_ts = element.ts
            self.last_ts = element.ts
            if self._m_e2e is not None:
                self._observe_emit()
        return []

    def _process_batch(self, batch: TupleBatch,
                       port: int) -> list[StreamElement]:
        tuples = batch.tuples
        self.tuple_count += len(tuples)
        if self.first_ts is None:
            self.first_ts = tuples[0].ts
        self.last_ts = tuples[-1].ts
        if self._m_e2e is not None:
            self._observe_emit()
        return []
