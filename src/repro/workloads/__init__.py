"""Workload generators: synthetic parameter sweeps + health streams."""

from repro.workloads.health import (ROLES, HealthStreamGenerator,
                                    attribute_level_policy,
                                    stream_level_policy, tuple_level_policy)
from repro.workloads.synthetic import (QUERY_ROLE, SYNTH_SCHEMA, join_streams,
                                       punctuated_stream, role_names)

__all__ = [
    "HealthStreamGenerator",
    "QUERY_ROLE",
    "ROLES",
    "SYNTH_SCHEMA",
    "attribute_level_policy",
    "join_streams",
    "punctuated_stream",
    "role_names",
    "stream_level_policy",
    "tuple_level_policy",
]
