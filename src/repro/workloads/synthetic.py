"""Parametrized synthetic workloads for the Section VII experiments.

These generators produce punctuated streams with precisely controlled
knobs — the independent variables of Figures 7-9:

* ``tuples_per_sp`` — the sp:tuple ratio (1/1 ... 1/100);
* ``policy_size`` — roles per sp (|R| in Figures 7c/7d);
* ``accessible_fraction`` — fraction of segments whose policy
  intersects a designated query role (the security selectivity);
* ``compatibility`` — σsp of Figure 9: fraction of cross-stream
  segment pairs with compatible policies.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.punctuation import SecurityPunctuation
from repro.stream.element import StreamElement
from repro.stream.schema import StreamSchema
from repro.stream.tuples import DataTuple

__all__ = [
    "SYNTH_SCHEMA",
    "role_names",
    "punctuated_stream",
    "join_streams",
    "QUERY_ROLE",
]

SYNTH_SCHEMA = StreamSchema("synthetic", ("object_id", "x", "y"),
                            key="object_id")

#: The role registered queries use in the Figure 7/8 experiments.
QUERY_ROLE = "q_role"


def role_names(count: int, prefix: str = "r") -> list[str]:
    """``count`` synthetic role names: r1, r2, ..."""
    return [f"{prefix}{i}" for i in range(1, count + 1)]


def punctuated_stream(n_tuples: int, *, tuples_per_sp: int = 10,
                      policy_size: int = 2, role_pool: int = 100,
                      accessible_fraction: float = 0.5,
                      stream_id: str = "synthetic",
                      start_ts: float = 0.0, dt: float = 1.0,
                      seed: int = 0) -> Iterator[StreamElement]:
    """A punctuated stream with controlled sp:tuple ratio and policy size.

    Each segment of ``tuples_per_sp`` tuples is preceded by one sp
    carrying ``policy_size`` roles.  A fraction ``accessible_fraction``
    of the segments includes :data:`QUERY_ROLE` in their policy (these
    are the tuples a query registered under that role may see).
    """
    if tuples_per_sp < 1:
        raise ValueError("tuples_per_sp must be >= 1")
    if policy_size < 1:
        raise ValueError("policy_size must be >= 1")
    rng = random.Random(seed)
    pool = role_names(max(role_pool, policy_size))
    ts = start_ts
    emitted = 0
    while emitted < n_tuples:
        ts += dt
        accessible = rng.random() < accessible_fraction
        fillers_needed = policy_size - (1 if accessible else 0)
        roles = rng.sample(pool, min(fillers_needed, len(pool)))
        if accessible:
            roles.append(QUERY_ROLE)
        yield SecurityPunctuation.grant(sorted(roles), ts, provider="synth")
        for _ in range(min(tuples_per_sp, n_tuples - emitted)):
            ts += dt
            yield DataTuple(
                stream_id, emitted,
                {"object_id": emitted,
                 "x": rng.uniform(0.0, 1000.0),
                 "y": rng.uniform(0.0, 1000.0)},
                ts,
            )
            emitted += 1


def join_streams(n_tuples: int, *, tuples_per_sp: int = 10,
                 compatibility: float = 0.5, match_fraction: float = 0.1,
                 n_join_values: int = 50, window: float | None = None,
                 seed: int = 0) -> tuple[list[StreamElement],
                                         list[StreamElement],
                                         StreamSchema, StreamSchema]:
    """Two punctuated streams for the Figure 9 SAJoin experiment.

    σsp (``compatibility``) controls the fraction of cross-stream
    segment pairs with *compatible* policies: the left stream's
    segments all carry the role ``shared``; a right-stream segment
    carries ``shared`` with probability σsp and a private role
    otherwise.  ``compatibility`` of 0 / 1 reproduce the paper's
    extremes (nothing joins / everything may join).

    Join values are drawn from ``n_join_values`` distinct keys so the
    value-match probability is controlled independently of policy
    compatibility (``match_fraction`` scales the key overlap).
    """
    rng = random.Random(seed)
    left_schema = StreamSchema("left", ("key", "payload"), key="key")
    right_schema = StreamSchema("right", ("key", "payload"), key="key")
    shared_keys = max(1, int(n_join_values * match_fraction))

    def one_stream(sid: str, compat_source: bool,
                   stream_seed: int) -> list[StreamElement]:
        stream_rng = random.Random(stream_seed)
        out: list[StreamElement] = []
        ts = 0.0
        emitted = 0
        while emitted < n_tuples:
            ts += 1.0
            if compat_source:
                roles = ["shared"]
            else:
                if stream_rng.random() < compatibility:
                    roles = ["shared"]
                else:
                    roles = [f"private_{sid}"]
            out.append(SecurityPunctuation.grant(roles, ts, provider=sid))
            for _ in range(min(tuples_per_sp, n_tuples - emitted)):
                ts += 1.0
                if stream_rng.random() < match_fraction:
                    key = stream_rng.randrange(shared_keys)
                else:
                    key = shared_keys + stream_rng.randrange(n_join_values)
                    if sid == "right":
                        key += n_join_values  # disjoint non-shared keys
                out.append(DataTuple(
                    sid, emitted, {"key": key, "payload": emitted}, ts))
                emitted += 1
        return out

    left = one_stream("left", True, seed * 7 + 1)
    right = one_stream("right", False, seed * 7 + 2)
    return left, right, left_schema, right_schema
