"""The health-monitoring stream environment of the paper's Figure 4.

Three streams — HeartRate (s1), BodyTemperature (s2), BreathingRate
(s3) — and the role set {C, D, DM, E, GP, ND}: Cardiologist, Doctor,
Dermatologist, Hospital Employee, General Physician, Nurse-on-Duty.
The generator produces patient vitals with per-patient policies and
supports the paper's three example policies (stream-, tuple- and
attribute-granularity) plus the motivating-example escalation: when a
patient's vitals go far above the norm, the closest ER gains access.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.patterns import literal, numeric_range, one_of, parse_pattern
from repro.core.punctuation import SecurityPunctuation
from repro.stream.element import StreamElement
from repro.stream.schema import StreamSchema

from repro.stream.tuples import DataTuple

__all__ = [
    "HEART_RATE_SCHEMA",
    "BODY_TEMPERATURE_SCHEMA",
    "BREATHING_RATE_SCHEMA",
    "ROLES",
    "HealthStreamGenerator",
    "stream_level_policy",
    "tuple_level_policy",
    "attribute_level_policy",
]

HEART_RATE_SCHEMA = StreamSchema(
    "HeartRate", ("patient_id", "beats_per_min"), key="patient_id")
BODY_TEMPERATURE_SCHEMA = StreamSchema(
    "BodyTemperature", ("patient_id", "temperature"), key="patient_id")
BREATHING_RATE_SCHEMA = StreamSchema(
    "BreathingRate", ("patient_id", "frequency", "depth"), key="patient_id")

#: Figure 4b: Cardiologist, Doctor, Dermatologist, Hospital Employee,
#: General Physician, Nurse-on-Duty.
ROLES = ("C", "D", "DM", "E", "GP", "ND")


def stream_level_policy(ts: float) -> SecurityPunctuation:
    """Only cardiologists may query the HeartRate stream (s1)."""
    return SecurityPunctuation.grant(
        ["C"], ts, stream=literal("HeartRate"))


def tuple_level_policy(ts: float) -> SecurityPunctuation:
    """Only GPs may access tuples of patients with ids in [120, 133]."""
    return SecurityPunctuation.grant(
        ["GP"], ts, tuple_id=numeric_range(120, 133))


def attribute_level_policy(ts: float) -> SecurityPunctuation:
    """Only a doctor or nurse-on-duty may query temperature/heart beat."""
    return SecurityPunctuation.grant(
        ["D", "ND"], ts,
        stream=one_of(["HeartRate", "BodyTemperature"]),
        attribute=parse_pattern("{beats_per_min, temperature}"),
    )


class HealthStreamGenerator:
    """Simulated patient vitals with per-patient policies."""

    def __init__(self, *, n_patients: int = 16, first_patient_id: int = 120,
                 doctor_roles: tuple[str, ...] = ("D",),
                 emergency_roles: tuple[str, ...] = ("E",),
                 emergency_bpm: float = 140.0, seed: int = 0):
        self.rng = random.Random(seed)
        self.patients = list(range(first_patient_id,
                                   first_patient_id + n_patients))
        self.doctor_roles = doctor_roles
        self.emergency_roles = emergency_roles
        self.emergency_bpm = emergency_bpm

    def heart_rate(self, n_readings: int) -> Iterator[StreamElement]:
        """HeartRate stream: doctors only, ER added during emergencies.

        Each patient's readings are preceded by the patient's policy;
        when the reading spikes above ``emergency_bpm`` the patient's
        device widens the policy with the emergency roles (the paper's
        Example 2) and narrows it back once the vitals recover.
        """
        ts = 0.0
        for reading_index in range(n_readings):
            for patient in self.patients:
                ts += 1.0
                base = 60 + 25 * self.rng.random()
                spike = (self.rng.random() < 0.08)
                bpm = base + (90 if spike else 0)
                roles = list(self.doctor_roles)
                if bpm >= self.emergency_bpm:
                    roles.extend(self.emergency_roles)
                yield SecurityPunctuation.grant(
                    sorted(set(roles)), ts,
                    stream=literal("HeartRate"),
                    tuple_id=literal(patient),
                    provider=f"patient{patient}")
                yield DataTuple(
                    "HeartRate", patient,
                    {"patient_id": patient, "beats_per_min": round(bpm, 1)},
                    ts)

    def body_temperature(self, n_readings: int) -> Iterator[StreamElement]:
        """BodyTemperature stream: doctor + nurse-on-duty policies."""
        ts = 0.5
        for reading_index in range(n_readings):
            for patient in self.patients:
                ts += 1.0
                temperature = 97.0 + 3.5 * self.rng.random()
                yield SecurityPunctuation.grant(
                    sorted(set(self.doctor_roles) | {"ND"}), ts,
                    stream=literal("BodyTemperature"),
                    tuple_id=literal(patient),
                    provider=f"patient{patient}")
                yield DataTuple(
                    "BodyTemperature", patient,
                    {"patient_id": patient,
                     "temperature": round(temperature, 1)},
                    ts)
