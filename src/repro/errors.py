"""Exception hierarchy for the security-punctuation framework.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch framework errors with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) surface.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class PatternError(ReproError):
    """An object/role pattern is syntactically invalid."""


class PunctuationError(ReproError):
    """A security punctuation is malformed or used inconsistently."""


class PolicyError(ReproError):
    """An access-control policy operation is invalid.

    Raised, for example, when combining policies with incompatible
    access-control model types, or when a server policy attempts to
    modify an immutable data-provider policy.
    """


class StreamError(ReproError):
    """A stream-level invariant is violated (schema mismatch, ordering)."""


class OutOfOrderError(StreamError):
    """A stream element arrived with a timestamp older than allowed."""


class SchemaError(StreamError):
    """A tuple does not conform to its stream schema."""


class AccessControlError(ReproError):
    """Errors in the subject/role/right substrate (RBAC, DAC, MAC)."""


class PlanError(ReproError):
    """A query plan is structurally invalid."""


class PlanAnalysisError(PlanError):
    """Static plan analysis rejected a plan (error-severity findings).

    Raised by strict-mode registration and plan compilation *before any
    tuple is processed*.  :attr:`report` carries the full
    :class:`~repro.analysis.diagnostics.AnalysisReport` so callers can
    inspect every diagnostic, not just the summary message.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class PlanAnalysisWarning(UserWarning):
    """Static plan analysis found a non-fatal issue (``analyze="warn"``).

    Emitted via :mod:`warnings` for every error- or warning-severity
    diagnostic when a query is registered or compiled with analysis in
    warn mode (and for warning-severity findings in strict mode, which
    only *raises* on errors).
    """


class UdfDeclarationWarning(UserWarning):
    """A ``FuncCondition`` was built with an unsound declaration.

    Emitted at construction time when the ``attributes`` declaration is
    empty (or provably incomplete) for a non-trivial callable: every
    layer that reasons from ``Condition.attributes()`` — the Table II
    optimizer, the predicate compiler, SEC002's pruning analysis —
    would silently treat the UDF as reading nothing.  Strict-mode
    analysis (``register_query(analyze="strict")``) upgrades the same
    condition to a SEC006 error.
    """


class OptimizerError(ReproError):
    """The optimizer was asked to perform an inapplicable rewrite."""


class CQLSyntaxError(ReproError):
    """A CQL statement could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(message)
        self.line = line
        self.column = column

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.line:
            return f"{base} (line {self.line}, column {self.column})"
        return base


class QueryError(ReproError):
    """A continuous query is invalid (unknown stream, no roles, ...)."""


class ShardExecutionError(ReproError):
    """A shard worker died or hung; the run was aborted fail-closed.

    Raised by the partitioned executor (:mod:`repro.engine.sharded`)
    instead of ever returning partial — potentially under-enforced —
    results.
    """
