"""Online streaming sessions: push elements in, get results out.

:meth:`~repro.engine.dsms.DSMS.run` executes registered queries over
pre-registered finite sources.  A :class:`StreamingSession` instead
keeps a compiled plan live and lets the caller push stream elements
one at a time — the shape of a real deployment, and the mode in which
the paper's "speed of enforcement" advantage is visible: a policy
change takes effect for the very next pushed tuple.

Results are delivered through per-query callbacks (or collected, if no
callback is given)::

    session = dsms.open_session()
    session.subscribe("q1", lambda el: print("q1 got", el))
    session.push("HeartRate", sp)
    session.push("HeartRate", reading)
    session.close()
"""

from __future__ import annotations

import time
from typing import Callable

from repro.core.punctuation import SecurityPunctuation
from repro.engine.api import OptimizeLevel
from repro.engine.executor import ExecutionReport, Executor
from repro.errors import QueryError, StreamError
from repro.observability.provenance import Tracer
from repro.stream.element import StreamElement
from repro.stream.tuples import DataTuple

__all__ = ["StreamingSession"]

ResultCallback = Callable[[StreamElement], None]


class StreamingSession:
    """A live plan accepting pushed elements.

    Created via :meth:`repro.engine.dsms.DSMS.open_session`; not
    instantiated directly.
    """

    def __init__(self, dsms, *,
                 optimize: "OptimizeLevel | bool | str" =
                 OptimizeLevel.NONE,
                 analyze_sps: bool = True):
        self._dsms = dsms
        self._plan, self._sinks = dsms.build_plan(optimize=optimize)
        self._tracer = dsms.observability.tracer
        self._causal: Tracer | None = (
            self._tracer if isinstance(self._tracer, Tracer) else None)
        self._instruments = dsms.observability.instruments
        # Sessions receive elements one push at a time, so there is no
        # run to coalesce; the executor stays in element-wise mode.
        self._executor = Executor(self._plan, [], tracer=self._tracer,
                                  batching=False,
                                  instruments=self._instruments)
        self._analyze = analyze_sps
        self._callbacks: dict[str, ResultCallback] = {}
        self._consumed: dict[str, int] = {name: 0 for name in self._sinks}
        self._last_ts: dict[str, float] = {}
        self._pending_sps: dict[str, list[SecurityPunctuation]] = {}
        self._closed = False
        self.elements_pushed = 0
        if self._tracer.enabled:
            self._tracer.span("session.open",
                              queries=sorted(self._sinks),
                              operators=len(self._plan.nodes))

    @property
    def audit(self):
        """The owning DSMS's audit log (``None`` when disabled)."""
        return self._dsms.observability.audit

    # -- subscriptions ------------------------------------------------------
    def subscribe(self, query_name: str, callback: ResultCallback) -> None:
        """Deliver each new result element of ``query_name`` to
        ``callback`` (invoked synchronously during :meth:`push`)."""
        if query_name not in self._sinks:
            raise QueryError(f"unknown query: {query_name!r}")
        self._callbacks[query_name] = callback
        self._drain(query_name)

    # -- pushing ---------------------------------------------------------------
    def push(self, stream_id: str,
             element: StreamElement) -> dict[str, list[StreamElement]]:
        """Feed one element; returns the new results per query.

        Elements of one stream must arrive in timestamp order.  Sps
        pass through the DSMS's SP Analyzer (batch-buffered: an
        sp-batch is released to the plan when its first tuple — or an
        sp with a different timestamp — arrives).
        """
        if self._closed:
            raise StreamError("session is closed")
        if stream_id not in self._dsms.catalog:
            raise StreamError(f"unknown stream: {stream_id!r}")
        last = self._last_ts.get(stream_id)
        if last is not None and element.ts < last:
            raise StreamError(
                f"out-of-order push on {stream_id!r}: ts {element.ts} "
                f"after {last} (use a ReorderBuffer upstream)")
        self._last_ts[stream_id] = element.ts
        self.elements_pushed += 1
        instruments = self._instruments
        if instruments is not None:
            # Push time is the ingest clock: results delivered during
            # this push measure their end-to-end latency against it.
            instruments.mark_ingest(time.perf_counter())
            if isinstance(element, SecurityPunctuation):
                instruments.sps_in.inc()
            else:
                instruments.tuples_in.inc()
        if self._causal is not None:
            # Each push opens its own causal trace (the session is the
            # ingest point); the root span doubles as the push event.
            self._causal.begin(
                "sp" if isinstance(element, SecurityPunctuation)
                else "tuple",
                stream=stream_id, ts=element.ts, name="session.push")
        elif self._tracer.enabled:
            self._tracer.span(
                "session.push", stream=stream_id, ts=element.ts,
                kind=("sp" if isinstance(element, SecurityPunctuation)
                      else "tuple"))

        for item in self._ingest(stream_id, element):
            self._executor.feed(stream_id, item)
        return self._collect_new()

    def _ingest(self, stream_id: str, element: StreamElement):
        """Apply analyzer batch semantics to pushed sps."""
        if not self._analyze:
            return [element]
        pending = self._pending_sps.setdefault(stream_id, [])
        if isinstance(element, SecurityPunctuation):
            if pending and element.ts != pending[0].ts:
                released = self._dsms.analyzer.process_batch(pending)
                self._pending_sps[stream_id] = [element]
                return released
            pending.append(element)
            return []
        if pending:
            released = self._dsms.analyzer.process_batch(pending)
            self._pending_sps[stream_id] = []
            return list(released) + [element]
        return [element]

    def push_many(self, stream_id: str, elements) -> dict[str, list]:
        """Push a sequence of elements; returns accumulated results."""
        out: dict[str, list[StreamElement]] = {name: []
                                               for name in self._sinks}
        for element in elements:
            for name, items in self.push(stream_id, element).items():
                out[name].extend(items)
        return out

    # -- result delivery ----------------------------------------------------
    def _collect_new(self) -> dict[str, list[StreamElement]]:
        out: dict[str, list[StreamElement]] = {}
        for name in self._sinks:
            out[name] = self._drain(name)
        return out

    def _drain(self, name: str) -> list[StreamElement]:
        sink = self._sinks[name]
        new = sink.elements[self._consumed[name]:]
        self._consumed[name] = len(sink.elements)
        callback = self._callbacks.get(name)
        if callback is not None:
            for element in new:
                callback(element)
        return new

    def results(self, query_name: str) -> list[DataTuple]:
        """All data tuples delivered to a query so far."""
        if query_name not in self._sinks:
            raise QueryError(f"unknown query: {query_name!r}")
        return [e for e in self._sinks[query_name].elements
                if isinstance(e, DataTuple)]

    def report(self) -> ExecutionReport:
        """Point-in-time execution report over the live plan.

        Unlike :meth:`~repro.engine.dsms.DSMS.run`'s report this can be
        taken mid-session: stage metrics reflect everything pushed so
        far.
        """
        report = ExecutionReport()
        report.elements_in = self.elements_pushed
        report.stages = self._executor.stage_stats()
        return report

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> dict[str, list[StreamElement]]:
        """Flush held sp-batches and operator state; final results."""
        if self._closed:
            return {name: [] for name in self._sinks}
        for stream_id, pending in self._pending_sps.items():
            if pending:
                for item in self._dsms.analyzer.process_batch(pending):
                    self._executor.feed(stream_id, item)
        self._pending_sps.clear()
        self._executor._flush()  # noqa: SLF001 - same package
        self._closed = True
        if self._tracer.enabled:
            self._tracer.span("session.close",
                              elements_pushed=self.elements_pushed)
        return self._collect_new()

    def __enter__(self) -> "StreamingSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
