"""Pipelined plan execution.

The executor merges all registered sources into one timestamp-ordered
feed and pushes each element depth-first through the operator DAG: an
operator's output elements are delivered to its downstream operators
before the next input element is consumed.  This is the synchronous
equivalent of a pipelined DSMS scheduler and keeps executions fully
deterministic (the property the plan-equivalence tests build on).

Two execution modes share that delivery discipline:

* **Element-wise** (``batching=False``): every stream element is
  dispatched individually — the reference semantics.
* **Segment-batched** (``batching=True``, the default): runs of
  consecutive same-stream tuples between sps — pieces of a single
  s-punctuated segment — are coalesced into
  :class:`~repro.stream.batch.TupleBatch` envelopes and pushed through
  operators' :meth:`~repro.operators.base.Operator.process_batch` fast
  paths.  A Security Shield passes or drops a whole uniform segment in
  O(1); select/project filter and map runs in single comprehensions.
  Operators without a native batch path fall back to the per-element
  loop automatically; operators whose audit events would reorder
  under batching are unbatched while an audit log is attached; and a
  batch reaching a fan-out (several downstream consumers) is split
  back into tuples under audit so events interleave across branches
  exactly as element-wise — so results and audit streams are
  identical in both modes.

The push loop is iterative (an explicit work stack, LIFO with reversed
pushes to preserve depth-first order), so deep plans never hit Python's
recursion limit and per-element call overhead stays flat.

Observability: the executor emits ``executor.run`` span events to its
:class:`~repro.observability.TraceSink` (no-op by default) and, at the
end of a run, snapshots every operator's
:class:`~repro.observability.StageStats` into the
:class:`ExecutionReport` — the per-stage breakdown the ``repro stats``
CLI prints.
"""

from __future__ import annotations

import time
from itertools import repeat
from typing import Iterable

from repro.engine import fusion as _fusion
from repro.engine.fusion import build_fused_chains
from repro.engine.plan import PhysicalPlan, PlanNode
from repro.observability.provenance import Tracer
from repro.observability.stats import StageStats, aggregate_stages
from repro.observability.trace import NullTraceSink, TraceSink
from repro.core.punctuation import SecurityPunctuation
from repro.stream.batch import (TupleBatch, coalesce_elements, coalesce_feed)
from repro.stream.element import StreamElement
from repro.stream.source import StreamSource, merge_sources

__all__ = ["Executor", "ExecutionReport"]


class ExecutionReport:
    """Summary of one plan execution, including per-stage metrics."""

    __slots__ = ("elements_in", "tuples_in", "sps_in", "wall_time",
                 "shard_timing", "_stages", "_stage_index")

    def __init__(self):
        self.elements_in = 0
        self.tuples_in = 0
        self.sps_in = 0
        self.wall_time = 0.0
        #: Sharded-run timing breakdown (``repro.engine.sharded``):
        #: serial partition/merge/suffix seconds plus per-worker CPU
        #: seconds; ``None`` for single-process runs.
        self.shard_timing: dict | None = None
        self.stages = []

    @property
    def stages(self) -> list[StageStats]:
        """Per-operator :class:`StageStats` snapshots (plan order)."""
        return self._stages

    @stages.setter
    def stages(self, stages: "Iterable[StageStats]") -> None:
        self._stages = list(stages)
        # Name lookup index, built once per snapshot; the first stage
        # wins on (unusual) duplicate names, matching the semantics of
        # the linear scan this replaces.
        index: dict[str, StageStats] = {}
        for stage in self._stages:
            index.setdefault(stage.name, stage)
        self._stage_index = index

    def stage(self, name: str) -> StageStats | None:
        """The snapshot of the operator named ``name``, if present."""
        return self._stage_index.get(name)

    def totals(self) -> dict:
        """Whole-plan aggregates across all stages."""
        return aggregate_stages(self._stages)

    @property
    def total_drops(self) -> int:
        return sum(stage.drops for stage in self._stages)

    def __repr__(self) -> str:
        return (f"ExecutionReport(elements={self.elements_in}, "
                f"wall={self.wall_time:.4f}s, "
                f"stages={len(self._stages)})")


class Executor:
    """Drives a physical plan over a set of sources."""

    def __init__(self, plan: PhysicalPlan, sources: Iterable[StreamSource],
                 *, tracer: TraceSink | None = None,
                 batching: bool = True, columnar: bool = True,
                 prebatched: bool = False, instruments=None):
        self.plan = plan
        self.sources = list(sources)
        self.tracer = tracer if tracer is not None else NullTraceSink()
        #: Causal tracer (trace contexts, operator spans, provenance);
        #: ``None`` when the sink is a plain flat-event TraceSink.
        self._causal: Tracer | None = (
            self.tracer if isinstance(self.tracer, Tracer) else None)
        #: Segment-batched execution (see module docstring).
        self.batching = batching
        #: Columnar tier: fused shield/select/project chains executed
        #: over ColumnBatch layouts (effective only with batching).
        self.columnar = columnar
        #: Sources already yield coalesced runs (TupleBatch envelopes)
        #: — skip the executor's own coalescing layer.
        self.prebatched = prebatched
        #: Engine metric instruments (``None`` = metrics off; the run
        #: loop then pays one ``is None`` check per element).
        self.instruments = instruments
        #: Fused columnar chains, keyed by head node id (empty when the
        #: columnar tier is off or no chain qualifies).
        self._fused = (build_fused_chains(plan)
                       if batching and columnar else {})
        #: Snapshot of the fusion row threshold (read from the module
        #: at construction so verification harnesses can lower it to
        #: force the kernels onto short segments).
        self._min_fused_rows = _fusion.MIN_FUSED_ROWS
        # With a live audit log, a TupleBatch delivered to a fan-out
        # (several downstream consumers) must be split back into tuples
        # so audit events interleave across branches exactly as in
        # element-wise execution; see _push.
        self._audit_live = any(
            getattr(node.operator, "audit", None) is not None
            for node in self.plan.nodes)

    def run(self) -> ExecutionReport:
        """Consume all sources to exhaustion, then flush the plan."""
        report = ExecutionReport()
        if self.tracer.enabled:
            self.tracer.span("executor.run.start",
                             sources=len(self.sources),
                             operators=len(self.plan.nodes),
                             batching=self.batching)
        start = time.perf_counter()
        entries = self.plan.entries
        if self.batching and len(self.sources) == 1:
            # Single-source fast path: no ts merge needed, so the run
            # coalescing collapses to one generator layer (or none at
            # all when the source is already pre-batched) — the merge
            # + coalesce generator stack is the dominating per-element
            # cost on sp-dense feeds.
            (source,) = self.sources
            elements = (iter(source) if self.prebatched
                        else coalesce_elements(iter(source)))
            feed = zip(repeat(source.stream_id), elements)
        else:
            feed = merge_sources(self.sources)
            if self.batching:
                feed = coalesce_feed(feed)
        push = self._push
        instruments = self.instruments
        audit_live = self._audit_live
        causal = self._causal
        push_traced = self._push_traced
        get_targets = entries.get
        sp_type = SecurityPunctuation
        # Report counters accumulate in locals — one attribute store
        # after the loop instead of three loads+stores per element.
        elements_in = tuples_in = sps_in = 0
        for stream_id, element in feed:
            if instruments is not None:
                instruments.mark_ingest(time.perf_counter())
            if type(element) is TupleBatch:
                size = len(element.tuples)
                elements_in += size
                tuples_in += size
                if instruments is not None:
                    instruments.tuples_in.inc(size)
                if causal is not None:
                    causal.begin("batch", stream=stream_id, size=size)
            elif isinstance(element, sp_type):
                elements_in += 1
                sps_in += 1
                if instruments is not None:
                    instruments.sps_in.inc()
                if causal is not None:
                    causal.begin("sp", stream=stream_id, ts=element.ts)
            else:
                elements_in += 1
                tuples_in += 1
                if instruments is not None:
                    instruments.tuples_in.inc()
                if causal is not None:
                    causal.begin("tuple", stream=stream_id,
                                 ts=element.ts)
            targets = get_targets(stream_id)
            if targets:
                deliver = (push_traced
                           if causal is not None and causal.active
                           else push)
                if (len(targets) > 1 and audit_live
                        and type(element) is TupleBatch):
                    # Multi-entry fan-out under audit: deliver per
                    # tuple so branches interleave as element-wise.
                    for item in element.tuples:
                        for node, port in targets:
                            deliver(node, item, port)
                else:
                    for node, port in targets:
                        deliver(node, element, port)
        report.elements_in = elements_in
        report.tuples_in = tuples_in
        report.sps_in = sps_in
        self._flush()
        report.wall_time = time.perf_counter() - start
        if instruments is not None:
            instruments.ingest_wall = None
            instruments.runs.inc()
            instruments.run_seconds.observe(report.wall_time)
        report.stages = self.stage_stats()
        if self.tracer.enabled:
            self.tracer.span("executor.run.end",
                             elements_in=report.elements_in,
                             tuples_in=report.tuples_in,
                             sps_in=report.sps_in,
                             drops=report.total_drops,
                             wall_time=report.wall_time,
                             batching=self.batching)
        return report

    def stage_stats(self) -> list[StageStats]:
        """Current per-operator metric snapshots (plan order)."""
        return [node.operator.stage_stats() for node in self.plan.nodes]

    def feed(self, stream_id: str, element: StreamElement) -> None:
        """Push one element into the plan (incremental driving)."""
        causal = self._causal
        push = (self._push_traced
                if causal is not None and causal.active else self._push)
        for node, port in self.plan.entries.get(stream_id, ()):
            push(node, element, port)

    def _push(self, node: PlanNode, element, port: int) -> None:
        """Deliver ``element`` (or a TupleBatch) depth-first from ``node``.

        Iterative equivalent of the recursive push: the work stack is
        LIFO, so pending work is pushed in reverse to process outputs
        (and fan-out edges) in plan order — the exact delivery order of
        the recursive formulation, without per-element Python frames.
        """
        stack: list[tuple[PlanNode, object, int]] = [(node, element, port)]
        append = stack.append
        pop = stack.pop
        audit_live = self._audit_live
        fused = self._fused
        min_fused_rows = self._min_fused_rows
        while stack:
            node, element, port = pop()
            if type(element) is TupleBatch:
                chain = (fused.get(node.node_id)
                         if fused and len(element.tuples) >= min_fused_rows
                         else None)
                if chain is not None:
                    # Columnar tier: the whole fused chain runs as one
                    # pass; outputs continue downstream of its tail.
                    outputs = chain.run(element)
                    node = chain.tail
                else:
                    operator = node.operator
                    if not operator.accepts_batches():
                        # Audit-order-sensitive operator with a live
                        # audit log: unbatch here so each tuple's
                        # downstream effects complete before the next
                        # tuple's audit events — byte-identical audit
                        # streams.
                        for item in reversed(element.tuples):
                            append((node, item, port))
                        continue
                    outputs = operator.process_batch(element, port)
            else:
                outputs = node.operator.process(element, port)
            if not outputs:
                continue
            downstream = node.downstream
            if not downstream:
                continue
            fanout = len(downstream) > 1
            for out in reversed(outputs):
                if fanout and audit_live and type(out) is TupleBatch:
                    # Batch meeting a fan-out under audit: split so
                    # each tuple visits every branch before the next
                    # tuple — the element-wise audit interleaving.
                    for item in reversed(out.tuples):
                        for child, child_port in reversed(downstream):
                            append((child, item, child_port))
                else:
                    for child, child_port in reversed(downstream):
                        append((child, out, child_port))

    def _push_traced(self, node: PlanNode, element, port: int) -> None:
        """Traced variant of :meth:`_push` for sampled traces.

        Identical delivery discipline, but every operator invocation
        is timed on the monotonic clock and emitted as a child span of
        the element's root span (chains of operators nest via the work
        stack's carried parent span id), and per-operator latency
        histograms get exemplars pointing at the live trace.  Only
        runs while the current trace is head-sampled, so its extra
        cost is bounded by the sampling rate.
        """
        tracer = self._causal
        assert tracer is not None
        stack: list[tuple[PlanNode, object, int, int]] = [
            (node, element, port, tracer._root_id)]
        append = stack.append
        pop = stack.pop
        audit_live = self._audit_live
        fused = self._fused
        min_fused_rows = self._min_fused_rows
        clock = time.perf_counter_ns
        while stack:
            node, element, port, parent = pop()
            if type(element) is TupleBatch:
                rows = len(element.tuples)
                chain = (fused.get(node.node_id)
                         if fused and rows >= min_fused_rows else None)
                if chain is not None:
                    begun = clock()
                    outputs = chain.run(element)
                    span = tracer.op_span(
                        "op.fused", parent, clock() - begun,
                        operators=[op.name for op in chain.operators],
                        rows=rows)
                    node = chain.tail
                else:
                    operator = node.operator
                    if not operator.accepts_batches():
                        for item in reversed(element.tuples):
                            append((node, item, port, parent))
                        continue
                    begun = clock()
                    outputs = operator.process_batch(element, port)
                    dur_ns = clock() - begun
                    span = tracer.op_span("op.process", parent, dur_ns,
                                          operator=operator.name,
                                          rows=rows)
                    if operator._m_latency is not None:
                        operator._m_latency.exemplar(
                            dur_ns / rows * 1e-9, tracer.trace_id)
            else:
                operator = node.operator
                begun = clock()
                outputs = operator.process(element, port)
                dur_ns = clock() - begun
                span = tracer.op_span("op.process", parent, dur_ns,
                                      operator=operator.name, rows=1)
                if operator._m_latency is not None:
                    operator._m_latency.exemplar(dur_ns * 1e-9,
                                                 tracer.trace_id)
            if not outputs:
                continue
            downstream = node.downstream
            if not downstream:
                continue
            fanout = len(downstream) > 1
            for out in reversed(outputs):
                if fanout and audit_live and type(out) is TupleBatch:
                    for item in reversed(out.tuples):
                        for child, child_port in reversed(downstream):
                            append((child, item, child_port, span))
                else:
                    for child, child_port in reversed(downstream):
                        append((child, out, child_port, span))

    def _flush(self) -> None:
        """End-of-stream: flush operators in topological order."""
        if self.tracer.enabled:
            self.tracer.span("executor.flush")
        for node in self.plan.topological():
            for out in node.operator.flush():
                for child, child_port in node.downstream:
                    self._push(child, out, child_port)
