"""Pipelined plan execution.

The executor merges all registered sources into one timestamp-ordered
feed and pushes each element depth-first through the operator DAG: an
operator's output elements are delivered to its downstream operators
before the next input element is consumed.  This is the synchronous
equivalent of a pipelined DSMS scheduler and keeps executions fully
deterministic (the property the plan-equivalence tests build on).
"""

from __future__ import annotations

import time
from typing import Iterable

from repro.engine.plan import PhysicalPlan, PlanNode
from repro.stream.element import StreamElement
from repro.stream.source import StreamSource, merge_sources

__all__ = ["Executor", "ExecutionReport"]


class ExecutionReport:
    """Summary of one plan execution."""

    __slots__ = ("elements_in", "tuples_in", "sps_in", "wall_time")

    def __init__(self):
        self.elements_in = 0
        self.tuples_in = 0
        self.sps_in = 0
        self.wall_time = 0.0

    def __repr__(self) -> str:
        return (f"ExecutionReport(elements={self.elements_in}, "
                f"wall={self.wall_time:.4f}s)")


class Executor:
    """Drives a physical plan over a set of sources."""

    def __init__(self, plan: PhysicalPlan, sources: Iterable[StreamSource]):
        self.plan = plan
        self.sources = list(sources)

    def run(self) -> ExecutionReport:
        """Consume all sources to exhaustion, then flush the plan."""
        from repro.stream.element import is_punctuation

        report = ExecutionReport()
        start = time.perf_counter()
        entries = self.plan.entries
        for stream_id, element in merge_sources(self.sources):
            report.elements_in += 1
            if is_punctuation(element):
                report.sps_in += 1
            else:
                report.tuples_in += 1
            for node, port in entries.get(stream_id, ()):
                self._push(node, element, port)
        self._flush()
        report.wall_time = time.perf_counter() - start
        return report

    def feed(self, stream_id: str, element: StreamElement) -> None:
        """Push one element into the plan (incremental driving)."""
        for node, port in self.plan.entries.get(stream_id, ()):
            self._push(node, element, port)

    def _push(self, node: PlanNode, element: StreamElement,
              port: int) -> None:
        outputs = node.operator.process(element, port)
        if not outputs:
            return
        for out in outputs:
            for child, child_port in node.downstream:
                self._push(child, out, child_port)

    def _flush(self) -> None:
        """End-of-stream: flush operators in topological order."""
        for node in self.plan.topological():
            for out in node.operator.flush():
                for child, child_port in node.downstream:
                    self._push(child, out, child_port)
