"""Pipelined plan execution.

The executor merges all registered sources into one timestamp-ordered
feed and pushes each element depth-first through the operator DAG: an
operator's output elements are delivered to its downstream operators
before the next input element is consumed.  This is the synchronous
equivalent of a pipelined DSMS scheduler and keeps executions fully
deterministic (the property the plan-equivalence tests build on).

Observability: the executor emits ``executor.run`` span events to its
:class:`~repro.observability.TraceSink` (no-op by default) and, at the
end of a run, snapshots every operator's
:class:`~repro.observability.StageStats` into the
:class:`ExecutionReport` — the per-stage breakdown the ``repro stats``
CLI prints.
"""

from __future__ import annotations

import time
from typing import Iterable

from repro.engine.plan import PhysicalPlan, PlanNode
from repro.observability.stats import StageStats, aggregate_stages
from repro.observability.trace import NullTraceSink, TraceSink
from repro.stream.element import StreamElement
from repro.stream.source import StreamSource, merge_sources

__all__ = ["Executor", "ExecutionReport"]


class ExecutionReport:
    """Summary of one plan execution, including per-stage metrics."""

    __slots__ = ("elements_in", "tuples_in", "sps_in", "wall_time",
                 "stages")

    def __init__(self):
        self.elements_in = 0
        self.tuples_in = 0
        self.sps_in = 0
        self.wall_time = 0.0
        #: Per-operator :class:`StageStats` snapshots (plan order).
        self.stages: list[StageStats] = []

    def stage(self, name: str) -> StageStats | None:
        """The snapshot of the operator named ``name``, if present."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        return None

    def totals(self) -> dict:
        """Whole-plan aggregates across all stages."""
        return aggregate_stages(self.stages)

    @property
    def total_drops(self) -> int:
        return sum(stage.drops for stage in self.stages)

    def __repr__(self) -> str:
        return (f"ExecutionReport(elements={self.elements_in}, "
                f"wall={self.wall_time:.4f}s, "
                f"stages={len(self.stages)})")


class Executor:
    """Drives a physical plan over a set of sources."""

    def __init__(self, plan: PhysicalPlan, sources: Iterable[StreamSource],
                 *, tracer: TraceSink | None = None):
        self.plan = plan
        self.sources = list(sources)
        self.tracer = tracer if tracer is not None else NullTraceSink()

    def run(self) -> ExecutionReport:
        """Consume all sources to exhaustion, then flush the plan."""
        from repro.stream.element import is_punctuation

        report = ExecutionReport()
        if self.tracer.enabled:
            self.tracer.span("executor.run.start",
                             sources=len(self.sources),
                             operators=len(self.plan.nodes))
        start = time.perf_counter()
        entries = self.plan.entries
        for stream_id, element in merge_sources(self.sources):
            report.elements_in += 1
            if is_punctuation(element):
                report.sps_in += 1
            else:
                report.tuples_in += 1
            for node, port in entries.get(stream_id, ()):
                self._push(node, element, port)
        self._flush()
        report.wall_time = time.perf_counter() - start
        report.stages = self.stage_stats()
        if self.tracer.enabled:
            self.tracer.span("executor.run.end",
                             elements_in=report.elements_in,
                             tuples_in=report.tuples_in,
                             sps_in=report.sps_in,
                             drops=report.total_drops,
                             wall_time=report.wall_time)
        return report

    def stage_stats(self) -> list[StageStats]:
        """Current per-operator metric snapshots (plan order)."""
        return [node.operator.stage_stats() for node in self.plan.nodes]

    def feed(self, stream_id: str, element: StreamElement) -> None:
        """Push one element into the plan (incremental driving)."""
        for node, port in self.plan.entries.get(stream_id, ()):
            self._push(node, element, port)

    def _push(self, node: PlanNode, element: StreamElement,
              port: int) -> None:
        outputs = node.operator.process(element, port)
        if not outputs:
            return
        for out in outputs:
            for child, child_port in node.downstream:
                self._push(child, out, child_port)

    def _flush(self) -> None:
        """End-of-stream: flush operators in topological order."""
        if self.tracer.enabled:
            self.tracer.span("executor.flush")
        for node in self.plan.topological():
            for out in node.operator.flush():
                for child, child_port in node.downstream:
                    self._push(child, out, child_port)
