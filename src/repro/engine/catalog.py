"""Stream catalog: registered streams, their sources and statistics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.statistics import StatisticsCatalog, StreamStatistics
from repro.errors import StreamError
from repro.stream.schema import StreamSchema
from repro.stream.source import StreamSource

__all__ = ["RegisteredStream", "StreamCatalog"]


@dataclass
class RegisteredStream:
    """One stream known to the DSMS."""

    schema: StreamSchema
    source: StreamSource | None
    #: Whether this stream carries security punctuations (drives the
    #: one- vs two-sided variants of Rule 3).
    carries_policies: bool = True


class StreamCatalog:
    """Registry of input streams."""

    def __init__(self):
        self._streams: dict[str, RegisteredStream] = {}
        self.statistics = StatisticsCatalog()

    def register(self, schema: StreamSchema,
                 source: StreamSource | None = None, *,
                 carries_policies: bool = True,
                 stats: StreamStatistics | None = None) -> None:
        stream_id = schema.stream_id
        if stream_id in self._streams:
            raise StreamError(f"stream {stream_id!r} already registered")
        self._streams[stream_id] = RegisteredStream(
            schema, source, carries_policies)
        if stats is not None:
            self.statistics.set_stream(stream_id, stats)

    def get(self, stream_id: str) -> RegisteredStream:
        try:
            return self._streams[stream_id]
        except KeyError:
            raise StreamError(f"unknown stream: {stream_id!r}") from None

    def set_source(self, stream_id: str, source: StreamSource) -> None:
        self.get(stream_id).source = source

    def __contains__(self, stream_id: str) -> bool:
        return stream_id in self._streams

    def stream_ids(self) -> list[str]:
        return sorted(self._streams)

    def policy_streams(self) -> frozenset[str]:
        return frozenset(
            sid for sid, reg in self._streams.items() if reg.carries_policies
        )

    def sources(self) -> list[StreamSource]:
        return [reg.source for reg in self._streams.values()
                if reg.source is not None]
