"""Query engine: physical plans, pipelined executor, DSMS facade."""

from repro.engine.api import OptimizeLevel
from repro.engine.catalog import RegisteredStream, StreamCatalog
from repro.engine.dsms import DSMS, QueryResult
from repro.engine.executor import ExecutionReport, Executor
from repro.engine.plan import PhysicalPlan, PlanNode
from repro.engine.query import ContinuousQuery

__all__ = [
    "ContinuousQuery",
    "DSMS",
    "ExecutionReport",
    "Executor",
    "OptimizeLevel",
    "PhysicalPlan",
    "PlanNode",
    "QueryResult",
    "RegisteredStream",
    "StreamCatalog",
]
