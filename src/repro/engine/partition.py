"""Segment-granular stream partitioning for the sharded executor.

The paper's s-punctuated segments are self-contained policy scopes:
the :class:`~repro.operators.base.PolicyTracker` contract says a
finalized sp-batch *replaces* the whole governing policy, and batches
older than the current policy timestamp are discarded as stale.  A
(sp-batch, tuple-run) pair — one segment — therefore carries every
fact needed to resolve its own tuples, which makes whole segments the
natural unit of parallelism: no sp needs to be broadcast across
shards.

This module implements that unit:

* :func:`split_chunks` cuts a stream's element list into *chunks* —
  one sp-batch (maximal adjacent same-ts sp run) plus the tuples it
  governs, or a leading tuple-only run (the denial-by-default
  prefix).
* :func:`assign_chunks` / :func:`partition_stream` hash each chunk
  onto a shard with a stable (process-independent) FNV-1a hash of the
  segment's identity, keeping same-anchor segments together so the
  merge below stays deterministic.
* :func:`merge_chunk_runs` reassembles per-shard *output* chunk runs
  into the exact single-stream order: per-stream sp-batch timestamps
  are strictly increasing and segments are contiguous, so sorting
  chunks by ``(anchor ts, shard, sequence)`` reconstructs the
  unsharded output.

The one cross-segment dependency in the model is the *incremental*
sp (it edits the previous policy instead of replacing it), so any
stream that carries incremental sps is pinned whole onto a single
shard instead of being split.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.punctuation import SecurityPunctuation
from repro.stream.element import StreamElement

__all__ = [
    "Chunk",
    "NO_ANCHOR",
    "assign_chunks",
    "chunk_runs",
    "merge_chunk_runs",
    "partition_spans",
    "partition_stream",
    "slice_spans",
    "shard_of",
    "split_chunks",
    "stable_hash",
]

#: Anchor timestamp of a chunk with no sp-batch prefix (tuples that
#: arrive before any sp — the denial-by-default prefix).  Sorts before
#: every real sp-batch timestamp.
NO_ANCHOR = float("-inf")

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def stable_hash(text: str) -> int:
    """64-bit FNV-1a of ``text`` (UTF-8).

    Python's builtin ``hash`` is salted per process
    (``PYTHONHASHSEED``), which would scatter a segment's elements
    differently on every run; shard routing must instead be a pure
    function of the segment identity so reproducers replay and
    restarted workers agree.
    """
    value = _FNV_OFFSET
    for byte in text.encode("utf-8"):
        value = ((value ^ byte) * _FNV_PRIME) & _MASK64
    return value


def shard_of(key: str, n_shards: int) -> int:
    """The shard a partition key routes to."""
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    return stable_hash(key) % n_shards


@dataclass(frozen=True)
class Chunk:
    """One partition unit: an sp-batch and the tuple run it governs.

    ``start``/``stop`` index into the stream's element list;
    ``tuples_at`` marks where the chunk's sp prefix ends (equal to
    ``start`` for the leading tuple-only chunk).  ``anchor_ts`` is the
    sp-batch timestamp (:data:`NO_ANCHOR` for the denial prefix) and
    orders chunks within a stream; ``key`` is the stable routing
    identity.
    """

    sid: str
    start: int
    stop: int
    tuples_at: int
    anchor_ts: float
    first_tid: object | None

    @property
    def key(self) -> str:
        """Stable partition key: the segment's object identity.

        Segments with tuples route by their first tuple id (the
        "object id" of the run); empty segments route by their batch
        timestamp.  Both are pure stream content, so the key is
        identical across processes and runs.
        """
        if self.first_tid is not None:
            return f"{self.sid}|{self.first_tid}"
        return f"{self.sid}|sp|{self.anchor_ts!r}"


def split_chunks(sid: str,
                 elements: "list[StreamElement]") -> "list[Chunk]":
    """Cut one stream's elements into segment chunks, in order.

    A chunk is a maximal adjacent same-ts sp run (one sp-batch — the
    tracker finalizes a batch when the sp timestamp changes *or* a
    tuple arrives, so a same-ts sp run after tuples is a new batch)
    followed by the tuples it governs.  Tuples before the first sp
    form a leading anchor-less chunk.  Concatenating the chunks in
    order reproduces ``elements`` exactly.
    """
    sp_type = SecurityPunctuation
    flags = [isinstance(element, sp_type) for element in elements]
    n = len(elements)
    chunks: "list[Chunk]" = []
    start = 0
    if n and not flags[0]:
        try:
            stop = flags.index(True)
        except ValueError:
            stop = n
        chunks.append(Chunk(sid, 0, stop, 0, NO_ANCHOR,
                            elements[0].tid))
        start = stop
    while start < n:
        batch_ts = elements[start].ts
        tuples_at = start + 1
        while (tuples_at < n and flags[tuples_at]
               and elements[tuples_at].ts == batch_ts):
            tuples_at += 1
        try:
            stop = flags.index(True, tuples_at)
        except ValueError:
            stop = n
        first_tid = (elements[tuples_at].tid
                     if tuples_at < stop else None)
        chunks.append(Chunk(sid, start, stop, tuples_at, batch_ts,
                            first_tid))
        start = stop
    return chunks


def assign_chunks(chunks: "list[Chunk]",
                  n_shards: int) -> "list[int]":
    """Shard index per chunk (hash routing with same-anchor chaining).

    Consecutive chunks sharing one anchor timestamp (possible only
    when a same-ts sp-batch re-opens after tuples) are chained onto
    one shard: the output merge orders chunks by anchor, and equal
    anchors on *different* shards would make that order depend on the
    shard layout instead of the stream alone.
    """
    shards: "list[int]" = []
    prev_anchor: float | None = None
    prev_shard = 0
    for chunk in chunks:
        if shards and chunk.anchor_ts == prev_anchor:
            shard = prev_shard
        else:
            shard = shard_of(chunk.key, n_shards)
        shards.append(shard)
        prev_anchor = chunk.anchor_ts
        prev_shard = shard
    return shards


def _has_incremental(elements: "list[StreamElement]",
                     chunks: "list[Chunk]") -> bool:
    """Whether any sp of the stream is incremental (scan sp runs only)."""
    for chunk in chunks:
        for index in range(chunk.start, chunk.tuples_at):
            if elements[index].incremental:
                return True
    return False


def partition_spans(sid: str, elements: "list[StreamElement]",
                    n_shards: int) -> "list[list[tuple[int, int]]]":
    """Per-shard ``(start, stop)`` index spans over one stream.

    Same routing as :func:`partition_stream`, but the scatter is left
    to the consumer: fork-started workers slice their own sub-stream
    out of the copy-on-write inherited element list, which takes the
    O(n) reference copying off the coordinator's serial path.
    Adjacent chunks routed to one shard coalesce into a single span.
    """
    n = len(elements)
    if n_shards == 1:
        return [[(0, n)] if n else []]
    chunks = split_chunks(sid, elements)
    spans: "list[list[tuple[int, int]]]" = [[] for _ in range(n_shards)]
    if _has_incremental(elements, chunks):
        if n:
            spans[shard_of(sid, n_shards)].append((0, n))
        return spans
    for chunk, shard in zip(chunks, assign_chunks(chunks, n_shards)):
        runs = spans[shard]
        if runs and runs[-1][1] == chunk.start:
            runs[-1] = (runs[-1][0], chunk.stop)
        else:
            runs.append((chunk.start, chunk.stop))
    return spans


def slice_spans(elements: "list[StreamElement]",
                spans: "list[tuple[int, int]]",
                ) -> "list[StreamElement]":
    """Materialize one shard's sub-stream from its index spans."""
    part: "list[StreamElement]" = []
    for start, stop in spans:
        part.extend(elements[start:stop])
    return part


def partition_stream(sid: str, elements: "list[StreamElement]",
                     n_shards: int) -> "list[list[StreamElement]]":
    """Partition one stream's elements across ``n_shards`` sub-streams.

    Whole chunks are routed (never split), per-shard order preserves
    stream order, and the concatenation of all sub-streams is a
    permutation of ``elements``.  Streams carrying incremental sps are
    pinned whole onto one shard (the incremental batch edits the
    *previous* policy, so its segment is not self-contained).
    """
    if n_shards == 1:
        return [list(elements)]
    return [slice_spans(elements, spans)
            for spans in partition_spans(sid, elements, n_shards)]


def chunk_runs(sid: str, elements: "list[StreamElement]"
               ) -> "list[tuple[float, list[StreamElement]]]":
    """One shard output as ``(anchor ts, elements)`` runs, in order.

    Workers pre-chunk their own outputs (in parallel) so the
    coordinator's merge is a sort of a few hundred run headers plus
    pointer-level concatenation, not a per-element pass.
    """
    return [(chunk.anchor_ts, elements[chunk.start:chunk.stop])
            for chunk in split_chunks(sid, elements)]


def merge_chunk_runs(
    per_shard_runs: "list[list[tuple[float, list[StreamElement]]]]",
) -> "list[StreamElement]":
    """Reassemble per-shard output runs into single-stream order.

    Sorting by ``(anchor ts, shard, run sequence)`` is exact: sp-batch
    timestamps strictly increase within each input stream (same-anchor
    segments are chained onto one shard by :func:`assign_chunks`), the
    operators between partition and merge are segment-local, and each
    shard's own runs are already in stream order — so the anchor order
    across shards *is* the original segment order.
    """
    ordered: "list[tuple[float, int, int, list[StreamElement]]]" = []
    for shard_idx, runs in enumerate(per_shard_runs):
        for seq, (anchor, elements) in enumerate(runs):
            ordered.append((anchor, shard_idx, seq, elements))
    ordered.sort(key=lambda item: item[:3])
    merged: "list[StreamElement]" = []
    for _, _, _, elements in ordered:
        merged.extend(elements)
    return merged
