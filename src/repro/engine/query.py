"""Continuous queries.

A continuous query pairs a logical expression with the roles of the
query specifier registered to receive its results (paper Section II.B:
"each query inherits the security restriction(s) associated with the
query specifier").  The DSMS guards every query with a Security Shield
for those roles — by default at the plan root, after which the
optimizer is free to interleave it per Rules 2-5.
"""

from __future__ import annotations

from repro.algebra.expressions import LogicalExpr, ShieldExpr, walk
from repro.errors import QueryError

__all__ = ["ContinuousQuery"]


class ContinuousQuery:
    """One registered continuous query."""

    #: Valid static-analysis modes for a registration.
    ANALYZE_MODES = ("off", "warn", "strict")

    def __init__(self, name: str, expr: LogicalExpr,
                 roles: frozenset[str] | set[str] | tuple | list,
                 *, user_id: str | None = None,
                 auto_shield: bool = True,
                 analyze: str = "off"):
        if not name:
            raise QueryError("query requires a name")
        roles = frozenset(roles)
        if not roles:
            raise QueryError(
                f"query {name!r} has no roles; every query specifier "
                "must belong to at least one role"
            )
        if analyze not in self.ANALYZE_MODES:
            raise QueryError(
                f"query {name!r}: analyze={analyze!r} is not one of "
                f"{self.ANALYZE_MODES}")
        self.name = name
        self.roles = roles
        self.user_id = user_id
        self.analyze = analyze
        if auto_shield and not self._has_shield(expr):
            expr = ShieldExpr(expr, roles)
        self.expr = expr

    @staticmethod
    def _has_shield(expr: LogicalExpr) -> bool:
        return any(isinstance(node, ShieldExpr) for node in walk(expr))

    def with_expr(self, expr: LogicalExpr) -> "ContinuousQuery":
        """Same query, rewritten plan (used after optimization)."""
        clone = ContinuousQuery.__new__(ContinuousQuery)
        clone.name = self.name
        clone.roles = self.roles
        clone.user_id = self.user_id
        clone.analyze = self.analyze
        clone.expr = expr
        return clone

    def __repr__(self) -> str:
        return (f"ContinuousQuery({self.name!r}, "
                f"roles={sorted(self.roles)})")
